"""Profile the simulator hot path, or emit the engine benchmark artifact.

Profiling (default mode) prints the top functions for one of the golden
hot-path workloads.  The two engine cores need different plumbing:

* ``--engine threads`` — ``cProfile`` only observes the thread it was
  started in, but the threaded engine's work happens on one worker
  thread per rank.  This mode patches ``Engine._thread_main`` so every
  rank thread runs under its own profiler and merges the per-thread
  stats.
* ``--engine eventloop`` — every continuation resumes on the calling
  thread, so a single profiler around the workload sees everything;
  the workload table swaps to the co_* ports of the same programs.

Usage::

    PYTHONPATH=src python scripts/profile_hotpath.py [workload] [top_n] \
        [--engine {threads,eventloop}]
    PYTHONPATH=src python scripts/profile_hotpath.py --bench-json \
        BENCH_engine.json [--ci]

``--bench-json`` runs the engine-core A/B benchmark instead
(:mod:`repro.experiments.engine_bench`): cold fig5 cells on both cores,
the per-switch handoff microbench, the event-core scale curve, and the
threaded big-world failure probe — then writes the
``repro-bench-engine/1`` document CI validates.  ``--ci`` shrinks the
grid for smoke runs.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pstats
import sys
import threading

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))


def _profile_threads(workload: str, top_n: int) -> None:
    from repro.simmpi.engine import Engine
    from tests.golden.hotpath_workloads import WORKLOADS

    if workload not in WORKLOADS:
        sys.exit(f"unknown workload {workload!r}; "
                 f"choose from {', '.join(sorted(WORKLOADS))}")
    profiles = []
    lock = threading.Lock()
    orig = Engine._thread_main

    def patched(self, *args, **kwargs):
        prof = cProfile.Profile()
        prof.enable()
        try:
            return orig(self, *args, **kwargs)
        finally:
            prof.disable()
            with lock:
                profiles.append(prof)

    Engine._thread_main = patched
    try:
        engine, _ = WORKLOADS[workload]()
    finally:
        Engine._thread_main = orig

    stats = pstats.Stats(profiles[0])
    for prof in profiles[1:]:
        stats.add(prof)
    stats.sort_stats("cumulative")
    print(f"\n{workload} [threads]: {engine.messages} messages, "
          f"{engine.switches} switches, max_clock={engine.max_clock:.6g}")
    print(f"top {top_n} by cumulative time across "
          f"{len(profiles)} rank threads:\n")
    stats.print_stats(top_n)


def _profile_eventloop(workload: str, top_n: int) -> None:
    from tests.golden.hotpath_workloads_ev import WORKLOADS_EV

    if workload not in WORKLOADS_EV:
        sys.exit(f"unknown workload {workload!r}; "
                 f"choose from {', '.join(sorted(WORKLOADS_EV))}")
    prof = cProfile.Profile()
    prof.enable()
    try:
        engine, _ = WORKLOADS_EV[workload]()
    finally:
        prof.disable()

    stats = pstats.Stats(prof)
    stats.sort_stats("cumulative")
    print(f"\n{workload} [eventloop]: {engine.messages} messages, "
          f"{engine.resumes} resumes, max_clock={engine.max_clock:.6g}")
    print(f"top {top_n} by cumulative time on the scheduler thread:\n")
    stats.print_stats(top_n)


def _bench_json(out_path: str, ci: bool) -> int:
    from repro.experiments import engine_bench

    if ci:
        doc = engine_bench.build_artifact(
            cell_ranks=(16, 64),
            cell_sizes=(1_000_000, 5_000_000),
            scale_ranks=(256, 4096),
            cold_runs=1,
        )
    else:
        doc = engine_bench.build_artifact()
    errors = engine_bench.verify_artifact(doc)
    with open(out_path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {out_path}")
    if errors:
        for err in errors:
            print(f"BENCH INVALID: {err}", file=sys.stderr)
        return 1
    for row in doc["fig5_cell"]:
        print(f"  fig5 @ {row['n_ranks']:>5d} ranks: "
              f"threads {row['threads_wall_seconds']:.3f}s vs eventloop "
              f"{row['eventloop_wall_seconds']:.3f}s "
              f"({row['speedup']:.2f}x, bit-identical results)")
    ps = doc["per_switch"]
    print(f"  per switch: {ps['threads_seconds_per_switch'] * 1e6:.2f}us vs "
          f"{ps['eventloop_seconds_per_switch'] * 1e6:.2f}us "
          f"({ps['ratio']:.1f}x)")
    top = doc["scale_curve"][-1]
    print(f"  scale: eventloop ran {top['n_ranks']} ranks in "
          f"{top['wall_seconds']:.2f}s; threads at "
          f"{doc['threads_big_world']['n_ranks']} ranks -> "
          f"{doc['threads_big_world']['outcome']}")
    return 0


def main() -> None:
    parser = argparse.ArgumentParser(
        prog="python scripts/profile_hotpath.py",
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("workload", nargs="?", default="fig5_shaped")
    parser.add_argument("top_n", nargs="?", type=int, default=20)
    parser.add_argument("--engine", choices=["threads", "eventloop"],
                        default="threads",
                        help="which engine core to profile (default: threads)")
    parser.add_argument("--bench-json", metavar="PATH", default=None,
                        help="skip profiling; run the engine-core A/B "
                             "benchmark and write the artifact to PATH")
    parser.add_argument("--ci", action="store_true",
                        help="with --bench-json: reduced smoke grid")
    args = parser.parse_args()

    if args.bench_json:
        sys.exit(_bench_json(args.bench_json, args.ci))
    if args.engine == "eventloop":
        _profile_eventloop(args.workload, args.top_n)
    else:
        _profile_threads(args.workload, args.top_n)


if __name__ == "__main__":
    main()
