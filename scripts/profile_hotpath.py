"""Profile the simulator hot path and print the top functions.

``cProfile`` only observes the thread it was started in, but the
engine's work happens on one worker thread per rank — profiling
``engine.run`` from the outside shows nothing but a semaphore wait.
This script patches ``Engine._thread_main`` so every rank thread runs
under its own profiler, merges the per-thread stats, and prints the
top entries by cumulative time for the Fig. 5-shaped golden workload.

Usage::

    PYTHONPATH=src python scripts/profile_hotpath.py [workload] [top_n]

where ``workload`` is a key of the golden workload table
(default: ``fig5_shaped``).
"""

from __future__ import annotations

import cProfile
import os
import pstats
import sys
import threading

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))


def main() -> None:
    from repro.simmpi.engine import Engine
    from tests.golden.hotpath_workloads import WORKLOADS

    workload = sys.argv[1] if len(sys.argv) > 1 else "fig5_shaped"
    top_n = int(sys.argv[2]) if len(sys.argv) > 2 else 20
    if workload not in WORKLOADS:
        sys.exit(f"unknown workload {workload!r}; "
                 f"choose from {', '.join(sorted(WORKLOADS))}")

    profiles = []
    lock = threading.Lock()
    orig = Engine._thread_main

    def patched(self, *args, **kwargs):
        prof = cProfile.Profile()
        prof.enable()
        try:
            return orig(self, *args, **kwargs)
        finally:
            prof.disable()
            with lock:
                profiles.append(prof)

    Engine._thread_main = patched
    try:
        engine, _ = WORKLOADS[workload]()
    finally:
        Engine._thread_main = orig

    stats = pstats.Stats(profiles[0])
    for prof in profiles[1:]:
        stats.add(prof)
    stats.sort_stats("cumulative")
    print(f"\n{workload}: {engine.messages} messages, "
          f"{engine.switches} switches, max_clock={engine.max_clock:.6g}")
    print(f"top {top_n} by cumulative time across "
          f"{len(profiles)} rank threads:\n")
    stats.print_stats(top_n)


if __name__ == "__main__":
    main()
