"""Capture golden values for the hot-path equivalence tests.

Runs a set of small but representative workloads (Fig. 5- and Fig. 6-
shaped, plus a mixed kernel with monitoring and jitter) and dumps every
per-rank virtual clock, monitoring matrix, and NIC counter to
``tests/golden/hotpath_golden.json``.  Floats are stored in ``float.hex``
form so the comparison in ``tests/simmpi/test_hotpath_equivalence.py``
is bit-exact, not approximate.

The checked-in JSON was produced by the *pre-optimization* (seed)
implementation; the optimized hot path must reproduce it exactly.
Re-run this script only to add new workloads — never to paper over a
regression in the existing ones.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

OUT = os.path.join(os.path.dirname(__file__), "..", "tests", "golden",
                   "hotpath_golden.json")


def _matrix_digest(m: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(m).tobytes()).hexdigest()


def snapshot_engine(engine) -> dict:
    """Everything the equivalence test compares, in bit-exact form."""
    from repro.simmpi.pml_monitoring import CATEGORIES

    nic = engine.network.nic
    return {
        "clocks": [float.hex(c) for c in engine.clocks()],
        "max_clock": float.hex(engine.max_clock),
        "counts": {c: _matrix_digest(engine.pml.counts[c]) for c in CATEGORIES},
        "sizes": {c: _matrix_digest(engine.pml.sizes[c]) for c in CATEGORIES},
        "totals": {c: list(engine.pml.totals(c)) for c in CATEGORIES},
        "nic_xmit": [nic.total_xmit_bytes(n) for n in range(nic.n_nodes)],
        "switches": engine.switches,
    }


def run_workloads() -> dict:
    from tests.golden.hotpath_workloads import WORKLOADS

    out = {}
    for name, build in WORKLOADS.items():
        engine, results = build()
        snap = snapshot_engine(engine)
        snap["results"] = results
        out[name] = snap
        print(f"{name}: max_clock={engine.max_clock:.6g} "
              f"switches={engine.switches}")
    return out


def main() -> None:
    data = run_workloads()
    os.makedirs(os.path.dirname(OUT), exist_ok=True)
    with open(OUT, "w", encoding="ascii") as fh:
        json.dump(data, fh, indent=1, sort_keys=True)
    print(f"wrote {os.path.normpath(OUT)}")


if __name__ == "__main__":
    main()
