"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures and prints
the rows/series the paper reports (run with ``-s`` to see them, or read
EXPERIMENTS.md for a captured copy).  Default parameter grids are
scaled down to keep the suite in the minutes range; set ``REPRO_FULL=1``
for the paper-scale grids.
"""

import pytest


def once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The simulator is deterministic, so repeated rounds only burn time;
    wall-clock here measures the *simulation*, while the figures report
    virtual time.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
