"""Bench: paper Fig. 4 — monitoring overhead on MPI_Reduce (§6.2)."""

from benchmarks.conftest import once
from repro.experiments import fig4_overhead
from repro.experiments.common import full_scale


def test_fig4_monitoring_overhead(benchmark):
    if full_scale():
        node_counts, sizes, reps = (2, 4, 8), fig4_overhead.DEFAULT_SIZES, 180
    else:
        node_counts, sizes, reps = (2, 4), (1, 100, 10_000), 40
    points = once(benchmark, fig4_overhead.run, node_counts=node_counts,
                  sizes=sizes, reps=reps)
    print()
    print(fig4_overhead.report(points))

    # The paper's claims: overhead mostly insignificant, always < 5 us.
    worst = max(abs(p.mean_diff_us) for p in points)
    assert worst < 5.0
    insignificant = sum(1 for p in points if not p.significant)
    print(f"{insignificant}/{len(points)} cells statistically indistinguishable "
          "from zero")
