"""Bench: event-driven engine core vs. thread-per-rank (A/B + scale).

Three claims, each measured on the spot (the committed artifact
``BENCH_engine.json`` holds the cold fresh-process numbers; this suite
re-derives the same shapes in-process so CI exercises them on every
push):

* the fig5 cell runs on both cores and the points are **bit-identical**
  — the wall-clock difference is pure scheduling overhead;
* the per-switch price of a generator resume is a multiple below an OS
  baton pass (the handoff microbench);
* the event core starts and finishes worlds the threaded core cannot:
  the default scale rank count is 1024 (seconds); ``REPRO_FULL=1``
  raises it to 4096 and adds a 10240-rank point, the paper-scale curve
  behind the "10k-rank worlds" headline.

Run with ``--benchmark-disable`` for a plain smoke test (CI does).
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import once
from repro.experiments import engine_bench

_FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")
_CELL_SIZES = (1_000_000, 5_000_000) if not _FULL else engine_bench.CELL_SIZES
_SCALE_RANKS = (1024,) if not _FULL else (4096, 10240)

_digests = {}


@pytest.mark.parametrize("core", ["threads", "eventloop"])
@pytest.mark.parametrize("n_ranks", [16, 64])
def test_fig5_cell(benchmark, core, n_ranks):
    rec = once(benchmark, engine_bench.fig5_cell, core, n_ranks,
               sizes=_CELL_SIZES)
    assert rec["messages"] > 0
    # The event core's resumes are its switches — the degenerate pair
    # is the bit-exactness invariant surfaced as a counter.
    assert rec["resumes"] == rec["switches"]
    # Cross-core bit-identity: both cores must produce the same points.
    other = _digests.setdefault(n_ranks, rec["result_digest"])
    assert rec["result_digest"] == other, \
        f"cores disagree at {n_ranks} ranks"
    print(f"\nfig5[{core} @ {n_ranks}]: {rec['wall_seconds']:.3f}s, "
          f"{rec['switches']} switches, {rec['messages']} messages")


@pytest.mark.parametrize("core", ["threads", "eventloop"])
def test_per_switch_handoff(benchmark, core):
    rec = once(benchmark, engine_bench.handoff, core, iters=20_000)
    assert rec["switches"] > 20_000
    print(f"\nhandoff[{core}]: "
          f"{rec['seconds_per_switch'] * 1e6:.2f}us/switch "
          f"({rec['switches']} switches)")


def test_handoff_switch_counts_match():
    """The per-switch comparison is only meaningful if both cores do
    the same number of switches for the same program."""
    a = engine_bench.handoff("threads", iters=2_000)
    b = engine_bench.handoff("eventloop", iters=2_000)
    assert a["switches"] == b["switches"]


@pytest.mark.parametrize("n_ranks", _SCALE_RANKS)
def test_eventloop_scale_world(benchmark, n_ranks):
    rec = once(benchmark, engine_bench.scale_world, n_ranks)
    assert rec["resumes"] > 0
    assert rec["messages"] > 0
    print(f"\nscale[{n_ranks}]: build {rec['build_seconds']:.3f}s, "
          f"run {rec['wall_seconds']:.3f}s, {rec['resumes']} resumes, "
          f"rss {rec['max_rss_kb'] // 1024}MB")


def test_committed_artifact_is_sound():
    """BENCH_engine.json (committed at the repo root) passes the same
    validation CI applies to freshly generated artifacts."""
    import json

    path = os.path.join(os.path.dirname(__file__), "..", "BENCH_engine.json")
    with open(path) as fh:
        doc = json.load(fh)
    errors = engine_bench.verify_artifact(doc)
    assert not errors, errors
    assert all(row["result_digest_match"] for row in doc["fig5_cell"])
