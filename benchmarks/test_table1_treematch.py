"""Bench: paper Table 1 — TreeMatch computation time at scale (§7)."""

from benchmarks.conftest import once
from repro.experiments import table1_treematch
from repro.experiments.common import full_scale


def test_table1_treematch_scaling(benchmark):
    sizes = table1_treematch.FULL_SIZES if full_scale() \
        else table1_treematch.DEFAULT_SIZES
    timings = once(benchmark, table1_treematch.run, sizes=sizes)
    print()
    print(table1_treematch.report(timings))

    # Shape: superlinear growth with the matrix order (the paper's
    # column grows 2.6 -> 6.3 -> 20.9 -> 88.7 s, i.e. 2.4-4.2x per
    # doubling).
    for a, b in zip(timings, timings[1:]):
        assert b.seconds > a.seconds
        ratio = b.seconds / max(a.seconds, 1e-9)
        assert ratio > 1.3, (a, b, ratio)

    # Even the largest default case stays practical, as the paper
    # argues ("even for such large input size the time to compute the
    # reordering is less than 100 s").
    assert timings[-1].seconds < 100.0
