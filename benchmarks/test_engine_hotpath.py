"""Bench: simulator hot path (engine + network + monitoring).

Unlike the figure benchmarks, these measure the *simulator's* wall-clock
cost directly — messages materialized per second through the fused
send/transfer/deliver path — on three shapes: a point-to-point
ping-pong (pure engine overhead), a segmented tree broadcast (the
Fig. 5 inner loop, batched monitoring), and the same broadcast with a
monitoring session open (per-record cost on top).

Run with ``--benchmark-disable`` for a plain smoke test (CI does).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import once
from repro.simmpi import Cluster, Engine


def _pingpong(iters: int = 400):
    cluster = Cluster.plafrim(2, binding="rr")
    engine = Engine(cluster, seed=0)

    def program(comm):
        me, n = comm.rank, comm.size
        for it in range(iters):
            comm.sendrecv(None, dest=(me + 1) % n, source=(me - 1) % n,
                          sendtag=it, recvtag=it, nbytes=1_000)
        return comm.time

    engine.run(program)
    return engine


def _segmented_bcast(monitored: bool, reps: int = 6):
    cluster = Cluster.plafrim(2, binding="rr")
    engine = Engine(cluster, seed=0)

    def program(comm):
        if monitored:
            comm.engine.pml.set_mode(2)
        for _ in range(reps):
            comm.bcast(None, root=0,
                       nbytes=8_000_000 if comm.rank == 0 else None)
        return comm.time

    engine.run(program)
    return engine


def test_hotpath_p2p_pingpong(benchmark):
    engine = once(benchmark, _pingpong)
    assert engine.messages == 400 * engine.n_ranks
    print(f"\np2p: {engine.messages} messages, {engine.switches} switches")


def test_hotpath_segmented_bcast(benchmark):
    engine = once(benchmark, _segmented_bcast, monitored=False)
    assert engine.messages > 0
    assert engine.pml.totals("coll") == (0, 0)  # monitoring off
    print(f"\nbcast: {engine.messages} messages, {engine.switches} switches")


def test_hotpath_monitored_bcast(benchmark):
    engine = once(benchmark, _segmented_bcast, monitored=True)
    n_msgs, n_bytes = engine.pml.totals("coll")
    assert n_msgs == engine.messages  # every segment recorded
    assert n_bytes > 0
    print(f"\nmonitored bcast: {n_msgs} records, {n_bytes} bytes")
