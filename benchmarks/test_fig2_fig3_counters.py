"""Bench: paper Fig. 2 + Fig. 3 — HW counters vs introspection (§6.1)."""

import numpy as np

from benchmarks.conftest import once
from repro.experiments import fig2_counters
from repro.experiments.common import full_scale


def test_fig2_fig3_hw_counters_vs_introspection(benchmark):
    duration = 45.0 if full_scale() else 8.0
    result = once(benchmark, fig2_counters.run, duration=duration)
    print()
    print(fig2_counters.report(result))

    # Shape checks (the paper's claims): both monitors account for the
    # same volume, with a barely-visible offset.
    assert result.mon_window.sum() == result.total_sent
    assert abs(int(result.hw_window.sum()) - result.total_sent) <= 4
    # The cumulative curves track each other closely: the max gap is
    # bounded by one in-flight message (800 KB).
    assert result.max_cumulative_lag <= 800_000
    # Time series are aligned sample-for-sample.
    assert len(result.times) == len(result.hw_window) == len(result.mon_window)
    corr = np.corrcoef(result.hw_cumulative, result.mon_cumulative)[0, 1]
    print(f"cumulative-curve correlation: {corr:.6f}")
    assert corr > 0.999
