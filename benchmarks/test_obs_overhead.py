"""Bench: the observability layer's disabled-mode cost must be noise.

The contract (DESIGN.md §4.3): with ``REPRO_OBS`` unset, an engine run
pays only one attribute-load-and-None-test per *wait* (in
``Engine.block``) over the pre-observability implementation.  This
bench measures that directly — it times the per-wait hot path (a pure
point-to-point ping-pong, no collectives, so ``block`` dominates)
against a baseline engine whose ``block`` is the same code with the obs
check stripped, interleaved A/B with min-of-N per arm, and asserts the
stock disabled engine stays within 3%.

Plain ``time.perf_counter`` — no pytest-benchmark fixture — so the CI
``obs-smoke`` job can run it with a bare ``pytest``.  Not part of the
tier-1 suite (``testpaths`` pins that to ``tests/``).
"""

from __future__ import annotations

import time

from repro import obs
from repro.obs.metrics import NOOP_REGISTRY
from repro.simmpi import Cluster, Engine
from repro.simmpi.engine import Aborted, _State

OVERHEAD_LIMIT = 1.03
ROUNDS = 5
RETRIES = 3


def _baseline_block(self, proc, reason):
    """``Engine.block`` as it was before the observability layer:
    identical control flow minus the ``self._obs`` check.  Kept in
    sync by test_baseline_block_is_faithful below."""
    proc.state = _State.BLOCKED
    proc.blocked_on = reason
    nxt = self._pop_ready()
    if nxt is not proc:
        if nxt is not None:
            self._switches += 1
            nxt.state = _State.RUNNING
            nxt.sem.release()
        else:
            self._main_sem.release()
        proc.sem.acquire()
    else:
        self._self_handoffs += 1
    if self._aborting:
        raise Aborted()
    proc.state = _State.RUNNING
    proc.blocked_on = ""


def _pingpong_run(iters=120):
    """One wait-dominated run; returns its wall-clock seconds."""
    cluster = Cluster.plafrim(1, binding="rr")
    engine = Engine(cluster, seed=0)

    def program(comm):
        me, n = comm.rank, comm.size
        for it in range(iters):
            comm.sendrecv(None, dest=(me + 1) % n, source=(me - 1) % n,
                          sendtag=it, recvtag=it, nbytes=1_000)

    t0 = time.perf_counter()
    engine.run(program)
    return time.perf_counter() - t0, engine


def test_disabled_mode_is_structurally_noop():
    """Off by default means *no* obs objects anywhere near the engine."""
    assert not obs.is_enabled()
    assert obs.registry() is NOOP_REGISTRY
    assert obs.spans() is None
    engine = Engine(Cluster.plafrim(1), seed=0)
    assert engine._obs is None
    assert engine._obs_spans is None
    assert engine.pml.trace_hook is None
    assert engine.pml._obs_batch_hist is None


def test_baseline_block_is_faithful():
    """The stripped baseline must still run the simulator bit-exactly
    (otherwise the A/B below compares different simulations)."""
    _, stock = _pingpong_run()
    orig = Engine.block
    Engine.block = _baseline_block
    try:
        _, base = _pingpong_run()
    finally:
        Engine.block = orig
    assert base.switches == stock.switches
    assert [c.hex() for c in base.clocks()] == \
        [c.hex() for c in stock.clocks()]


def test_disabled_mode_overhead_under_3pct():
    assert not obs.is_enabled()
    orig = Engine.block
    for attempt in range(1 + RETRIES):
        stock_t, base_t = [], []
        for _ in range(ROUNDS):
            t, _e = _pingpong_run()
            stock_t.append(t)
            Engine.block = _baseline_block
            try:
                t, _e = _pingpong_run()
            finally:
                Engine.block = orig
            base_t.append(t)
        ratio = min(stock_t) / min(base_t)
        print(f"\nattempt {attempt}: stock {min(stock_t):.4f}s "
              f"baseline {min(base_t):.4f}s ratio {ratio:.4f}")
        if ratio <= OVERHEAD_LIMIT:
            return
    raise AssertionError(
        f"disabled-mode hot path is {ratio:.4f}x the pre-obs baseline "
        f"(limit {OVERHEAD_LIMIT}) after {1 + RETRIES} attempts")
