"""Bench: paper Fig. 6 — reordering-gain heatmap for grouped allgathers
(§6.4)."""

from benchmarks.conftest import once
from repro.experiments import fig6_allgather
from repro.experiments.common import full_scale


def test_fig6_reordering_gain_heatmap(benchmark):
    if full_scale():
        kwargs = dict(node_counts=(2, 4, 8),
                      sizes=fig6_allgather.FULL_SIZES,
                      iteration_counts=fig6_allgather.FULL_ITERS)
    else:
        kwargs = dict(node_counts=(2,),
                      sizes=fig6_allgather.DEFAULT_SIZES,
                      iteration_counts=fig6_allgather.DEFAULT_ITERS)
    cells = once(benchmark, fig6_allgather.run, **kwargs)
    print()
    print(fig6_allgather.report(cells))

    # The paper's red/green structure:
    #  * few iterations or small buffers: reordering cost dominates;
    #  * many iterations of large buffers: strongly positive gain.
    worst = min(c.gain_percent for c in cells)
    best = max(c.gain_percent for c in cells)
    corner_bad = next(c for c in cells
                      if c.iterations == min(x.iterations for x in cells)
                      and c.n_ints == min(x.n_ints for x in cells))
    corner_good = next(c for c in cells
                       if c.iterations == max(x.iterations for x in cells)
                       and c.n_ints == max(x.n_ints for x in cells))
    assert corner_bad.gain_percent < 0
    assert corner_good.gain_percent > 25
    print(f"gain range: {worst:+.0f}% .. {best:+.0f}% "
          "(paper: about -200% .. +95%)")

    # Gain is monotone-ish in the iteration count for the largest buffer.
    big = sorted((c for c in cells
                  if c.n_ints == max(x.n_ints for x in cells)
                  and c.np_ranks == cells[0].np_ranks),
                 key=lambda c: c.iterations)
    assert big[-1].gain_percent > big[0].gain_percent
