"""Bench: paper Fig. 7 — rank reordering on the NAS CG kernel (§6.5)."""

from benchmarks.conftest import once
from repro.experiments import fig7_cg
from repro.experiments.common import full_scale


def test_fig7_cg_reordering(benchmark):
    points = once(benchmark, fig7_cg.run, sim_iters=2)
    print()
    print(fig7_cg.report(points))

    # Fig. 7a: every execution-time ratio > 1 ("all the ratios are
    # greater than 1, meaning that the reordering is beneficial").
    for p in points:
        assert p.exec_ratio > 1.0, p
    # Fig. 7b: communication ratios are much larger than execution
    # ratios (the paper shows up to 1.9x).
    for p in points:
        assert p.comm_ratio >= p.exec_ratio * 0.95, p
    assert max(p.comm_ratio for p in points) > 1.3

    # §6.5 observation: "in case of the random mapping the gain is not
    # better than the round-robin mapping" — TreeMatch is sensitive to
    # the initial mapping, so starting from a random binding must not
    # yield a *better reordered state* than starting from round-robin.
    by_key = {(p.cg_class, p.np_ranks, p.mapping): p for p in points}
    for (cls, np_ranks, mapping), p in by_key.items():
        rr = by_key.get((cls, np_ranks, "rr"))
        if mapping == "random" and rr is not None:
            assert p.comm_reordered >= rr.comm_reordered * 0.90

    # Exec-time ratio decreases with the class ("the larger the problem
    # ... the smaller the ratio"), checked where both classes ran.
    if full_scale() or any(p.cg_class == "D" for p in points):
        for np_ranks in {p.np_ranks for p in points}:
            sub = {p.cg_class: p for p in points
                   if p.np_ranks == np_ranks and p.mapping == "rr"}
            if "B" in sub and "D" in sub:
                assert sub["D"].exec_ratio <= sub["B"].exec_ratio * 1.05
