"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these probe *why* the reproduction behaves
as it does: collective algorithm choice, placement algorithm quality,
sensitivity to the initial mapping, and the cost of the monitoring
modes.
"""

import numpy as np
import pytest

from benchmarks.conftest import once
from repro.apps.microbench import collective_kernel
from repro.core import api as mapi
from repro.core.constants import Flags, MPI_M_DATA_IGNORE
from repro.experiments.common import render_table
from repro.placement.baselines import (
    greedy_edge_placement,
    identity_placement,
    random_placement,
)
from repro.placement.metrics import inter_node_bytes
from repro.placement.reorder import reorder_from_matrix
from repro.placement.treematch import treematch
from repro.simmpi import Cluster, Engine, Topology


def _measure_collective(op, algorithm, n_ints=10_000_000, n_nodes=2):
    cluster = Cluster.plafrim(n_nodes, binding="rr")
    engine = Engine(cluster)

    def prog(comm):
        comm.barrier()
        t = collective_kernel(comm, op, n_ints, algorithm=algorithm)
        from repro.simmpi.op import MAX

        return float(comm.allreduce(np.float64(t), MAX))

    return engine.run(prog)[0]


def test_ablation_collective_algorithms(benchmark):
    """Tree shape matters: the tuned algorithms beat the flat ones."""

    def run():
        rows = []
        for op, algos in (("reduce", ("binary", "binomial", "flat")),
                          ("bcast", ("binomial", "chain", "flat"))):
            for algo in algos:
                rows.append((op, algo, _measure_collective(op, algo)))
        return rows

    rows = once(benchmark, run)
    print()
    print(render_table(["op", "algorithm", "time (s)"],
                       [(o, a, round(t, 4)) for o, a, t in rows],
                       title="Ablation — collective algorithm choice "
                             "(48 RR-bound ranks, 40 MB)"))
    times = {(o, a): t for o, a, t in rows}
    assert times[("bcast", "binomial")] < times[("bcast", "flat")]
    assert times[("bcast", "binomial")] < times[("bcast", "chain")]
    # The paper's Fig. 5a algorithm (binary tree) is the best reduce in
    # this contention regime.
    assert times[("reduce", "binary")] < times[("reduce", "flat")]
    assert times[("reduce", "binary")] < times[("reduce", "binomial")]


def test_ablation_placement_quality(benchmark):
    """TreeMatch vs the baselines on a clustered communication matrix."""
    topo = Topology([("node", 4), ("socket", 2), ("core", 12)])
    rng = np.random.default_rng(7)
    n = 96
    m = np.zeros((n, n))
    # Heavy groups of 8 with shuffled process ids.
    perm = rng.permutation(n)
    for g in range(n // 8):
        ids = perm[g * 8 : (g + 1) * 8]
        for i in ids:
            for j in ids:
                if i != j:
                    m[i, j] = 1000.0
    m += rng.uniform(0, 1, (n, n))
    np.fill_diagonal(m, 0)

    def run():
        placements = {
            "treematch": treematch(m, topo),
            "identity": identity_placement(n, topo),
            "random": random_placement(n, topo, seed=1),
            "greedy-edge": greedy_edge_placement(m, topo),
        }
        return {
            name: inter_node_bytes(m, topo, pl)
            for name, pl in placements.items()
        }

    scores = once(benchmark, run)
    print()
    print(render_table(["placement", "inter-node bytes"],
                       sorted(scores.items(), key=lambda kv: kv[1]),
                       title="Ablation — placement algorithm quality"))
    assert scores["treematch"] < scores["identity"]
    assert scores["treematch"] < scores["random"]
    assert scores["treematch"] <= scores["greedy-edge"] * 1.2


def test_ablation_initial_mapping_sensitivity(benchmark):
    """§6.5/§7: TreeMatch output quality depends on the initial mapping."""

    def run():
        out = {}
        for binding in ("round_robin", "random", "packed"):
            cluster = Cluster.plafrim(2, binding=binding, seed=5)
            engine = Engine(cluster)

            def prog(comm):
                mapi.mpi_m_init()
                _, msid = mapi.mpi_m_start(comm)
                collective_kernel(comm, "bcast", 1_000_000)
                mapi.mpi_m_suspend(msid)
                _, _, mat = mapi.mpi_m_rootgather_data(
                    msid, 0, MPI_M_DATA_IGNORE, None, Flags.COLL_ONLY)
                mapi.mpi_m_free(msid)
                mapi.mpi_m_finalize()
                opt, _ = reorder_from_matrix(comm, mat)
                comm.barrier()
                t0 = collective_kernel(comm, "bcast", 10_000_000)
                opt.barrier()
                t1 = collective_kernel(opt, "bcast", 10_000_000)
                from repro.simmpi.op import MAX

                t0 = float(comm.allreduce(np.float64(t0), MAX))
                t1 = float(comm.allreduce(np.float64(t1), MAX))
                return (t0, t1)

            out[binding] = engine.run(prog)[0]
        return out

    out = once(benchmark, run)
    rows = [(b, round(t0, 4), round(t1, 4), round(t0 / t1, 2))
            for b, (t0, t1) in out.items()]
    print()
    print(render_table(["initial mapping", "before (s)", "after (s)", "gain"],
                       rows, title="Ablation — initial-mapping sensitivity"))
    # Bad initial mappings improve a lot; an already-packed mapping has
    # nothing to gain (and may degrade marginally — the greedy is not
    # idempotent, which is exactly the sensitivity §7 discusses).
    assert out["round_robin"][1] < out["round_robin"][0] / 1.5
    assert out["random"][1] < out["random"][0] / 1.3
    for b, (t0, t1) in out.items():
        assert t1 <= t0 * 1.15


def test_ablation_monitoring_mode_cost(benchmark):
    """Monitoring modes 0/1/2 cost, on a communication-heavy loop."""

    def run_mode(mode):
        cluster = Cluster.plafrim(1, n_ranks=16)
        engine = Engine(cluster, monitoring_overhead=1e-7)

        def prog(comm):
            comm.engine.pml.set_mode(mode)
            for _ in range(30):
                comm.barrier()
            return comm.time

        return engine.run(prog)[0]

    def run():
        return {mode: run_mode(mode) for mode in (0, 1, 2)}

    times = once(benchmark, run)
    print()
    print(render_table(["pml_monitoring_enable", "virtual time (s)"],
                       [(m, f"{t:.6f}") for m, t in times.items()],
                       title="Ablation — monitoring mode cost"))
    assert times[0] <= times[1] == times[2]
