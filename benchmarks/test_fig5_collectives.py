"""Bench: paper Fig. 5 — collective optimization via rank reordering (§6.3)."""

import pytest

from benchmarks.conftest import once
from repro.experiments import fig5_collectives
from repro.experiments.common import full_scale


def _grid():
    if full_scale():
        return (2, 4, 8), fig5_collectives.FULL_SIZES
    return (2, 4), (5_000_000, 20_000_000)


@pytest.mark.parametrize("op", ["reduce", "bcast"])
def test_fig5_collective_reordering(benchmark, op):
    node_counts, sizes = _grid()
    points = once(benchmark, fig5_collectives.run, op,
                  node_counts=node_counts, sizes=sizes, reps=1)
    print()
    print(fig5_collectives.report(points))

    # Shape: the reordered collective wins at every size and NP (the
    # paper reports roughly 1.5-2x for reduce and up to ~3.4x for
    # bcast at the largest scale).
    for p in points:
        assert p.t_reordered < p.t_baseline, p
    largest = [p for p in points if p.np_ranks == 24 * node_counts[-1]]
    assert max(p.speedup for p in largest) > 1.5
    # Gains grow (or at least persist) with the node count, as in the
    # paper's three panels.
    by_np = {}
    for p in points:
        by_np.setdefault(p.np_ranks, []).append(p.speedup)
    nps = sorted(by_np)
    assert max(by_np[nps[-1]]) >= max(by_np[nps[0]]) * 0.9
