#!/usr/bin/env python3
"""NAS CG with monitoring-driven rank reordering (paper §6.5).

Reproduces the paper's CG experiment end to end at laptop scale: the
*numeric* CG kernel (a real distributed sparse solve, validated against
a sequential reference in the test suite) runs its NPB initialization
iteration under a monitoring session; the measured point-to-point
matrix drives TreeMatch; the timed iterations run on the reordered
communicator.  Because logical roles are re-derived from the new ranks
during setup, no data redistribution is needed — the paper's trick.

The initial binding is *random* (one of the paper's three initial
mappings).  Note that at this small scale (16 ranks, 2 nodes) CG's
2-D pattern has a high unavoidable bisection cut, so gains are modest;
the Fig. 7 benchmark reproduces the paper's 64-256-rank results.

Run:  python examples/cg_reordering.py
"""

import numpy as np

from repro.apps.cg import CGClass, CGConfig, cg_outer_iteration, cg_setup
from repro.core import api as mapi
from repro.core.constants import Flags, MPI_M_DATA_IGNORE
from repro.core.errors import raise_for_code
from repro.placement.reorder import reorder_from_matrix
from repro.simmpi import Cluster, Engine

# Numeric mode needs na divisible by nprows * npcols^2 (here 4 * 16).
TINY = CGClass("demo", 15360, 7, 4, 10.0)
N_RANKS = 16


def program(comm, reorder):
    cfg = CGConfig(TINY, mode="numeric", cgitmax=10)
    state = cg_setup(comm, cfg)
    run_comm = comm

    if reorder:
        raise_for_code(mapi.mpi_m_init())
        err, msid = mapi.mpi_m_start(comm)
        raise_for_code(err)
        cg_outer_iteration(comm, state, 0)  # monitored init phase
        raise_for_code(mapi.mpi_m_suspend(msid))
        err, _, size_mat = mapi.mpi_m_rootgather_data(
            msid, 0, MPI_M_DATA_IGNORE, None, Flags.P2P_ONLY)
        raise_for_code(err)
        raise_for_code(mapi.mpi_m_free(msid))
        raise_for_code(mapi.mpi_m_finalize())
        run_comm, _k = reorder_from_matrix(comm, size_mat)
        state = cg_setup(run_comm, cfg)
    else:
        cg_outer_iteration(comm, state, 0)  # untimed init, as in NPB

    run_comm.barrier()
    t0, c0 = run_comm.time, state.comm_time
    rnorm = 0.0
    for it in range(1, TINY.niter + 1):
        rnorm = cg_outer_iteration(run_comm, state, it)
    run_comm.barrier()
    return {
        "time": run_comm.time - t0,
        "comm": state.comm_time - c0,
        "zeta": state.zeta,
        "rnorm": rnorm,
    }


def main():
    print(f"NAS-style CG, na={TINY.na}, {N_RANKS} ranks randomly bound "
          "over 2 nodes (numeric mode)\n")
    stats = {}
    for reorder in (False, True):
        cluster = Cluster.plafrim(2, n_ranks=N_RANKS, binding="random",
                                  seed=3)
        engine = Engine(cluster)
        out = engine.run(program, args=(reorder,))
        label = "reordered" if reorder else "baseline"
        stats[label] = {
            "time": max(s["time"] for s in out),
            "comm": float(np.mean([s["comm"] for s in out])),
            "zeta": out[0]["zeta"],
            "rnorm": out[0]["rnorm"],
        }
        s = stats[label]
        print(f"  {label:<10} total {s['time']*1e3:8.2f} ms   "
              f"mean comm {s['comm']*1e3:8.2f} ms   "
              f"zeta {s['zeta']:.10f}   residual {s['rnorm']:.2e}")

    b, r = stats["baseline"], stats["reordered"]
    print()
    print(f"  execution-time ratio    : {b['time'] / r['time']:.3f}")
    print(f"  communication-time ratio: {b['comm'] / r['comm']:.3f}")
    print()
    assert abs(b["zeta"] - r["zeta"]) < 1e-9, "reordering must not change math"
    assert b["time"] > r["time"], "reordering should win from a random binding"
    print("zeta identical before/after reordering — the permutation only "
          "moves ranks,\nnever data semantics.")


if __name__ == "__main__":
    main()
