#!/usr/bin/env python3
"""Quickstart — the paper's Listing 2, in Python.

Find out how MPI implements ``MPI_Barrier`` by monitoring its
decomposition into point-to-point messages, then flush the per-rank
profiles to disk (``barrier.[rank].prof``) exactly like
``MPI_M_rootflush``/``MPI_M_flush`` would in C::

    MPI_Init(NULL, NULL);
    MPI_M_init();
    MPI_M_msid id;
    MPI_M_start(MPI_COMM_WORLD, &id);
    MPI_Barrier(MPI_COMM_WORLD);
    MPI_M_suspend(id);
    MPI_M_rootflush(id, 0, "barrier", MPI_M_P2P_ONLY);
    MPI_M_free(id);
    MPI_M_finalize();
    MPI_Finalize();

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

from repro.core import api as mapi
from repro.core.constants import Flags
from repro.core.errors import raise_for_code
from repro.core.flushio import read_profile
from repro.simmpi import Cluster, Engine


def main_rank_program(comm, outdir):
    """The per-rank program: the faithful transcription of Listing 2."""
    raise_for_code(mapi.mpi_m_init())

    err, msid = mapi.mpi_m_start(comm)  # attach a session to WORLD
    raise_for_code(err)

    comm.barrier()  # the collective under the microscope

    raise_for_code(mapi.mpi_m_suspend(msid))
    raise_for_code(
        mapi.mpi_m_rootflush(msid, 0, os.path.join(outdir, "barrier"),
                             Flags.COLL_ONLY)
    )
    raise_for_code(mapi.mpi_m_free(msid))
    raise_for_code(mapi.mpi_m_finalize())


def main():
    outdir = tempfile.mkdtemp(prefix="mpi_monitoring_")
    # 16 ranks on one dual-socket node — small enough to eyeball.
    cluster = Cluster.plafrim(1, n_ranks=16)
    engine = Engine(cluster)
    engine.run(main_rank_program, args=(outdir,))

    counts = read_profile(os.path.join(outdir, "barrier_counts.0.prof"))
    matrix = counts["data"]
    print("MPI_Barrier on 16 ranks decomposes into point-to-point messages:")
    print()
    print("   " + " ".join(f"{j:2d}" for j in range(16)))
    for i, row in enumerate(matrix):
        cells = " ".join(" ." if v == 0 else f"{int(v):2d}" for v in row)
        print(f"{i:2d} {cells}")
    total = int(matrix.sum())
    print()
    print(f"total messages: {total} "
          f"(dissemination barrier: 16 ranks x log2(16) rounds = 64)")
    print(f"profiles written to {outdir}/")
    assert total == 64


if __name__ == "__main__":
    main()
