#!/usr/bin/env python3
"""Collective anatomy — compare how algorithms decompose into messages.

The monitoring component sees collectives *after* decomposition (the
capability PMPI/Score-P-style tools lack, paper §2).  This example uses
one monitoring session per collective call — the paper's §4.5 recipe
for telling calls apart — to print, for several algorithms of the same
collective, the communication matrix and where its bytes land in the
machine (intra-socket / intra-node / inter-node).

Run:  python examples/collective_anatomy.py
"""

import numpy as np

from repro.core import Flags, MonitoringSession, monitoring
from repro.placement.metrics import level_bytes
from repro.simmpi import Cluster, Engine


CASES = [
    ("bcast", "binomial"),
    ("bcast", "chain"),
    ("bcast", "flat"),
    ("reduce", "binary"),
    ("reduce", "binomial"),
    ("allgather", "ring"),
    ("allgather", "gather_bcast"),
    ("barrier", "dissemination"),
]

N_INTS = 25_000  # 100 KB buffers


def run_case(comm, op, algorithm):
    from repro.simmpi.op import MAX

    nbytes = 4 * N_INTS
    with MonitoringSession(comm) as mon:
        if op == "bcast":
            comm.bcast(None, root=0,
                       nbytes=nbytes if comm.rank == 0 else None,
                       algorithm=algorithm)
        elif op == "reduce":
            comm.reduce(None, MAX, root=0, nbytes=nbytes,
                        algorithm=algorithm)
        elif op == "allgather":
            comm.allgather(None, nbytes=nbytes, algorithm=algorithm)
        elif op == "barrier":
            comm.barrier(algorithm=algorithm)
    counts, sizes = mon.allgather(Flags.COLL_ONLY)
    mon.free()
    return counts, sizes


def program(comm):
    out = []
    with monitoring():
        for op, algorithm in CASES:
            out.append(run_case(comm, op, algorithm))
    return out


def main():
    cluster = Cluster.plafrim(2, binding="rr")  # 48 ranks, paper setup
    engine = Engine(cluster)
    results = engine.run(program)
    topo = cluster.topology
    pus = cluster.binding

    print(f"Decomposition of collectives on {cluster.n_ranks} round-robin-"
          f"bound ranks over {cluster.n_nodes} nodes")
    print()
    header = (f"{'collective':<28} {'msgs':>6} {'bytes':>12} "
              f"{'inter-node':>11} {'intra-node':>11} {'intra-socket':>13}")
    print(header)
    print("-" * len(header))
    for (op, algorithm), (counts, sizes) in zip(CASES, results[0]):
        lb = level_bytes(sizes.astype(float), topo, pus)
        name = f"{op} ({algorithm})"
        print(f"{name:<28} {int(counts.sum()):>6} {int(sizes.sum()):>12,} "
              f"{int(lb['cluster']):>11,} {int(lb.get('node', 0)):>11,} "
              f"{int(lb.get('socket', 0)):>13,}")
    print()
    print("Note how the round-robin binding pushes almost every tree edge "
          "across nodes —\nexactly what the paper's rank reordering fixes "
          "(see examples/reorder_stencil.py).")


if __name__ == "__main__":
    main()
