#!/usr/bin/env python3
"""Dynamic rank reordering (paper Fig. 1) on a halo-exchange stencil.

An iterative 2-D Jacobi stencil runs on ranks bound *round-robin*
across nodes — the worst case for a neighbour-heavy pattern, since
every halo crosses the network.  The paper's algorithm fixes it at
runtime:

1. monitor the first iteration with the introspection library,
2. gather the byte matrix at rank 0 (``MPI_M_rootgather_data``),
3. compute an optimized permutation with TreeMatch,
4. ``MPI_Comm_split(comm, 0, k[rank])`` → the optimized communicator,
5. run the remaining iterations on it.

Run:  python examples/reorder_stencil.py
"""

import numpy as np

from repro.apps.stencil import StencilConfig, stencil_iteration, stencil_setup
from repro.placement.reorder import reorder_iterative
from repro.simmpi import Cluster, Engine

ITERATIONS = 50
TILE = 4096


def program(comm):
    # High compute_rate: halo exchange dominates, as in a
    # communication-bound weak-scaled stencil.
    cfg = StencilConfig(tile=TILE, numeric=False, compute_rate=2e12)
    states = {}

    def iteration(it, c):
        # Logical grid roles follow the communicator's ranks: a state
        # per communicator, as the paper's CG experiment does.
        if c.id not in states:
            states[c.id] = stencil_setup(c, cfg)
        stencil_iteration(c, states[c.id], it)

    # Baseline: time a few iterations without reordering.
    comm.barrier()
    t0 = comm.time
    for it in range(5):
        iteration(it, comm)
    comm.barrier()
    baseline_per_iter = (comm.time - t0) / 5

    # Fig. 1: monitor iteration 1, reorder, run the rest.
    t1 = comm.time
    opt_comm, k = reorder_iterative(comm, iteration, max_it=ITERATIONS)
    opt_comm.barrier()
    reordered_total = comm.time - t1

    # Time the steady state after reordering.
    t2 = comm.time
    for it in range(5):
        iteration(1000 + it, opt_comm)
    opt_comm.barrier()
    reordered_per_iter = (comm.time - t2) / 5

    return (baseline_per_iter, reordered_per_iter, reordered_total,
            k[comm.rank])


def main():
    cluster = Cluster.plafrim(2, binding="rr")
    engine = Engine(cluster)
    results = engine.run(program)
    base, reord, total, _ = results[0]
    k_head = [r[3] for r in results[:8]]

    print(f"2-D stencil, {cluster.n_ranks} ranks round-robin over "
          f"{cluster.n_nodes} nodes, {TILE}x{TILE} tiles")
    print()
    print(f"  per-iteration time, initial mapping : {base * 1e6:9.1f} us")
    print(f"  per-iteration time, after reordering: {reord * 1e6:9.1f} us")
    print(f"  speedup                             : {base / reord:9.2f}x")
    print(f"  whole reordered run ({ITERATIONS} iters)        : "
          f"{total * 1e3:9.2f} ms")
    print(f"  k[0:8] = {k_head}  (new rank of each original rank)")
    print()
    print("The permutation interleaves the round-robin damage away: grid")
    print("neighbours end up on the same node, so halos ride shared memory")
    print("instead of the NIC.  (The residual time is the per-node memory-")
    print("bandwidth floor of the calibrated machine model.)")
    assert reord < base


if __name__ == "__main__":
    main()
