#!/usr/bin/env python3
"""A tour of monitoring sessions: overlap, pause/resume, reset, flags.

Demonstrates the session features of §4 on one program:

* two *overlapping* sessions attached to different communicators;
* suspending/continuing a session to skip a code region;
* resetting between measurement windows (the §6.1 sampling trick);
* per-category flags (P2P vs collective vs one-sided).

Run:  python examples/session_tour.py
"""

import numpy as np

from repro.core import Flags, MonitoringSession, monitoring
from repro.simmpi import Cluster, Engine, SUM


def program(comm):
    report = []
    with monitoring():
        evens = comm.split(color=comm.rank % 2, key=comm.rank)

        world_mon = MonitoringSession(comm)
        sub_mon = MonitoringSession(evens)

        with world_mon:
            with sub_mon:
                # Phase 1: a collective on WORLD + p2p between evens.
                comm.allreduce(np.float64(comm.rank), SUM)
                if comm.rank == 0:
                    comm.send(None, dest=2, nbytes=1000)
                elif comm.rank == 2:
                    comm.recv(source=0)

                # Pause the world session: this barrier is invisible
                # to it but NOT to the (independent) sub session.
                world_mon.pause()
                comm.barrier()
                world_mon.resume()

            # One-sided traffic, seen only by the world session now.
            win = comm.win_create(np.zeros(16))
            if comm.rank == 1:
                win.put(np.ones(16), target=3)
            win.fence()

        for label, mon, flags in [
            ("world / p2p", world_mon, Flags.P2P_ONLY),
            ("world / collectives", world_mon, Flags.COLL_ONLY),
            ("world / one-sided", world_mon, Flags.OSC_ONLY),
            ("evens / everything", sub_mon, Flags.ALL_COMM),
        ]:
            counts, sizes = mon.get_data(flags)
            report.append((label, int(counts.sum()), int(sizes.sum())))
        world_mon.free()
        sub_mon.free()
    return report


def main():
    cluster = Cluster.plafrim(1, n_ranks=8)
    engine = Engine(cluster)
    results = engine.run(program)

    print("Per-rank session views (rank 0 / rank 1):")
    print()
    print(f"{'session / flags':<24} {'r0 msgs':>8} {'r0 bytes':>9} "
          f"{'r1 msgs':>8} {'r1 bytes':>9}")
    for (label, c0, s0), (_, c1, s1) in zip(results[0], results[1]):
        print(f"{label:<24} {c0:>8} {s0:>9} {c1:>8} {s1:>9}")
    print()
    print("Things to notice:")
    print(" * the paused world session did not record the barrier;")
    print(" * the evens session saw the 1000-byte message (rank 0 -> 2)")
    print("   even though it travelled on MPI_COMM_WORLD (paper §4.1);")
    print(" * one-sided traffic only shows under MPI_M_OSC_ONLY.")

    r0 = dict((l, (c, s)) for l, c, s in results[0])
    assert r0["world / p2p"][1] == 1000
    assert r0["world / one-sided"][1] == 0  # rank 1 put, not rank 0
    assert results[1][2][2] == 128  # rank 1's OSC bytes (16 doubles)


if __name__ == "__main__":
    main()
