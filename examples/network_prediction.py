#!/usr/bin/env python3
"""Predicting network usage from introspection timelines (paper §7).

The paper's discussion points at a follow-up (its reference [18],
Tseng et al.): use the introspection monitoring to *detect and predict
network utilization* so background transfers — fetching a checkpoint —
can be scheduled into quiet windows.

This example runs a bursty application (alternating heavy halo phases
and compute-only phases), samples a monitoring session every 5 ms of
virtual time, predicts the next window's traffic from the history, and
schedules a simulated 10 MB checkpoint fetch into a predicted-quiet
window.

Run:  python examples/network_prediction.py
"""

import numpy as np

from repro.core import api as mapi
from repro.core.errors import raise_for_code
from repro.core.timeline import (
    TimelineSampler,
    predict_next_window,
    underutilized_windows,
)
from repro.simmpi import Cluster, Engine

PERIOD = 0.005  # 5 ms sampling, as in the paper's §6.1 methodology
PHASES = 16


def program(comm):
    raise_for_code(mapi.mpi_m_init())
    sampler = TimelineSampler(comm)
    me, n = comm.rank, comm.size

    for phase in range(PHASES):
        busy = phase % 4 != 3  # 3 busy phases, then a quiet one
        if busy:
            comm.sendrecv(None, dest=(me + 1) % n, source=(me - 1) % n,
                          sendtag=phase, recvtag=phase, nbytes=400_000)
        comm.sleep(PERIOD * 0.8)
        sampler.sample()

    sampler.close()
    raise_for_code(mapi.mpi_m_finalize())
    return sampler.series()


def main():
    cluster = Cluster.plafrim(2, binding="rr")
    engine = Engine(cluster)
    results = engine.run(program)
    times, volumes = results[0]

    print("Per-window bytes sent by rank 0 (5 ms windows):")
    peak = volumes.max() or 1
    for t, v in zip(times, volumes):
        bar = "#" * int(40 * v / peak)
        print(f"  t={t * 1e3:7.2f} ms  {v:>9,} B  {bar}")

    pred = predict_next_window(volumes, method="moving_average", window=4)
    quiet = underutilized_windows(volumes, threshold_fraction=0.25)
    print()
    print(f"moving-average prediction for the next window: {pred:,.0f} B")
    print(f"under-utilized windows (<25% of peak): {quiet}")
    print()
    checkpoint_mb = 10
    per_window_budget = 0.005 * 3e9 / 1e6  # 5 ms of a 3 GB/s NIC, in MB
    needed = int(np.ceil(checkpoint_mb / per_window_budget))
    print(f"a {checkpoint_mb} MB checkpoint fetch needs ~{needed} quiet "
          f"window(s); {len(quiet)} are available -> schedule it in the "
          "predicted gaps instead of competing with the halo bursts.")
    assert len(quiet) >= PHASES // 4  # every 4th phase is quiet


if __name__ == "__main__":
    main()
