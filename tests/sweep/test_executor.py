"""The supervised worker pool: correctness, retries, chaos recovery.

All tests drive the hidden ``selftest`` scenario — trivial cells that
square an integer, optionally failing or sleeping on demand — so the
executor's failure machinery is exercised without simulator cost.
"""

import pytest

from repro.sweep.executor import CellOutcome, CellTask, SweepExecutor, parse_chaos


def _tasks(params_list):
    return [CellTask(index=i, scenario="selftest", params=p)
            for i, p in enumerate(params_list)]


class TestParseChaos:
    def test_empty(self):
        assert parse_chaos(None) == {}
        assert parse_chaos("") == {}

    def test_both_kinds(self):
        assert parse_chaos("crash=2,timeout=1") == {"crash": 2, "timeout": 1}

    def test_default_count(self):
        assert parse_chaos("crash") == {"crash": 1}

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            parse_chaos("oom=1")


class TestHappyPath:
    def test_results_in_task_order(self):
        ex = SweepExecutor(jobs=2, chaos={})
        outcomes = ex.run(_tasks([{"x": i} for i in range(6)]))
        assert [o.index for o in outcomes] == list(range(6))
        assert all(o.status == "ok" for o in outcomes)
        assert [o.result["y"] for o in outcomes] == [i * i for i in range(6)]
        assert all(o.attempts == 1 for o in outcomes)
        assert ex.workers_replaced == 0
        assert 0.0 < ex.utilization <= 1.0

    def test_more_jobs_than_tasks(self):
        ex = SweepExecutor(jobs=8, chaos={})
        outcomes = ex.run(_tasks([{"x": 3}]))
        assert outcomes[0].result == {"x": 3, "y": 9}
        assert ex.workers_spawned == 1  # pool is clamped to the task count

    def test_empty_task_list(self):
        assert SweepExecutor(jobs=2, chaos={}).run([]) == []


class TestFailures:
    def test_cell_error_exhausts_retries(self):
        ex = SweepExecutor(jobs=1, retries=2, backoff_s=0.01, chaos={})
        outcomes = ex.run(_tasks([{"x": 1, "fail": True}, {"x": 2}]))
        bad, good = outcomes
        assert bad.status == "failed"
        assert bad.attempts == 3  # initial + 2 retries
        assert "injected failure" in bad.error
        assert len(bad.retry_log) == 2
        assert good.status == "ok"  # unaffected neighbour

    def test_zero_retries_fails_fast(self):
        ex = SweepExecutor(jobs=1, retries=0, backoff_s=0.01, chaos={})
        (out,) = ex.run(_tasks([{"x": 1, "fail": True}]))
        assert out.status == "failed"
        assert out.attempts == 1

    def test_timeout_kills_and_fails(self):
        ex = SweepExecutor(jobs=1, timeout_s=0.3, retries=0,
                           backoff_s=0.01, chaos={})
        (out,) = ex.run(_tasks([{"x": 1, "delay": 30.0}]))
        assert out.status == "failed"
        assert "timeout" in out.error
        assert ex.workers_replaced == 1


class TestChaos:
    def test_injected_crash_is_invisible_in_results(self):
        ex = SweepExecutor(jobs=2, retries=2, backoff_s=0.01,
                           chaos={"crash": 1})
        outcomes = ex.run(_tasks([{"x": i} for i in range(4)]))
        assert all(o.status == "ok" for o in outcomes)
        assert [o.result["y"] for o in outcomes] == [0, 1, 4, 9]
        assert ex.workers_replaced == 1
        assert sum(o.attempts - 1 for o in outcomes) == 1  # one retry total
        crashed = [o for o in outcomes if o.attempts == 2]
        assert "crashed" in crashed[0].retry_log[0]

    def test_injected_timeout_is_invisible_in_results(self):
        # The stalled worker blows the 1 s deadline, is killed, and the
        # cell succeeds on the retry.
        ex = SweepExecutor(jobs=2, timeout_s=1.0, retries=2,
                           backoff_s=0.01, chaos={"timeout": 1})
        outcomes = ex.run(_tasks([{"x": i} for i in range(4)]))
        assert all(o.status == "ok" for o in outcomes)
        assert ex.workers_replaced == 1
        timed_out = [o for o in outcomes if o.retry_log]
        assert len(timed_out) == 1
        assert "timeout" in timed_out[0].retry_log[0]

    def test_chaos_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CHAOS", "crash=3")
        assert SweepExecutor(jobs=1).chaos == {"crash": 3}
        monkeypatch.delenv("REPRO_SWEEP_CHAOS")
        assert SweepExecutor(jobs=1).chaos == {}


class TestOutcomeShape:
    def test_dataclass_defaults(self):
        out = CellOutcome(index=0, scenario="selftest", params={}, status="ok")
        assert out.retry_log == []
        assert out.attempts == 1
