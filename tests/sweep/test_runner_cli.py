"""End-to-end sweep orchestration: run → resume from cache → CLI."""

import json

import pytest

from repro.sweep import cli, runner
from repro.sweep.cache import ResultCache, canonical_dumps
from repro.sweep.registry import SweepConfig


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=str(tmp_path / "cache"))


def _selftest_sweep(cache, **kw):
    kw.setdefault("config", SweepConfig(smoke=True))
    kw.setdefault("jobs", 2)
    return runner.run_sweep(filter_expr="selftest", cache=cache, **kw)


class TestRunSweep:
    def test_fresh_then_cached(self, cache):
        fresh = _selftest_sweep(cache)
        t = fresh.totals
        assert t["failed"] == 0
        assert t["cache_hits"] == 0
        assert t["computed"] == t["cells"] == 4

        again = _selftest_sweep(cache)
        t2 = again.totals
        assert t2["cache_hit_rate"] == 1.0
        assert t2["computed"] == 0
        # Cached payloads are byte-identical to the fresh ones.
        for a, b in zip(fresh.cells, again.cells):
            assert canonical_dumps(a.result) == canonical_dumps(b.result)
            assert b.from_cache

    def test_refresh_recomputes_but_still_caches(self, cache):
        _selftest_sweep(cache)
        report = _selftest_sweep(cache, refresh=True)
        assert report.totals["computed"] == 4
        assert report.totals["cache_hits"] == 0
        assert _selftest_sweep(cache).totals["cache_hit_rate"] == 1.0

    def test_no_cache_leaves_disk_untouched(self, cache):
        report = _selftest_sweep(cache, use_cache=False)
        assert report.totals["computed"] == 4
        assert list(cache.entries()) == []

    def test_hidden_scenario_needs_explicit_filter(self):
        assert runner.select_cells(None, SweepConfig(smoke=True)) == [
            c for c in runner.select_cells("fig|table|whatif",
                                           SweepConfig(smoke=True))
        ]
        assert all(c["scenario"] != "selftest"
                   for c in runner.select_cells(None, SweepConfig(smoke=True)))

    def test_filter_selects_subset(self):
        cells = runner.select_cells("fig4|table1", SweepConfig(smoke=True))
        assert {c["scenario"] for c in cells} == {"fig4", "table1"}

    def test_results_by_scenario_decodes(self, cache):
        report = _selftest_sweep(cache)
        decoded = runner.results_by_scenario(report)
        assert sorted(r["y"] for r in decoded["selftest"]) == [0, 1, 4, 9]
        rendered = runner.render_reports(report)
        assert "selftest" in rendered["selftest"]


class TestArtifacts:
    def test_run_report_json(self, cache, tmp_path):
        report = _selftest_sweep(cache)
        path = tmp_path / "report.json"
        runner.write_run_report(report, str(path))
        doc = json.loads(path.read_text())
        assert doc["schema"] == runner.REPORT_SCHEMA
        assert doc["totals"]["ok"] == 4
        assert len(doc["cells"]) == 4
        assert doc["fingerprint"] == cache.fingerprint
        for cell in doc["cells"]:
            tel = cell["telemetry"]
            assert tel["queue_wait_s"] >= 0.0
            assert tel["backoff_s"] >= 0.0
            assert tel["peak_rss_kb"] >= 0

    def test_emit_bench(self, cache, tmp_path):
        report = _selftest_sweep(cache)
        path = tmp_path / "BENCH_sweep.json"
        doc = runner.emit_bench(report, str(path))
        assert json.loads(path.read_text()) == doc
        fig = doc["figures"]["selftest"]
        assert fig["cells"] == fig["ok"] == 4
        assert fig["computed_wall_s"] >= 0.0
        assert doc["totals"]["cache_hit_rate"] == 0.0
        obs = doc["observability"]
        assert obs["queue_wait_s_total"] >= 0.0
        assert obs["retries"] == doc["totals"]["retries"]
        assert obs["peak_rss_kb_max"] == doc["totals"]["peak_rss_kb_max"]


class TestCli:
    def test_run_ls_clean(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "c")
        common = ["--filter", "selftest", "--smoke", "--cache-dir", cache_dir]

        rc = cli.main(["run", *common, "--jobs", "2",
                       "--bench", str(tmp_path / "bench.json"),
                       "--report", str(tmp_path / "run.json")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "4/4 ok" in out
        assert json.loads((tmp_path / "run.json").read_text())["totals"]["ok"] == 4

        rc = cli.main(["ls", *common])
        assert rc == 0
        assert "4/4 cells cached" in capsys.readouterr().out

        rc = cli.main(["clean", *common])
        assert rc == 0
        assert "removed 4" in capsys.readouterr().out

        rc = cli.main(["ls", *common])
        assert rc == 0
        assert "0/4 cells cached" in capsys.readouterr().out

    def test_run_reports_failure_exit_code(self, tmp_path, capsys, monkeypatch):
        # A cell that always fails must fail the run (exit 1).
        from repro.sweep.registry import SCENARIOS

        spec = SCENARIOS["selftest"]
        monkeypatch.setitem(
            SCENARIOS, "selftest",
            type(spec)(
                spec.name, spec.title,
                lambda cfg: [{"x": 1, "fail": True}],
                spec.compute, spec.encode, spec.decode, spec.report,
                hidden=True,
            ),
        )
        rc = cli.main(["run", "--filter", "selftest", "--smoke",
                       "--cache-dir", str(tmp_path / "c"),
                       "--retries", "0", "--backoff", "0.01", "--quiet"])
        assert rc == 1
        assert "FAILED" not in capsys.readouterr().out  # quiet suppresses
