"""The content-addressed result cache: keys, round-trips, invalidation."""

import json
import os

import pytest

from repro.sweep.cache import ResultCache, canonical_dumps, cell_key

FP = "f" * 64
PARAMS = {"n_nodes": 2, "size_bytes": 1000, "seed": 0}


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=str(tmp_path / "cache"), fingerprint=FP)


class TestKeys:
    def test_deterministic(self):
        assert cell_key("fig4", PARAMS, FP) == cell_key("fig4", dict(PARAMS), FP)

    def test_key_order_independent(self):
        reordered = {k: PARAMS[k] for k in reversed(list(PARAMS))}
        assert cell_key("fig4", PARAMS, FP) == cell_key("fig4", reordered, FP)

    def test_param_sensitivity(self):
        other = dict(PARAMS, seed=1)
        assert cell_key("fig4", PARAMS, FP) != cell_key("fig4", other, FP)

    def test_scenario_sensitivity(self):
        assert cell_key("fig4", PARAMS, FP) != cell_key("fig5", PARAMS, FP)

    def test_fingerprint_sensitivity(self):
        assert cell_key("fig4", PARAMS, FP) != cell_key("fig4", PARAMS, "0" * 64)


class TestRoundTrip:
    def test_put_get(self, cache):
        result = {"points": [1, 2, 3], "mean": 2.0}
        cache.put("fig4", PARAMS, result, elapsed_s=0.5)
        entry = cache.get("fig4", PARAMS)
        assert entry is not None
        assert entry.result == result
        assert entry.elapsed_s == 0.5
        assert entry.fingerprint == FP

    def test_miss(self, cache):
        assert cache.get("fig4", PARAMS) is None

    def test_cached_result_is_byte_identical(self, cache):
        """The acceptance criterion: cached vs freshly computed results
        serialize to the same canonical JSON bytes."""
        fresh = {"b": [1.5, 2.0], "a": {"z": 1, "y": None}}
        cache.put("fig4", PARAMS, fresh)
        cached = cache.get("fig4", PARAMS).result
        assert canonical_dumps(cached) == canonical_dumps(fresh)

    def test_atomic_file_is_valid_json(self, cache):
        cache.put("fig4", PARAMS, {"x": 1})
        entry = cache.get("fig4", PARAMS)
        with open(entry.path, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["schema"] == 1
        assert doc["key"] == cache.key_for("fig4", PARAMS)
        # No tempfile debris next to the entry.
        assert not [n for n in os.listdir(cache.root) if n.endswith(".tmp")]


class TestInvalidation:
    def test_fingerprint_change_orphans_entries(self, tmp_path):
        root = str(tmp_path / "c")
        ResultCache(root=root, fingerprint=FP).put("fig4", PARAMS, {"x": 1})
        # Same params, different code fingerprint: a miss.
        assert ResultCache(root=root, fingerprint="0" * 64).get(
            "fig4", PARAMS) is None
        # The original fingerprint still hits.
        assert ResultCache(root=root, fingerprint=FP).get(
            "fig4", PARAMS) is not None

    def test_corrupt_entry_is_a_miss(self, cache):
        entry = cache.put("fig4", PARAMS, {"x": 1})
        with open(entry.path, "w", encoding="utf-8") as fh:
            fh.write("{ truncated")
        assert cache.get("fig4", PARAMS) is None

    def test_wrong_schema_is_a_miss(self, cache):
        entry = cache.put("fig4", PARAMS, {"x": 1})
        with open(entry.path, encoding="utf-8") as fh:
            doc = json.load(fh)
        doc["schema"] = 99
        with open(entry.path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        assert cache.get("fig4", PARAMS) is None


class TestMaintenance:
    def test_entries_and_clean_by_scenario(self, cache):
        cache.put("fig4", PARAMS, {"x": 1})
        cache.put("fig5", PARAMS, {"x": 2})
        assert {e.scenario for e in cache.entries()} == {"fig4", "fig5"}
        assert cache.clean(scenarios=["fig4"]) == 1
        assert {e.scenario for e in cache.entries()} == {"fig5"}

    def test_clean_stale_only(self, tmp_path):
        root = str(tmp_path / "c")
        ResultCache(root=root, fingerprint="0" * 64).put(
            "fig4", PARAMS, {"old": True})
        new = ResultCache(root=root, fingerprint=FP)
        new.put("fig4", dict(PARAMS, seed=9), {"new": True})
        assert new.clean(stale_only=True) == 1
        remaining = list(new.entries())
        assert len(remaining) == 1
        assert remaining[0].fingerprint == FP

    def test_clean_missing_dir(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "never-created"),
                            fingerprint=FP)
        assert cache.clean() == 0


class TestCanonicalDumps:
    def test_sorted_and_compact(self):
        assert canonical_dumps({"b": 1, "a": [1.0, 2]}) == '{"a":[1.0,2],"b":1}'

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_dumps({"x": float("nan")})
