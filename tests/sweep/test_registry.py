"""Scenario registry: grids enumerate, cells are picklable, payloads
round-trip through the cache's canonical JSON."""

import json
import pickle

import pytest

from repro.sweep.cache import canonical_dumps
from repro.sweep.registry import (SCENARIOS, SweepConfig, cell_id,
                                  compute_cell, get_scenario, scenario_names)

VISIBLE = ["fig2", "fig4", "fig5", "fig6", "fig7", "table1", "whatif"]


class TestNames:
    def test_visible_scenarios(self):
        assert scenario_names() == VISIBLE

    def test_hidden_included_on_request(self):
        assert "selftest" in scenario_names(include_hidden=True)

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="unknown sweep scenario"):
            get_scenario("fig99")


@pytest.mark.parametrize("name", VISIBLE + ["selftest"])
class TestEnumeration:
    def test_smoke_cells_are_plain_data(self, name):
        cells = SCENARIOS[name].enumerate_cells(SweepConfig(smoke=True))
        assert cells
        for params in cells:
            # Must survive a pipe to a worker and a trip through JSON.
            pickle.dumps(params)
            assert json.loads(canonical_dumps(params)) == params
            assert cell_id(name, params).startswith(f"{name}[")

    def test_smoke_grid_not_larger_than_default(self, name):
        smoke = SCENARIOS[name].enumerate_cells(SweepConfig(smoke=True))
        full = SCENARIOS[name].enumerate_cells(SweepConfig())
        assert len(smoke) <= len(full)

    def test_seed_threads_through(self, name):
        cells = SCENARIOS[name].enumerate_cells(SweepConfig(seed=7, smoke=True))
        for params in cells:
            if "seed" in params:
                assert params["seed"] == 7


class TestComputeRoundTrip:
    """Compute → encode → canonical JSON → decode for the cheap cells
    (the expensive scenarios get the same treatment in the CI smoke
    sweep; here we keep the tier-1 suite fast)."""

    def test_selftest(self):
        payload = compute_cell("selftest", {"x": 5})
        assert payload == {"x": 5, "y": 25}

    def test_fig4_cell(self):
        spec = get_scenario("fig4")
        params = {"n_nodes": 2, "size_bytes": 1000, "reps": 5, "seed": 0}
        payload = compute_cell("fig4", params)
        # Encoded payload is JSON-pure and stable through a round-trip.
        rehydrated = json.loads(canonical_dumps(payload))
        assert rehydrated == payload
        point = spec.decode(rehydrated)
        assert point.np_ranks == 48  # 2 nodes x 24 cores
        assert point.n_reps == 5
        # decode(encode(x)) is the identity on the payload.
        assert spec.encode(point) == payload

    def test_table1_cell(self):
        spec = get_scenario("table1")
        payload = compute_cell("table1", {"order": 128, "seed": 0})
        timing = spec.decode(json.loads(canonical_dumps(payload)))
        assert timing.order == 128
        assert timing.seconds > 0.0
        assert "TreeMatch" in spec.report([timing])

    def test_selftest_report_renders(self):
        spec = get_scenario("selftest")
        text = spec.report([{"x": 2, "y": 4}, {"x": 3, "y": 9}])
        assert "selftest" in text


class TestDeterminism:
    def test_same_params_same_payload(self):
        params = {"n_nodes": 2, "size_bytes": 100, "reps": 4, "seed": 1}
        a = compute_cell("fig4", params)
        b = compute_cell("fig4", dict(params))
        assert canonical_dumps(a) == canonical_dumps(b)
