"""Tests for MPI_M data accessors: correctness of the recorded matrices."""

import numpy as np
import pytest

from repro.core import api as mapi
from repro.core.constants import (
    MPI_M_DATA_IGNORE,
    ErrorCode,
    Flags,
)
from repro.simmpi import SUM
from tests.conftest import run_spmd

E = ErrorCode


def _monitored(prog_body, n_ranks=4, flags=Flags.ALL_COMM, comm_selector=None):
    """Run prog_body under a session; return per-rank (counts, sizes)."""

    def prog(comm):
        mapi.mpi_m_init()
        target = comm if comm_selector is None else comm_selector(comm)
        err, msid = mapi.mpi_m_start(target)
        assert err == E.MPI_SUCCESS
        prog_body(comm, target)
        mapi.mpi_m_suspend(msid)
        err, counts, sizes = mapi.mpi_m_get_data(msid, flags=flags)
        assert err == E.MPI_SUCCESS
        mapi.mpi_m_free(msid)
        mapi.mpi_m_finalize()
        return counts.tolist(), sizes.tolist()

    results, _ = run_spmd(prog, n_ranks=n_ranks)
    return results


class TestGetData:
    def test_p2p_counts_and_sizes(self):
        def body(comm, target):
            if comm.rank == 0:
                comm.send(b"12345678", dest=2, tag=1)
                comm.send(b"12", dest=2, tag=2)
                comm.send(b"1", dest=1, tag=1)
            elif comm.rank == 1:
                comm.recv(source=0)
            elif comm.rank == 2:
                comm.recv(source=0, tag=1)
                comm.recv(source=0, tag=2)

        results = _monitored(body, flags=Flags.P2P_ONLY)
        counts0, sizes0 = results[0]
        assert counts0 == [0, 1, 2, 0]
        assert sizes0 == [0, 1, 10, 0]
        assert results[1][0] == [0, 0, 0, 0]  # rank 1 sent nothing

    def test_rows_are_send_side(self):
        def body(comm, target):
            if comm.rank == 3:
                comm.send(b"xy", dest=0)
            elif comm.rank == 0:
                comm.recv(source=3)

        results = _monitored(body)
        assert results[3][1] == [2, 0, 0, 0]
        assert results[0][1] == [0, 0, 0, 0]  # receives are not "sent"

    def test_flags_select_categories(self):
        def body(comm, target):
            if comm.rank == 0:
                comm.send(b"abcd", dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)
            comm.bcast(b"zz" if comm.rank == 0 else None, root=0,
                       algorithm="flat")

        p2p = _monitored(body, flags=Flags.P2P_ONLY)
        coll = _monitored(body, flags=Flags.COLL_ONLY)
        both = _monitored(body, flags=Flags.P2P_ONLY | Flags.COLL_ONLY)
        assert sum(p2p[0][1]) == 4
        assert sum(coll[0][1]) == 6  # 2 bytes to each of 3 ranks
        assert sum(both[0][1]) == 10

    def test_data_ignore_sentinels(self):
        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            mapi.mpi_m_suspend(msid)
            err, counts, sizes = mapi.mpi_m_get_data(
                msid, msg_counts=MPI_M_DATA_IGNORE, msg_sizes=MPI_M_DATA_IGNORE
            )
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            return (err, counts, sizes)

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[0] == (E.MPI_SUCCESS, None, None)

    def test_preallocated_output_filled_in_place(self):
        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            if comm.rank == 0:
                comm.send(b"123", dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)
            mapi.mpi_m_suspend(msid)
            buf_counts = np.zeros(comm.size, dtype=np.uint64)
            buf_sizes = np.zeros(comm.size, dtype=np.uint64)
            err, c, s = mapi.mpi_m_get_data(msid, buf_counts, buf_sizes)
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            return (err, c is buf_counts, buf_sizes.tolist())

        results, _ = run_spmd(prog, n_ranks=2)
        err, same_obj, sizes = results[0]
        assert err == E.MPI_SUCCESS
        assert same_obj
        assert sizes == [0, 3]

    def test_cross_communicator_capture(self):
        """Paper §4.1: a session on the even/odd split records traffic
        between its members even when it travels on MPI_COMM_WORLD."""

        def body(comm, target):
            if comm.rank == 0:
                comm.send(b"x" * 11, dest=2)  # world comm, both even
            elif comm.rank == 2:
                comm.recv(source=0)

        results = _monitored(
            body,
            n_ranks=4,
            flags=Flags.P2P_ONLY,
            comm_selector=lambda comm: comm.split(comm.rank % 2, comm.rank),
        )
        # Rank 0's row in the *sub*-communicator indexing: member 1 is
        # world rank 2.
        assert results[0][1] == [0, 11]

    def test_non_member_traffic_excluded(self):
        def body(comm, target):
            if comm.rank == 0:
                comm.send(b"y" * 5, dest=1)  # rank 1 is odd: not a member
            elif comm.rank == 1:
                comm.recv(source=0)

        results = _monitored(
            body,
            n_ranks=4,
            flags=Flags.P2P_ONLY,
            comm_selector=lambda comm: comm.split(comm.rank % 2, comm.rank),
        )
        assert results[0][1] == [0, 0]


class TestGatheredMatrices:
    def _ring_traffic(self, comm, target):
        me, n = comm.rank, comm.size
        comm.sendrecv(bytes(me + 1), dest=(me + 1) % n, source=(me - 1) % n)

    def test_allgather_data_full_matrix(self):
        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            self._ring_traffic(comm, comm)
            mapi.mpi_m_suspend(msid)
            err, cmat, smat = mapi.mpi_m_allgather_data(msid, flags=Flags.P2P_ONLY)
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            n = comm.size
            return (err, cmat.reshape(n, n).tolist(), smat.reshape(n, n).tolist())

        results, _ = run_spmd(prog, n_ranks=4)
        err, cmat, smat = results[0]
        assert err == E.MPI_SUCCESS
        for i in range(4):
            assert cmat[i][(i + 1) % 4] == 1
            assert smat[i][(i + 1) % 4] == i + 1
        # Every rank received the same matrix.
        assert all(r[1] == cmat for r in results)

    def test_rootgather_only_root_receives(self):
        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            self._ring_traffic(comm, comm)
            mapi.mpi_m_suspend(msid)
            err, cmat, smat = mapi.mpi_m_rootgather_data(
                msid, 2, flags=Flags.P2P_ONLY
            )
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            return (err, cmat is None, smat is None)

        results, _ = run_spmd(prog, n_ranks=4)
        assert results[2] == (E.MPI_SUCCESS, False, False)
        for r in (0, 1, 3):
            assert results[r] == (E.MPI_SUCCESS, True, True)

    def test_gather_matches_allgather(self):
        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            self._ring_traffic(comm, comm)
            mapi.mpi_m_suspend(msid)
            _, ag_c, ag_s = mapi.mpi_m_allgather_data(msid, flags=Flags.P2P_ONLY)
            _, rg_c, rg_s = mapi.mpi_m_rootgather_data(msid, 0,
                                                       flags=Flags.P2P_ONLY)
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            if comm.rank == 0:
                return (np.array_equal(ag_c, rg_c), np.array_equal(ag_s, rg_s))
            return None

        results, _ = run_spmd(prog, n_ranks=4)
        assert results[0] == (True, True)


class TestResetAndContinue:
    def test_reset_zeroes_data(self):
        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            if comm.rank == 0:
                comm.send(b"123", dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)
            mapi.mpi_m_suspend(msid)
            mapi.mpi_m_reset(msid)
            _, counts, sizes = mapi.mpi_m_get_data(msid)
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            return (counts.sum(), sizes.sum())

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[0] == (0, 0)

    def test_continue_accumulates(self):
        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            if comm.rank == 0:
                comm.send(b"aa", dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)
            mapi.mpi_m_suspend(msid)
            mapi.mpi_m_continue(msid)
            if comm.rank == 0:
                comm.send(b"bbb", dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)
            mapi.mpi_m_suspend(msid)
            _, counts, sizes = mapi.mpi_m_get_data(msid, flags=Flags.P2P_ONLY)
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            return (int(counts[1]), int(sizes[1]))

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[0] == (2, 5)

    def test_paused_traffic_not_recorded(self):
        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            mapi.mpi_m_suspend(msid)
            if comm.rank == 0:
                comm.send(b"hidden!", dest=1)  # while suspended
            elif comm.rank == 1:
                comm.recv(source=0)
            mapi.mpi_m_continue(msid)
            mapi.mpi_m_suspend(msid)
            _, counts, sizes = mapi.mpi_m_get_data(msid, flags=Flags.P2P_ONLY)
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            return int(sizes.sum())

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[0] == 0


class TestOverlappingSessions:
    def test_independent_overlap(self):
        """Paper §4.5: one session per collective distinguishes them."""

        def prog(comm):
            mapi.mpi_m_init()
            _, outer = mapi.mpi_m_start(comm)
            comm.bcast(b"1111" if comm.rank == 0 else None, root=0,
                       algorithm="flat")
            _, inner = mapi.mpi_m_start(comm)
            comm.bcast(b"22" if comm.rank == 0 else None, root=0,
                       algorithm="flat")
            mapi.mpi_m_suspend(inner)
            comm.bcast(b"3" if comm.rank == 0 else None, root=0,
                       algorithm="flat")
            mapi.mpi_m_suspend(outer)
            _, _, inner_sizes = mapi.mpi_m_get_data(inner, flags=Flags.COLL_ONLY)
            _, _, outer_sizes = mapi.mpi_m_get_data(outer, flags=Flags.COLL_ONLY)
            mapi.mpi_m_free(inner)
            mapi.mpi_m_free(outer)
            mapi.mpi_m_finalize()
            return (int(inner_sizes.sum()), int(outer_sizes.sum()))

        results, _ = run_spmd(prog, n_ranks=3)
        inner, outer = results[0]
        assert inner == 2 * 2  # only the second bcast (2 bytes × 2 peers)
        assert outer == (4 + 2 + 1) * 2  # all three

    def test_sessions_on_different_comms(self):
        def prog(comm):
            mapi.mpi_m_init()
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            _, world_s = mapi.mpi_m_start(comm)
            _, sub_s = mapi.mpi_m_start(sub)
            if comm.rank == 0:
                comm.send(b"even", dest=2)
                comm.send(b"odd!!", dest=1)
            elif comm.rank in (1, 2):
                comm.recv(source=0)
            mapi.mpi_m_suspend(world_s)
            mapi.mpi_m_suspend(sub_s)
            _, _, world_sizes = mapi.mpi_m_get_data(world_s, flags=Flags.P2P_ONLY)
            _, _, sub_sizes = mapi.mpi_m_get_data(sub_s, flags=Flags.P2P_ONLY)
            mapi.mpi_m_free(world_s)
            mapi.mpi_m_free(sub_s)
            mapi.mpi_m_finalize()
            return (int(world_sizes.sum()), int(sub_sizes.sum()))

        results, _ = run_spmd(prog, n_ranks=4)
        world_total, sub_total = results[0]
        assert world_total == 4 + 5  # both messages
        assert sub_total == 4  # only the even-pair message
