"""Tests for MPI_M_flush / MPI_M_rootflush files and the parser."""

import os

import numpy as np
import pytest

from repro.core import api as mapi
from repro.core.constants import ErrorCode, Flags
from repro.core.flushio import read_profile
from tests.conftest import run_spmd

E = ErrorCode


def _traffic_then(fn, n_ranks=3):
    def prog(comm):
        mapi.mpi_m_init()
        _, msid = mapi.mpi_m_start(comm)
        if comm.rank == 0:
            comm.send(b"ab", dest=1)
            comm.send(b"wxyz", dest=2)
        elif comm.rank in (1, 2):
            comm.recv(source=0)
        mapi.mpi_m_suspend(msid)
        out = fn(comm, msid)
        mapi.mpi_m_free(msid)
        mapi.mpi_m_finalize()
        return out

    return run_spmd(prog, n_ranks=n_ranks)[0]


class TestFlush:
    def test_per_rank_files(self, tmp_path):
        base = str(tmp_path / "prof")

        def fn(comm, msid):
            return mapi.mpi_m_flush(msid, base, flags=Flags.P2P_ONLY)

        results = _traffic_then(fn)
        assert all(c == E.MPI_SUCCESS for c in results)
        for rank in range(3):
            path = f"{base}.{rank}.prof"
            assert os.path.exists(path)
        prof = read_profile(f"{base}.0.prof")
        assert prof["kind"] == "local"
        assert prof["meta"]["rank"] == 0
        assert prof["meta"]["comm_size"] == 3
        # rows: src dst count bytes
        rows = {int(r[1]): (int(r[2]), int(r[3])) for r in prof["data"]}
        assert rows[1] == (1, 2)
        assert rows[2] == (1, 4)

    def test_missing_directory_is_internal_fail(self, tmp_path):
        base = str(tmp_path / "nope" / "prof")

        def fn(comm, msid):
            return mapi.mpi_m_flush(msid, base)

        results = _traffic_then(fn)
        assert all(c == E.MPI_M_INTERNAL_FAIL for c in results)

    def test_flags_written_in_header(self, tmp_path):
        base = str(tmp_path / "hdr")

        def fn(comm, msid):
            return mapi.mpi_m_flush(msid, base,
                                    flags=Flags.P2P_ONLY | Flags.COLL_ONLY)

        _traffic_then(fn)
        prof = read_profile(f"{base}.1.prof")
        assert prof["meta"]["flags"] == "P2P_ONLY|COLL_ONLY"


class TestRootFlush:
    def test_two_matrix_files_at_root_world_rank(self, tmp_path):
        base = str(tmp_path / "root")

        def fn(comm, msid):
            return mapi.mpi_m_rootflush(msid, 1, base, flags=Flags.P2P_ONLY)

        results = _traffic_then(fn)
        assert all(c == E.MPI_SUCCESS for c in results)
        # Files are named after the root's rank in MPI_COMM_WORLD.
        cpath = f"{base}_counts.1.prof"
        spath = f"{base}_sizes.1.prof"
        assert os.path.exists(cpath) and os.path.exists(spath)
        counts = read_profile(cpath)
        sizes = read_profile(spath)
        assert counts["kind"] == "root-counts"
        assert sizes["kind"] == "root-sizes"
        assert counts["data"].shape == (3, 3)
        assert sizes["data"][0, 1] == 2
        assert sizes["data"][0, 2] == 4
        assert counts["data"][0, 1] == 1

    def test_only_root_writes(self, tmp_path):
        base = str(tmp_path / "only")

        def fn(comm, msid):
            return mapi.mpi_m_rootflush(msid, 0, base)

        _traffic_then(fn)
        files = sorted(os.listdir(os.path.dirname(base)))
        assert files == ["only_counts.0.prof", "only_sizes.0.prof"]


class TestParser:
    def test_rejects_non_profile(self, tmp_path):
        p = tmp_path / "junk.txt"
        p.write_text("1 2 3\n")
        with pytest.raises(ValueError):
            read_profile(str(p))

    def test_roundtrip_numpy_loadtxt(self, tmp_path):
        base = str(tmp_path / "np")

        def fn(comm, msid):
            return mapi.mpi_m_rootflush(msid, 0, base)

        _traffic_then(fn)
        mat = np.loadtxt(f"{base}_sizes.0.prof", dtype=np.uint64)
        assert mat.shape == (3, 3)
