"""Tests for the Fortran-style binding (integer handles, ierr params)."""

import numpy as np
import pytest

from repro.core import fortran as f
from repro.core.constants import ErrorCode, Flags
from tests.conftest import run_spmd

E = ErrorCode


class TestFortranBinding:
    def test_listing1_flow(self):
        """The paper's Listing 1 shape: init then start on WORLD."""

        def prog(comm):
            ierr = [99]
            msid = [0]
            f.mpi_m_init_f(ierr)
            assert ierr[0] == E.MPI_SUCCESS
            f.mpi_m_start_f(comm, msid, ierr)
            assert ierr[0] == E.MPI_SUCCESS
            assert isinstance(msid[0], int) and msid[0] > 0
            comm.barrier()
            f.mpi_m_suspend_f(msid[0], ierr)
            assert ierr[0] == E.MPI_SUCCESS
            f.mpi_m_free_f(msid[0], ierr)
            f.mpi_m_finalize_f(ierr)
            return ierr[0]

        results, _ = run_spmd(prog, n_ranks=4)
        assert results == [E.MPI_SUCCESS] * 4

    def test_data_into_fortran_arrays(self):
        def prog(comm):
            ierr = [0]
            msid = [0]
            f.mpi_m_init_f(ierr)
            f.mpi_m_start_f(comm, msid, ierr)
            if comm.rank == 0:
                comm.send(b"abcde", dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)
            f.mpi_m_suspend_f(msid[0], ierr)
            counts = np.zeros(comm.size, dtype=np.uint64)
            sizes = np.zeros(comm.size, dtype=np.uint64)
            f.mpi_m_get_data_f(msid[0], counts, sizes,
                               int(Flags.P2P_ONLY), ierr)
            assert ierr[0] == E.MPI_SUCCESS
            f.mpi_m_free_f(msid[0], ierr)
            f.mpi_m_finalize_f(ierr)
            return sizes.tolist()

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[0] == [0, 5]

    def test_get_info_out_params(self):
        def prog(comm):
            ierr, msid = [0], [0]
            provided, n = [0], [0]
            f.mpi_m_init_f(ierr)
            f.mpi_m_start_f(comm, msid, ierr)
            f.mpi_m_get_info_f(msid[0], provided, n, ierr)
            f.mpi_m_suspend_f(msid[0], ierr)
            f.mpi_m_free_f(msid[0], ierr)
            f.mpi_m_finalize_f(ierr)
            return (provided[0], n[0])

        results, _ = run_spmd(prog, n_ranks=3)
        assert results[0] == (3, 3)

    def test_all_msid_integer_constant(self):
        def prog(comm):
            ierr, a, b = [0], [0], [0]
            f.mpi_m_init_f(ierr)
            f.mpi_m_start_f(comm, a, ierr)
            f.mpi_m_start_f(comm, b, ierr)
            f.mpi_m_suspend_f(f.MPI_M_ALL_MSID_F, ierr)
            assert ierr[0] == E.MPI_SUCCESS
            f.mpi_m_free_f(f.MPI_M_ALL_MSID_F, ierr)
            f.mpi_m_finalize_f(ierr)
            return ierr[0]

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[0] == E.MPI_SUCCESS

    def test_error_codes_through_ierr(self):
        def prog(comm):
            ierr = [0]
            f.mpi_m_suspend_f(123, ierr)  # before init
            missing = ierr[0]
            f.mpi_m_init_f(ierr)
            f.mpi_m_suspend_f(123, ierr)  # bogus handle
            invalid = ierr[0]
            f.mpi_m_finalize_f(ierr)
            return (missing, invalid)

        results, _ = run_spmd(prog, n_ranks=1)
        assert results[0] == (E.MPI_M_MISSING_INIT, E.MPI_M_INVALID_MSID)

    def test_rootflush_f(self, tmp_path):
        base = str(tmp_path / "fort")

        def prog(comm):
            ierr, msid = [0], [0]
            f.mpi_m_init_f(ierr)
            f.mpi_m_start_f(comm, msid, ierr)
            comm.barrier()
            f.mpi_m_suspend_f(msid[0], ierr)
            f.mpi_m_rootflush_f(msid[0], 0, base, int(Flags.COLL_ONLY), ierr)
            code = ierr[0]
            f.mpi_m_free_f(msid[0], ierr)
            f.mpi_m_finalize_f(ierr)
            return code

        results, _ = run_spmd(prog, n_ranks=2)
        assert results == [E.MPI_SUCCESS] * 2
        import os

        assert os.path.exists(f"{base}_counts.0.prof")

    def test_ierr_must_be_out_param(self):
        from repro.simmpi import RankFailure

        def prog(comm):
            f.mpi_m_init_f(0)  # not a list: programming error

        with pytest.raises(RankFailure) as e:
            run_spmd(prog, n_ranks=1)
        assert isinstance(e.value.original, TypeError)
