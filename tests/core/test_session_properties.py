"""Deeper session-semantics tests: window conservation, OSC flags,
and interaction with the communicator zoo."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import api as mapi
from repro.core.constants import Flags, MPI_M_DATA_IGNORE
from repro.core.errors import raise_for_code
from tests.conftest import run_spmd


class TestWindowConservation:
    @settings(max_examples=8, deadline=None)
    @given(st.lists(st.integers(0, 5000), min_size=1, max_size=8))
    def test_sampled_windows_sum_to_total(self, bursts):
        """Splitting a session into reset windows loses nothing:
        the window volumes sum to what one long session records."""

        def prog(comm):
            raise_for_code(mapi.mpi_m_init())
            _, windowed = mapi.mpi_m_start(comm)
            _, whole = mapi.mpi_m_start(comm)
            windows = []
            for i, nbytes in enumerate(bursts):
                if comm.rank == 0:
                    comm.send(None, dest=1, tag=i, nbytes=nbytes)
                elif comm.rank == 1:
                    comm.recv(source=0, tag=i)
                raise_for_code(mapi.mpi_m_suspend(windowed))
                _, _, sizes = mapi.mpi_m_get_data(
                    windowed, MPI_M_DATA_IGNORE, None, Flags.P2P_ONLY)
                raise_for_code(mapi.mpi_m_reset(windowed))
                raise_for_code(mapi.mpi_m_continue(windowed))
                windows.append(int(sizes.sum()))
            mapi.mpi_m_suspend(windowed)
            mapi.mpi_m_suspend(whole)
            _, _, total = mapi.mpi_m_get_data(
                whole, MPI_M_DATA_IGNORE, None, Flags.P2P_ONLY)
            mapi.mpi_m_free(windowed)
            mapi.mpi_m_free(whole)
            mapi.mpi_m_finalize()
            return (windows, int(total.sum()))

        results, _ = run_spmd(prog, n_ranks=2)
        windows, total = results[0]
        assert sum(windows) == total == sum(bursts)


class TestOscThroughSessions:
    def test_osc_only_flag_selects_rma(self):
        def prog(comm):
            raise_for_code(mapi.mpi_m_init())
            _, msid = mapi.mpi_m_start(comm)
            win = comm.win_create(np.zeros(4))
            if comm.rank == 0:
                win.put(np.ones(4), target=1)
            win.fence()
            if comm.rank == 0:
                comm.send(b"p2p!", dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)
            mapi.mpi_m_suspend(msid)
            _, _, osc = mapi.mpi_m_get_data(
                msid, MPI_M_DATA_IGNORE, None, Flags.OSC_ONLY)
            _, _, p2p = mapi.mpi_m_get_data(
                msid, MPI_M_DATA_IGNORE, None, Flags.P2P_ONLY)
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            return (int(osc.sum()), int(p2p.sum()))

        results, _ = run_spmd(prog, n_ranks=2)
        osc0, p2p0 = results[0]
        assert osc0 == 32  # the put (4 doubles); fence tokens are 0 B
        assert p2p0 == 4

    def test_get_flows_attributed_to_target(self):
        def prog(comm):
            raise_for_code(mapi.mpi_m_init())
            _, msid = mapi.mpi_m_start(comm)
            win = comm.win_create(np.zeros(8))
            win.fence()
            if comm.rank == 0:
                win.get(target=1)
            win.fence()
            mapi.mpi_m_suspend(msid)
            _, _, osc = mapi.mpi_m_get_data(
                msid, MPI_M_DATA_IGNORE, None, Flags.OSC_ONLY)
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            return osc.tolist()

        results, _ = run_spmd(prog, n_ranks=2)
        # The wire bytes of an RMA read leave the *target* (rank 1).
        assert results[1][0] == 64
        assert results[0][1] == 0


class TestSessionOnManyComms:
    def test_three_level_comm_hierarchy(self):
        """Sessions on world, a split, and a dup all see consistent
        projections of the same underlying traffic."""

        def prog(comm):
            raise_for_code(mapi.mpi_m_init())
            half = comm.split(color=comm.rank // 2, key=comm.rank)
            dup = comm.dup()
            sessions = {}
            for name, c in (("world", comm), ("half", half), ("dup", dup)):
                _, sessions[name] = mapi.mpi_m_start(c)
            if comm.rank == 0:
                comm.send(None, dest=1, nbytes=100)  # within half 0
                dup.send(None, dest=3, nbytes=7)  # across halves, on dup
            elif comm.rank == 1:
                comm.recv(source=0)
            if comm.rank == 3:
                dup.recv(source=0)
            out = {}
            for name, msid in sessions.items():
                mapi.mpi_m_suspend(msid)
                _, _, sizes = mapi.mpi_m_get_data(
                    msid, MPI_M_DATA_IGNORE, None, Flags.P2P_ONLY)
                out[name] = int(sizes.sum())
                mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            return out

        results, _ = run_spmd(prog, n_ranks=4)
        r0 = results[0]
        # World and dup sessions cover all members: both messages.
        assert r0["world"] == 107
        assert r0["dup"] == 107
        # The half session (ranks 0,1) only sees the intra-half bytes,
        # even though the 7-byte message used the dup communicator.
        assert r0["half"] == 100
