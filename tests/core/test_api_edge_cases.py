"""Edge cases of the procedural API: error translation, sentinels,
buffer conventions."""

import numpy as np
import pytest

from repro.core import api as mapi
from repro.core.constants import ErrorCode, Flags
from repro.core.session import MonitoringRuntime
from tests.conftest import run_spmd

E = ErrorCode


class TestErrorTranslation:
    def test_mpit_failure_becomes_mpit_fail(self):
        """Breaking the MPI_T layer under the library surfaces as
        MPI_M_MPIT_FAIL, not a Python exception."""

        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            mapi.mpi_m_suspend(msid)
            rt = MonitoringRuntime.of(comm._current())
            rt._pvar_session.free()  # sabotage the MPI_T session
            code = mapi.mpi_m_continue(msid)  # needs a pvar snapshot
            return code

        results, _ = run_spmd(prog, n_ranks=1)
        assert results[0] == E.MPI_M_MPIT_FAIL

    def test_codes_not_exceptions_for_user_errors(self):
        def prog(comm):
            # None of these should raise in the procedural API.
            codes = [
                mapi.mpi_m_suspend(object()),
                mapi.mpi_m_finalize(),
            ]
            return codes

        results, _ = run_spmd(prog, n_ranks=1)
        assert results[0] == [E.MPI_M_MISSING_INIT, E.MPI_M_MISSING_INIT]


class TestOutputConventions:
    def test_get_data_flags_default_all(self):
        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            if comm.rank == 0:
                comm.send(b"xx", dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)
            comm.barrier()
            mapi.mpi_m_suspend(msid)
            _, counts, _ = mapi.mpi_m_get_data(msid)  # ALL_COMM default
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            return int(counts.sum())

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[0] >= 2  # the p2p message and the barrier token

    def test_allgather_into_preallocated_matrix(self):
        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            comm.barrier()
            mapi.mpi_m_suspend(msid)
            n = comm.size
            buf = np.zeros(n * n, dtype=np.uint64)
            err, out, _ = mapi.mpi_m_allgather_data(msid, matrix_counts=buf)
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            return (err, out is buf, int(buf.sum()))

        results, _ = run_spmd(prog, n_ranks=4)
        err, same, total = results[0]
        assert err == E.MPI_SUCCESS
        assert same
        assert total == 4 * 2  # dissemination barrier: 2 rounds x 4 ranks

    def test_session_on_subcomm_only_members_can_use(self):
        def prog(comm):
            mapi.mpi_m_init()
            sub = comm.split(color=0 if comm.rank < 2 else 1, key=comm.rank)
            _, msid = mapi.mpi_m_start(sub)
            mapi.mpi_m_suspend(msid)
            err, counts, _ = mapi.mpi_m_get_data(msid)
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            return len(counts)

        results, _ = run_spmd(prog, n_ranks=4)
        assert results == [2, 2, 2, 2]


class TestUnsignedLongSemantics:
    def test_counters_are_uint64(self):
        """§4.1: data is stored in unsigned long arrays."""

        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            if comm.rank == 0:
                comm.send(None, dest=1, nbytes=123)
            elif comm.rank == 1:
                comm.recv(source=0)
            mapi.mpi_m_suspend(msid)
            _, counts, sizes = mapi.mpi_m_get_data(msid)
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            return (counts.dtype.str, sizes.dtype.str)

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[0] == ("<u8", "<u8")


class TestCliEntryPoint:
    def test_fig2_via_main(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "introspection" in out

    def test_bad_experiment_rejected(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig99"])
