"""Round-trip tests for :mod:`repro.core.flushio`.

write_local_profile / write_root_profiles → read_profile must return
the exact matrices that were written, and the ``#`` header metadata
(kind, rank, comm_size, flags) must survive the trip.
"""

import numpy as np
import pytest

from repro.core import flushio
from repro.core.constants import Flags


def _local_vectors(n, seed=0):
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 1000, size=n).astype(np.uint64)
    sizes = counts * rng.integers(1, 4096, size=n).astype(np.uint64)
    return counts, sizes


class TestLocalRoundTrip:
    def test_matrix_equality(self, tmp_path):
        counts, sizes = _local_vectors(6)
        base = str(tmp_path / "prof")
        path = flushio.write_local_profile(base, 3, counts, sizes,
                                           Flags.ALL_COMM)
        assert path == str(tmp_path / "prof.3.prof")

        prof = flushio.read_profile(path)
        assert prof["kind"] == "local"
        data = prof["data"]
        assert data.shape == (6, 4)
        assert (data[:, 0] == 3).all()  # src column is the writer's rank
        np.testing.assert_array_equal(data[:, 1], np.arange(6))
        np.testing.assert_array_equal(data[:, 2], counts)
        np.testing.assert_array_equal(data[:, 3], sizes)

    def test_header_metadata(self, tmp_path):
        counts, sizes = _local_vectors(4)
        path = flushio.write_local_profile(str(tmp_path / "m"), 2, counts,
                                           sizes, Flags.P2P_ONLY)
        meta = flushio.read_profile(path)["meta"]
        assert meta["rank"] == 2
        assert meta["comm_size"] == 4
        assert meta["flags"] == "P2P_ONLY"
        assert isinstance(meta["rank"], int)
        assert isinstance(meta["comm_size"], int)

    def test_loads_with_numpy_loadtxt(self, tmp_path):
        counts, sizes = _local_vectors(5)
        path = flushio.write_local_profile(str(tmp_path / "t"), 0, counts,
                                           sizes, Flags.ALL_COMM)
        table = np.loadtxt(path, dtype=np.uint64)
        np.testing.assert_array_equal(
            table, flushio.read_profile(path)["data"])


class TestRootRoundTrip:
    def test_matrix_equality(self, tmp_path):
        n = 5
        rng = np.random.default_rng(7)
        counts = rng.integers(0, 100, size=(n, n)).astype(np.uint64)
        sizes = counts * 64
        cpath, spath = flushio.write_root_profiles(
            str(tmp_path / "root"), 0, counts, sizes, Flags.ALL_COMM)
        assert cpath == str(tmp_path / "root_counts.0.prof")
        assert spath == str(tmp_path / "root_sizes.0.prof")

        cprof = flushio.read_profile(cpath)
        sprof = flushio.read_profile(spath)
        assert cprof["kind"] == "root-counts"
        assert sprof["kind"] == "root-sizes"
        np.testing.assert_array_equal(cprof["data"], counts)
        np.testing.assert_array_equal(sprof["data"], sizes)

    def test_header_metadata(self, tmp_path):
        n = 3
        zeros = np.zeros((n, n), dtype=np.uint64)
        cpath, _ = flushio.write_root_profiles(
            str(tmp_path / "h"), 4, zeros, zeros,
            Flags.P2P_ONLY | Flags.COLL_ONLY)
        meta = flushio.read_profile(cpath)["meta"]
        assert meta["comm_size"] == n
        assert meta["flags"] == "P2P_ONLY|COLL_ONLY"
        assert "rank" not in meta  # root files carry no per-rank field

    def test_flat_matrix_input(self, tmp_path):
        # write_root_profiles reshapes (n*n,) input to (n, n).
        n = 4
        counts = np.arange(n * n, dtype=np.uint64)
        cpath, _ = flushio.write_root_profiles(
            str(tmp_path / "f"), 0, counts.reshape(n, n), counts,
            Flags.ALL_COMM)
        np.testing.assert_array_equal(
            flushio.read_profile(cpath)["data"], counts.reshape(n, n))


class TestErrors:
    def test_missing_directory(self, tmp_path):
        counts, sizes = _local_vectors(2)
        with pytest.raises(FileNotFoundError, match="has to exist"):
            flushio.write_local_profile(
                str(tmp_path / "nope" / "x"), 0, counts, sizes,
                Flags.ALL_COMM)

    def test_not_a_profile(self, tmp_path):
        p = tmp_path / "plain.txt"
        p.write_text("1 2 3 4\n")
        with pytest.raises(ValueError, match="not an MPI_Monitoring"):
            flushio.read_profile(str(p))


class TestAtomicWrite:
    def test_creates_file(self, tmp_path):
        target = tmp_path / "out.json"
        with flushio.atomic_write(str(target)) as fh:
            fh.write("payload")
        assert target.read_text() == "payload"

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old")
        with flushio.atomic_write(str(target)) as fh:
            fh.write("new")
        assert target.read_text() == "new"

    def test_failure_leaves_original_and_no_litter(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("original")
        with pytest.raises(RuntimeError, match="boom"):
            with flushio.atomic_write(str(target)) as fh:
                fh.write("half-writ")
                raise RuntimeError("boom")
        assert target.read_text() == "original"
        # The partial temp file was cleaned up, not left beside it.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.json"]

    def test_no_partial_file_on_failed_fresh_write(self, tmp_path):
        target = tmp_path / "fresh.json"
        with pytest.raises(RuntimeError):
            with flushio.atomic_write(str(target)) as fh:
                fh.write("x")
                raise RuntimeError("die")
        assert list(tmp_path.iterdir()) == []
