"""Tests for the Pythonic (context-manager) front-end."""

import numpy as np
import pytest

from repro.core import (
    Flags,
    InvalidMsid,
    MissingInit,
    MonitoringSession,
    MultipleCall,
    SessionNotSuspended,
    monitoring,
)
from repro.simmpi import RankFailure
from tests.conftest import run_spmd


class TestContextManagers:
    def test_basic_flow(self):
        def prog(comm):
            with monitoring():
                with MonitoringSession(comm) as mon:
                    if comm.rank == 0:
                        comm.send(b"hello", dest=1)
                    elif comm.rank == 1:
                        comm.recv(source=0)
                counts, sizes = mon.get_data(Flags.P2P_ONLY)
                mon.free()
                return (counts.tolist(), sizes.tolist())

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[0] == ([0, 1], [0, 5])

    def test_monitoring_required(self):
        def prog(comm):
            with MonitoringSession(comm):
                pass

        with pytest.raises(RankFailure) as e:
            run_spmd(prog, n_ranks=2)
        assert isinstance(e.value.original, MissingInit)

    def test_pause_resume_reset(self):
        def prog(comm):
            with monitoring():
                with MonitoringSession(comm) as mon:
                    comm.barrier()
                    mon.pause()
                    mid_counts = mon.counts().sum()
                    mon.reset()
                    after_reset = mon.counts().sum()
                    mon.resume()
                    comm.barrier()
                total = mon.counts().sum()
                mon.free()
                return (int(mid_counts), int(after_reset), int(total))

        results, _ = run_spmd(prog, n_ranks=4)
        mid, after_reset, total = results[0]
        assert mid > 0
        assert after_reset == 0
        assert total > 0

    def test_not_reentrant(self):
        def prog(comm):
            with monitoring():
                session = MonitoringSession(comm)
                with session:
                    try:
                        with session:
                            pass
                    except RuntimeError:
                        return "caught"

        results, _ = run_spmd(prog, n_ranks=1)
        assert results[0] == "caught"

    def test_data_after_free_raises(self):
        def prog(comm):
            with monitoring():
                with MonitoringSession(comm) as mon:
                    pass
                mon.free()
                try:
                    mon.get_data()
                except InvalidMsid:
                    return "caught"

        results, _ = run_spmd(prog, n_ranks=1)
        assert results[0] == "caught"

    def test_resume_while_active_raises(self):
        def prog(comm):
            with monitoring():
                with MonitoringSession(comm) as mon:
                    try:
                        mon.resume()
                    except MultipleCall:
                        return "caught"
                    finally:
                        pass

        results, _ = run_spmd(prog, n_ranks=1)
        assert results[0] == "caught"

    def test_array_size_property(self):
        def prog(comm):
            with monitoring():
                with MonitoringSession(comm) as mon:
                    n = mon.array_size
                mon.free()
                return n

        results, _ = run_spmd(prog, n_ranks=5)
        assert results == [5] * 5

    def test_allgather_and_gather(self):
        def prog(comm):
            with monitoring():
                with MonitoringSession(comm) as mon:
                    if comm.rank == 0:
                        comm.send(b"abc", dest=1)
                    elif comm.rank == 1:
                        comm.recv(source=0)
                cmat, smat = mon.allgather(Flags.P2P_ONLY)
                rooted = mon.gather(root=1, flags=Flags.P2P_ONLY)
                mon.free()
                return (smat[0, 1], rooted is not None)

        results, _ = run_spmd(prog, n_ranks=3)
        assert results[0] == (3, False)
        assert results[1] == (3, True)

    def test_flush_via_pythonic(self, tmp_path):
        base = str(tmp_path / "py")

        def prog(comm):
            with monitoring():
                with MonitoringSession(comm) as mon:
                    comm.barrier()
                mon.flush(base, Flags.COLL_ONLY)
                mon.free()

        run_spmd(prog, n_ranks=2)
        import os

        assert os.path.exists(f"{base}.0.prof")
        assert os.path.exists(f"{base}.1.prof")

    def test_exception_propagates_through_session(self):
        def prog(comm):
            with monitoring():
                with MonitoringSession(comm) as mon:
                    raise KeyError("user error")

        with pytest.raises(RankFailure) as e:
            run_spmd(prog, n_ranks=1)
        assert isinstance(e.value.original, KeyError)
