"""Tests for the matrix rendering helpers and the timeline extension."""

import numpy as np
import pytest

from repro.core import api as mapi
from repro.core.constants import Flags
from repro.core.errors import raise_for_code
from repro.core.timeline import (
    TimelineSampler,
    predict_next_window,
    underutilized_windows,
)
from repro.core.viz import render_heatmap, render_matrix, traffic_summary
from repro.simmpi.topology import Topology
from tests.conftest import run_spmd


class TestRenderMatrix:
    def test_dots_and_digits(self):
        m = np.array([[0, 3], [12, 0]])
        out = render_matrix(m)
        lines = out.splitlines()
        assert " ." in lines[1] and " 3" in lines[1]
        assert " +" in lines[2]  # 12 > 9 renders as '+'

    def test_size_guard(self):
        out = render_matrix(np.zeros((100, 100)), max_size=10)
        assert "100x100" in out

    def test_heatmap_shades(self):
        m = np.array([[0.0, 1.0], [1e6, 0.0]])
        out = render_heatmap(m)
        rows = out.splitlines()
        assert rows[0][0] == " "  # zero entry blank
        assert rows[0][1] != " "
        assert rows[1][0] != rows[0][1]  # different magnitudes shade apart

    def test_heatmap_all_zero(self):
        out = render_heatmap(np.zeros((3, 3)))
        assert "." in out or " " in out

    def test_traffic_summary(self):
        topo = Topology([("node", 2), ("core", 2)])
        m = np.zeros((2, 2))
        m[0, 1] = 100
        s = traffic_summary(m, topo, [0, 2], label="test")
        assert s.startswith("test:")
        assert "cluster" in s and "100" in s


class TestTimeline:
    def _sampled_program(self, comm):
        raise_for_code(mapi.mpi_m_init())
        sampler = TimelineSampler(comm, flags=Flags.P2P_ONLY)
        peer = 1 - comm.rank
        # Three busy windows and two quiet ones.
        for window, nbytes in enumerate([1000, 0, 5000, 0, 2000]):
            if nbytes and comm.rank == 0:
                comm.send(None, dest=1, nbytes=nbytes)
            elif nbytes:
                comm.recv(source=0)
            comm.sleep(0.01)
            sampler.sample()
        sampler.close()
        raise_for_code(mapi.mpi_m_finalize())
        return sampler.series()

    def test_sampler_windows(self):
        results, _ = run_spmd(self._sampled_program, n_ranks=2)
        times, volumes = results[0]
        assert volumes.tolist() == [1000, 0, 5000, 0, 2000]
        assert len(times) == 5
        assert (np.diff(times) > 0).all()

    def test_receiver_sends_nothing(self):
        results, _ = run_spmd(self._sampled_program, n_ranks=2)
        _, volumes = results[1]
        assert volumes.sum() == 0

    def test_predictors(self):
        hist = [100, 200, 300, 400]
        assert predict_next_window(hist, "last") == 400
        assert predict_next_window(hist, "moving_average", window=2) == 350
        assert predict_next_window(hist, "linear", window=4) == pytest.approx(500)
        assert predict_next_window([], "last") == 0.0
        with pytest.raises(ValueError):
            predict_next_window(hist, "oracle")

    def test_linear_never_negative(self):
        assert predict_next_window([500, 10], "linear", window=2) == 0.0

    def test_underutilized_windows(self):
        vols = [1000, 0, 5000, 100, 2000]
        quiet = underutilized_windows(vols, threshold_fraction=0.25)
        assert quiet == [0, 1, 3]
        assert underutilized_windows([]) == []
        assert underutilized_windows([0, 0]) == [0, 1]
