"""Tests for the MPI_M session state machine and error codes (§4.3)."""

import numpy as np
import pytest

from repro.core import api as mapi
from repro.core.constants import (
    MAX_SESSIONS,
    MPI_M_ALL_MSID,
    ErrorCode,
    Flags,
)
from tests.conftest import run_spmd

E = ErrorCode


def spmd(prog, n_ranks=2, **kw):
    return run_spmd(prog, n_ranks=n_ranks, **kw)


class TestInitFinalize:
    def test_init_then_finalize(self):
        def prog(comm):
            return (mapi.mpi_m_init(), mapi.mpi_m_finalize())

        results, _ = spmd(prog)
        assert results[0] == (E.MPI_SUCCESS, E.MPI_SUCCESS)

    def test_double_init_is_multiple_call(self):
        def prog(comm):
            mapi.mpi_m_init()
            return mapi.mpi_m_init()

        results, _ = spmd(prog)
        assert results[0] == E.MPI_M_MULTIPLE_CALL

    def test_missing_init_everywhere(self):
        def prog(comm):
            codes = [
                mapi.mpi_m_finalize(),
                mapi.mpi_m_start(comm)[0],
                mapi.mpi_m_suspend(MPI_M_ALL_MSID),
                mapi.mpi_m_continue(MPI_M_ALL_MSID),
                mapi.mpi_m_reset(MPI_M_ALL_MSID),
                mapi.mpi_m_free(MPI_M_ALL_MSID),
            ]
            return codes

        results, _ = spmd(prog)
        assert all(c == E.MPI_M_MISSING_INIT for c in results[0])

    def test_init_again_after_finalize_ok(self):
        def prog(comm):
            mapi.mpi_m_init()
            mapi.mpi_m_finalize()
            code = mapi.mpi_m_init()
            mapi.mpi_m_finalize()
            return code

        results, _ = spmd(prog)
        assert results[0] == E.MPI_SUCCESS

    def test_finalize_with_active_session_fails(self):
        def prog(comm):
            mapi.mpi_m_init()
            err, msid = mapi.mpi_m_start(comm)
            code = mapi.mpi_m_finalize()
            mapi.mpi_m_suspend(msid)  # clean up so finalize can pass
            return code

        results, _ = spmd(prog)
        assert results[0] == E.MPI_M_SESSION_STILL_ACTIVE

    def test_finalize_with_suspended_session_ok(self):
        def prog(comm):
            mapi.mpi_m_init()
            err, msid = mapi.mpi_m_start(comm)
            mapi.mpi_m_suspend(msid)
            return mapi.mpi_m_finalize()

        results, _ = spmd(prog)
        assert results[0] == E.MPI_SUCCESS

    def test_init_sets_component_mode_2(self):
        def prog(comm):
            mapi.mpi_m_init()
            mode = comm.engine.mpit.cvar_read("pml_monitoring_enable")
            mapi.mpi_m_finalize()
            return mode

        results, _ = spmd(prog)
        assert results[0] == 2


class TestStateMachine:
    def test_suspend_twice_is_multiple_call(self):
        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            first = mapi.mpi_m_suspend(msid)
            second = mapi.mpi_m_suspend(msid)
            mapi.mpi_m_finalize()
            return (first, second)

        results, _ = spmd(prog)
        assert results[0] == (E.MPI_SUCCESS, E.MPI_M_MULTIPLE_CALL)

    def test_continue_active_is_multiple_call(self):
        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            code = mapi.mpi_m_continue(msid)
            mapi.mpi_m_suspend(msid)
            mapi.mpi_m_finalize()
            return code

        results, _ = spmd(prog)
        assert results[0] == E.MPI_M_MULTIPLE_CALL

    def test_suspend_continue_cycle(self):
        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            codes = []
            for _ in range(3):
                codes.append(mapi.mpi_m_suspend(msid))
                codes.append(mapi.mpi_m_continue(msid))
            codes.append(mapi.mpi_m_suspend(msid))
            mapi.mpi_m_finalize()
            return codes

        results, _ = spmd(prog)
        assert all(c == E.MPI_SUCCESS for c in results[0])

    def test_reset_requires_suspended(self):
        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            active = mapi.mpi_m_reset(msid)
            mapi.mpi_m_suspend(msid)
            suspended = mapi.mpi_m_reset(msid)
            mapi.mpi_m_finalize()
            return (active, suspended)

        results, _ = spmd(prog)
        assert results[0] == (E.MPI_M_SESSION_NOT_SUSPENDED, E.MPI_SUCCESS)

    def test_free_requires_suspended(self):
        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            active = mapi.mpi_m_free(msid)
            mapi.mpi_m_suspend(msid)
            suspended = mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            return (active, suspended)

        results, _ = spmd(prog)
        assert results[0] == (E.MPI_M_SESSION_NOT_SUSPENDED, E.MPI_SUCCESS)

    def test_freed_msid_is_invalid(self):
        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            mapi.mpi_m_suspend(msid)
            mapi.mpi_m_free(msid)
            codes = (
                mapi.mpi_m_suspend(msid),
                mapi.mpi_m_continue(msid),
                mapi.mpi_m_get_data(msid)[0],
            )
            mapi.mpi_m_finalize()
            return codes

        results, _ = spmd(prog)
        assert all(c == E.MPI_M_INVALID_MSID for c in results[0])

    def test_garbage_msid_is_invalid(self):
        def prog(comm):
            mapi.mpi_m_init()
            code = mapi.mpi_m_suspend("not-a-msid")
            code2 = mapi.mpi_m_suspend(None)
            mapi.mpi_m_finalize()
            return (code, code2)

        results, _ = spmd(prog)
        assert results[0] == (E.MPI_M_INVALID_MSID, E.MPI_M_INVALID_MSID)

    def test_session_overflow(self):
        def prog(comm):
            mapi.mpi_m_init()
            msids = []
            code = E.MPI_SUCCESS
            for _ in range(MAX_SESSIONS + 1):
                code, msid = mapi.mpi_m_start(comm)
                if code != E.MPI_SUCCESS:
                    break
                msids.append(msid)
            for m in msids:
                mapi.mpi_m_suspend(m)
                mapi.mpi_m_free(m)
            mapi.mpi_m_finalize()
            return (code, len(msids))

        results, _ = spmd(prog, n_ranks=1)
        assert results[0] == (E.MPI_M_SESSION_OVERFLOW, MAX_SESSIONS)

    def test_freeing_makes_room(self):
        def prog(comm):
            mapi.mpi_m_init()
            for _ in range(MAX_SESSIONS):
                _, msid = mapi.mpi_m_start(comm)
                mapi.mpi_m_suspend(msid)
                mapi.mpi_m_free(msid)
            code, msid = mapi.mpi_m_start(comm)
            mapi.mpi_m_suspend(msid)
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            return code

        results, _ = spmd(prog, n_ranks=1)
        assert results[0] == E.MPI_SUCCESS


class TestAllMsid:
    def test_suspend_all(self):
        def prog(comm):
            mapi.mpi_m_init()
            _, a = mapi.mpi_m_start(comm)
            _, b = mapi.mpi_m_start(comm)
            code = mapi.mpi_m_suspend(MPI_M_ALL_MSID)
            fin = mapi.mpi_m_finalize()
            return (code, fin)

        results, _ = spmd(prog)
        assert results[0] == (E.MPI_SUCCESS, E.MPI_SUCCESS)

    def test_all_msid_targets_matching_state_only(self):
        def prog(comm):
            mapi.mpi_m_init()
            _, a = mapi.mpi_m_start(comm)
            _, b = mapi.mpi_m_start(comm)
            mapi.mpi_m_suspend(a)  # a suspended, b active
            code = mapi.mpi_m_continue(MPI_M_ALL_MSID)  # resumes only a
            mapi.mpi_m_suspend(MPI_M_ALL_MSID)
            mapi.mpi_m_free(MPI_M_ALL_MSID)
            fin = mapi.mpi_m_finalize()
            return (code, fin)

        results, _ = spmd(prog)
        assert results[0] == (E.MPI_SUCCESS, E.MPI_SUCCESS)

    def test_all_msid_invalid_where_forbidden(self):
        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            mapi.mpi_m_suspend(msid)
            codes = (
                mapi.mpi_m_get_info(MPI_M_ALL_MSID)[0],
                mapi.mpi_m_get_data(MPI_M_ALL_MSID)[0],
                mapi.mpi_m_allgather_data(MPI_M_ALL_MSID)[0],
                mapi.mpi_m_rootgather_data(MPI_M_ALL_MSID, 0)[0],
                mapi.mpi_m_flush(MPI_M_ALL_MSID, "/tmp/x"),
                mapi.mpi_m_rootflush(MPI_M_ALL_MSID, 0, "/tmp/x"),
            )
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            return codes

        results, _ = spmd(prog)
        assert all(c == E.MPI_M_INVALID_MSID for c in results[0])


class TestInvalidRoot:
    def test_rootgather_bad_root(self):
        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            mapi.mpi_m_suspend(msid)
            codes = (
                mapi.mpi_m_rootgather_data(msid, comm.size)[0],
                mapi.mpi_m_rootgather_data(msid, -1)[0],
                mapi.mpi_m_rootflush(msid, 99, "/tmp/x"),
            )
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            return codes

        results, _ = spmd(prog)
        assert all(c == E.MPI_M_INVALID_ROOT for c in results[0])


class TestGetInfo:
    def test_array_size_is_comm_size(self):
        def prog(comm):
            mapi.mpi_m_init()
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            _, msid = mapi.mpi_m_start(sub)
            err, provided, n = mapi.mpi_m_get_info(msid)
            mapi.mpi_m_suspend(msid)
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            return (err, provided, n)

        results, _ = spmd(prog, n_ranks=6)
        err, provided, n = results[0]
        assert err == E.MPI_SUCCESS
        assert provided == 3  # MPI_THREAD_MULTIPLE
        assert n == 3

    def test_int_ignore(self):
        from repro.core.constants import MPI_M_INT_IGNORE

        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            err, provided, n = mapi.mpi_m_get_info(
                msid, provided=MPI_M_INT_IGNORE, array_size=MPI_M_INT_IGNORE
            )
            mapi.mpi_m_suspend(msid)
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            return (err, provided, n)

        results, _ = spmd(prog)
        assert results[0] == (E.MPI_SUCCESS, None, None)

    def test_data_access_while_active_fails(self):
        def prog(comm):
            mapi.mpi_m_init()
            _, msid = mapi.mpi_m_start(comm)
            code = mapi.mpi_m_get_data(msid)[0]
            mapi.mpi_m_suspend(msid)
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            return code

        results, _ = spmd(prog)
        assert results[0] == E.MPI_M_SESSION_NOT_SUSPENDED
