"""Tests for flags, sentinels and error-code plumbing."""

import pytest

from repro.core.constants import (
    Flags,
    MPI_M_ALL_COMM,
    MPI_M_ALL_MSID,
    MPI_M_COLL_ONLY,
    MPI_M_DATA_IGNORE,
    MPI_M_INT_IGNORE,
    MPI_M_OSC_ONLY,
    MPI_M_P2P_ONLY,
    ErrorCode,
    flags_to_categories,
    format_flags,
)
from repro.core.errors import (
    InvalidRoot,
    MonitoringError,
    error_class,
    raise_for_code,
)


def test_all_comm_is_union():
    assert MPI_M_ALL_COMM == MPI_M_P2P_ONLY | MPI_M_COLL_ONLY | MPI_M_OSC_ONLY


def test_flags_to_categories():
    assert flags_to_categories(Flags.P2P_ONLY) == ("p2p",)
    assert flags_to_categories(Flags.COLL_ONLY) == ("coll",)
    assert flags_to_categories(Flags.OSC_ONLY) == ("osc",)
    assert set(flags_to_categories(Flags.ALL_COMM)) == {"p2p", "coll", "osc"}
    assert flags_to_categories(Flags.P2P_ONLY | Flags.OSC_ONLY) == ("p2p", "osc")


def test_empty_flags_rejected():
    with pytest.raises(ValueError):
        flags_to_categories(0)


def test_format_flags():
    assert format_flags(Flags.ALL_COMM) == "ALL_COMM"
    assert format_flags(Flags.P2P_ONLY) == "P2P_ONLY"
    assert format_flags(Flags.P2P_ONLY | Flags.COLL_ONLY) == "P2P_ONLY|COLL_ONLY"


def test_sentinels_are_unique_and_named():
    assert repr(MPI_M_ALL_MSID) == "MPI_M_ALL_MSID"
    assert repr(MPI_M_DATA_IGNORE) == "MPI_M_DATA_IGNORE"
    assert repr(MPI_M_INT_IGNORE) == "MPI_M_INT_IGNORE"
    assert MPI_M_ALL_MSID is not MPI_M_DATA_IGNORE


def test_error_codes_complete():
    names = {e.name for e in ErrorCode}
    expected = {
        "MPI_SUCCESS",
        "MPI_M_INTERNAL_FAIL",
        "MPI_M_MPIT_FAIL",
        "MPI_M_MISSING_INIT",
        "MPI_M_SESSION_STILL_ACTIVE",
        "MPI_M_SESSION_NOT_SUSPENDED",
        "MPI_M_INVALID_MSID",
        "MPI_M_SESSION_OVERFLOW",
        "MPI_M_MULTIPLE_CALL",
        "MPI_M_INVALID_ROOT",
    }
    assert names == expected


def test_error_class_mapping_roundtrip():
    for code in ErrorCode:
        if code is ErrorCode.MPI_SUCCESS:
            continue
        cls = error_class(code)
        assert issubclass(cls, MonitoringError)
        assert cls.code == code


def test_raise_for_code():
    raise_for_code(ErrorCode.MPI_SUCCESS)  # no-op
    with pytest.raises(InvalidRoot):
        raise_for_code(ErrorCode.MPI_M_INVALID_ROOT, "bad root")
