"""Smoke-run every example end to end — they must stay runnable.

Replaces the old ``test_examples.py``: same per-example assertions,
plus coverage for ``network_prediction.py`` and a completeness check
that no example on disk is missing from this file.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

# Every example and the load-bearing output lines it must print.
CASES = {
    "quickstart.py": ("total messages: 64",),
    "session_tour.py": ("one-sided traffic only shows under MPI_M_OSC_ONLY",),
    "collective_anatomy.py": ("bcast (binomial)", "barrier (dissemination)"),
    "network_prediction.py": (
        "moving-average prediction for the next window",
        "under-utilized windows",
    ),
    "reorder_stencil.py": ("speedup",),
    "cg_reordering.py": ("zeta identical",),
}
SLOW = {"reorder_stencil.py", "cg_reordering.py"}


def run_example(name: str, timeout: float = 240.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(CASES), (
        f"examples/ and CASES disagree: {on_disk ^ set(CASES)}"
    )


@pytest.mark.parametrize(
    "name",
    [
        pytest.param(n, marks=[pytest.mark.slow] if n in SLOW else [])
        for n in sorted(CASES)
    ],
)
def test_example_runs(name):
    out = run_example(name)
    for needle in CASES[name]:
        assert needle in out, f"{name}: missing {needle!r}"
