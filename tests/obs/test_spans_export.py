"""Span recorder semantics and the Chrome trace-event export."""

import json

import pytest

from repro.obs.export import (
    VIRTUAL_PID,
    WALL_PID,
    WALL_TID,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.spans import WALL_LANE, SpanRecorder


class TestSpanRecorder:
    def test_nesting_records_depth(self):
        rec = SpanRecorder()
        rec.begin(0, "outer", 0.0)
        rec.begin(0, "inner", 1.0)
        assert rec.depth(0) == 2
        assert rec.end(0, 2.0) == "inner"
        assert rec.end(0, 3.0) == "outer"
        # Finished in close order; depth = spans still open at close.
        assert rec.finished == [
            (0, "inner", 1.0, 2.0, 1, None),
            (0, "outer", 0.0, 3.0, 0, None),
        ]

    def test_lanes_are_independent_stacks(self):
        rec = SpanRecorder()
        rec.begin(0, "a", 0.0)
        rec.begin(1, "b", 0.0)
        rec.end(0, 1.0)
        rec.end(1, 2.0)
        assert len(rec) == 2
        assert rec.lanes() == [0, 1]

    def test_end_without_begin_raises(self):
        rec = SpanRecorder()
        with pytest.raises(ValueError, match="span end without begin"):
            rec.end(3, 1.0)

    def test_backwards_clock_clamped(self):
        rec = SpanRecorder()
        rec.begin(0, "s", 5.0)
        rec.end(0, 4.0)
        lane, name, t0, t1, depth, args = rec.finished[0]
        assert (t0, t1) == (5.0, 5.0)

    def test_wall_lane_sorts_after_ranks(self):
        rec = SpanRecorder()
        rec.wall_begin("host")
        rec.begin(2, "virt", 0.0)
        rec.end(2, 1.0)
        rec.wall_end()
        assert rec.lanes() == [2, WALL_LANE]
        wall = [s for s in rec.finished if s[0] == WALL_LANE]
        assert len(wall) == 1 and wall[0][3] >= wall[0][2] >= 0.0

    def test_wall_span_context_manager_closes_on_error(self):
        rec = SpanRecorder()
        with pytest.raises(RuntimeError):
            with rec.wall_span("boom", {"k": 1}):
                raise RuntimeError
        assert rec.depth(WALL_LANE) == 0
        assert rec.finished[0][1] == "boom"
        assert rec.finished[0][5] == {"k": 1}


def _sample_recorder():
    rec = SpanRecorder()
    rec.begin(0, "bcast", 0.001)
    rec.end(0, 0.003)
    rec.begin(1, "reduce", 0.002, {"alg": "binomial"})
    rec.end(1, 0.004)
    rec.wall_begin("run")
    rec.wall_end()
    return rec


class TestChromeTrace:
    def test_event_mapping(self):
        doc = chrome_trace(_sample_recorder(), n_ranks=2)
        evs = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"

        x = [e for e in evs if e["ph"] == "X"]
        virt = [e for e in x if e["pid"] == VIRTUAL_PID]
        wall = [e for e in x if e["pid"] == WALL_PID]
        assert {e["tid"] for e in virt} == {0, 1}
        assert [e["tid"] for e in wall] == [WALL_TID]
        # Virtual seconds become microseconds.
        bcast = next(e for e in virt if e["name"] == "bcast")
        assert bcast["ts"] == pytest.approx(1_000.0)
        assert bcast["dur"] == pytest.approx(2_000.0)
        reduce_ev = next(e for e in virt if e["name"] == "reduce")
        assert reduce_ev["args"] == {"alg": "binomial"}

    def test_metadata_names_every_rank_lane(self):
        # n_ranks forces lanes even for ranks that never opened a span.
        doc = chrome_trace(_sample_recorder(), n_ranks=4)
        names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        for r in range(4):
            assert names[(VIRTUAL_PID, r)] == f"rank {r}"
        assert names[(WALL_PID, WALL_TID)] == "wall"

    def test_meta_becomes_other_data(self):
        doc = chrome_trace(SpanRecorder(), meta={"op": "reduce"})
        assert doc["otherData"] == {"op": "reduce"}

    def test_valid_and_round_trips(self, tmp_path):
        doc = chrome_trace(_sample_recorder(), n_ranks=2)
        assert validate_chrome_trace(doc, n_ranks=2) == []
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), doc)
        assert json.loads(path.read_text()) == doc


class TestValidate:
    def test_rejects_non_document(self):
        assert validate_chrome_trace([]) == [
            "document must be an object with a 'traceEvents' list"
        ]
        assert validate_chrome_trace({"traceEvents": 3})

    def test_flags_bad_events(self):
        doc = {"traceEvents": [
            {"pid": 1, "tid": 0},                                # no ph
            {"ph": "X", "pid": "1", "tid": 0},                   # str pid
            {"ph": "X", "pid": 1, "tid": 0, "ts": -1, "dur": 2,
             "name": "s"},                                       # bad ts
            {"ph": "X", "pid": 1, "tid": 0, "ts": 0, "dur": -2,
             "name": "s"},                                       # bad dur
        ]}
        errors = validate_chrome_trace(doc)
        assert len(errors) == 4
        assert "missing 'ph'" in errors[0]
        assert "must be integers" in errors[1]
        assert "bad 'ts'" in errors[2]
        assert "bad 'dur'" in errors[3]

    def test_n_ranks_requires_all_lanes(self):
        doc = chrome_trace(_sample_recorder(), n_ranks=2)
        errors = validate_chrome_trace(doc, n_ranks=4)
        assert errors == ["missing virtual-time lanes for ranks [2, 3]"]
        no_wall = {"traceEvents": [
            e for e in doc["traceEvents"]
            if not (e["ph"] == "M" and e["pid"] == WALL_PID)
        ]}
        assert ("missing the wall-clock self-profile lane"
                in validate_chrome_trace(no_wall, n_ranks=2))
