"""Each diagnosis pass against hand-built timelines with a planted
defect plus a clean control, then the full report contract E2E."""

import json

import numpy as np
import pytest

from repro.obs.diagnose import (DiagnosisConfig, best_known_algorithm,
                                default_algorithm, detect_alg_mismatch,
                                detect_congested_links, detect_stalls,
                                detect_stragglers, diagnose, render_report,
                                validate_report, PASSES, REPORT_KIND,
                                REPORT_SCHEMA)
from repro.obs.timeline import (CollectiveInstance, CounterSeries, Timeline,
                                Wait)

CFG = DiagnosisConfig()


def _series(total):
    return CounterSeries.from_events([(0.1, total * 0.5), (0.9, total * 0.5)])


def _link_timeline(cluster_bytes, node_bytes):
    return Timeline(
        world_size=8, makespan=1.0,
        counters={"link:bytes:cluster": _series(cluster_bytes),
                  "link:bytes:node": _series(node_bytes)},
        link_alpha={"cluster": 1.5e-6, "node": 7e-7},
    )


class TestCongestedLinks:
    def test_planted_hot_class_flagged(self):
        tl = _link_timeline(cluster_bytes=1e9, node_bytes=1e7)
        found = detect_congested_links(tl, CFG)
        assert len(found) == 1
        f = found[0]
        assert f.subject == "cluster"
        assert f.severity == "critical"          # share is ~99%
        assert f.detail["bytes"] == pytest.approx(1e9)
        assert 0.0 <= f.t0 < f.t1 <= 1.0

    def test_balanced_classes_clean(self):
        # Equal bytes*latency cost on both classes: nothing stands out.
        tl = _link_timeline(cluster_bytes=7e8, node_bytes=1.5e9)
        assert detect_congested_links(tl, CFG) == []

    def test_single_live_class_skipped(self):
        tl = _link_timeline(cluster_bytes=1e9, node_bytes=0.0)
        assert detect_congested_links(tl, CFG) == []


def _collectives(arrival_sets, op="reduce", alg="", nbytes=100):
    out = []
    for i, arrivals in enumerate(arrival_sets):
        out.append(CollectiveInstance(
            comm_id=0, index=i, op=op, alg=alg, nbytes=nbytes,
            ranks=tuple(arrivals), arrivals=dict(arrivals),
            t_end=max(arrivals.values()) + 0.1))
    return out


class TestStragglers:
    def test_planted_straggler_flagged(self):
        insts = _collectives([
            {0: 1.00, 1: 1.01, 2: 0.99, 3: 1.80},
            {0: 2.00, 1: 2.02, 2: 1.98, 3: 2.90},
            {0: 3.00, 1: 3.01, 2: 2.99, 3: 3.85},
        ])
        tl = Timeline(world_size=4, makespan=10.0, collectives=insts)
        found = detect_stragglers(tl, CFG)
        assert len(found) == 1
        f = found[0]
        assert f.subject == "rank 3"
        assert f.severity == "critical"          # late at 3/3 instances
        assert f.detail["late"] == 3 and f.detail["instances"] == 3

    def test_tight_arrivals_clean(self):
        insts = _collectives([
            {0: 1.00, 1: 1.01, 2: 0.99, 3: 1.02},
            {0: 2.00, 1: 2.02, 2: 1.98, 3: 2.01},
        ])
        tl = Timeline(world_size=4, makespan=10.0, collectives=insts)
        assert detect_stragglers(tl, CFG) == []

    def test_one_off_lateness_below_share_clean(self):
        # Late once out of three: below the 50% late-share bar.
        insts = _collectives([
            {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.9},
            {0: 2.0, 1: 2.0, 2: 2.0, 3: 2.0},
            {0: 3.0, 1: 3.0, 2: 3.0, 3: 3.0},
        ])
        tl = Timeline(world_size=4, makespan=10.0, collectives=insts)
        assert detect_stragglers(tl, CFG) == []


class TestAlgMismatch:
    def test_grid_tables(self):
        assert default_algorithm("reduce", 8) == "binomial"
        assert default_algorithm("allgather", 8) == "recursive_doubling"
        assert default_algorithm("allgather", 6) == "ring"
        assert best_known_algorithm("reduce", 8_000_000, 8) == "binary"
        assert best_known_algorithm("reduce", 100_000, 8) == "binomial"
        assert best_known_algorithm("barrier", 0, 8) == "dissemination"

    def test_planted_mismatch_flagged(self):
        insts = _collectives([{r: 1.0 for r in range(8)}] * 2,
                             op="reduce", alg="binomial", nbytes=8_000_000)
        tl = Timeline(world_size=8, makespan=10.0, collectives=insts)
        found = detect_alg_mismatch(tl, CFG)
        assert len(found) == 1
        f = found[0]
        assert f.detail["algorithm"] == "binomial"
        assert f.detail["best_known"] == "binary"
        assert f.detail["calls"] == 2

    def test_default_alg_resolved_before_compare(self):
        # alg="" means "library default" — binomial for reduce — which
        # still mismatches the grid's large-message preference.
        insts = _collectives([{r: 1.0 for r in range(8)}],
                             op="reduce", alg="", nbytes=8_000_000)
        tl = Timeline(world_size=8, makespan=10.0, collectives=insts)
        found = detect_alg_mismatch(tl, CFG)
        assert len(found) == 1 and found[0].detail["algorithm"] == "binomial"

    def test_best_choice_clean(self):
        insts = _collectives([{r: 1.0 for r in range(8)}],
                             op="reduce", alg="binary", nbytes=8_000_000)
        tl = Timeline(world_size=8, makespan=10.0, collectives=insts)
        assert detect_alg_mismatch(tl, CFG) == []

    def test_small_messages_ignored(self):
        insts = _collectives([{r: 1.0 for r in range(8)}],
                             op="reduce", alg="flat", nbytes=50_000)
        tl = Timeline(world_size=8, makespan=10.0, collectives=insts)
        assert detect_alg_mismatch(tl, CFG) == []


def _stall_timeline(t_send, t_recv=None):
    """Rank 1 waits [1, 6] of a 10s run for seq 0 sent by rank 2."""
    messages = {
        "src": np.array([2], dtype=np.int32),
        "dst": np.array([1], dtype=np.int32),
        "nbytes": np.array([1024], dtype=np.int64),
        "t_send": np.array([t_send]),
        "t_recv": np.array([t_send + 0.05 if t_recv is None else t_recv]),
    }
    return Timeline(world_size=4, makespan=10.0,
                    waits=[Wait(rank=1, t0=1.0, t1=6.0, seq=0)],
                    messages=messages)


class TestStalls:
    def test_planted_serialization_stall_flagged(self):
        tl = _stall_timeline(t_send=5.9)     # wire empty for 98% of wait
        found = detect_stalls(tl, CFG)
        assert len(found) == 1
        f = found[0]
        assert f.subject == "rank 1"
        assert f.severity == "critical"      # 5s of a 10s makespan
        assert f.detail["sender"] == 2
        assert f.detail["sender_issue_time"] == pytest.approx(5.9)
        assert "rank 2" in f.summary

    def test_bandwidth_bound_wait_clean(self):
        # Sender issued early and the transfer spans the window: the
        # data was on the wire nearly the whole wait, so this is a
        # transfer-time (bandwidth) wait, not serialization.
        tl = _stall_timeline(t_send=1.1, t_recv=5.95)
        assert detect_stalls(tl, CFG) == []

    def test_short_waits_clean(self):
        messages = {
            "src": np.array([2], dtype=np.int32),
            "dst": np.array([1], dtype=np.int32),
            "nbytes": np.array([8], dtype=np.int64),
            "t_send": np.array([0.09]),
            "t_recv": np.array([0.10]),
        }
        tl = Timeline(world_size=4, makespan=10.0,
                      waits=[Wait(rank=1, t0=0.0, t1=0.1, seq=0)],
                      messages=messages)
        assert detect_stalls(tl, CFG) == []


class TestReport:
    def _combined(self):
        return Timeline(
            world_size=8, makespan=10.0,
            counters={"link:bytes:cluster": _series(1e9),
                      "link:bytes:node": _series(1e7)},
            link_alpha={"cluster": 1.5e-6, "node": 7e-7},
            collectives=_collectives(
                [{r: 1.0 + (0.8 if r == 3 else 0.0) for r in range(8)}] * 2,
                op="reduce", alg="binomial", nbytes=8_000_000),
            waits=[Wait(rank=1, t0=1.0, t1=6.0, seq=0)],
            messages={
                "src": np.array([2], dtype=np.int32),
                "dst": np.array([1], dtype=np.int32),
                "nbytes": np.array([1024], dtype=np.int64),
                "t_send": np.array([5.9]),
                "t_recv": np.array([5.95]),
            },
        )

    def test_all_passes_fire_on_combined_defects(self):
        doc = diagnose(self._combined())
        assert validate_report(doc) == []
        assert doc["schema"] == REPORT_SCHEMA and doc["kind"] == REPORT_KIND
        assert [p["name"] for p in doc["passes"]] == list(PASSES)
        assert all(p["ran"] for p in doc["passes"])
        fired = {f["pass"] for f in doc["findings"]}
        assert fired == set(PASSES)
        # Sorted most-severe first.
        sev = [f["severity"] for f in doc["findings"]]
        order = {"critical": 0, "warning": 1, "info": 2}
        assert sev == sorted(sev, key=order.__getitem__)
        # Round-trips through JSON.
        assert validate_report(json.loads(json.dumps(doc))) == []

    def test_empty_timeline_skips_passes(self):
        doc = diagnose(Timeline(world_size=4, makespan=1.0))
        assert validate_report(doc) == []
        assert not any(p["ran"] for p in doc["passes"])
        assert doc["findings"] == []

    def test_meta_merged(self):
        tl = Timeline(world_size=4, makespan=1.0, meta={"a": 1, "b": 1})
        doc = diagnose(tl, meta={"b": 2})
        assert doc["meta"] == {"a": 1, "b": 2}

    def test_render_report_is_readable(self):
        text = render_report(diagnose(self._combined()))
        assert "why-is-this-slow" in text
        assert "passes ran:" in text
        assert "rank 3" in text and "cluster" in text

    def test_render_clean_report(self):
        text = render_report(diagnose(Timeline(world_size=4, makespan=1.0)))
        assert "no findings" in text

    def test_validate_rejects_garbage(self):
        assert validate_report([]) != []
        assert validate_report({"schema": 99, "kind": REPORT_KIND}) != []
        doc = diagnose(Timeline(world_size=4, makespan=1.0))
        doc["passes"] = doc["passes"][:-1]
        assert any("passes" in e for e in validate_report(doc))


class TestEndToEnd:
    def test_diagnose_fig5_trace_timeline(self, fig5_timelines):
        _, tl = fig5_timelines
        doc = diagnose(tl, meta={"suite": "tests"})
        assert validate_report(doc) == []
        assert doc["source"] == "trace"
        assert all(p["ran"] for p in doc["passes"])
        # The shaped fig5 cell is deliberately healthy at the paper's
        # defaults: no critical congestion or algorithm complaints.
        assert not any(f["pass"] == "alg_mismatch" for f in doc["findings"])
        assert isinstance(render_report(doc), str)

    def test_diagnose_fig5_run_timeline(self, fig5_timelines):
        tl, _ = fig5_timelines
        doc = diagnose(tl)
        assert validate_report(doc) == []
        assert doc["source"] == "run"
