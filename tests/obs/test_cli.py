"""The ``python -m repro.obs`` surface, end to end on a tiny cell."""

import json

import pytest

from repro import obs
from repro.obs import cli


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    """One tiny instrumented fig5 run shared by every CLI test."""
    d = tmp_path_factory.mktemp("obs")
    paths = {
        "trace": str(d / "trace.json"),
        "metrics": str(d / "metrics.json"),
        "messages": str(d / "messages.trace"),
    }
    rc = cli.main([
        "export", "--nodes", "1", "--sizes", "50_000,100_000",
        "--out", paths["trace"],
        "--metrics", paths["metrics"],
        "--messages", paths["messages"],
    ])
    assert rc == 0
    return paths


class TestExport:
    def test_leaves_layer_disabled(self, exported):
        assert not obs.is_enabled()

    def test_trace_is_valid_chrome_json(self, exported):
        from repro.obs.export import validate_chrome_trace

        with open(exported["trace"], "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        # One PlaFRIM node = 24 ranks.
        assert validate_chrome_trace(doc, n_ranks=24) == []
        x = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(x) > 24  # collectives on every rank + wall spans
        assert any(e["name"] == "fig5.run_cell" for e in x)
        assert doc["otherData"]["sizes"] == [50_000, 100_000]

    def test_metrics_snapshot_written(self, exported):
        with open(exported["metrics"], "r", encoding="utf-8") as fh:
            snap = json.load(fh)
        assert snap["counters"]["repro_engine_runs_total"] == 1
        assert any(k.startswith("repro_net_link_bytes_total")
                   for k in snap["counters"])

    def test_messages_dumped(self, exported):
        from repro.simmpi.trace import MessageTracer

        tracer = MessageTracer.load(exported["messages"])
        assert tracer.world_size == 24
        assert len(tracer) > 0


class TestReaders:
    def test_validate_ok(self, exported, capsys):
        assert cli.main(["validate", exported["trace"],
                         "--ranks", "24"]) == 0
        assert "valid" in capsys.readouterr().out

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "X"}]}')
        assert cli.main(["validate", str(bad)]) == 1
        assert "error:" in capsys.readouterr().out

    def test_top(self, exported, capsys):
        assert cli.main(["top", "--messages", exported["messages"],
                         "-k", "3", "--metrics", exported["metrics"]]) == 0
        out = capsys.readouterr().out
        assert "top 3 rank pairs" in out
        assert "per-link-class bytes:" in out

    def test_top_category_filter(self, exported, capsys):
        assert cli.main(["top", "--messages", exported["messages"],
                         "--category", "coll"]) == 0
        assert "(coll," in capsys.readouterr().out

    def test_heatmap(self, exported, capsys):
        assert cli.main(["heatmap", "--messages", exported["messages"]]) == 0
        out = capsys.readouterr().out
        assert "byte heatmap" in out
        assert "24 ranks" in out
