"""The ``python -m repro.obs`` surface, end to end on a tiny cell."""

import json

import pytest

from repro import obs
from repro.obs import cli


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    """One tiny instrumented fig5 run shared by every CLI test."""
    d = tmp_path_factory.mktemp("obs")
    paths = {
        "trace": str(d / "trace.json"),
        "metrics": str(d / "metrics.json"),
        "messages": str(d / "messages.trace"),
    }
    rc = cli.main([
        "export", "--nodes", "1", "--sizes", "50_000,100_000",
        "--out", paths["trace"],
        "--metrics", paths["metrics"],
        "--messages", paths["messages"],
    ])
    assert rc == 0
    return paths


class TestExport:
    def test_leaves_layer_disabled(self, exported):
        assert not obs.is_enabled()

    def test_trace_is_valid_chrome_json(self, exported):
        from repro.obs.export import validate_chrome_trace

        with open(exported["trace"], "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        # One PlaFRIM node = 24 ranks.
        assert validate_chrome_trace(doc, n_ranks=24) == []
        x = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(x) > 24  # collectives on every rank + wall spans
        assert any(e["name"] == "fig5.run_cell" for e in x)
        assert doc["otherData"]["sizes"] == [50_000, 100_000]

    def test_metrics_snapshot_written(self, exported):
        with open(exported["metrics"], "r", encoding="utf-8") as fh:
            snap = json.load(fh)
        assert snap["counters"]["repro_engine_runs_total"] == 1
        assert any(k.startswith("repro_net_link_bytes_total")
                   for k in snap["counters"])

    def test_messages_dumped(self, exported):
        from repro.simmpi.trace import MessageTracer

        tracer = MessageTracer.load(exported["messages"])
        assert tracer.world_size == 24
        assert len(tracer) > 0


class TestReaders:
    def test_validate_ok(self, exported, capsys):
        assert cli.main(["validate", exported["trace"],
                         "--ranks", "24"]) == 0
        assert "valid" in capsys.readouterr().out

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "X"}]}')
        assert cli.main(["validate", str(bad)]) == 1
        assert "error:" in capsys.readouterr().out

    def test_top(self, exported, capsys):
        assert cli.main(["top", "--messages", exported["messages"],
                         "-k", "3", "--metrics", exported["metrics"]]) == 0
        out = capsys.readouterr().out
        assert "top 3 rank pairs" in out
        assert "per-link-class bytes:" in out

    def test_top_category_filter(self, exported, capsys):
        assert cli.main(["top", "--messages", exported["messages"],
                         "--category", "coll"]) == 0
        assert "(coll," in capsys.readouterr().out

    def test_heatmap(self, exported, capsys):
        assert cli.main(["heatmap", "--messages", exported["messages"]]) == 0
        out = capsys.readouterr().out
        assert "byte heatmap" in out
        assert "24 ranks" in out


@pytest.fixture(scope="module")
def diagnosed(tmp_path_factory):
    """One tiny live ``diagnose`` run shared by the report tests."""
    d = tmp_path_factory.mktemp("diag")
    paths = {
        "report": str(d / "report.json"),
        "chrome": str(d / "diag.trace.json"),
        "dir": d,
    }
    rc = cli.main([
        "diagnose", "--nodes", "1", "--sizes", "50_000,100_000",
        "--report", paths["report"], "--chrome", paths["chrome"],
    ])
    assert rc == 0
    return paths


class TestDiagnose:
    def test_leaves_layer_disabled(self, diagnosed):
        assert not obs.is_enabled()

    def test_report_validates(self, diagnosed):
        from repro.obs.diagnose import validate_report, PASSES

        with open(diagnosed["report"], "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert validate_report(doc) == []
        assert doc["source"] == "run"
        assert doc["world_size"] == 24
        assert all(p["ran"] for p in doc["passes"])
        assert [p["name"] for p in doc["passes"]] == list(PASSES)
        # All three layers made it into the joined store.
        assert doc["layers"]["spans"]["rows"] > 0
        assert doc["layers"]["counters"]["series"] > 0
        assert doc["layers"]["events"]["messages"] > 0

    def test_chrome_trace_has_counter_and_findings_lanes(self, diagnosed):
        from repro.obs.export import validate_chrome_trace

        with open(diagnosed["chrome"], "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert validate_chrome_trace(doc, n_ranks=24) == []
        counters = [e for e in doc["traceEvents"] if e.get("ph") == "C"]
        assert any(e["name"].startswith("link bytes") for e in counters)

    def test_terminal_rendering(self, capsys):
        rc = cli.main(["diagnose", "--nodes", "1", "--sizes", "50_000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "why-is-this-slow report" in out
        assert "passes ran:" in out

    def test_json_to_stdout(self, capsys):
        from repro.obs.diagnose import validate_report

        rc = cli.main(["diagnose", "--nodes", "1", "--sizes", "50_000",
                       "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_report(doc) == []

    def test_json_report_to_stdout_logs_to_stderr(self, capsys, tmp_path):
        """The shared CLI convention (also covered for `repro.serve`
        stats/query in tests/serve): stdout carries nothing but the
        machine-readable report, every log line goes to stderr."""
        from repro.obs.diagnose import validate_report

        report = str(tmp_path / "r.json")
        rc = cli.main(["diagnose", "--nodes", "1", "--sizes", "50_000",
                       "--json", "--report", report])
        assert rc == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)  # strict parse: pure JSON stdout
        assert validate_report(doc) == []
        assert f"{report}: diagnosis report" in captured.err


class TestTraceIn:
    @pytest.fixture(scope="class")
    def trace_path(self, instrumented_fig5, tmp_path_factory):
        _, _, trace, _ = instrumented_fig5
        path = str(tmp_path_factory.mktemp("tin") / "fig5.trace")
        trace.dump(path)
        return path

    def test_diagnose_from_trace(self, trace_path, tmp_path, capsys):
        from repro.obs.diagnose import validate_report

        report = str(tmp_path / "r.json")
        rc = cli.main(["diagnose", "--trace-in", trace_path,
                       "--report", report])
        assert rc == 0
        assert "no re-simulation" in capsys.readouterr().err
        with open(report, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert validate_report(doc) == []
        assert doc["source"] == "trace"
        assert doc["meta"]["trace"] == trace_path

    def test_export_from_trace(self, trace_path, tmp_path, capsys):
        from repro.obs.export import validate_chrome_trace

        out = str(tmp_path / "t.json")
        rc = cli.main(["export", "--trace-in", trace_path, "--out", out])
        assert rc == 0
        assert "no re-simulation" in capsys.readouterr().out
        with open(out, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert validate_chrome_trace(doc) == []
        x = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert x  # collective spans reconstructed from the trace
