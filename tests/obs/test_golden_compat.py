"""Observation must not perturb the simulation.

Re-runs hot-path golden workloads with the observability layer fully
enabled (metrics + spans + the chained link hook) and requires the
engine snapshot — per-rank clocks, monitoring matrices, NIC counters,
and even the context-switch count — to be bit-identical to the
committed goldens captured without it.
"""

import json
import os

import pytest

from repro import obs
from scripts.capture_hotpath_golden import snapshot_engine
from tests.golden.hotpath_workloads import WORKLOADS

GOLDEN = os.path.join(os.path.dirname(__file__), "..", "golden",
                      "hotpath_golden.json")

# The two workloads that exercise every obs touch point: segmented
# collectives + monitoring sessions + reorder (fig5) and the
# overhead-charged OSC path.  The full matrix runs in
# tests/simmpi/test_hotpath_equivalence.py without obs.
CASES = ["fig5_shaped", "mixed_monitored", "osc_and_overhead"]


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN, "r", encoding="ascii") as fh:
        return json.load(fh)


@pytest.mark.parametrize("name", CASES)
def test_enabled_obs_is_bit_identical_to_golden(name, golden):
    registry, spans = obs.enable()
    try:
        engine, results = WORKLOADS[name]()
    finally:
        obs.disable()

    snap = snapshot_engine(engine)
    snap["results"] = results
    expected = dict(golden[name])
    assert snap == expected  # includes "switches": scheduling unchanged

    # ...and the run really was observed, not silently skipped.
    counters = registry.snapshot()["counters"]
    assert counters["repro_engine_runs_total"] == 1
    assert counters["repro_engine_messages_total"] == engine.messages > 0
    assert len(spans) > 0


def test_timeline_ingestion_is_bit_identical(golden, instrumented_fig5,
                                             fig5_timelines):
    """obs + ambient replay capture + both timeline ingestions leave
    the engine snapshot bit-identical to the uninstrumented golden."""
    engine, _, _, results = instrumented_fig5
    tl_run, tl_trace = fig5_timelines

    # Ingestion (including the pml flush it triggers) happened in the
    # fixtures, before this snapshot — so any perturbation would show.
    snap = snapshot_engine(engine)
    snap["results"] = results
    assert snap == dict(golden["fig5_shaped"])

    # ...and both ingestion paths actually consumed the run.
    for tl in (tl_run, tl_trace):
        summary = tl.layer_summary()
        assert summary["events"]["messages"] > 0
        assert summary["events"]["collectives"] > 0
