"""The cross-layer timeline store: columns, queries, both ingestions."""

import numpy as np
import pytest

from repro.obs.timeline import (CounterSeries, SpanTable, Timeline, Wait)


class TestCounterSeries:
    def test_at_and_delta(self):
        s = CounterSeries([1.0, 2.0, 4.0], [10.0, 30.0, 60.0])
        assert s.at(0.5) == 0.0
        assert s.at(1.0) == 10.0
        assert s.at(3.0) == 30.0
        assert s.at(100.0) == 60.0 == s.total
        assert s.delta(1.0, 4.0) == 50.0

    def test_from_events_accumulates_and_merges_ties(self):
        s = CounterSeries.from_events([(2.0, 5.0), (1.0, 1.0), (2.0, 3.0)])
        assert list(s.times) == [1.0, 2.0]
        assert list(s.values) == [1.0, 9.0]

    def test_signed_deltas_model_a_depth_series(self):
        s = CounterSeries.from_events(
            [(0.0, 1.0), (1.0, 1.0), (2.0, -1.0), (3.0, -1.0)])
        assert s.at(1.5) == 2.0
        assert s.at(3.0) == 0.0

    def test_window_of_mass_brackets_the_growth(self):
        s = CounterSeries.from_events([(float(i), 1.0) for i in range(100)])
        t0, t1 = s.window_of_mass()
        assert 0.0 <= t0 < t1 <= 99.0
        assert t0 >= 4.0 and t1 <= 95.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CounterSeries([1.0], [1.0, 2.0])


def _table():
    return SpanTable.from_rows([
        (0, "reduce", 0.0, 1.0, 0, None),
        (1, "reduce", 0.2, 1.1, 0, None),
        (0, "barrier", 2.0, 2.5, 0, {"k": 1}),
        (1, "barrier", 2.1, 2.6, 0, None),
    ])


class TestSpanTable:
    def test_interning_and_rows(self):
        t = _table()
        assert len(t) == 4
        assert t.names == ["reduce", "barrier"]
        r = t.row(2)
        assert (r.rank, r.name, r.args) == (0, "barrier", {"k": 1})

    def test_select_window_rank_name(self):
        t = _table()
        assert len(t.select(t0=0.0, t1=1.5)) == 2
        assert len(t.select(ranks=[0])) == 2
        assert len(t.select(names=["barrier"])) == 2
        assert len(t.select(t0=2.55, t1=3.0)) == 1  # only rank 1's barrier

    def test_empty(self):
        t = SpanTable.empty()
        assert len(t) == 0
        assert list(t.select()) == []


class TestOverlapJoin:
    def test_pairs_intersect(self):
        t = _table()
        tl = Timeline(world_size=2, makespan=3.0, spans=t)
        pairs = tl.overlap_join(tl.span_indices(ranks=[0]),
                                tl.span_indices(ranks=[1]))
        # reduce0 x reduce1 and barrier0 x barrier1 overlap; the
        # cross-op pairs do not.
        assert sorted(pairs) == [(0, 1), (2, 3)]


class TestInflightCoverage:
    def test_union_of_intervals(self):
        msgs = {
            "src": np.array([0, 0], dtype=np.int32),
            "dst": np.array([1, 1], dtype=np.int32),
            "nbytes": np.array([8, 8], dtype=np.int64),
            "t_send": np.array([1.0, 2.0]),
            "t_recv": np.array([3.0, 4.0]),
        }
        tl = Timeline(world_size=2, makespan=10.0, messages=msgs)
        assert tl.inflight_coverage(1, 0.0, 10.0) == pytest.approx(3.0)
        assert tl.inflight_coverage(1, 0.0, 0.5) == 0.0
        assert tl.inflight_coverage(0, 0.0, 10.0) == 0.0

    def test_unreceived_message_covers_to_makespan(self):
        msgs = {
            "src": np.array([0], dtype=np.int32),
            "dst": np.array([1], dtype=np.int32),
            "nbytes": np.array([8], dtype=np.int64),
            "t_send": np.array([6.0]),
            "t_recv": np.array([np.nan]),
        }
        tl = Timeline(world_size=2, makespan=10.0, messages=msgs)
        assert tl.inflight_coverage(1, 0.0, 10.0) == pytest.approx(4.0)


class TestFromRun:
    def test_layers_present(self, fig5_timelines):
        tl, _ = fig5_timelines
        s = tl.layer_summary()
        assert s["spans"]["rows"] > 0
        assert s["events"]["messages"] > 0
        assert s["events"]["collectives"] > 0
        assert tl.source == "run"
        assert tl.pml["coll"]["messages"] > 0
        # NIC cumulative series straight off the hardware counters.
        assert tl.counter_keys("nic:xmit:")

    def test_nic_series_matches_counters(self, instrumented_fig5,
                                         fig5_timelines):
        engine, _, _, _ = instrumented_fig5
        tl, _ = fig5_timelines
        nic = engine.network.nic
        for node in range(nic.n_nodes):
            key = f"nic:xmit:node{node}"
            if key in tl.counters:
                assert tl.counter(key).total == nic.total_xmit_bytes(node)

    def test_link_alpha_from_params(self, fig5_timelines):
        tl, _ = fig5_timelines
        assert set(tl.link_alpha) == set(tl.link_classes())
        assert all(a > 0 for a in tl.link_alpha.values())
        # Deeper (closer) classes have smaller latency than cluster.
        assert tl.link_alpha["cluster"] == max(tl.link_alpha.values())

    def test_window_query_narrows(self, fig5_timelines):
        tl, _ = fig5_timelines
        full = tl.span_indices()
        half = tl.span_indices(t0=0.0, t1=tl.makespan / 4)
        assert 0 < len(half) < len(full)
        ranks = {s.rank for s in tl.spans_between(ranks=[0, 1])}
        assert ranks <= {0, 1}


class TestFromTrace:
    def test_no_resimulation_join_matches_run(self, fig5_timelines):
        tl_run, tl_trace = fig5_timelines
        assert tl_trace.source == "trace"
        assert tl_trace.world_size == tl_run.world_size
        assert tl_trace.makespan == pytest.approx(tl_run.makespan)
        # The correlation keys line up across ingestion paths: same
        # link classes, identical per-class byte totals.
        assert tl_trace.link_classes() == tl_run.link_classes()
        for cls in tl_run.link_classes():
            assert tl_trace.link_bytes(cls) == tl_run.link_bytes(cls)
        assert tl_trace.pml["coll"]["bytes"] == tl_run.pml["coll"]["bytes"]

    def test_link_bytes_match_trace_byte_matrix(self, instrumented_fig5,
                                                fig5_timelines):
        _, _, trace, _ = instrumented_fig5
        _, tl = fig5_timelines
        total = sum(tl.link_bytes(c) for c in tl.link_classes())
        assert total == int(trace.byte_matrix().sum())

    def test_span_names_subset_of_live(self, fig5_timelines):
        tl_run, tl_trace = fig5_timelines
        assert set(tl_trace.spans.names) <= set(tl_run.spans.names)

    def test_collective_arrivals_cover_participants(self, fig5_timelines):
        _, tl = fig5_timelines
        inst = max(tl.collectives, key=lambda c: len(c.arrivals))
        assert set(inst.arrivals) == set(inst.ranks)
        assert inst.t_end >= max(inst.arrivals.values())

    def test_waits_match_recv_events(self, instrumented_fig5,
                                     fig5_timelines):
        _, _, trace, _ = instrumented_fig5
        _, tl = fig5_timelines
        n_recv = sum(1 for ev in trace.events if ev[0] == "R")
        assert len(tl.waits) == n_recv
        assert all(w.t1 >= w.t0 for w in tl.waits)

    def test_critical_path(self, instrumented_fig5, fig5_timelines):
        engine, _, _, _ = instrumented_fig5
        _, tl = fig5_timelines
        segs = tl.critical_path()
        assert segs
        last = segs[-1]
        clocks = engine.clocks()
        assert last.rank == clocks.index(max(clocks))
        assert last.t1 == pytest.approx(tl.makespan)
        assert all(0.0 <= s.t0 <= s.t1 <= tl.makespan + 1e-12 for s in segs)
        assert {s.kind for s in segs} <= {"send", "wait", "osc",
                                          "compute", "finish"}
        # A reduce run's path must cross ranks via receive-waits.
        assert len({s.rank for s in segs}) > 1

    def test_as_finished_spans_roundtrip(self, fig5_timelines):
        _, tl = fig5_timelines
        rows = tl.as_finished_spans()
        assert len(rows) == len(tl.spans)
        rank, name, t0, t1, depth, args = rows[0]
        assert isinstance(rank, int) and isinstance(name, str)
        assert t1 >= t0


class TestHandBuilt:
    def test_direct_construction_defaults(self):
        tl = Timeline(world_size=4, makespan=1.0)
        assert tl.link_classes() == []
        assert tl.waits_of(0) == []
        assert tl.rank_gaps(0) == []
        assert tl.critical_path() == []
        assert tl.layer_summary()["events"]["messages"] == 0

    def test_rank_gaps_filter(self):
        tl = Timeline(world_size=2, makespan=1.0,
                      gaps=[(0, 0.0, 0.1), (0, 0.5, 0.52), (1, 0.0, 0.3)])
        assert tl.rank_gaps(0) == [(0.0, 0.1), (0.5, 0.52)]
        assert tl.rank_gaps(0, min_gap=0.05) == [(0.0, 0.1)]

    def test_waits_of(self):
        tl = Timeline(world_size=2, makespan=1.0,
                      waits=[Wait(0, 0.0, 0.5, 0), Wait(1, 0.1, 0.2, 1)])
        assert [w.seq for w in tl.waits_of(0)] == [0]
