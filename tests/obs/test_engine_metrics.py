"""End-to-end: an instrumented engine run populates the registry."""

import numpy as np
import pytest

from repro import obs
from repro.simmpi import SUM, Cluster, Engine, Topology


@pytest.fixture
def enabled():
    registry, spans = obs.enable()
    try:
        yield registry, spans
    finally:
        obs.disable()


def small_engine(n_ranks=8, seed=0):
    topo = Topology([("node", 2), ("socket", 2), ("core", 4)])
    return Engine(Cluster(topo, n_ranks), seed=seed)


def monitored_mix(comm):
    from repro.core import Flags, MonitoringSession, monitoring

    me, n = comm.rank, comm.size
    with monitoring():
        with MonitoringSession(comm) as mon:
            comm.barrier()
            comm.bcast(None, root=0, nbytes=10_000 if me == 0 else None)
            comm.allreduce(np.float64(me), SUM)
            comm.sendrecv(None, dest=(me + 1) % n, source=(me - 1) % n,
                          sendtag=0, recvtag=0, nbytes=4_000)
        mon.free()


class TestEngineMetrics:
    def test_disabled_engine_carries_no_observer(self):
        engine = small_engine()
        assert engine._obs is None
        assert engine._obs_spans is None
        assert engine.pml.trace_hook is None

    def test_run_publishes_engine_counters(self, enabled):
        registry, _ = enabled
        engine = small_engine()
        assert engine._obs is not None
        engine.run(monitored_mix)
        snap = registry.snapshot()
        counters = snap["counters"]

        assert counters["repro_engine_runs_total"] == 1
        assert counters["repro_engine_context_switches_total"] == \
            engine.switches > 0
        # Threaded core: the resumes/switches pair is degenerate.
        assert counters["repro_engine_resumes_total"] == engine.switches
        assert counters["repro_engine_messages_total"] == \
            engine.messages > 0
        assert counters["repro_engine_deferred_sends_total"] > 0
        assert counters["repro_engine_handoffs_elided_total{kind=self}"] >= 0
        assert counters["repro_engine_handoffs_elided_total{kind=phantom}"] >= 0

        gauges = snap["gauges"]
        assert gauges["repro_engine_virtual_makespan_seconds"] == \
            engine.max_clock > 0
        assert 1 <= gauges["repro_engine_ready_queue_depth_max"] < engine.n_ranks

        depth = snap["histograms"]["repro_engine_ready_queue_depth"]
        assert depth["count"] > 0

    def test_eventloop_run_publishes_scheduler_metrics(self, enabled):
        """The event-driven core feeds the same registry: the
        resumes/switches counter pair must agree (bit-exact scheduling)
        and the per-virtual-second rate gauge must be consistent with
        the published makespan."""
        registry, _ = enabled
        topo = Topology([("node", 2), ("socket", 2), ("core", 4)])
        engine = Engine(Cluster(topo, 8), seed=0, core="eventloop")

        def prog(comm):
            me, n = comm.rank, comm.size
            yield from comm.co_barrier()
            yield from comm.co_sendrecv(
                None, dest=(me + 1) % n, source=(me - 1) % n, nbytes=4_000)
            yield from comm.co_allreduce(np.float64(me), SUM)

        engine.run(prog)
        snap = registry.snapshot()
        counters = snap["counters"]
        assert engine._ev
        assert counters["repro_engine_resumes_total"] == engine.resumes > 0
        assert counters["repro_engine_resumes_total"] == \
            counters["repro_engine_context_switches_total"]
        gauges = snap["gauges"]
        assert gauges["repro_engine_resumes_per_virtual_second"] == \
            pytest.approx(engine.resumes / engine.max_clock)
        assert gauges["repro_engine_virtual_makespan_seconds"] == \
            engine.max_clock
        # Ready-queue depth sampling works on the event core too: parks
        # go through the same note_block tap.
        assert snap["histograms"]["repro_engine_ready_queue_depth"]["count"] > 0

    def test_per_link_totals_match_network(self, enabled):
        registry, _ = enabled
        engine = small_engine()
        engine.run(monitored_mix)
        counters = registry.snapshot()["counters"]
        link_msgs = {
            k.split("link=")[-1].rstrip("}"): v
            for k, v in counters.items()
            if k.startswith("repro_net_link_messages_total")
        }
        assert set(link_msgs) <= set(engine.network.route_classes)
        assert sum(link_msgs.values()) == engine.messages
        link_bytes = sum(
            v for k, v in counters.items()
            if k.startswith("repro_net_link_bytes_total"))
        assert link_bytes > 0

    def test_pml_category_totals_published(self, enabled):
        registry, _ = enabled
        engine = small_engine()
        engine.run(monitored_mix)
        counters = registry.snapshot()["counters"]
        # The monitored window recorded both collective and p2p traffic.
        assert counters["repro_pml_recorded_messages_total{category=coll}"] > 0
        assert counters["repro_pml_recorded_messages_total{category=p2p}"] > 0
        assert counters["repro_pml_recorded_bytes_total{category=p2p}"] >= \
            8 * 4_000
        epochs = registry.snapshot()["gauges"]
        assert epochs["repro_pml_epoch{category=coll}"] > 0

    def test_collective_spans_recorded_per_rank(self, enabled):
        _, spans = enabled
        engine = small_engine(n_ranks=4)

        def prog(comm):
            comm.barrier()
            comm.bcast(None, root=0, nbytes=1_000 if comm.rank == 0 else None)
            comm.allgather(None, nbytes=2_000, algorithm="ring")

        engine.run(prog)
        names = {s[1] for s in spans.finished if isinstance(s[0], int)}
        assert "barrier" in names
        assert "bcast" in names
        # An explicit algorithm shows up in the span name.
        assert "allgather[ring]" in names
        # Every rank got a lane; the wall lane holds engine.run.
        assert set(spans.lanes()) == {0, 1, 2, 3, "wall"}
        wall_names = {s[1] for s in spans.finished if s[0] == "wall"}
        assert "engine.run" in wall_names

    def test_session_lifecycle_counters(self, enabled):
        registry, _ = enabled
        engine = small_engine(n_ranks=4)
        engine.run(monitored_mix)
        counters = registry.snapshot()["counters"]
        # Each of the 4 ranks installs a runtime, then creates and
        # frees one session inside it.
        assert counters["repro_session_events_total{event=create}"] == 4
        assert counters["repro_session_events_total{event=free}"] == 4
        assert counters["repro_session_events_total{event=runtime_install}"] == 4
        assert counters["repro_session_events_total{event=runtime_finalize}"] == 4

    def test_chains_with_message_tracer(self, enabled):
        from repro.simmpi.trace import MessageTracer

        registry, _ = enabled
        engine = small_engine(n_ranks=4)
        tracer = MessageTracer.install(engine)

        def prog(comm):
            comm.barrier()

        engine.run(prog)
        # Both consumers saw every message despite sharing one hook slot.
        counters = registry.snapshot()["counters"]
        link_msgs = sum(
            v for k, v in counters.items()
            if k.startswith("repro_net_link_messages_total"))
        assert link_msgs == len(tracer) == engine.messages
