"""Metrics registry semantics and the disabled-mode no-op contract."""

import pytest

from repro import obs
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
    NOOP_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(4)
        c.inc(0.5)
        assert c.value == 5.5

    def test_negative_rejected(self):
        c = Counter()
        with pytest.raises(ValueError, match="counters only go up"):
            c.inc(-1)
        assert c.value == 0


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge()
        g.set(7)
        g.set(3)
        assert g.value == 3

    def test_set_max_keeps_peak(self):
        g = Gauge()
        g.set_max(5)
        g.set_max(2)
        g.set_max(9)
        assert g.value == 9


class TestHistogram:
    def test_bucket_placement(self):
        h = Histogram(buckets=(10, 20, 30))
        for v in (5, 10, 11, 25, 30, 31, 1000):
            h.observe(v)
        # counts[i] tallies observations <= uppers[i]; last slot overflows.
        assert h.counts == [2, 1, 2, 2]
        assert h.count == 7
        assert h.sum == 5 + 10 + 11 + 25 + 30 + 31 + 1000

    def test_mean(self):
        h = Histogram()
        assert h.mean == 0.0
        h.observe(2)
        h.observe(4)
        assert h.mean == 3.0

    def test_default_buckets(self):
        h = Histogram()
        assert h.uppers == tuple(float(b) for b in DEFAULT_BUCKETS)
        assert len(h.counts) == len(DEFAULT_BUCKETS) + 1

    @pytest.mark.parametrize("bad", [(), (1, 1), (3, 2, 5)])
    def test_invalid_buckets_rejected(self, bad):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(buckets=bad)


class TestRegistry:
    def test_same_instrument_for_same_key(self):
        reg = MetricsRegistry()
        a = reg.counter("msgs", link="node")
        b = reg.counter("msgs", link="node")
        c = reg.counter("msgs", link="socket")
        assert a is b
        assert a is not c

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.gauge("depth", a=1, b=2)
        b = reg.gauge("depth", b=2, a=1)
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered as a counter"):
            reg.gauge("x")

    def test_snapshot_shape_and_keys(self):
        reg = MetricsRegistry()
        reg.counter("runs").inc()
        reg.counter("bytes", link="node", dir="tx").inc(10)
        reg.gauge("depth").set(4)
        h = reg.histogram("lat", buckets=(1, 2))
        h.observe(1.5)
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"]["runs"] == 1
        # Labels render sorted by key inside {}.
        assert snap["counters"]["bytes{dir=tx,link=node}"] == 10
        assert snap["gauges"]["depth"] == 4
        assert snap["histograms"]["lat"] == {
            "buckets": [1.0, 2.0],
            "counts": [0, 1, 0],
            "sum": 1.5,
            "count": 1,
        }


class TestDisabledMode:
    def test_registry_is_noop_singleton_when_disabled(self):
        assert not obs.is_enabled()  # REPRO_OBS defaults to off
        assert obs.registry() is NOOP_REGISTRY
        assert obs.spans() is None

    def test_noop_instruments_are_shared_and_inert(self):
        assert NOOP_REGISTRY.counter("a", x=1) is NOOP_COUNTER
        assert NOOP_REGISTRY.gauge("b") is NOOP_GAUGE
        assert NOOP_REGISTRY.histogram("c", buckets=(1,)) is NOOP_HISTOGRAM
        NOOP_COUNTER.inc(5)
        NOOP_GAUGE.set(1)
        NOOP_GAUGE.set_max(2)
        NOOP_HISTOGRAM.observe(3)
        assert NOOP_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_enable_disable_round_trip(self):
        try:
            registry, spans = obs.enable()
            assert obs.is_enabled()
            assert obs.registry() is registry
            assert obs.spans() is spans
            registry.counter("during").inc()
        finally:
            obs.disable()
        assert not obs.is_enabled()
        assert obs.registry() is NOOP_REGISTRY
        # enable(fresh=False) resumes the previous collectors.
        try:
            resumed, _ = obs.enable(fresh=False)
            assert resumed.snapshot()["counters"] == {"during": 1}
            fresh, _ = obs.enable()
            assert fresh.snapshot()["counters"] == {}
        finally:
            obs.disable()
