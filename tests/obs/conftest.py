"""Shared fixture: one instrumented + recorded golden workload.

The live run costs a few seconds, so a single session-scoped run
(obs enabled, ambient replay capture, message tracer) serves every
timeline/diagnosis test; treat the products as read-only.
"""

import pytest

from repro import obs
from repro.replay import autorecord


@pytest.fixture(scope="session")
def instrumented_fig5():
    """(engine, spans, trace, results) for fig5_shaped with the obs
    layer enabled and an ambient replay capture active."""
    from tests.golden.hotpath_workloads import fig5_shaped

    registry, spans = obs.enable()
    try:
        with autorecord.capture(meta={"workload": "fig5_shaped"}) as traces:
            engine, results = fig5_shaped()
    finally:
        obs.disable()
    assert len(traces) == 1
    return engine, spans, traces[0], results


@pytest.fixture(scope="session")
def fig5_timelines(instrumented_fig5):
    """(from_run timeline, from_trace timeline) off the shared run."""
    from repro.obs.timeline import Timeline

    engine, spans, trace, _ = instrumented_fig5
    tl_run = Timeline.from_run(engine, spans=spans, trace=trace)
    tl_trace = Timeline.from_trace(trace)
    return tl_run, tl_trace
