"""Event-driven-core ports of the golden hot-path workloads.

Each entry mirrors a workload in :mod:`tests.golden.hotpath_workloads`
line for line, rewritten against the resumable ``co_*`` API and run
with ``core="eventloop"`` — one continuation per rank, zero OS
threads.  The event-loop equivalence test asserts that every snapshot
field (clocks, matrices, NIC counters, switch counts) matches the same
``hotpath_golden.json`` the threaded engine is pinned to: the two
cores must be bit-identical, not merely statistically close.

The ``co_sync`` calls before plain (blocking) monitoring-API calls are
the settle-idempotence discipline of DESIGN.md §4.5: with the deferred
send already settled, the blocking call's internal settle no-ops and
the call runs park-free inside the continuation.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.simmpi import Cluster, Engine, MAX, SUM


def _hx(x: float) -> str:
    return float.hex(float(x))


def fig5_shaped():
    """Fig. 5 protocol in miniature: sweep, monitor, reorder, sweep."""
    from repro.core import api as mapi
    from repro.core.constants import Flags, MPI_M_DATA_IGNORE
    from repro.core.errors import raise_for_code
    from repro.placement.reorder import co_reorder_from_matrix
    from repro.apps.microbench import co_collective_kernel

    sizes = (1_000_000, 5_000_000)
    cluster = Cluster.plafrim(2, binding="rr")
    engine = Engine(cluster, seed=0, core="eventloop")

    def program(comm):
        out = []
        for op in ("reduce", "bcast"):
            for n_ints in sizes:
                yield from comm.co_barrier()
                t = yield from co_collective_kernel(comm, op, n_ints)
                out.append(_hx(t))
        yield from comm.co_sync()
        raise_for_code(mapi.mpi_m_init())
        err, msid = mapi.mpi_m_start(comm)
        raise_for_code(err)
        yield from co_collective_kernel(comm, "reduce", sizes[0])
        yield from comm.co_sync()
        raise_for_code(mapi.mpi_m_suspend(msid))
        err, _, size_mat = yield from mapi.co_mpi_m_rootgather_data(
            msid, 0, MPI_M_DATA_IGNORE, None, Flags.COLL_ONLY
        )
        raise_for_code(err)
        yield from comm.co_sync()
        raise_for_code(mapi.mpi_m_free(msid))
        raise_for_code(mapi.mpi_m_finalize())
        opt, _k = yield from co_reorder_from_matrix(comm, size_mat)
        for op in ("reduce", "bcast"):
            for n_ints in sizes:
                yield from opt.co_barrier()
                t = yield from co_collective_kernel(opt, op, n_ints)
                out.append(_hx(t))
        return out

    results = engine.run(program)
    return engine, results


def fig6_shaped():
    """Fig. 6 protocol in miniature: grouped ring allgathers."""
    from repro.apps.microbench import co_grouped_allgather_benchmark

    cluster = Cluster.plafrim(2, binding="rr")
    engine = Engine(cluster, seed=0, core="eventloop")

    def program(comm):
        out = []
        for n_ints, iters in ((100, 4), (10_000, 8)):
            res = yield from co_grouped_allgather_benchmark(
                comm, group_size=8, n_ints=n_ints, iterations=iters
            )
            out.append([_hx(res.t1), _hx(res.t2), _hx(res.t3)])
        return out

    results = engine.run(program)
    return engine, results


def mixed_monitored():
    """Barrier/bcast/allreduce/sendrecv/reduce mix under a session."""
    from repro.core import Flags, MonitoringSession, monitoring

    cluster = Cluster.plafrim(2, binding="rr")
    engine = Engine(cluster, seed=3, core="eventloop")

    def program(comm):
        me, n = comm.rank, comm.size
        yield from comm.co_sync()
        with monitoring():
            with MonitoringSession(comm) as mon:
                yield from comm.co_barrier()
                yield from comm.co_bcast(
                    None, root=0, nbytes=40_000 if me == 0 else None
                )
                yield from comm.co_allreduce(np.float64(me), SUM)
                yield from comm.co_sendrecv(
                    None, dest=(me + 7) % n, source=(me - 7) % n,
                    sendtag=5, recvtag=5, nbytes=me * 10
                )
                yield from comm.co_reduce(None, MAX, root=n - 1,
                                          nbytes=120_000, algorithm="binary")
                yield from comm.co_allgather(None, nbytes=2_000,
                                             algorithm="ring")
                # Settle before the ``with`` blocks unwind: the context
                # exits (suspend, finalize) then run park-free.
                yield from comm.co_sync()
            counts, sizes = mon.get_data(Flags.ALL_COMM)
            mon.free()
        t = yield from comm.co_time()
        return [[int(c) for c in counts], [int(s) for s in sizes], _hx(t)]

    results = engine.run(program)
    return engine, results


def jittered_p2p():
    """Seeded jitter stream: block-drawn jitter must match scalar draws."""
    cluster = Cluster.plafrim(2, binding="rr", jitter=0.15)
    engine = Engine(cluster, seed=11, core="eventloop")

    def program(comm):
        me, n = comm.rank, comm.size
        for it in range(6):
            yield from comm.co_sendrecv(np.float64(me), dest=(me + 1) % n,
                                        source=(me - 1) % n, sendtag=it,
                                        recvtag=it, nbytes=50_000)
        yield from comm.co_bcast(None, root=0,
                                 nbytes=3_000_000 if me == 0 else None)
        t = yield from comm.co_time()
        return _hx(t)

    results = engine.run(program)
    return engine, results


def osc_and_overhead():
    """One-sided traffic plus the per-record monitoring-overhead charge."""
    cluster = Cluster.plafrim(1, binding="packed")
    engine = Engine(cluster, seed=0, monitoring_overhead=1e-6,
                    core="eventloop")

    def program(comm):
        yield from comm.co_sync()
        comm.engine.pml.set_mode(2)
        me, n = comm.rank, comm.size
        win = yield from comm.co_win_create(np.zeros(16), nbytes=128)
        yield from win.co_fence()
        if me % 2 == 0:
            yield from win.co_put(np.ones(4), target=(me + 1) % n, nbytes=32)
        yield from win.co_fence()
        yield from comm.co_barrier()
        t = yield from comm.co_time()
        return _hx(t)

    results = engine.run(program)
    return engine, results


WORKLOADS_EV: Dict[str, Any] = {
    "fig5_shaped": fig5_shaped,
    "fig6_shaped": fig6_shaped,
    "mixed_monitored": mixed_monitored,
    "jittered_p2p": jittered_p2p,
    "osc_and_overhead": osc_and_overhead,
}
