"""Workloads pinned by the hot-path golden-equivalence test.

Each entry builds an engine, runs a program, and returns
``(engine, results)`` where ``results`` is a JSON-comparable structure
with every float rendered via ``float.hex`` (bit-exact).  The golden
file ``hotpath_golden.json`` was captured from the seed implementation
by ``scripts/capture_hotpath_golden.py``; the optimized hot path must
reproduce the clocks, monitoring matrices, and NIC counters exactly.

Keep these workloads small (seconds, not minutes) but load-bearing:
they cover segmented tree collectives, ring allgathers on split
communicators, monitoring sessions with snapshot/diff, jitter, and the
monitoring-overhead charge — every code path the optimization touches.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.simmpi import Cluster, Engine, MAX, SUM


def _hx(x: float) -> str:
    return float.hex(float(x))


def _hx_all(xs) -> List[str]:
    return [_hx(x) for x in xs]


def fig5_shaped():
    """Fig. 5 protocol in miniature: sweep, monitor, reorder, sweep."""
    from repro.core import api as mapi
    from repro.core.constants import Flags, MPI_M_DATA_IGNORE
    from repro.core.errors import raise_for_code
    from repro.placement.reorder import reorder_from_matrix
    from repro.apps.microbench import collective_kernel

    sizes = (1_000_000, 5_000_000)
    cluster = Cluster.plafrim(2, binding="rr")
    engine = Engine(cluster, seed=0)

    def program(comm):
        out = []
        for op in ("reduce", "bcast"):
            for n_ints in sizes:
                comm.barrier()
                out.append(_hx(collective_kernel(comm, op, n_ints)))
        raise_for_code(mapi.mpi_m_init())
        err, msid = mapi.mpi_m_start(comm)
        raise_for_code(err)
        collective_kernel(comm, "reduce", sizes[0])
        raise_for_code(mapi.mpi_m_suspend(msid))
        err, _, size_mat = mapi.mpi_m_rootgather_data(
            msid, 0, MPI_M_DATA_IGNORE, None, Flags.COLL_ONLY
        )
        raise_for_code(err)
        raise_for_code(mapi.mpi_m_free(msid))
        raise_for_code(mapi.mpi_m_finalize())
        opt, _k = reorder_from_matrix(comm, size_mat)
        for op in ("reduce", "bcast"):
            for n_ints in sizes:
                opt.barrier()
                out.append(_hx(collective_kernel(opt, op, n_ints)))
        return out

    results = engine.run(program)
    return engine, results


def fig6_shaped():
    """Fig. 6 protocol in miniature: grouped ring allgathers."""
    from repro.apps.microbench import grouped_allgather_benchmark

    cluster = Cluster.plafrim(2, binding="rr")
    engine = Engine(cluster, seed=0)

    def program(comm):
        out = []
        for n_ints, iters in ((100, 4), (10_000, 8)):
            res = grouped_allgather_benchmark(
                comm, group_size=8, n_ints=n_ints, iterations=iters
            )
            out.append([_hx(res.t1), _hx(res.t2), _hx(res.t3)])
        return out

    results = engine.run(program)
    return engine, results


def mixed_monitored():
    """Barrier/bcast/allreduce/sendrecv/reduce mix under a session."""
    from repro.core import Flags, MonitoringSession, monitoring

    cluster = Cluster.plafrim(2, binding="rr")
    engine = Engine(cluster, seed=3)

    def program(comm):
        me, n = comm.rank, comm.size
        with monitoring():
            with MonitoringSession(comm) as mon:
                comm.barrier()
                comm.bcast(None, root=0, nbytes=40_000 if me == 0 else None)
                comm.allreduce(np.float64(me), SUM)
                comm.sendrecv(None, dest=(me + 7) % n, source=(me - 7) % n,
                              sendtag=5, recvtag=5, nbytes=me * 10)
                comm.reduce(None, MAX, root=n - 1, nbytes=120_000,
                            algorithm="binary")
                comm.allgather(None, nbytes=2_000, algorithm="ring")
            counts, sizes = mon.get_data(Flags.ALL_COMM)
            mon.free()
        return [[int(c) for c in counts], [int(s) for s in sizes],
                _hx(comm.time)]

    results = engine.run(program)
    return engine, results


def jittered_p2p():
    """Seeded jitter stream: block-drawn jitter must match scalar draws."""
    cluster = Cluster.plafrim(2, binding="rr", jitter=0.15)
    engine = Engine(cluster, seed=11)

    def program(comm):
        me, n = comm.rank, comm.size
        for it in range(6):
            comm.sendrecv(np.float64(me), dest=(me + 1) % n,
                          source=(me - 1) % n, sendtag=it, recvtag=it,
                          nbytes=50_000)
        comm.bcast(None, root=0, nbytes=3_000_000 if me == 0 else None)
        return _hx(comm.time)

    results = engine.run(program)
    return engine, results


def osc_and_overhead():
    """One-sided traffic plus the per-record monitoring-overhead charge."""
    cluster = Cluster.plafrim(1, binding="packed")
    engine = Engine(cluster, seed=0, monitoring_overhead=1e-6)

    def program(comm):
        comm.engine.pml.set_mode(2)
        me, n = comm.rank, comm.size
        win = comm.win_create(np.zeros(16), nbytes=128)
        win.fence()
        if me % 2 == 0:
            win.put(np.ones(4), target=(me + 1) % n, nbytes=32)
        win.fence()
        comm.barrier()
        return _hx(comm.time)

    results = engine.run(program)
    return engine, results


WORKLOADS: Dict[str, Any] = {
    "fig5_shaped": fig5_shaped,
    "fig6_shaped": fig6_shaped,
    "mixed_monitored": mixed_monitored,
    "jittered_p2p": jittered_p2p,
    "osc_and_overhead": osc_and_overhead,
}
