"""Property-based tests (hypothesis) on core data structures and
invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.placement.grouping import greedy_group, symmetrize
from repro.placement.mapping import (
    apply_permutation,
    invert_permutation,
    is_permutation,
    reorder_permutation,
)
from repro.placement.metrics import level_bytes
from repro.placement.treematch import treematch
from repro.simmpi import SUM
from repro.simmpi.datatypes import Buffer, payload_nbytes
from repro.simmpi.nic import NicCounters
from repro.simmpi.topology import Topology
from tests.conftest import run_spmd

# ---------------------------------------------------------------------------
# strategies

level_lists = st.lists(
    st.integers(min_value=1, max_value=4), min_size=1, max_size=4
).map(lambda arities: Topology(
    [(f"L{i}", a) for i, a in enumerate(arities)]
))


def square_matrix(n_max=12):
    return st.integers(min_value=2, max_value=n_max).flatmap(
        lambda n: st.lists(
            st.lists(st.floats(min_value=0, max_value=1e6), min_size=n,
                     max_size=n),
            min_size=n, max_size=n,
        ).map(lambda rows: np.array(rows))
    )


# ---------------------------------------------------------------------------
# topology invariants


@given(level_lists, st.data())
def test_coords_roundtrip(topo, data):
    pu = data.draw(st.integers(min_value=0, max_value=topo.n_pus - 1))
    coords = topo.coords(pu)
    # Reconstruct the PU from its per-level coordinates.
    acc = 0
    for c, arity in zip(coords, topo.arities):
        acc = acc * arity + c
    assert acc == pu


@given(level_lists, st.data())
def test_common_depth_symmetric_and_bounded(topo, data):
    a = data.draw(st.integers(0, topo.n_pus - 1))
    b = data.draw(st.integers(0, topo.n_pus - 1))
    d = topo.common_depth(a, b)
    assert d == topo.common_depth(b, a)
    assert 0 <= d <= topo.depth
    assert (d == topo.depth) == (a == b)


@given(level_lists, st.data())
def test_hop_distance_triangle_inequality(topo, data):
    pus = [data.draw(st.integers(0, topo.n_pus - 1)) for _ in range(3)]
    a, b, c = pus
    assert topo.hop_distance(a, c) <= (
        topo.hop_distance(a, b) + topo.hop_distance(b, c)
    )


# ---------------------------------------------------------------------------
# grouping / placement invariants


@given(square_matrix(), st.data())
def test_greedy_group_is_partition(m, data):
    n = m.shape[0]
    w = symmetrize(m)
    sizes = []
    left = n
    while left > 0:
        s = data.draw(st.integers(1, left))
        sizes.append(s)
        left -= s
    groups = greedy_group(w, sizes)
    assert [len(g) for g in groups] == sizes
    assert sorted(sum(groups, [])) == list(range(n))


@given(square_matrix(n_max=8))
@settings(suppress_health_check=[HealthCheck.filter_too_much], deadline=None)
def test_treematch_placement_valid(m):
    n = m.shape[0]
    topo = Topology([("node", 2), ("socket", 2), ("core", max(2, (n + 3) // 4))])
    placement = treematch(m, topo)
    assert len(placement) == n
    assert len(set(placement)) == n
    assert all(0 <= p < topo.n_pus for p in placement)


@given(st.permutations(list(range(8))))
def test_permutation_inverse_roundtrip(perm):
    k = np.array(perm)
    assert is_permutation(k)
    inv = invert_permutation(k)
    assert np.array_equal(invert_permutation(inv), k)
    assert np.array_equal(k[inv], np.arange(8))


@given(st.permutations(list(range(6))), square_matrix(n_max=6))
def test_apply_permutation_preserves_mass(perm, m):
    if m.shape[0] != 6:
        m = np.resize(m, (6, 6))
    out = apply_permutation(m, np.array(perm))
    assert out.sum() == pytest.approx(m.sum())
    assert sorted(out.reshape(-1)) == pytest.approx(sorted(m.reshape(-1)))


@given(st.permutations(list(range(8))))
def test_reorder_permutation_places_roles(perm):
    # placement[j] = PU of role j, ranks sit on PUs 0..7 in order.
    placement = list(perm)
    k = reorder_permutation(placement, list(range(8)))
    # Role k[i] must map to rank i's PU.
    for i in range(8):
        assert placement[k[i]] == i


@given(square_matrix(n_max=8), st.data())
def test_level_bytes_partitions_total(m, data):
    n = m.shape[0]
    topo = Topology([("node", 2), ("socket", 2), ("core", max(2, (n + 3) // 4))])
    pus = data.draw(st.permutations(list(range(topo.n_pus)))).copy()[:n]
    np.fill_diagonal(m, 0.0)
    lb = level_bytes(m, topo, pus)
    assert sum(lb.values()) == pytest.approx(m.sum())


# ---------------------------------------------------------------------------
# buffers and counters


@given(st.one_of(
    st.none(),
    st.integers(),
    st.floats(allow_nan=False, allow_infinity=False),
    st.binary(max_size=64),
    st.lists(st.integers(), max_size=8),
))
def test_payload_nbytes_nonnegative(payload):
    assert payload_nbytes(payload) >= 0


@given(st.integers(min_value=0, max_value=10**12))
def test_abstract_buffer_size_preserved(n):
    assert Buffer.abstract(n).nbytes == n


@given(st.lists(st.tuples(st.floats(0, 100), st.integers(0, 10**6)),
                min_size=1, max_size=40))
def test_nic_counter_monotone(events):
    nic = NicCounters(1)
    for t, b in events:
        nic.record_xmit(0, t, b)
    times = sorted({t for t, _ in events} | {0.0, 101.0})
    values = [nic.xmit_bytes(0, t) for t in times]
    assert all(a <= b for a, b in zip(values, values[1:]))
    assert values[-1] == sum(b for _, b in events)


# ---------------------------------------------------------------------------
# runtime invariants (slower: a few engine runs)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=8), st.integers(0, 3))
def test_allreduce_equals_sum_of_ranks(n, algo_seed):
    def prog(comm):
        return float(comm.allreduce(np.float64(comm.rank + 1), SUM))

    results, _ = run_spmd(prog, n_ranks=n)
    assert results == [sum(range(1, n + 1))] * n


@settings(max_examples=10, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=16),
       st.integers(min_value=2, max_value=6))
def test_bcast_delivers_exact_bytes(data_list, n):
    payload = bytes(data_list)

    def prog(comm):
        return comm.bcast(payload if comm.rank == 0 else None, root=0)

    results, _ = run_spmd(prog, n_ranks=n)
    assert all(r == payload for r in results)


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=2, max_value=8))
def test_monitoring_conservation(n):
    """Bytes recorded by a session == bytes the program sent."""
    from repro.core import api as mapi
    from repro.core.constants import Flags

    def prog(comm):
        mapi.mpi_m_init()
        _, msid = mapi.mpi_m_start(comm)
        sent = 0
        me = comm.rank
        for d in range(comm.size):
            if d != me:
                nb = (me * 7 + d) % 13
                comm.isend(None, dest=d, tag=1, nbytes=nb)
                sent += nb
        for s in range(comm.size):
            if s != me:
                comm.recv(source=s, tag=1)
        mapi.mpi_m_suspend(msid)
        _, counts, sizes = mapi.mpi_m_get_data(msid, flags=Flags.P2P_ONLY)
        mapi.mpi_m_free(msid)
        mapi.mpi_m_finalize()
        return (sent, int(sizes.sum()), int(counts.sum()))

    results, _ = run_spmd(prog, n_ranks=n)
    for sent, recorded, count in results:
        assert recorded == sent
        assert count == n - 1
