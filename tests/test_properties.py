"""Property-based tests (hypothesis) on core data structures and
invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.placement.grouping import greedy_group, symmetrize
from repro.simmpi.cluster import Cluster
from repro.simmpi.network import Network
from repro.placement.mapping import (
    apply_permutation,
    invert_permutation,
    is_permutation,
    reorder_permutation,
)
from repro.placement.metrics import level_bytes
from repro.placement.treematch import treematch
from repro.simmpi import SUM
from repro.simmpi.datatypes import Buffer, payload_nbytes
from repro.simmpi.nic import NicCounters
from repro.simmpi.topology import Topology
from tests.conftest import run_spmd

# ---------------------------------------------------------------------------
# strategies

level_lists = st.lists(
    st.integers(min_value=1, max_value=4), min_size=1, max_size=4
).map(lambda arities: Topology(
    [(f"L{i}", a) for i, a in enumerate(arities)]
))


def square_matrix(n_max=12):
    return st.integers(min_value=2, max_value=n_max).flatmap(
        lambda n: st.lists(
            st.lists(st.floats(min_value=0, max_value=1e6), min_size=n,
                     max_size=n),
            min_size=n, max_size=n,
        ).map(lambda rows: np.array(rows))
    )


# ---------------------------------------------------------------------------
# topology invariants


@given(level_lists, st.data())
def test_coords_roundtrip(topo, data):
    pu = data.draw(st.integers(min_value=0, max_value=topo.n_pus - 1))
    coords = topo.coords(pu)
    # Reconstruct the PU from its per-level coordinates.
    acc = 0
    for c, arity in zip(coords, topo.arities):
        acc = acc * arity + c
    assert acc == pu


@given(level_lists, st.data())
def test_common_depth_symmetric_and_bounded(topo, data):
    a = data.draw(st.integers(0, topo.n_pus - 1))
    b = data.draw(st.integers(0, topo.n_pus - 1))
    d = topo.common_depth(a, b)
    assert d == topo.common_depth(b, a)
    assert 0 <= d <= topo.depth
    assert (d == topo.depth) == (a == b)


@given(level_lists, st.data())
def test_hop_distance_triangle_inequality(topo, data):
    pus = [data.draw(st.integers(0, topo.n_pus - 1)) for _ in range(3)]
    a, b, c = pus
    assert topo.hop_distance(a, c) <= (
        topo.hop_distance(a, b) + topo.hop_distance(b, c)
    )


# ---------------------------------------------------------------------------
# grouping / placement invariants


@given(square_matrix(), st.data())
def test_greedy_group_is_partition(m, data):
    n = m.shape[0]
    w = symmetrize(m)
    sizes = []
    left = n
    while left > 0:
        s = data.draw(st.integers(1, left))
        sizes.append(s)
        left -= s
    groups = greedy_group(w, sizes)
    assert [len(g) for g in groups] == sizes
    assert sorted(sum(groups, [])) == list(range(n))


@given(square_matrix(n_max=8))
@settings(suppress_health_check=[HealthCheck.filter_too_much], deadline=None)
def test_treematch_placement_valid(m):
    n = m.shape[0]
    topo = Topology([("node", 2), ("socket", 2), ("core", max(2, (n + 3) // 4))])
    placement = treematch(m, topo)
    assert len(placement) == n
    assert len(set(placement)) == n
    assert all(0 <= p < topo.n_pus for p in placement)


@given(st.permutations(list(range(8))))
def test_permutation_inverse_roundtrip(perm):
    k = np.array(perm)
    assert is_permutation(k)
    inv = invert_permutation(k)
    assert np.array_equal(invert_permutation(inv), k)
    assert np.array_equal(k[inv], np.arange(8))


@given(st.permutations(list(range(6))), square_matrix(n_max=6))
def test_apply_permutation_preserves_mass(perm, m):
    if m.shape[0] != 6:
        m = np.resize(m, (6, 6))
    out = apply_permutation(m, np.array(perm))
    assert out.sum() == pytest.approx(m.sum())
    assert sorted(out.reshape(-1)) == pytest.approx(sorted(m.reshape(-1)))


@given(st.permutations(list(range(8))))
def test_reorder_permutation_places_roles(perm):
    # placement[j] = PU of role j, ranks sit on PUs 0..7 in order.
    placement = list(perm)
    k = reorder_permutation(placement, list(range(8)))
    # Role k[i] must map to rank i's PU.
    for i in range(8):
        assert placement[k[i]] == i


@given(square_matrix(n_max=8), st.data())
def test_level_bytes_partitions_total(m, data):
    n = m.shape[0]
    topo = Topology([("node", 2), ("socket", 2), ("core", max(2, (n + 3) // 4))])
    pus = data.draw(st.permutations(list(range(topo.n_pus)))).copy()[:n]
    np.fill_diagonal(m, 0.0)
    lb = level_bytes(m, topo, pus)
    assert sum(lb.values()) == pytest.approx(m.sum())


# ---------------------------------------------------------------------------
# buffers and counters


@given(st.one_of(
    st.none(),
    st.integers(),
    st.floats(allow_nan=False, allow_infinity=False),
    st.binary(max_size=64),
    st.lists(st.integers(), max_size=8),
))
def test_payload_nbytes_nonnegative(payload):
    assert payload_nbytes(payload) >= 0


@given(st.integers(min_value=0, max_value=10**12))
def test_abstract_buffer_size_preserved(n):
    assert Buffer.abstract(n).nbytes == n


@given(st.lists(st.tuples(st.floats(0, 100), st.integers(0, 10**6)),
                min_size=1, max_size=40))
def test_nic_counter_monotone(events):
    nic = NicCounters(1)
    for t, b in events:
        nic.record_xmit(0, t, b)
    times = sorted({t for t, _ in events} | {0.0, 101.0})
    values = [nic.xmit_bytes(0, t) for t in times]
    assert all(a <= b for a, b in zip(values, values[1:]))
    assert values[-1] == sum(b for _, b in events)


# ---------------------------------------------------------------------------
# big worlds: lazy routes and O(n) construction


@settings(max_examples=20, deadline=None)
@given(level_lists, st.data())
def test_lazy_routes_match_dense_everywhere(topo, data):
    """Every per-pair quantity the engine, replayer, and obs layer read
    resolves to exactly the dense table value — same Python objects'
    worth of floats, so downstream arithmetic is bit-identical."""
    n = data.draw(st.integers(1, min(topo.n_pus, 12)))
    binding = data.draw(st.permutations(list(range(topo.n_pus)))).copy()[:n]
    cl = Cluster(topo, n, binding=binding)
    dense = Network(topo, binding, cl.params, seed=1, lazy_routes=False)
    lazy = Network(topo, binding, cl.params, seed=1, lazy_routes=True)
    assert lazy.lazy_routes and not dense.lazy_routes
    assert lazy.route_classes == dense.route_classes
    for src in range(n):
        for dst in range(n):
            k = src * n + dst
            assert lazy._pair_l[k] == dense._pair_l[k]
            assert lazy._alpha_l[k] == dense._alpha_l[k]
            assert lazy._clsidx_l[k] == dense._clsidx_l[k]
            assert lazy._cls_l[k] == dense._cls_l[k]
            assert lazy._cross_l[k] == dense._cross_l[k]
            assert lazy._cls_l[k] == topo.common_level_name(
                binding[src], binding[dst]
            )


@settings(max_examples=20, deadline=None)
@given(level_lists, st.data())
def test_lazy_transfer_sequence_matches_dense(topo, data):
    """A shared random message sequence produces identical
    (sender_done, arrival) pairs and NIC horizons on both modes."""
    n = data.draw(st.integers(1, min(topo.n_pus, 8)))
    binding = list(range(n))
    cl = Cluster(topo, n, binding=binding)
    dense = Network(topo, binding, cl.params, seed=2, lazy_routes=False)
    lazy = Network(topo, binding, cl.params, seed=2, lazy_routes=True)
    msgs = data.draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1),
                  st.integers(0, 10**6)),
        max_size=20,
    ))
    t = 0.0
    for src, dst, nbytes in msgs:
        rd = dense.transfer(src, dst, nbytes, t)
        rl = lazy.transfer(src, dst, nbytes, t)
        assert rd == rl
        t = rd[0]
    assert dense._nic_free == lazy._nic_free
    assert dense._mem_free == lazy._mem_free


@settings(max_examples=5, deadline=None)
@given(st.sampled_from(["packed", "rr", "random"]), st.integers(0, 3))
def test_cluster_and_network_construct_at_4096_ranks(strategy, seed):
    """The 10k-world gate: constructors stay O(n).  A dense build at
    this scale would allocate ~2 GB of route tables; the lazy build
    must finish instantly and resolve sampled pairs correctly."""
    cluster = Cluster.plafrim(171, n_ranks=4096, binding=strategy, seed=seed)
    assert cluster.n_ranks == 4096
    assert len(cluster.binding) == 4096
    net = Network(cluster.topology, cluster.binding, cluster.params, seed=seed)
    assert net.lazy_routes  # auto-selected at this scale
    assert set(net.route_classes) <= {"self", "core", "socket", "node",
                                      "cluster"}
    n = 4096
    rng = np.random.default_rng(seed)
    for src, dst in rng.integers(0, n, size=(25, 2)):
        k = int(src) * n + int(dst)
        cls = net._cls_l[k]
        assert cls == cluster.topology.common_level_name(
            cluster.binding[src], cluster.binding[dst]
        )
        alpha, bw, src_node, dst_node, _, nic_gate, _ = net._pair_l[k]
        assert src_node == cluster.node_of_rank(int(src))
        assert dst_node == cluster.node_of_rank(int(dst))
        assert nic_gate == (cls == "cluster")
        assert alpha == cluster.params.link_for(cls, cluster.topology).latency
    # Only the touched pairs were materialized.
    assert len(net._pair_l) <= 25


def test_topology_constructor_at_10k_pus():
    topo = Topology([("node", 420), ("socket", 2), ("core", 12)])
    assert topo.n_pus == 10080
    assert topo.common_depth(0, 10079) == 0
    assert topo.common_depth(0, 0) == topo.depth
    binding = list(range(10080))
    assert len(Cluster(topo, 10080, binding=binding).binding) == 10080


def test_pml_matrices_allocate_lazily():
    from repro.simmpi.pml_monitoring import CATEGORIES, PmlMonitoring

    pml = PmlMonitoring(4096)
    pml.set_mode(2)
    assert len(pml._counts) == 0 and len(pml._sizes) == 0
    # Untouched categories report zero totals without materializing a
    # 4096 x 4096 matrix just to sum it.
    assert pml.totals("osc") == (0, 0)
    assert len(pml._counts) == 0
    pml.record(7, 9, 1234, "p2p")
    assert pml.totals("p2p") == (1, 1234)
    assert set(pml._counts) == {"p2p"}
    assert pml.counts["p2p"][7, 9] == 1
    # The flushing view still iterates every category.
    assert list(pml.counts.keys()) == list(CATEGORIES)
    assert {cat for cat, _ in pml.sizes.items()} == set(CATEGORIES)
    pml.reset()
    assert pml.totals("p2p") == (0, 0)


# ---------------------------------------------------------------------------
# runtime invariants (slower: a few engine runs)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=8), st.integers(0, 3))
def test_allreduce_equals_sum_of_ranks(n, algo_seed):
    def prog(comm):
        return float(comm.allreduce(np.float64(comm.rank + 1), SUM))

    results, _ = run_spmd(prog, n_ranks=n)
    assert results == [sum(range(1, n + 1))] * n


@settings(max_examples=10, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=16),
       st.integers(min_value=2, max_value=6))
def test_bcast_delivers_exact_bytes(data_list, n):
    payload = bytes(data_list)

    def prog(comm):
        return comm.bcast(payload if comm.rank == 0 else None, root=0)

    results, _ = run_spmd(prog, n_ranks=n)
    assert all(r == payload for r in results)


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=2, max_value=8))
def test_monitoring_conservation(n):
    """Bytes recorded by a session == bytes the program sent."""
    from repro.core import api as mapi
    from repro.core.constants import Flags

    def prog(comm):
        mapi.mpi_m_init()
        _, msid = mapi.mpi_m_start(comm)
        sent = 0
        me = comm.rank
        for d in range(comm.size):
            if d != me:
                nb = (me * 7 + d) % 13
                comm.isend(None, dest=d, tag=1, nbytes=nb)
                sent += nb
        for s in range(comm.size):
            if s != me:
                comm.recv(source=s, tag=1)
        mapi.mpi_m_suspend(msid)
        _, counts, sizes = mapi.mpi_m_get_data(msid, flags=Flags.P2P_ONLY)
        mapi.mpi_m_free(msid)
        mapi.mpi_m_finalize()
        return (sent, int(sizes.sum()), int(counts.sum()))

    results, _ = run_spmd(prog, n_ranks=n)
    for sent, recorded, count in results:
        assert recorded == sent
        assert count == n - 1
