"""The examples must stay runnable — execute the fast ones end to end."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "total messages: 64" in out


def test_session_tour():
    out = run_example("session_tour.py")
    assert "one-sided traffic only shows under MPI_M_OSC_ONLY" in out


def test_collective_anatomy():
    out = run_example("collective_anatomy.py")
    assert "bcast (binomial)" in out
    assert "barrier (dissemination)" in out


@pytest.mark.slow
def test_reorder_stencil():
    out = run_example("reorder_stencil.py")
    assert "speedup" in out


@pytest.mark.slow
def test_cg_reordering():
    out = run_example("cg_reordering.py")
    assert "zeta identical" in out
