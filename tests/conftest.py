"""Shared test fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.simmpi import Cluster, Engine, Topology


def run_spmd(program, n_ranks=4, topology=None, binding="packed", params=None,
             seed=0, monitoring_overhead=5.0e-8, args=()):
    """Run a per-rank program on a small simulated cluster; returns
    (per-rank results, engine)."""
    if topology is None:
        topology = Topology([("node", 2), ("socket", 2), ("core", 4)])
    cluster = Cluster(topology, n_ranks, binding=binding, params=params, seed=seed)
    engine = Engine(cluster, seed=seed, monitoring_overhead=monitoring_overhead)
    results = engine.run(program, args=args)
    return results, engine


@pytest.fixture
def small_topology():
    return Topology([("node", 2), ("socket", 2), ("core", 4)])


@pytest.fixture
def plafrim2():
    """The paper's smallest setup: 2 nodes × 24 cores."""
    return Cluster.plafrim(2)
