"""Tests for the post-mortem tracer and the MPI-IO substrate."""

import numpy as np
import pytest

from repro.simmpi import Cluster, Engine, RankFailure, Topology
from repro.simmpi.io import File, FileSystem
from repro.simmpi.trace import MessageTracer, TraceEvent
from tests.conftest import run_spmd


def traced_engine(n_ranks=4):
    topo = Topology([("node", 2), ("socket", 2), ("core", 4)])
    cluster = Cluster(topo, n_ranks)
    engine = Engine(cluster)
    tracer = MessageTracer.install(engine)
    return engine, tracer


class TestTracer:
    def test_records_all_messages(self):
        engine, tracer = traced_engine(2)

        def prog(comm):
            if comm.rank == 0:
                comm.send(None, dest=1, nbytes=100)
                comm.send(None, dest=1, nbytes=50)
            else:
                comm.recv(source=0)
                comm.recv(source=0)

        engine.run(prog)
        assert len(tracer) == 2
        assert tracer.size_matrix()[0, 1] == 150
        assert tracer.count_matrix()[0, 1] == 2

    def test_sees_messages_even_with_monitoring_off(self):
        engine, tracer = traced_engine(4)

        def prog(comm):
            comm.barrier()

        engine.run(prog)
        assert engine.pml.mode == 0
        assert engine.pml.totals("coll") == (0, 0)  # monitoring off...
        assert len(tracer) == 8  # ...but the trace has everything

    def test_categories_separated(self):
        engine, tracer = traced_engine(4)

        def prog(comm):
            if comm.rank == 0:
                comm.send(None, dest=1, nbytes=10)
            elif comm.rank == 1:
                comm.recv(source=0)
            comm.barrier()

        engine.run(prog)
        assert tracer.count_matrix("p2p").sum() == 1
        assert tracer.count_matrix("coll").sum() == 8
        assert tracer.count_matrix().sum() == 9

    def test_timeline_bins(self):
        engine, tracer = traced_engine(2)

        def prog(comm):
            if comm.rank == 0:
                comm.send(None, dest=1, nbytes=1000)
                comm.sleep(0.1)
                comm.send(None, dest=1, nbytes=2000)
            else:
                comm.recv(source=0)
                comm.recv(source=0)

        engine.run(prog)
        times, vols = tracer.timeline(bin_seconds=0.05)
        assert vols.sum() == 3000
        assert vols[0] == 1000
        assert vols[-1] == 2000

    def test_per_rank_and_filter(self):
        engine, tracer = traced_engine(3)

        def prog(comm):
            if comm.rank == 2:
                comm.send(None, dest=0, nbytes=7)
            elif comm.rank == 0:
                comm.recv(source=2)

        engine.run(prog)
        assert tracer.per_rank_sent().tolist() == [0, 0, 7]
        big = tracer.filtered(lambda e: e.nbytes > 5)
        assert len(big) == 1 and big[0].src == 2

    def test_dump_load_roundtrip(self, tmp_path):
        engine, tracer = traced_engine(2)

        def prog(comm):
            if comm.rank == 0:
                comm.send(None, dest=1, nbytes=42)
            else:
                comm.recv(source=0)

        engine.run(prog)
        path = str(tmp_path / "run.trace")
        tracer.dump(path)
        loaded = MessageTracer.load(path)
        assert loaded.world_size == 2
        assert loaded.events == tracer.events

    def test_roundtrip_preserves_matrices(self, tmp_path):
        engine, tracer = traced_engine(4)

        def prog(comm):
            if comm.rank == 0:
                comm.send(None, dest=3, nbytes=999)
            elif comm.rank == 3:
                comm.recv(source=0)
            comm.barrier()

        engine.run(prog)
        path = str(tmp_path / "run.trace")
        tracer.dump(path)
        loaded = MessageTracer.load(path)
        np.testing.assert_array_equal(loaded.count_matrix(),
                                      tracer.count_matrix())
        np.testing.assert_array_equal(loaded.size_matrix(),
                                      tracer.size_matrix())
        np.testing.assert_array_equal(loaded.size_matrix("p2p"),
                                      tracer.size_matrix("p2p"))

    def test_load_without_world_size_header_warns(self, tmp_path):
        path = tmp_path / "headerless.trace"
        path.write_text(
            "# simmpi message trace\n"
            "0.000000001 0 2 10 p2p 1\n"
            "0.000000002 2 0 20 p2p 1\n"
        )
        with pytest.warns(UserWarning, match="missing world_size header"):
            loaded = MessageTracer.load(str(path))
        assert loaded.world_size == 3  # largest rank seen + 1
        assert loaded.size_matrix()[0, 2] == 10

    def test_timeline_rejects_bad_arguments(self):
        _, tracer = traced_engine(2)
        with pytest.raises(ValueError, match="bin_seconds must be > 0"):
            tracer.timeline(bin_seconds=0)
        with pytest.raises(ValueError, match="bin_seconds must be > 0"):
            tracer.timeline(bin_seconds=-0.5)
        with pytest.raises(ValueError, match="weight must be"):
            tracer.timeline(bin_seconds=0.1, weight="latency")

    def test_timeline_count_weight_honours_multiplicity(self):
        tracer = MessageTracer(2)
        tracer.events = [
            TraceEvent(0.01, 0, 1, 300, "coll", count=3),
            TraceEvent(0.01, 1, 0, 10, "p2p", count=1),
            TraceEvent(0.12, 0, 1, 50, "p2p", count=1),
        ]
        times, msgs = tracer.timeline(bin_seconds=0.1, weight="count")
        assert msgs.tolist() == [4, 1]
        _, vols = tracer.timeline(bin_seconds=0.1)
        assert vols.tolist() == [310, 50]
        np.testing.assert_allclose(times, [0.1, 0.2])

    def test_vectorized_reductions_match_naive(self):
        engine, tracer = traced_engine(4)

        def prog(comm):
            me, n = comm.rank, comm.size
            comm.barrier()
            comm.sendrecv(None, dest=(me + 1) % n, source=(me - 1) % n,
                          sendtag=0, recvtag=0, nbytes=100 * (me + 1))
            comm.barrier()

        engine.run(prog)
        assert len(tracer) > 0
        counts = np.zeros((4, 4), dtype=np.int64)
        sizes = np.zeros((4, 4), dtype=np.int64)
        sent = np.zeros(4, dtype=np.int64)
        for e in tracer.events:
            counts[e.src, e.dst] += e.count
            sizes[e.src, e.dst] += e.nbytes
            sent[e.src] += e.nbytes
        np.testing.assert_array_equal(tracer.count_matrix(), counts)
        np.testing.assert_array_equal(tracer.size_matrix(), sizes)
        np.testing.assert_array_equal(tracer.per_rank_sent(), sent)
        # Scalar binning reference for the timeline.
        bins = {}
        for e in tracer.events:
            bins[int(e.time / 0.001)] = bins.get(int(e.time / 0.001), 0) \
                + e.nbytes
        _, vols = tracer.timeline(bin_seconds=0.001)
        for b, v in bins.items():
            assert vols[b] == v
        assert vols.sum() == sizes.sum()


class TestFileSystem:
    def test_write_read_roundtrip(self):
        def prog(comm):
            f = File.open(comm, "data.bin")
            if comm.rank == 0:
                f.write_at(0, np.arange(4, dtype=np.int32))
            comm.barrier()
            raw = f.read_at(0, 16)
            f.close()
            return raw

        results, _ = run_spmd(prog, n_ranks=2)
        arr = np.frombuffer(results[1], dtype=np.int32)
        assert arr.tolist() == [0, 1, 2, 3]

    def test_collective_write_offsets(self):
        def prog(comm):
            f = File.open(comm, "blocks.bin")
            f.write_at_all(0, np.full(2, comm.rank, dtype=np.int64))
            comm.barrier()
            out = f.read_at(comm.rank * 16, 16)
            f.close()
            return np.frombuffer(out, dtype=np.int64).tolist()

        results, _ = run_spmd(prog, n_ranks=4)
        assert results == [[0, 0], [1, 1], [2, 2], [3, 3]]

    def test_io_counters_via_pvars(self):
        def prog(comm):
            f = File.open(comm, "counted.bin")
            f.write_at_all(0, None, nbytes=1000)
            f.read_at_all(0, 500)
            f.close()
            sess = comm.engine.mpit.pvar_session_create()
            h = sess.handle_alloc("io_monitoring_bytes_written", comm.rank)
            written = int(h.read()[0])
            h2 = sess.handle_alloc("io_monitoring_bytes_read", comm.rank)
            read = int(h2.read()[0])
            sess.free()
            return (written, read)

        results, _ = run_spmd(prog, n_ranks=3)
        assert results == [(1000, 500)] * 3

    def test_io_costs_time_and_serializes(self):
        def prog(comm):
            f = File.open(comm, "big.bin")
            comm.barrier()
            t0 = comm.time
            f.write_at_all(0, None, nbytes=50_000_000)
            comm.barrier()
            f.close()
            return comm.time - t0

        results, _ = run_spmd(prog, n_ranks=4)
        # 4 x 50 MB through a 5 GB/s shared FS: at least 40 ms.
        assert max(results) >= 0.04

    def test_abstract_write_size_tracked(self):
        def prog(comm):
            f = File.open(comm, "abs.bin")
            if comm.rank == 0:
                f.write_at(100, None, nbytes=1234)
            comm.barrier()
            size = f.size
            f.close()
            return size

        results, _ = run_spmd(prog, n_ranks=2)
        assert results == [1334, 1334]

    def test_closed_file_rejected(self):
        def prog(comm):
            f = File.open(comm, "closed.bin")
            f.close()
            f.write_at(0, None, nbytes=1)

        with pytest.raises(RankFailure):
            run_spmd(prog, n_ranks=2)

    def test_same_file_object_shared(self):
        def prog(comm):
            f = File.open(comm, "shared.bin")
            fid = id(f)
            f.close()
            return fid

        results, _ = run_spmd(prog, n_ranks=4)
        assert len(set(results)) == 1
