"""Determinism and scale sanity of the engine at paper-like rank counts."""

import numpy as np
import pytest

from repro.core import Flags, MonitoringSession, monitoring
from repro.simmpi import Cluster, Engine, SUM


def _mixed_workload(comm):
    me, n = comm.rank, comm.size
    comm.barrier()
    comm.bcast(None, root=0, nbytes=10_000 if me == 0 else None)
    comm.allreduce(np.float64(me), SUM)
    comm.sendrecv(None, dest=(me + 7) % n, source=(me - 7) % n,
                  sendtag=5, recvtag=5, nbytes=me * 10)
    comm.reduce(None, SUM, root=n - 1, nbytes=5_000, algorithm="binary")
    return comm.time


class TestScale:
    @pytest.mark.parametrize("n_nodes", [2, 8])
    def test_runs_at_paper_rank_counts(self, n_nodes):
        engine = Engine(Cluster.plafrim(n_nodes, binding="rr"))
        clocks = engine.run(_mixed_workload)
        assert len(clocks) == 24 * n_nodes
        assert all(t > 0 for t in clocks)

    def test_bitwise_deterministic_across_runs(self):
        runs = []
        for _ in range(2):
            engine = Engine(Cluster.plafrim(2, binding="rr"))
            runs.append(engine.run(_mixed_workload))
        assert runs[0] == runs[1]

    def test_monitoring_does_not_change_message_pattern(self):
        """Monitoring perturbs *time*, never which messages flow."""

        def monitored(comm):
            with monitoring():
                with MonitoringSession(comm) as mon:
                    _mixed_workload(comm)
                counts, sizes = mon.get_data(Flags.ALL_COMM)
                mon.free()
            return (counts.tolist(), sizes.tolist())

        def traced_counts(monitored_flag):
            from repro.simmpi.trace import MessageTracer

            engine = Engine(Cluster.plafrim(2, binding="rr"))
            tracer = MessageTracer.install(engine)
            if monitored_flag:
                engine.run(monitored)
            else:
                engine.run(_mixed_workload)
            return tracer.count_matrix().tolist()

        assert traced_counts(True) == traced_counts(False)

    def test_jitter_changes_times_not_results(self):
        def prog(comm):
            total = comm.allreduce(np.float64(comm.rank), SUM)
            return (float(total), comm.time)

        base = Engine(Cluster.plafrim(2, jitter=0.0)).run(prog)
        jit = Engine(Cluster.plafrim(2, jitter=0.2), seed=9).run(prog)
        assert [v for v, _ in base] == [v for v, _ in jit]
        assert [t for _, t in base] != [t for _, t in jit]
