"""Tests for scan/exscan/reduce_scatter collectives."""

import numpy as np
import pytest

from repro.simmpi import MAX, RankFailure, SUM
from tests.conftest import run_spmd

SIZES = [1, 2, 3, 4, 5, 8]


class TestScan:
    @pytest.mark.parametrize("n", SIZES)
    def test_inclusive_prefix_sum(self, n):
        def prog(comm):
            return float(comm.scan(np.float64(comm.rank + 1), SUM))

        results, _ = run_spmd(prog, n_ranks=n)
        assert results == [sum(range(1, i + 2)) for i in range(n)]

    def test_scan_max(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6]

        def prog(comm):
            return float(comm.scan(np.float64(values[comm.rank]), MAX))

        results, _ = run_spmd(prog, n_ranks=8)
        expected = [max(values[: i + 1]) for i in range(8)]
        assert results == expected

    def test_scan_vector(self):
        def prog(comm):
            v = np.full(3, float(comm.rank))
            return comm.scan(v, SUM).tolist()

        results, _ = run_spmd(prog, n_ranks=4)
        assert results[3] == [6.0, 6.0, 6.0]
        assert results[0] == [0.0, 0.0, 0.0]

    def test_scan_abstract_traffic_recorded(self):
        def prog(comm):
            comm.engine.pml.set_mode(2)
            comm.scan(None, SUM, nbytes=100)

        _, engine = run_spmd(prog, n_ranks=8)
        count, size = engine.pml.totals("coll")
        # Hillis-Steele: rank i sends in round k iff i + 2^k < n.
        expected = sum(1 for k in range(3) for i in range(8) if i + 2**k < 8)
        assert count == expected
        assert size == expected * 100


class TestExscan:
    @pytest.mark.parametrize("n", SIZES)
    def test_exclusive_prefix_sum(self, n):
        def prog(comm):
            out = comm.exscan(np.float64(comm.rank + 1), SUM)
            return None if out is None else float(out)

        results, _ = run_spmd(prog, n_ranks=n)
        assert results[0] is None
        for i in range(1, n):
            assert results[i] == sum(range(1, i + 1))

    def test_exscan_then_scan_relationship(self):
        def prog(comm):
            v = np.float64(2 ** comm.rank)
            inc = float(comm.scan(v, SUM))
            exc = comm.exscan(v, SUM)
            exc = 0.0 if exc is None else float(exc)
            return inc - exc  # must equal the local value

        results, _ = run_spmd(prog, n_ranks=6)
        assert results == [float(2 ** i) for i in range(6)]


class TestReduceScatter:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_pow2_recursive_halving(self, n):
        def prog(comm):
            # values[j] = rank * 10 + j: result at rank j = sum over
            # ranks of (rank*10 + j).
            values = [np.float64(comm.rank * 10 + j) for j in range(comm.size)]
            return float(comm.reduce_scatter(values, SUM))

        results, _ = run_spmd(prog, n_ranks=n)
        base = 10 * sum(range(n))
        assert results == [base + n * j for j in range(n)]

    @pytest.mark.parametrize("n", [3, 5, 6])
    def test_non_pow2_fallback(self, n):
        def prog(comm):
            values = [np.float64(j) for j in range(comm.size)]
            return float(comm.reduce_scatter(values, SUM))

        results, _ = run_spmd(prog, n_ranks=n)
        assert results == [float(n * j) for j in range(n)]

    def test_vector_items(self):
        def prog(comm):
            values = [np.full(2, float(comm.rank + j)) for j in range(comm.size)]
            return comm.reduce_scatter(values, SUM).tolist()

        results, _ = run_spmd(prog, n_ranks=4)
        # result at rank j = sum over ranks of (rank + j)
        assert results == [[6.0 + 4 * j] * 2 for j in range(4)]

    def test_wrong_value_count(self):
        def prog(comm):
            comm.reduce_scatter([1.0], SUM)

        with pytest.raises(RankFailure):
            run_spmd(prog, n_ranks=3)

    def test_single_rank(self):
        def prog(comm):
            return float(comm.reduce_scatter([np.float64(7)], SUM))

        results, _ = run_spmd(prog, n_ranks=1)
        assert results == [7.0]
