"""Unit tests for the collective algorithms (all decomposed into p2p)."""

import numpy as np
import pytest

from repro.simmpi import MAX, MIN, RankFailure, SUM
from repro.simmpi.collectives.allgather import ALGORITHMS as AG_ALGOS
from repro.simmpi.collectives.bcast import ALGORITHMS as BCAST_ALGOS
from repro.simmpi.collectives.reduce import ALGORITHMS as REDUCE_ALGOS
from repro.simmpi.datatypes import Buffer
from tests.conftest import run_spmd

SIZES = [2, 3, 4, 7, 8]


def enable_monitoring(comm):
    comm.engine.pml.set_mode(2)


class TestBcast:
    @pytest.mark.parametrize("algorithm", BCAST_ALGOS)
    @pytest.mark.parametrize("n", SIZES)
    def test_value_everywhere(self, algorithm, n):
        def prog(comm):
            val = np.arange(10) if comm.rank == 2 % comm.size else None
            out = comm.bcast(val, root=2 % comm.size, algorithm=algorithm)
            return np.asarray(out).tolist()

        results, _ = run_spmd(prog, n_ranks=n)
        for r in results:
            assert r == list(range(10))

    def test_abstract_buffer(self):
        def prog(comm):
            out = comm.bcast(None, root=0,
                             nbytes=512 if comm.rank == 0 else None)
            return out.nbytes if isinstance(out, Buffer) else out

        results, _ = run_spmd(prog, n_ranks=4)
        assert results == [512] * 4

    def test_segmented_large_array(self):
        def prog(comm):
            data = np.arange(3_000_000, dtype=np.float64) if comm.rank == 0 else None
            out = comm.bcast(data, root=0)
            return float(np.asarray(out).reshape(-1).sum())

        results, _ = run_spmd(prog, n_ranks=4)
        expected = float(np.arange(3_000_000, dtype=np.float64).sum())
        assert results == [expected] * 4

    def test_segment_count_recorded_by_monitoring(self):
        def prog(comm):
            enable_monitoring(comm)
            comm.bcast(None, root=0, nbytes=64 * 1024 * 1024
                       if comm.rank == 0 else None, algorithm="binomial")

        _, engine = run_spmd(prog, n_ranks=2)
        count, size = engine.pml.totals("coll")
        assert count == 16  # 64 MB / 4 MB segments over one edge
        assert size == 64 * 1024 * 1024

    def test_explicit_one_segment(self):
        def prog(comm):
            enable_monitoring(comm)
            comm.bcast(None, root=0, nbytes=64 * 1024 * 1024
                       if comm.rank == 0 else None, segments=1)

        _, engine = run_spmd(prog, n_ranks=2)
        assert engine.pml.totals("coll")[0] == 1

    def test_unknown_algorithm(self):
        def prog(comm):
            comm.bcast(1, root=0, algorithm="magic")

        with pytest.raises(RankFailure):
            run_spmd(prog, n_ranks=2)

    def test_singleton_comm(self):
        results, _ = run_spmd(lambda comm: comm.bcast(5, root=0), n_ranks=1)
        assert results == [5]


class TestReduce:
    @pytest.mark.parametrize("algorithm", REDUCE_ALGOS)
    @pytest.mark.parametrize("n", SIZES)
    def test_sum(self, algorithm, n):
        def prog(comm):
            out = comm.reduce(np.float64(comm.rank + 1), SUM, root=0,
                              algorithm=algorithm)
            return None if out is None else float(out)

        results, _ = run_spmd(prog, n_ranks=n)
        assert results[0] == sum(range(1, n + 1))
        assert all(r is None for r in results[1:])

    @pytest.mark.parametrize("algorithm", REDUCE_ALGOS)
    def test_nonzero_root(self, algorithm):
        def prog(comm):
            out = comm.reduce(np.int64(comm.rank), MAX, root=3,
                              algorithm=algorithm)
            return None if out is None else int(out)

        results, _ = run_spmd(prog, n_ranks=5)
        assert results[3] == 4
        assert results[0] is None

    def test_vector_reduce(self):
        def prog(comm):
            data = np.full(4, float(comm.rank))
            out = comm.reduce(data, SUM, root=0, algorithm="binary")
            return None if out is None else out.tolist()

        results, _ = run_spmd(prog, n_ranks=4)
        assert results[0] == [6.0] * 4

    def test_segmented_reduce_matches_unsegmented(self):
        def prog(comm):
            data = np.arange(2_000_000, dtype=np.float64) + comm.rank
            out = comm.reduce(data, SUM, root=0, algorithm="binary")
            return None if out is None else float(np.asarray(out).sum())

        results, _ = run_spmd(prog, n_ranks=4)
        base = np.arange(2_000_000, dtype=np.float64)
        expected = float((4 * base + 6).sum())
        assert results[0] == pytest.approx(expected)

    def test_abstract_reduce(self):
        def prog(comm):
            out = comm.reduce(None, SUM, root=0, nbytes=256)
            return out.nbytes if isinstance(out, Buffer) else out

        results, _ = run_spmd(prog, n_ranks=4)
        assert results[0] == 256

    def test_non_array_payload_cannot_segment(self):
        def prog(comm):
            comm.reduce((1, 2), SUM, root=0, nbytes=16 * 1024 * 1024,
                        algorithm="binary")

        with pytest.raises(RankFailure):
            run_spmd(prog, n_ranks=2)


class TestAllreduce:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_recursive_doubling(self, n):
        def prog(comm):
            return float(comm.allreduce(np.float64(comm.rank), SUM,
                                        algorithm="recursive_doubling"))

        results, _ = run_spmd(prog, n_ranks=n)
        assert results == [sum(range(n))] * n

    @pytest.mark.parametrize("n", [3, 5, 6])
    def test_reduce_bcast_non_pow2(self, n):
        def prog(comm):
            return float(comm.allreduce(np.float64(comm.rank + 1), MIN))

        results, _ = run_spmd(prog, n_ranks=n)
        assert results == [1.0] * n

    def test_recursive_doubling_rejects_non_pow2(self):
        def prog(comm):
            comm.allreduce(np.float64(1), SUM, algorithm="recursive_doubling")

        with pytest.raises(RankFailure):
            run_spmd(prog, n_ranks=3)


class TestGatherScatter:
    @pytest.mark.parametrize("algorithm", ["binomial", "linear"])
    @pytest.mark.parametrize("n", SIZES)
    def test_gather(self, algorithm, n):
        def prog(comm):
            return comm.gather(comm.rank * 2, root=1 % comm.size,
                               algorithm=algorithm)

        results, _ = run_spmd(prog, n_ranks=n)
        assert results[1 % n] == [2 * i for i in range(n)]
        for r, res in enumerate(results):
            if r != 1 % n:
                assert res is None

    @pytest.mark.parametrize("algorithm", ["binomial", "linear"])
    @pytest.mark.parametrize("n", SIZES)
    def test_scatter(self, algorithm, n):
        def prog(comm):
            values = [f"item{i}" for i in range(comm.size)] \
                if comm.rank == 0 else None
            return comm.scatter(values, root=0, algorithm=algorithm)

        results, _ = run_spmd(prog, n_ranks=n)
        assert results == [f"item{i}" for i in range(n)]

    def test_scatter_requires_values_at_root(self):
        def prog(comm):
            comm.scatter(None, root=0)

        with pytest.raises(RankFailure):
            run_spmd(prog, n_ranks=2)

    def test_gather_then_scatter_roundtrip(self):
        def prog(comm):
            gathered = comm.gather(comm.rank ** 2, root=0)
            return comm.scatter(gathered, root=0)

        results, _ = run_spmd(prog, n_ranks=5)
        assert results == [i ** 2 for i in range(5)]


class TestAllgather:
    @pytest.mark.parametrize("algorithm", AG_ALGOS)
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_pow2(self, algorithm, n):
        def prog(comm):
            return comm.allgather(comm.rank + 10, algorithm=algorithm)

        results, _ = run_spmd(prog, n_ranks=n)
        for r in results:
            assert r == [i + 10 for i in range(n)]

    @pytest.mark.parametrize("algorithm", ["ring", "gather_bcast"])
    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_non_pow2(self, algorithm, n):
        def prog(comm):
            return comm.allgather(chr(ord("a") + comm.rank),
                                  algorithm=algorithm)

        results, _ = run_spmd(prog, n_ranks=n)
        expected = [chr(ord("a") + i) for i in range(n)]
        assert all(r == expected for r in results)

    def test_default_algorithm_selection(self):
        def prog(comm):
            return comm.allgather(comm.rank)

        for n in (4, 6):
            results, _ = run_spmd(prog, n_ranks=n)
            assert results[0] == list(range(n))


class TestAlltoall:
    @pytest.mark.parametrize("algorithm", ["pairwise", "linear"])
    @pytest.mark.parametrize("n", [2, 3, 4, 8])
    def test_personalized_exchange(self, algorithm, n):
        def prog(comm):
            values = [comm.rank * 100 + dst for dst in range(comm.size)]
            return comm.alltoall(values, algorithm=algorithm)

        results, _ = run_spmd(prog, n_ranks=n)
        for me, res in enumerate(results):
            assert res == [src * 100 + me for src in range(n)]

    def test_wrong_value_count(self):
        def prog(comm):
            comm.alltoall([1])

        with pytest.raises(RankFailure):
            run_spmd(prog, n_ranks=3)


class TestBarrier:
    @pytest.mark.parametrize("algorithm", ["dissemination", "tree"])
    def test_synchronizes_clocks(self, algorithm):
        def prog(comm):
            comm.compute(float(comm.rank))  # skew the clocks
            comm.barrier(algorithm=algorithm)
            return comm.time

        results, _ = run_spmd(prog, n_ranks=6)
        # After a barrier no rank can be earlier than the slowest entry.
        assert min(results) >= 5.0

    def test_zero_byte_messages_counted(self):
        def prog(comm):
            enable_monitoring(comm)
            comm.barrier(algorithm="dissemination")

        _, engine = run_spmd(prog, n_ranks=8)
        count, size = engine.pml.totals("coll")
        assert count == 8 * 3  # log2(8) rounds, one send per rank each
        assert size == 0


class TestDecompositionVisibility:
    """The paper's headline: collectives are recorded as p2p messages."""

    def test_bcast_binomial_edge_count(self):
        def prog(comm):
            enable_monitoring(comm)
            comm.bcast(b"x" * 100, root=0, algorithm="binomial")

        _, engine = run_spmd(prog, n_ranks=8)
        count, size = engine.pml.totals("coll")
        assert count == 7  # a tree on 8 ranks has 7 edges
        assert size == 700

    def test_reduce_binary_edge_count(self):
        def prog(comm):
            enable_monitoring(comm)
            comm.reduce(np.float64(1.0), SUM, root=0, algorithm="binary")

        _, engine = run_spmd(prog, n_ranks=8)
        count, _ = engine.pml.totals("coll")
        assert count == 7

    def test_flat_bcast_edge_count(self):
        def prog(comm):
            enable_monitoring(comm)
            comm.bcast(b"ab", root=0, algorithm="flat")

        _, engine = run_spmd(prog, n_ranks=5)
        count, size = engine.pml.totals("coll")
        assert count == 4
        assert size == 8

    def test_user_p2p_not_mixed_with_coll(self):
        def prog(comm):
            enable_monitoring(comm)
            if comm.rank == 0:
                comm.send(b"xyz", dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)
            comm.barrier()

        _, engine = run_spmd(prog, n_ranks=4)
        assert engine.pml.totals("p2p") == (1, 3)
        assert engine.pml.totals("coll")[1] == 0  # barrier is zero bytes
        assert engine.pml.totals("coll")[0] > 0


class TestBruckAllgather:
    @pytest.mark.parametrize("n", [2, 3, 5, 7, 8])
    def test_any_size(self, n):
        def prog(comm):
            return comm.allgather(comm.rank * 3, algorithm="bruck")

        results, _ = run_spmd(prog, n_ranks=n)
        assert all(r == [i * 3 for i in range(n)] for r in results)

    def test_log_rounds(self):
        def prog(comm):
            enable_monitoring(comm)
            comm.allgather(None, nbytes=8, algorithm="bruck")

        _, engine = run_spmd(prog, n_ranks=8)
        count, _ = engine.pml.totals("coll")
        assert count == 8 * 3  # one send per rank per round, 3 rounds


class TestRabenseifnerAllreduce:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_matches_sum(self, n):
        def prog(comm):
            data = np.arange(8, dtype=np.float64) + comm.rank
            return comm.allreduce(data, SUM, algorithm="rabenseifner").tolist()

        results, _ = run_spmd(prog, n_ranks=n)
        expected = (n * np.arange(8, dtype=np.float64) + sum(range(n))).tolist()
        assert all(r == expected for r in results)

    def test_abstract_size_preserved(self):
        def prog(comm):
            out = comm.allreduce(None, SUM, nbytes=1024,
                                 algorithm="rabenseifner")
            return out.nbytes if isinstance(out, Buffer) else None

        results, _ = run_spmd(prog, n_ranks=4)
        assert results == [1024] * 4

    def test_rejects_non_pow2(self):
        def prog(comm):
            comm.allreduce(np.float64(1), SUM, algorithm="rabenseifner")

        with pytest.raises(RankFailure):
            run_spmd(prog, n_ranks=3)
