"""Unit tests for message buffers, payload sizing and reduction ops."""

import numpy as np
import pytest

from repro.simmpi.datatypes import (
    BYTE,
    DOUBLE,
    INT,
    Buffer,
    payload_nbytes,
)
from repro.simmpi.op import MAX, MIN, PROD, SUM, combine


class TestPayloadNbytes:
    def test_none_is_zero(self):
        assert payload_nbytes(None) == 0

    def test_ndarray(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80

    def test_numpy_scalar(self):
        assert payload_nbytes(np.float32(1.5)) == 4

    def test_bytes(self):
        assert payload_nbytes(b"abcd") == 4

    def test_python_scalar(self):
        assert payload_nbytes(3) == 8
        assert payload_nbytes(2.5) == 8

    def test_tuple_sums(self):
        assert payload_nbytes((np.zeros(2), 1)) == 24

    def test_dict_sums_values(self):
        assert payload_nbytes({"a": np.zeros(2), "b": np.zeros(3)}) == 40

    def test_opaque_object_fallback(self):
        class X:
            pass

        assert payload_nbytes(X()) == 8


class TestBuffer:
    def test_wrap_array(self):
        arr = np.arange(5, dtype=np.int32)
        buf = Buffer.wrap(arr)
        assert buf.nbytes == 20
        assert buf.payload is arr

    def test_abstract(self):
        buf = Buffer.abstract(1234)
        assert buf.is_abstract
        assert buf.nbytes == 1234
        assert buf.payload is None

    def test_zero_byte_not_abstract(self):
        assert not Buffer(None, nbytes=0).is_abstract

    def test_explicit_nbytes_overrides(self):
        assert Buffer(None, nbytes=7).nbytes == 7

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Buffer(None, nbytes=-1)

    def test_wrap_buffer_conflicting_size(self):
        buf = Buffer.abstract(10)
        with pytest.raises(ValueError):
            Buffer.wrap(buf, nbytes=20)

    def test_copy_payload_copies_arrays(self):
        arr = np.arange(3)
        buf = Buffer(arr)
        copy = buf.copy_payload()
        copy[0] = 99
        assert arr[0] == 0

    def test_datatype_extents(self):
        assert INT.extent == 4
        assert DOUBLE.extent == 8
        assert BYTE.extent == 1


class TestOps:
    def test_sum(self):
        out = combine(SUM, Buffer(np.array([1.0, 2.0])), Buffer(np.array([3.0, 4.0])))
        assert np.array_equal(out.payload, [4.0, 6.0])

    def test_max_min(self):
        a, b = Buffer(np.array([1, 9])), Buffer(np.array([5, 3]))
        assert np.array_equal(combine(MAX, a, b).payload, [5, 9])
        assert np.array_equal(combine(MIN, a, b).payload, [1, 3])

    def test_prod_scalars(self):
        assert combine(PROD, Buffer(np.float64(3)), Buffer(np.float64(4))).payload == 12

    def test_abstract_stays_abstract(self):
        out = combine(SUM, Buffer.abstract(64), Buffer.abstract(64))
        assert out.is_abstract and out.nbytes == 64

    def test_mixed_degrades_to_abstract(self):
        out = combine(SUM, Buffer(np.zeros(8)), Buffer.abstract(64))
        assert out.is_abstract and out.nbytes == 64

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            combine(SUM, Buffer(np.zeros(2)), Buffer(np.zeros(3)))
