"""Event-driven core: golden equivalence and scheduler unit tests.

The event-driven core (one continuation per rank, zero OS threads)
must be *bit-exact* against the same golden snapshots the threaded
engine is pinned to — clocks, monitoring matrices, NIC counters, and
switch counts (a switch is a scheduler resume on the event core).
The A/B tests here also drive the *same generator program* on both
cores and compare full snapshots, so the equivalence is established
against a live threaded run, not only against the checked-in file.
"""

from __future__ import annotations

import json
import os
import threading

import numpy as np
import pytest

from repro.simmpi import (
    SUM,
    Cluster,
    DeadlockError,
    Engine,
    RankFailure,
    SimError,
    Topology,
    current_process,
)

from scripts.capture_hotpath_golden import snapshot_engine
from tests.golden.hotpath_workloads_ev import WORKLOADS_EV

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "golden", "hotpath_golden.json"
)


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH, encoding="ascii") as fh:
        return json.load(fh)


@pytest.mark.parametrize("name", sorted(WORKLOADS_EV))
def test_eventloop_matches_seed_golden(name, golden):
    """The event core reproduces the seed snapshots bit-for-bit —
    including ``switches``, i.e. the continuation scheduler resumes
    ranks in exactly the order the baton-passing threads ran."""
    engine, results = WORKLOADS_EV[name]()
    assert engine._ev  # really ran on the event core
    snap = snapshot_engine(engine)
    snap["results"] = results
    expected = golden[name]
    assert sorted(snap) == sorted(expected)
    for key in expected:
        assert snap[key] == expected[key], f"{name}: {key} diverged from seed"


@pytest.mark.parametrize("name", sorted(WORKLOADS_EV))
def test_eventloop_counts_resumes(name):
    """On the event core every switch is a ``task.send()`` resume, so
    the two counters tick together (the golden run pins their value)."""
    engine, _ = WORKLOADS_EV[name]()
    assert engine.resumes == engine._resumes
    assert engine.resumes == engine.switches
    assert engine.resumes > 0


# -- A/B: the same generator program on both cores --------------------------


def _mixed_generator_program(comm):
    me, n = comm.rank, comm.size
    out = []
    yield from comm.co_barrier()
    for it in range(3):
        msg = yield from comm.co_sendrecv(
            np.float64(me), dest=(me + 1) % n, source=(me - 1) % n,
            sendtag=it, recvtag=it, nbytes=10_000,
        )
        out.append(float(msg.payload))
    total = yield from comm.co_allreduce(np.float64(me), SUM)
    yield from comm.co_compute(1e-4 * me)
    t = yield from comm.co_time()
    return out, float(total), t


def _run_generator_on(core: str):
    cluster = Cluster.plafrim(1, binding="rr", jitter=0.05)
    engine = Engine(cluster, seed=21, core=core)
    results = engine.run(_mixed_generator_program)
    return engine, results


def test_generator_program_core_ab_equivalence():
    """core='threads' drives the identical generator program on OS
    threads; every snapshot field must match the event-core run."""
    eng_threads, res_threads = _run_generator_on("threads")
    eng_event, res_event = _run_generator_on("eventloop")
    assert not eng_threads._ev
    assert eng_event._ev
    assert res_threads == res_event
    assert snapshot_engine(eng_threads) == snapshot_engine(eng_event)


def test_auto_core_picks_eventloop_for_generators():
    cluster = Cluster.plafrim(1, binding="rr")
    engine = Engine(cluster, seed=21)
    assert engine.core == "auto"
    engine.run(_mixed_generator_program)
    assert engine._ev


def test_eventloop_runs_on_zero_extra_threads():
    """The headline property: no OS thread is created per rank."""
    before = threading.active_count()
    engine, _ = _run_generator_on("eventloop")
    assert threading.active_count() == before
    assert all(p.thread is None for p in engine.procs)
    assert all(p.task is not None for p in engine.procs)


def test_eventloop_deterministic():
    eng_a, res_a = _run_generator_on("eventloop")
    eng_b, res_b = _run_generator_on("eventloop")
    assert res_a == res_b
    assert snapshot_engine(eng_a) == snapshot_engine(eng_b)


# -- validation and failure modes -------------------------------------------


def test_core_validation():
    cluster = Cluster.plafrim(1)
    with pytest.raises(ValueError):
        Engine(cluster, core="fibers")
    assert Engine(cluster).core == "auto"


def test_eventloop_rejects_plain_callable():
    cluster = Cluster(Topology([("node", 1), ("core", 2)]), 2)
    engine = Engine(cluster, core="eventloop")
    with pytest.raises(SimError, match="generator"):
        engine.run(lambda comm: comm.rank)


def test_eventloop_rank_failure():
    cluster = Cluster(Topology([("node", 1), ("core", 4)]), 4)
    engine = Engine(cluster, core="eventloop")

    def program(comm):
        yield from comm.co_barrier()
        if comm.rank == 2:
            raise RuntimeError("rank 2 exploded")
        yield from comm.co_barrier()

    with pytest.raises(RankFailure, match="rank 2"):
        engine.run(program)


def test_eventloop_deadlock_detection():
    cluster = Cluster(Topology([("node", 1), ("core", 2)]), 2)
    engine = Engine(cluster, core="eventloop")

    def program(comm):
        # Both ranks receive, nobody sends.
        req = comm.irecv(source=(comm.rank + 1) % comm.size, tag=0)
        msg = yield from req.co_wait()
        return msg

    with pytest.raises(DeadlockError):
        engine.run(program)


def test_eventloop_restores_current_process():
    """After a run (successful or failed) the scheduler leaves no
    dangling thread-local process binding behind."""
    engine, _ = _run_generator_on("eventloop")
    with pytest.raises(SimError):
        current_process()

    cluster = Cluster(Topology([("node", 1), ("core", 2)]), 2)
    failing = Engine(cluster, core="eventloop")

    def program(comm):
        yield from comm.co_sync()
        raise RuntimeError("boom")

    with pytest.raises(RankFailure):
        failing.run(program)
    with pytest.raises(SimError):
        current_process()


def test_eventloop_negative_compute_rejected():
    cluster = Cluster(Topology([("node", 1), ("core", 1)]), 1)
    engine = Engine(cluster, core="eventloop")

    def program(comm):
        yield from comm.co_compute(-1.0)

    with pytest.raises(RankFailure):
        engine.run(program)


def test_drive_rejects_yielding_generator():
    """_drive is the blocking bridge: a generator that actually yields
    outside the event core is a programming error, not a hang."""
    from repro.simmpi.engine import _drive

    def co_bogus():
        yield None

    with pytest.raises(SimError):
        _drive(co_bogus())
