"""Unit tests for communicator management (split, dup, groups)."""

import pytest

from repro.simmpi import CommError, RankFailure
from tests.conftest import run_spmd


class TestSplit:
    def test_even_odd_split(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            return (sub.rank, sub.size, sub.group)

        results, _ = run_spmd(prog, n_ranks=6)
        assert results[0] == (0, 3, [0, 2, 4])
        assert results[1] == (0, 3, [1, 3, 5])
        assert results[4] == (2, 3, [0, 2, 4])

    def test_key_orders_new_ranks(self):
        def prog(comm):
            sub = comm.split(color=0, key=-comm.rank)  # reversed order
            return sub.rank

        results, _ = run_spmd(prog, n_ranks=4)
        assert results == [3, 2, 1, 0]

    def test_key_ties_broken_by_old_rank(self):
        def prog(comm):
            sub = comm.split(color=0, key=0)
            return sub.rank

        results, _ = run_spmd(prog, n_ranks=4)
        assert results == [0, 1, 2, 3]

    def test_negative_color_returns_none(self):
        def prog(comm):
            sub = comm.split(color=-1 if comm.rank == 0 else 0, key=comm.rank)
            return None if sub is None else sub.size

        results, _ = run_spmd(prog, n_ranks=4)
        assert results[0] is None
        assert results[1] == 3

    def test_same_object_shared_across_ranks(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            return id(sub)

        results, _ = run_spmd(prog, n_ranks=4)
        assert results[0] == results[2]
        assert results[1] == results[3]
        assert results[0] != results[1]

    def test_communication_within_split(self):
        def prog(comm):
            sub = comm.split(color=comm.rank // 2, key=comm.rank)
            # Exchange within each pair via the sub-communicator.
            peer = 1 - sub.rank
            msg = sub.sendrecv(comm.rank, dest=peer, source=peer)
            return msg.payload

        results, _ = run_spmd(prog, n_ranks=4)
        assert results == [1, 0, 3, 2]

    def test_consecutive_splits_independent(self):
        def prog(comm):
            a = comm.split(color=0, key=comm.rank)
            b = comm.split(color=0, key=comm.rank)
            return a is b

        results, _ = run_spmd(prog, n_ranks=2)
        assert results == [False, False]


class TestDup:
    def test_dup_same_group_new_context(self):
        def prog(comm):
            d = comm.dup()
            assert d.group == comm.group
            assert d.id != comm.id
            # Messages on the dup never match receives on the parent.
            if comm.rank == 0:
                d.send("on-dup", dest=1, tag=5)
                comm.send("on-parent", dest=1, tag=5)
            else:
                parent_msg = comm.recv(source=0, tag=5)
                dup_msg = d.recv(source=0, tag=5)
                return (parent_msg.payload, dup_msg.payload)

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[1] == ("on-parent", "on-dup")


class TestGroups:
    def test_world_rank_translation(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            return [sub.world_rank(i) for i in range(sub.size)]

        results, _ = run_spmd(prog, n_ranks=4)
        assert results[0] == [0, 2]
        assert results[1] == [1, 3]

    def test_rank_for_non_member_raises(self):
        def prog(comm):
            comm.split(color=comm.rank % 2, key=comm.rank)
            if comm.rank == 0:
                # Peek at the other color's communicator via the shared
                # registry: rank 0 is not a member, so .rank must fail.
                other = comm.engine.comm_registry[("split", comm.id, 0, 1)]
                try:
                    other.rank
                except CommError:
                    return "raised"
            return None

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[0] == "raised"

    def test_empty_group_rejected(self):
        from repro.simmpi.comm import Communicator

        class FakeEngine:
            def alloc_comm_id(self):
                return 0

        with pytest.raises(CommError):
            Communicator(FakeEngine(), [])

    def test_duplicate_group_rejected(self):
        from repro.simmpi.comm import Communicator

        class FakeEngine:
            def alloc_comm_id(self):
                return 0

        with pytest.raises(CommError):
            Communicator(FakeEngine(), [0, 0, 1])
