"""Unit tests for rank→PU binding strategies."""

import pytest

from repro.simmpi.binding import (
    explicit_binding,
    make_binding,
    packed_binding,
    random_binding,
    round_robin_binding,
    validate_binding,
)
from repro.simmpi.topology import Topology


@pytest.fixture
def topo():
    return Topology([("node", 2), ("socket", 2), ("core", 3)])  # 12 PUs


def test_packed(topo):
    assert packed_binding(topo, 5) == [0, 1, 2, 3, 4]


def test_packed_full(topo):
    assert packed_binding(topo, 12) == list(range(12))


def test_packed_overflow(topo):
    with pytest.raises(ValueError):
        packed_binding(topo, 13)


def test_round_robin_alternates_nodes(topo):
    pus = round_robin_binding(topo, 6)
    nodes = [topo.node_of(p) for p in pus]
    assert nodes == [0, 1, 0, 1, 0, 1]


def test_round_robin_fills_cores_in_order(topo):
    pus = round_robin_binding(topo, 12)
    assert sorted(pus) == list(range(12))
    assert pus[0] == 0 and pus[1] == 6  # node 1 starts at PU 6


def test_random_is_injective_and_seeded(topo):
    a = random_binding(topo, 10, seed=3)
    b = random_binding(topo, 10, seed=3)
    c = random_binding(topo, 10, seed=4)
    assert a == b
    assert a != c
    assert len(set(a)) == 10


def test_explicit_roundtrip(topo):
    pus = [5, 0, 11]
    assert explicit_binding(topo, pus) == pus


def test_validate_rejects_duplicates(topo):
    with pytest.raises(ValueError):
        validate_binding(topo, [0, 0, 1], 3)


def test_validate_rejects_out_of_range(topo):
    with pytest.raises(ValueError):
        validate_binding(topo, [0, 99], 2)


def test_validate_rejects_wrong_length(topo):
    with pytest.raises(ValueError):
        validate_binding(topo, [0, 1], 3)


def test_make_binding_names(topo):
    assert make_binding(topo, 4, "packed") == make_binding(topo, 4, "standard")
    assert make_binding(topo, 4, "rr") == make_binding(topo, 4, "round_robin")
    with pytest.raises(ValueError):
        make_binding(topo, 4, "nope")
