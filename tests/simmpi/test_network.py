"""Unit tests for the hierarchical network cost model and NIC counters."""

import numpy as np
import pytest

from repro.simmpi.network import LinkParams, Network, NetworkParams, plafrim_params
from repro.simmpi.nic import NicCounters
from repro.simmpi.topology import Topology


@pytest.fixture
def topo():
    return Topology([("node", 2), ("socket", 2), ("core", 2)])  # 8 PUs


def simple_params(**kw):
    defaults = dict(
        links={
            "cluster": LinkParams(1e-6, 1e9),
            "node": LinkParams(5e-7, 2e9),
            "socket": LinkParams(2e-7, 4e9),
            "self": LinkParams(1e-7, 1e10),
        },
        send_overhead=0.0,
        recv_overhead=0.0,
    )
    defaults.update(kw)
    return NetworkParams(**defaults)


class TestLinkSelection:
    def test_classes(self, topo):
        net = Network(topo, list(range(8)), simple_params())
        assert net.sharing_class(0, 1) == "socket"
        assert net.sharing_class(0, 2) == "node"
        assert net.sharing_class(0, 4) == "cluster"
        assert net.sharing_class(3, 3) == "self"

    def test_fallback_to_deeper_level(self, topo):
        params = NetworkParams(links={"cluster": LinkParams(1e-6, 1e9),
                                      "self": LinkParams(1e-7, 1e10)})
        # "socket" undefined: falls through to "self".
        lp = params.link_for("socket", topo)
        assert lp.bandwidth == 1e10

    def test_no_coverage_raises(self, topo):
        params = NetworkParams(links={"cluster": LinkParams(1e-6, 1e9)})
        with pytest.raises(ValueError):
            params.link_for("node", topo)

    def test_unknown_class_raises(self, topo):
        params = simple_params()
        with pytest.raises(ValueError):
            params.link_for("rack", topo)

    def test_bad_link_params(self):
        with pytest.raises(ValueError):
            LinkParams(-1e-6, 1e9)
        with pytest.raises(ValueError):
            LinkParams(1e-6, 0)


class TestTransfer:
    def test_intra_socket_cost(self, topo):
        net = Network(topo, list(range(8)), simple_params())
        done, arrival = net.transfer(0, 1, 4_000, t_send=0.0)
        assert done == pytest.approx(1e-6)  # 4000 B / 4 GB/s
        assert arrival == pytest.approx(1e-6 + 2e-7)

    def test_cross_node_cost(self, topo):
        net = Network(topo, list(range(8)), simple_params())
        done, arrival = net.transfer(0, 4, 1_000, t_send=0.0)
        assert done == pytest.approx(1e-6)  # 1000 B / 1 GB/s
        assert arrival == pytest.approx(2e-6)

    def test_send_overhead_applied(self, topo):
        net = Network(topo, list(range(8)),
                      simple_params(send_overhead=1e-5))
        done, _ = net.transfer(0, 1, 0, t_send=0.0)
        assert done == pytest.approx(1e-5)

    def test_negative_size_rejected(self, topo):
        net = Network(topo, list(range(8)), simple_params())
        with pytest.raises(ValueError):
            net.transfer(0, 1, -5, 0.0)

    def test_nic_serialization(self, topo):
        net = Network(topo, list(range(8)), simple_params())
        # Two cross-node messages from the same node: the second waits
        # for the first to clear the NIC.
        done1, _ = net.transfer(0, 4, 1_000_000, 0.0)
        done2, _ = net.transfer(1, 5, 1_000_000, 0.0)
        assert done2 == pytest.approx(done1 + 1e-3)

    def test_nic_serialization_disabled(self, topo):
        net = Network(topo, list(range(8)),
                      simple_params(nic_serialize=False))
        done1, _ = net.transfer(0, 4, 1_000_000, 0.0)
        done2, _ = net.transfer(1, 5, 1_000_000, 0.0)
        assert done2 == pytest.approx(done1)

    def test_intra_node_does_not_touch_nic(self, topo):
        net = Network(topo, list(range(8)), simple_params())
        net.transfer(0, 1, 1_000_000, 0.0)
        assert net.nic.total_xmit_bytes(0) == 0

    def test_cross_node_charges_counters(self, topo):
        net = Network(topo, list(range(8)), simple_params())
        net.transfer(0, 4, 12_345, 0.0)
        assert net.nic.total_xmit_bytes(0) == 12_345
        assert net.nic.total_xmit_bytes(1) == 0

    def test_memory_contention_serializes_same_node(self, topo):
        net = Network(topo, list(range(8)),
                      simple_params(mem_bandwidth=1e9))
        done1, _ = net.transfer(0, 1, 1_000_000, 0.0)
        done2, _ = net.transfer(2, 3, 1_000_000, 0.0)
        # Both transfers live on node 0: the second starts after the
        # first's 1 ms memory reservation.
        assert done2 >= 1e-3

    def test_memory_contention_other_node_free(self, topo):
        net = Network(topo, list(range(8)),
                      simple_params(mem_bandwidth=1e9))
        net.transfer(0, 1, 1_000_000, 0.0)
        done2, _ = net.transfer(4, 5, 1_000_000, 0.0)
        assert done2 == pytest.approx(0.00025)  # unaffected by node 0


class TestJitter:
    def test_no_jitter_is_deterministic(self, topo):
        net = Network(topo, list(range(8)), simple_params())
        a = net.transfer(0, 4, 1000, 0.0)
        net2 = Network(topo, list(range(8)), simple_params())
        assert a == net2.transfer(0, 4, 1000, 0.0)

    def test_jitter_seeded(self, topo):
        p = simple_params(jitter=0.1)
        a = Network(topo, list(range(8)), p, seed=1).transfer(0, 4, 1000, 0.0)
        b = Network(topo, list(range(8)), p, seed=1).transfer(0, 4, 1000, 0.0)
        c = Network(topo, list(range(8)), p, seed=2).transfer(0, 4, 1000, 0.0)
        assert a == b
        assert a != c

    def test_reseed_resets_stream(self, topo):
        p = simple_params(jitter=0.1)
        net = Network(topo, list(range(8)), p, seed=1)
        a = net.transfer(0, 4, 1000, 0.0)
        net.reseed(1)
        net._nic_free[:] = [0.0] * len(net._nic_free)  # reset resource state too
        assert net.transfer(0, 4, 1000, 0.0) == a


class TestNicCounters:
    def test_read_before_any_event(self):
        nic = NicCounters(2)
        assert nic.xmit_bytes(0, 100.0) == 0

    def test_cumulative_read_at_time(self):
        nic = NicCounters(1)
        nic.record_xmit(0, 1.0, 100)
        nic.record_xmit(0, 2.0, 50)
        assert nic.xmit_bytes(0, 0.5) == 0
        assert nic.xmit_bytes(0, 1.0) == 100
        assert nic.xmit_bytes(0, 5.0) == 150

    def test_lane_units(self):
        nic = NicCounters(1, lanes=4)
        nic.record_xmit(0, 1.0, 400)
        assert nic.port_xmit_data(0, 2.0) == 100
        assert nic.port_xmit_data(0, 2.0) * nic.lanes == 400

    def test_out_of_order_clamped_monotone(self):
        nic = NicCounters(1)
        nic.record_xmit(0, 2.0, 10)
        nic.record_xmit(0, 1.0, 20)  # recorded late, clamped to t=2
        assert nic.xmit_bytes(0, 1.5) == 0  # both events clamp to t=2.0
        assert nic.xmit_bytes(0, 2.0) == 30

    def test_rcv_counters_independent(self):
        nic = NicCounters(2)
        nic.record_rcv(1, 1.0, 77)
        assert nic.rcv_bytes(1, 2.0) == 77
        assert nic.xmit_bytes(1, 2.0) == 0

    def test_events_history(self):
        nic = NicCounters(1)
        nic.record_xmit(0, 1.0, 5)
        nic.record_xmit(0, 3.0, 5)
        assert nic.xmit_events(0) == [(1.0, 5), (3.0, 10)]

    def test_bad_node(self):
        nic = NicCounters(1)
        with pytest.raises(ValueError):
            nic.xmit_bytes(5, 0.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            NicCounters(0)
        with pytest.raises(ValueError):
            NicCounters(1, lanes=0)


def test_plafrim_preset_has_mem_contention():
    p = plafrim_params()
    assert p.mem_bandwidth is not None
    assert "cluster" in p.links and "socket" in p.links
