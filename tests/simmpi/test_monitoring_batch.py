"""Unit tests for batched monitoring (record_batch / PeerBatch).

The acceptance property: a ``record_batch`` of N messages must be
indistinguishable — matrices, totals, epochs — from N individual
``record`` calls.  Plus the regressions the batching refactor guards:
category validation fires even at mode 0, per-segment gating evaluates
the mode at each materialization (a session can open or close mid-
batch), and mode 1 remaps collective-internal traffic to p2p.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simmpi.pml_monitoring import CATEGORIES, PeerBatch, PmlMonitoring


def _assert_same_state(a: PmlMonitoring, b: PmlMonitoring) -> None:
    for cat in CATEGORIES:
        assert a.totals(cat) == b.totals(cat)
        assert np.array_equal(a.counts[cat], b.counts[cat])
        assert np.array_equal(a.sizes[cat], b.sizes[cat])


@pytest.mark.parametrize("mode", [1, 2])
@pytest.mark.parametrize("category", CATEGORIES)
def test_batch_matches_individual_records(mode, category):
    """record_batch(src, dst, N, total) == N record(src, dst, ...) calls."""
    individual = PmlMonitoring(4)
    batched = PmlMonitoring(4)
    individual.set_mode(mode)
    batched.set_mode(mode)

    sizes = [0, 17, 1024, 17, 5]  # includes a zero-length message
    for nbytes in sizes:
        assert individual.record(1, 3, nbytes, category)
    assert batched.record_batch(1, 3, len(sizes), sum(sizes), category)

    _assert_same_state(individual, batched)


def test_peer_batch_matches_individual_records():
    """The full PeerBatch protocol (open, gate each segment, close)
    lands the same state as individually recorded segments."""
    individual = PmlMonitoring(4)
    batched = PmlMonitoring(4)
    individual.set_mode(2)
    batched.set_mode(2)

    batch = PeerBatch(0, 2, "coll")
    for nbytes in (100, 200, 300):
        individual.record(0, 2, nbytes, "coll")
        assert batched.note_batched(batch, nbytes)
    batched.close_batch(batch)

    _assert_same_state(individual, batched)
    assert batch.tallies == [0, 0, 0, 0]  # close resets


def test_unknown_category_rejected_even_when_disabled():
    """Regression: the category check is unconditional — a typo in a
    collective's category must fail fast even while monitoring is off
    (mode 0), not silently pass until someone enables a session."""
    pml = PmlMonitoring(2)
    assert pml.mode == 0
    with pytest.raises(ValueError, match="unknown category"):
        pml.record(0, 1, 10, "bogus")
    with pytest.raises(ValueError, match="unknown category"):
        pml.record_batch(0, 1, 2, 20, "bogus")
    with pytest.raises(ValueError, match="unknown category"):
        PeerBatch(0, 1, "bogus")


def test_negative_values_rejected():
    pml = PmlMonitoring(2)
    with pytest.raises(ValueError):
        pml.record(0, 1, -1, "p2p")
    with pytest.raises(ValueError):
        pml.record_batch(0, 1, -1, 10, "p2p")
    with pytest.raises(ValueError):
        pml.record_batch(0, 1, 1, -10, "p2p")


def test_mode0_records_nothing():
    pml = PmlMonitoring(2)
    assert not pml.record(0, 1, 10, "p2p")
    assert not pml.record_batch(0, 1, 3, 30, "coll")
    batch = PeerBatch(0, 1, "coll")
    assert not pml.note_batched(batch, 10)
    assert batch.tallies == [0, 0, 0, 0]
    for cat in CATEGORIES:
        assert pml.totals(cat) == (0, 0)


def test_empty_batch_records_nothing():
    pml = PmlMonitoring(2)
    pml.set_mode(2)
    assert not pml.record_batch(0, 1, 0, 0, "p2p")
    assert pml.totals("p2p") == (0, 0)


def test_mode1_remaps_coll_to_p2p():
    """Mode 1 draws no internal/external distinction: collective-
    internal traffic lands in the p2p matrices."""
    pml = PmlMonitoring(4)
    pml.set_mode(1)
    pml.record_batch(2, 0, 4, 400, "coll")
    assert pml.totals("coll") == (0, 0)
    assert pml.totals("p2p") == (4, 400)
    assert pml.counts["p2p"][2, 0] == 4
    assert pml.sizes["p2p"][2, 0] == 400


def test_mid_batch_mode_flip():
    """Each batched segment is gated at its own materialization point:
    segments sent while a session is suspended (mode 0) vanish, and
    mode-1 segments of a coll batch are remapped — all within one
    batch."""
    pml = PmlMonitoring(4)
    batch = PeerBatch(1, 2, "coll")

    pml.set_mode(2)
    assert pml.note_batched(batch, 100)  # -> coll
    pml.set_mode(1)
    assert pml.note_batched(batch, 200)  # -> remapped to p2p
    pml.set_mode(0)
    assert not pml.note_batched(batch, 400)  # dropped
    pml.close_batch(batch)

    assert pml.totals("coll") == (1, 100)
    assert pml.totals("p2p") == (1, 200)
    assert pml.totals("osc") == (0, 0)


def test_epochs_move_only_for_written_categories():
    """Snapshot layers rely on per-category epochs to skip unchanged
    matrices; records in one category must not bump the others."""
    pml = PmlMonitoring(4)
    pml.set_mode(2)
    before = {c: pml.epoch(c) for c in CATEGORIES}
    pml.record(0, 1, 10, "p2p")
    pml.record_batch(0, 1, 2, 20, "p2p")
    assert pml.epoch("p2p") > before["p2p"]
    assert pml.epoch("coll") == before["coll"]
    assert pml.epoch("osc") == before["osc"]


def test_trace_hook_sees_multiplicity_and_mode0_traffic():
    """The trace hook fires before the mode gate (tracers see disabled
    traffic) and a batch is one event carrying its count."""
    pml = PmlMonitoring(4)
    events = []
    pml.trace_hook = lambda t, src, dst, nbytes, cat, count: events.append(
        (t, src, dst, nbytes, cat, count)
    )

    pml.record(0, 1, 10, "p2p", t=1.5)  # mode 0: dropped but traced
    pml.set_mode(2)
    pml.record_batch(0, 2, 3, 300, "coll", t=2.5)
    batch = PeerBatch(0, 3, "coll")
    pml.note_batched(batch, 50, t=3.5)

    assert events == [
        (1.5, 0, 1, 10, "p2p", 1),
        (2.5, 0, 2, 300, "coll", 3),
        (3.5, 0, 3, 50, "coll", 1),
    ]
    assert pml.totals("p2p") == (0, 0)
