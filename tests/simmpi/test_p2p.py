"""Unit tests for point-to-point messaging semantics."""

import numpy as np
import pytest

from repro.simmpi import ANY_SOURCE, ANY_TAG, CommError, RankFailure
from repro.simmpi.request import waitall
from tests.conftest import run_spmd


class TestSendRecv:
    def test_value_delivery(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"a": 1}, dest=1, tag=3)
                return None
            msg = comm.recv(source=0, tag=3)
            return (msg.payload, msg.src, msg.tag)

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[1] == ({"a": 1}, 0, 3)

    def test_numpy_payload_copied_at_send(self):
        def prog(comm):
            if comm.rank == 0:
                arr = np.array([1.0, 2.0])
                comm.send(arr, dest=1)
                arr[0] = 99.0  # mutation after send must not be visible
            else:
                return comm.recv(source=0).payload[0]

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[1] == 1.0

    def test_abstract_send_carries_size_only(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(None, dest=1, nbytes=123_456)
            else:
                msg = comm.recv(source=0)
                return (msg.payload, msg.nbytes)

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[1] == (None, 123_456)

    def test_zero_byte_message(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(None, dest=1)
            else:
                return comm.recv(source=0).nbytes

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[1] == 0

    def test_send_before_recv_posted(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(7, dest=1)
                comm.compute(1.0)
            else:
                comm.compute(2.0)  # recv posted long after arrival
                return comm.recv(source=0).payload

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[1] == 7

    def test_recv_before_send_posted(self):
        def prog(comm):
            if comm.rank == 1:
                return comm.recv(source=0).payload
            comm.compute(2.0)
            comm.send(8, dest=1)

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[1] == 8

    def test_recv_advances_clock_to_arrival(self):
        def prog(comm):
            if comm.rank == 0:
                comm.compute(5.0)
                comm.send(None, dest=1, nbytes=0)
            else:
                comm.recv(source=0)
                return comm.time

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[1] > 5.0


class TestMatching:
    def test_tag_selectivity(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
            else:
                second = comm.recv(source=0, tag=2).payload
                first = comm.recv(source=0, tag=1).payload
                return (first, second)

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[1] == ("first", "second")

    def test_any_source(self):
        def prog(comm):
            if comm.rank == 2:
                got = set()
                for _ in range(2):
                    got.add(comm.recv(source=ANY_SOURCE).src)
                return got
            comm.send(comm.rank, dest=2)

        results, _ = run_spmd(prog, n_ranks=3)
        assert results[2] == {0, 1}

    def test_any_tag(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=42)
            else:
                return comm.recv(source=0, tag=ANY_TAG).tag

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[1] == 42

    def test_fifo_per_pair(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1, tag=7)
            else:
                return [comm.recv(source=0, tag=7).payload for _ in range(5)]

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[1] == [0, 1, 2, 3, 4]

    def test_probe_nonblocking(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("hello", dest=1, tag=9)
                return None
            before = comm.probe(source=0, tag=8)  # wrong tag: no match
            comm.recv(source=0, tag=9)
            return before

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[1] is None


class TestNonblocking:
    def test_isend_irecv_waitall(self):
        def prog(comm):
            me, n = comm.rank, comm.size
            reqs = [comm.irecv(source=s, tag=1) for s in range(n) if s != me]
            for d in range(n):
                if d != me:
                    comm.isend(me, dest=d, tag=1)
            msgs = waitall(reqs)
            return sorted(m.payload for m in msgs)

        results, _ = run_spmd(prog, n_ranks=4)
        assert results[0] == [1, 2, 3]
        assert results[3] == [0, 1, 2]

    def test_request_test_nonadvancing(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.irecv(source=1)
                t_before = comm.time
                unmatched = req.test()
                comm.send(None, dest=1, nbytes=0)  # let rank 1 proceed
                msg = req.wait()
                return (unmatched, t_before, msg.payload)
            comm.recv(source=0)
            comm.send("late", dest=0)

        results, _ = run_spmd(prog, n_ranks=2)
        unmatched, _, payload = results[0]
        assert unmatched is False
        assert payload == "late"

    def test_sendrecv_exchange(self):
        def prog(comm):
            me, n = comm.rank, comm.size
            msg = comm.sendrecv(me * 100, dest=(me + 1) % n,
                                source=(me - 1) % n)
            return msg.payload

        results, _ = run_spmd(prog, n_ranks=4)
        assert results == [300, 0, 100, 200]


class TestErrors:
    def test_bad_dest_rank(self):
        def prog(comm):
            comm.send(None, dest=99)

        with pytest.raises(RankFailure) as e:
            run_spmd(prog, n_ranks=2)
        assert isinstance(e.value.original, CommError)

    def test_negative_user_tag_rejected(self):
        def prog(comm):
            comm.send(None, dest=0, tag=-3)

        with pytest.raises(RankFailure) as e:
            run_spmd(prog, n_ranks=2)
        assert isinstance(e.value.original, CommError)

    def test_bad_source_rank(self):
        def prog(comm):
            comm.recv(source=42)

        with pytest.raises(RankFailure) as e:
            run_spmd(prog, n_ranks=2)
        assert isinstance(e.value.original, CommError)
