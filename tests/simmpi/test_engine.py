"""Unit tests for the cooperative scheduler and virtual clocks."""

import numpy as np
import pytest

from repro.simmpi import (
    Cluster,
    DeadlockError,
    Engine,
    RankFailure,
    SimError,
    Topology,
    current_process,
)
from tests.conftest import run_spmd


class TestBasicExecution:
    def test_results_in_rank_order(self):
        results, _ = run_spmd(lambda comm: comm.rank * 10, n_ranks=4)
        assert results == [0, 10, 20, 30]

    def test_world_size(self):
        results, _ = run_spmd(lambda comm: comm.size, n_ranks=6)
        assert results == [6] * 6

    def test_args_passed(self):
        results, _ = run_spmd(lambda comm, x, y: x + y + comm.rank,
                              n_ranks=2, args=(100, 1))
        assert results == [101, 102]

    def test_single_rank(self):
        results, _ = run_spmd(lambda comm: comm.rank, n_ranks=1)
        assert results == [0]

    def test_engine_is_single_shot(self):
        cluster = Cluster(Topology([("node", 1), ("core", 2)]), 2)
        engine = Engine(cluster)
        engine.run(lambda comm: None)
        with pytest.raises(SimError):
            engine.run(lambda comm: None)


class TestVirtualTime:
    def test_compute_advances_clock(self):
        def prog(comm):
            comm.compute(1.5)
            comm.sleep(0.5)
            return comm.time

        results, engine = run_spmd(prog, n_ranks=2)
        assert results == [2.0, 2.0]
        assert engine.max_clock == 2.0

    def test_clocks_start_at_zero(self):
        results, _ = run_spmd(lambda comm: comm.time, n_ranks=2)
        assert results == [0.0, 0.0]

    def test_negative_advance_rejected(self):
        def prog(comm):
            comm.compute(-1.0)

        with pytest.raises(RankFailure):
            run_spmd(prog, n_ranks=1)

    def test_clocks_listed_after_run(self):
        def prog(comm):
            comm.compute(comm.rank * 1.0)

        _, engine = run_spmd(prog, n_ranks=3)
        assert engine.clocks() == [0.0, 1.0, 2.0]


class TestDeterminism:
    def test_identical_runs_identical_clocks(self):
        def prog(comm):
            me, n = comm.rank, comm.size
            for it in range(5):
                comm.sendrecv(np.float64(me), dest=(me + 1) % n,
                              source=(me - 1) % n, sendtag=it, recvtag=it)
            return comm.time

        r1, _ = run_spmd(prog, n_ranks=6)
        r2, _ = run_spmd(prog, n_ranks=6)
        assert r1 == r2


class TestFailures:
    def test_rank_exception_wrapped(self):
        def prog(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            comm.recv(source=comm.rank)  # would hang, must be aborted

        with pytest.raises(RankFailure) as exc_info:
            run_spmd(prog, n_ranks=4)
        assert exc_info.value.rank == 2
        assert isinstance(exc_info.value.original, ValueError)

    def test_deadlock_detected(self):
        def prog(comm):
            comm.recv(source=(comm.rank + 1) % comm.size, tag=5)

        with pytest.raises(DeadlockError) as exc_info:
            run_spmd(prog, n_ranks=3)
        assert len(exc_info.value.states) == 3

    def test_partial_deadlock_detected(self):
        def prog(comm):
            if comm.rank == 0:
                return None  # finishes immediately
            comm.recv(source=0, tag=1)  # never sent

        with pytest.raises(DeadlockError) as exc_info:
            run_spmd(prog, n_ranks=3)
        assert len(exc_info.value.states) == 2

    def test_current_process_outside_simulation(self):
        with pytest.raises(SimError):
            current_process()


class TestMonitoringOverheadCharge:
    def test_no_charge_when_disabled(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(None, dest=1, nbytes=0)
            elif comm.rank == 1:
                comm.recv(source=0)
            return comm.time

        r_off, eng_off = run_spmd(prog, n_ranks=2, monitoring_overhead=1e-3)
        assert eng_off.pml.mode == 0  # never enabled: no charge applied

        def prog_on(comm):
            comm.engine.pml.set_mode(1)
            return prog(comm)

        r_on, _ = run_spmd(prog_on, n_ranks=2, monitoring_overhead=1e-3)
        assert r_on[0] >= r_off[0] + 1e-3

    def test_switch_counter_grows(self):
        def prog(comm):
            comm.barrier()

        _, engine = run_spmd(prog, n_ranks=4)
        assert engine.switches > 4
