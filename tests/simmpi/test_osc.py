"""Unit tests for one-sided communication (windows)."""

import numpy as np

from repro.simmpi import SUM
from tests.conftest import run_spmd


class TestPutGet:
    def test_put_visible_at_target(self):
        def prog(comm):
            win = comm.win_create(np.zeros(4))
            if comm.rank == 0:
                win.put(np.full(4, 7.0), target=1)
            win.fence()
            return None if win.local() is None else win.local().tolist()

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[1] == [7.0] * 4

    def test_get_reads_target_memory(self):
        def prog(comm):
            win = comm.win_create(np.full(3, float(comm.rank)))
            win.fence()
            if comm.rank == 0:
                data = win.get(target=2)
                return data.tolist()
            return None

        results, _ = run_spmd(prog, n_ranks=3)
        assert results[0] == [2.0, 2.0, 2.0]

    def test_get_returns_copy(self):
        def prog(comm):
            win = comm.win_create(np.zeros(2))
            win.fence()
            if comm.rank == 0:
                got = win.get(target=1)
                got[0] = 99.0
            win.fence()
            return None if win.local() is None else win.local()[0]

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[1] == 0.0

    def test_accumulate(self):
        def prog(comm):
            win = comm.win_create(np.array([10.0]))
            win.fence()
            if comm.rank == 1:
                win.accumulate(np.array([5.0]), target=0, op=SUM)
            win.fence()
            return win.local()[0]

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[0] == 15.0

    def test_get_advances_clock_round_trip(self):
        def prog(comm):
            win = comm.win_create(np.zeros(1_000_000))
            win.fence()
            t0 = comm.time
            if comm.rank == 0:
                win.get(target=1)
                return comm.time - t0
            return 0.0

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[0] > 0.0


class TestMonitoringCategory:
    def test_put_recorded_as_osc(self):
        def prog(comm):
            comm.engine.pml.set_mode(2)
            win = comm.win_create(np.zeros(8))
            if comm.rank == 0:
                win.put(np.ones(8), target=1)
            win.fence()

        _, engine = run_spmd(prog, n_ranks=2)
        counts = engine.pml.counts["osc"]
        sizes = engine.pml.sizes["osc"]
        assert sizes[0, 1] == 64
        assert counts[0, 1] >= 1
        assert engine.pml.totals("coll")[1] == 0

    def test_get_booked_as_target_send(self):
        def prog(comm):
            comm.engine.pml.set_mode(2)
            win = comm.win_create(np.zeros(4))
            win.fence()
            if comm.rank == 0:
                win.get(target=1)
            win.fence()

        _, engine = run_spmd(prog, n_ranks=2)
        # The data flows target -> origin, like an RDMA read on the wire.
        assert engine.pml.sizes["osc"][1, 0] == 32

    def test_fence_generates_zero_byte_osc_traffic(self):
        def prog(comm):
            comm.engine.pml.set_mode(2)
            win = comm.win_create(None)
            win.fence()

        _, engine = run_spmd(prog, n_ranks=4)
        count, size = engine.pml.totals("osc")
        assert count > 0
        assert size == 0
