"""Pickle round-trips for the engine and its components.

A finished engine is an analysis artifact: sweep workers ship results
across process boundaries and cache layers persist them to disk, so
``pickle.dumps(engine)`` must work — no live threads, semaphores, or
MPI_T reader closures in the state.  The thawed engine must preserve
every observable (clocks, matrices, totals, NIC counters, switches)
and have a working, freshly rebuilt MPI_T registry.
"""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro.simmpi import SUM, Cluster, Engine
from scripts.capture_hotpath_golden import snapshot_engine


def _finished_engine(core: str = "auto"):
    """A small monitored run touching p2p, coll, and osc state.

    Deliberately mapi-free: the monitoring *runtime* (pvar handles in
    ``proc.userdata``) is per-run live state, not part of the
    engine-as-artifact contract.
    """
    cluster = Cluster.plafrim(1, binding="rr", jitter=0.1)
    engine = Engine(cluster, seed=13, core=core)

    def program(comm):
        comm.engine.pml.set_mode(2)
        me, n = comm.rank, comm.size
        comm.barrier()
        comm.sendrecv(np.float64(me), dest=(me + 1) % n, source=(me - 1) % n,
                      nbytes=4_000)
        total = comm.allreduce(np.float64(me), SUM)
        win = comm.win_create(np.zeros(4), nbytes=32)
        win.fence()
        if me == 0:
            win.put(np.ones(4), target=1, nbytes=32)
        win.fence()
        return float(total)

    results = engine.run(program)
    return engine, results


def test_round_trip_preserves_observables():
    engine, results = _finished_engine()
    frozen = snapshot_engine(engine)
    blob = pickle.dumps(engine)
    thawed = pickle.loads(blob)
    assert snapshot_engine(thawed) == frozen
    assert thawed.clocks() == engine.clocks()
    assert thawed.switches == engine.switches
    assert thawed.resumes == engine.resumes
    assert thawed.n_ranks == engine.n_ranks
    assert thawed.seed == engine.seed


def test_no_live_threads_or_semaphores_in_state():
    engine, _ = _finished_engine()
    state = engine.__getstate__()
    for key in ("_main_sem", "mpit", "_obs", "_obs_spans", "_rr"):
        assert key not in state
    for proc in state["procs"]:
        pstate = proc.__getstate__()
        assert "thread" not in pstate
        assert "task" not in pstate
        assert "sem" not in pstate


def test_thawed_engine_rewires_runtime_taps():
    engine, _ = _finished_engine()
    thawed = pickle.loads(pickle.dumps(engine))
    # Fresh, locked main semaphore; fresh MPI_T registry wired to the
    # same pml; sync reinstalled as the settle bridge.
    assert isinstance(thawed._main_sem, type(threading.Lock()))
    assert not thawed._main_sem.acquire(blocking=False)
    assert thawed.mpit is not engine.mpit
    assert thawed.pml.sync is not None
    assert thawed._obs is None and thawed._rr is None
    # The registry readers serve the thawed matrices.
    sess = thawed.mpit.pvar_session_create()
    h = sess.handle_alloc("pml_monitoring_messages_count", 0)
    h.start()
    np.testing.assert_array_equal(h.read(), thawed.pml.counts["p2p"][0])


def test_thawed_procs_are_inert():
    engine, _ = _finished_engine()
    thawed = pickle.loads(pickle.dumps(engine))
    for proc in thawed.procs:
        assert proc.thread is None
        assert proc.task is None
        assert not proc.sem.acquire(blocking=False)  # parked (locked)


def test_round_trip_from_event_core():
    """The event core leaves rank continuations on the procs; they are
    ephemeral too."""
    cluster = Cluster.plafrim(1, binding="rr")
    engine = Engine(cluster, seed=2, core="eventloop")

    def program(comm):
        yield from comm.co_barrier()
        t = yield from comm.co_time()
        return t

    results = engine.run(program)
    thawed = pickle.loads(pickle.dumps(engine))
    assert snapshot_engine(thawed) == snapshot_engine(engine)
    assert thawed.clocks() == [r for r in results]


def test_fresh_engine_round_trips_and_runs():
    """An engine pickled *before* running still runs a program after
    thawing (the sweep-orchestration shipping pattern)."""
    cluster = Cluster.plafrim(1, binding="packed")
    engine = pickle.loads(pickle.dumps(Engine(cluster, seed=4)))

    def program(comm):
        comm.barrier()
        return comm.rank

    assert engine.run(program) == list(range(cluster.n_ranks))


def test_filesystem_pvars_survive_thaw():
    """MPI-IO byte counters re-register against the rebuilt registry."""
    cluster = Cluster.plafrim(1, binding="packed")
    engine = Engine(cluster, seed=0)

    def program(comm):
        from repro.simmpi.io import File

        f = File.open(comm, "out.dat")
        f.write_at(comm.rank * 100, nbytes=100)
        f.close()

    engine.run(program)
    thawed = pickle.loads(pickle.dumps(engine))
    sess = thawed.mpit.pvar_session_create()
    h = sess.handle_alloc("io_monitoring_bytes_written", 0)
    h.start()
    assert int(h.read()[0]) == 100


def test_unreadable_live_run_state_is_dropped_not_fatal():
    """Pickling must not require quiescing: a mid-build engine (never
    run) with an observer-less config round-trips cleanly."""
    cluster = Cluster.plafrim(1)
    engine = Engine(cluster, seed=9)
    thawed = pickle.loads(pickle.dumps(engine))
    assert thawed.procs == []
    assert thawed.world is None


@pytest.mark.parametrize("core", ["auto", "threads"])
def test_round_trip_across_cores_matches(core):
    engine, _ = _finished_engine(core=core)
    thawed = pickle.loads(pickle.dumps(engine))
    assert snapshot_engine(thawed) == snapshot_engine(engine)
