"""Abstract (payload-free) buffers across every collective.

Modeled workloads (CG classes C/D, the Fig. 5/6 kernels) never allocate
their buffers; every collective must carry sizes faithfully without
payloads.
"""

import pytest

from repro.simmpi import SUM
from repro.simmpi.datatypes import Buffer
from tests.conftest import run_spmd


def nbytes_of(x):
    return x.nbytes if isinstance(x, Buffer) else None


class TestAbstractCollectives:
    @pytest.mark.parametrize("algorithm", ["binomial", "flat", "chain"])
    def test_bcast(self, algorithm):
        def prog(comm):
            out = comm.bcast(None, root=0,
                             nbytes=4096 if comm.rank == 0 else None,
                             algorithm=algorithm)
            return nbytes_of(out)

        results, _ = run_spmd(prog, n_ranks=5)
        assert results == [4096] * 5

    @pytest.mark.parametrize("algorithm", ["binomial", "binary", "flat"])
    def test_reduce(self, algorithm):
        def prog(comm):
            out = comm.reduce(None, SUM, root=2, nbytes=512,
                              algorithm=algorithm)
            return nbytes_of(out)

        results, _ = run_spmd(prog, n_ranks=5)
        assert results[2] == 512
        assert results[0] is None

    @pytest.mark.parametrize("algorithm", ["ring", "gather_bcast"])
    def test_allgather(self, algorithm):
        def prog(comm):
            out = comm.allgather(None, nbytes=100, algorithm=algorithm)
            return [nbytes_of(x) for x in out]

        results, _ = run_spmd(prog, n_ranks=6)
        assert results[0] == [100] * 6

    def test_allgather_recursive_doubling(self):
        def prog(comm):
            out = comm.allgather(None, nbytes=100,
                                 algorithm="recursive_doubling")
            return [nbytes_of(x) for x in out]

        results, _ = run_spmd(prog, n_ranks=8)
        assert results[0] == [100] * 8

    def test_allreduce(self):
        def prog(comm):
            return nbytes_of(comm.allreduce(None, SUM, nbytes=256))

        results, _ = run_spmd(prog, n_ranks=4)
        assert results == [256] * 4

    def test_gather_scatter(self):
        def prog(comm):
            gathered = comm.gather(None, root=0, nbytes=64)
            if comm.rank == 0:
                assert [nbytes_of(x) for x in gathered] == [64] * comm.size
            item = comm.scatter(
                [Buffer.abstract(32)] * comm.size if comm.rank == 0 else None,
                root=0)
            return nbytes_of(item)

        results, _ = run_spmd(prog, n_ranks=4)
        assert results == [32] * 4

    def test_alltoall(self):
        def prog(comm):
            out = comm.alltoall([None] * comm.size, nbytes=50)
            return [nbytes_of(x) for x in out]

        results, _ = run_spmd(prog, n_ranks=4)
        assert results[0] == [50] * 4

    def test_scan(self):
        def prog(comm):
            return nbytes_of(comm.scan(None, SUM, nbytes=80))

        results, _ = run_spmd(prog, n_ranks=4)
        assert results == [80] * 4

    def test_reduce_scatter(self):
        def prog(comm):
            return nbytes_of(
                comm.reduce_scatter([None] * comm.size, SUM, nbytes=40)
            )

        results, _ = run_spmd(prog, n_ranks=4)
        assert results == [40] * 4

    def test_sizes_drive_timing(self):
        """Bigger abstract buffers must take longer — the whole point."""

        def run(nbytes):
            def prog(comm):
                comm.barrier()
                t0 = comm.time
                comm.bcast(None, root=0,
                           nbytes=nbytes if comm.rank == 0 else None)
                return comm.time - t0

            results, _ = run_spmd(prog, n_ranks=8)
            return max(results)

        assert run(10_000_000) > run(1_000) * 10
