"""Request ownership and window lifecycle edge cases."""

import numpy as np
import pytest

from repro.simmpi import RankFailure, SimError
from tests.conftest import run_spmd


class TestRequestOwnership:
    def test_wait_by_wrong_rank_rejected(self):
        def prog(comm):
            # Rank 0 posts a recv, leaks the request via the shared
            # registry; rank 1 tries to wait on it.
            if comm.rank == 0:
                req = comm.irecv(source=1, tag=1)
                comm.engine.comm_registry["leaked"] = req
                comm.send(None, dest=1, nbytes=0, tag=2)  # signal
                comm.recv(source=1, tag=3)
                return None
            comm.recv(source=0, tag=2)
            req = comm.engine.comm_registry["leaked"]
            try:
                req.wait()
            except SimError:
                comm.send(None, dest=0, tag=3)
                comm.send(None, dest=0, tag=1)  # unblock rank 0's request
                return "caught"

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[1] == "caught"

    def test_send_request_wait_is_noop(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend(None, dest=1, nbytes=10)
                assert req.test() is True
                assert req.wait() is None
                return req.nbytes
            comm.recv(source=0)

        results, _ = run_spmd(prog, n_ranks=2)
        assert results[0] == 10

    def test_double_bind_guard(self):
        from repro.simmpi.datatypes import Buffer
        from repro.simmpi.match import Message
        from repro.simmpi.request import RecvRequest

        class FakeEngine:
            def wake(self, proc):
                pass

        class FakeProc:
            engine = FakeEngine()

        req = RecvRequest(None, FakeProc(), 0, 0, "ctx")
        msg = Message(0, 1, 0, "ctx", Buffer(None, nbytes=0), 0.0)
        req.bind(msg)
        with pytest.raises(SimError):
            req.bind(msg)


class TestWindowLifecycle:
    def test_free_synchronizes(self):
        def prog(comm):
            win = comm.win_create(np.zeros(2))
            comm.compute(float(comm.rank))
            win.free()
            return comm.time

        results, _ = run_spmd(prog, n_ranks=4)
        assert min(results) >= 3.0  # fence inside free waited for rank 3

    def test_local_visible_after_fence(self):
        def prog(comm):
            win = comm.win_create(np.array([float(comm.rank)]))
            win.fence()
            return float(win.local()[0])

        results, _ = run_spmd(prog, n_ranks=3)
        assert results == [0.0, 1.0, 2.0]

    def test_abstract_window(self):
        def prog(comm):
            win = comm.win_create(None, nbytes=1024)
            if comm.rank == 0:
                win.put(None, target=1, nbytes=512)
            win.fence()
            return win.local()

        results, _ = run_spmd(prog, n_ranks=2)
        assert results == [None, None]
