"""Unit tests for the MPI_T shim and the pml_monitoring component."""

import numpy as np
import pytest

from repro.simmpi.mpit import MpiToolInterface, MpitError
from repro.simmpi.pml_monitoring import CATEGORIES, PVAR_NAMES, PmlMonitoring


class TestMpiT:
    def test_cvar_roundtrip(self):
        iface = MpiToolInterface()
        box = {"v": 0}
        iface.register_cvar("knob", lambda: box["v"],
                            lambda x: box.update(v=x))
        iface.cvar_write("knob", 3)
        assert iface.cvar_read("knob") == 3
        assert "knob" in iface.cvar_names()

    def test_duplicate_registration_rejected(self):
        iface = MpiToolInterface()
        iface.register_cvar("k", lambda: 0, lambda x: None)
        with pytest.raises(MpitError):
            iface.register_cvar("k", lambda: 0, lambda x: None)
        iface.register_pvar("p", lambda r: np.zeros(1))
        with pytest.raises(MpitError):
            iface.register_pvar("p", lambda r: np.zeros(1))

    def test_unknown_variable(self):
        iface = MpiToolInterface()
        with pytest.raises(MpitError):
            iface.cvar_read("missing")
        sess = iface.pvar_session_create()
        with pytest.raises(MpitError):
            sess.handle_alloc("missing", 0)

    def test_pvar_handle_reads_snapshot_copy(self):
        iface = MpiToolInterface()
        data = np.zeros(4, dtype=np.uint64)
        iface.register_pvar("counter", lambda r: data)
        sess = iface.pvar_session_create()
        h = sess.handle_alloc("counter", 0)
        h.start()
        snap = h.read()
        data[0] = 42
        assert snap[0] == 0  # earlier read unaffected
        assert h.read()[0] == 42

    def test_freed_session_rejects_use(self):
        iface = MpiToolInterface()
        iface.register_pvar("c", lambda r: np.zeros(1))
        sess = iface.pvar_session_create()
        h = sess.handle_alloc("c", 0)
        sess.free()
        with pytest.raises(MpitError):
            h.read()
        with pytest.raises(MpitError):
            sess.handle_alloc("c", 0)

    def test_init_finalize_balance(self):
        iface = MpiToolInterface()
        iface.init_thread()
        assert iface.initialized
        iface.finalize()
        assert not iface.initialized
        with pytest.raises(MpitError):
            iface.finalize()


class TestPmlMonitoring:
    def test_disabled_by_default(self):
        pml = PmlMonitoring(4)
        assert not pml.enabled
        assert pml.record(0, 1, 100, "p2p") is False
        assert pml.totals("p2p") == (0, 0)

    def test_mode1_collapses_categories(self):
        pml = PmlMonitoring(4)
        pml.set_mode(1)
        assert not pml.distinguishes_internal
        pml.record(0, 1, 100, "coll")
        assert pml.totals("p2p") == (1, 100)
        assert pml.totals("coll") == (0, 0)

    def test_mode2_distinguishes(self):
        pml = PmlMonitoring(4)
        pml.set_mode(2)
        pml.record(0, 1, 100, "coll")
        pml.record(0, 1, 50, "p2p")
        pml.record(2, 3, 10, "osc")
        assert pml.totals("coll") == (1, 100)
        assert pml.totals("p2p") == (1, 50)
        assert pml.totals("osc") == (1, 10)

    def test_zero_length_counts(self):
        pml = PmlMonitoring(2)
        pml.set_mode(2)
        pml.record(0, 1, 0, "coll")
        assert pml.totals("coll") == (1, 0)

    def test_matrix_indexing(self):
        pml = PmlMonitoring(3)
        pml.set_mode(2)
        pml.record(1, 2, 8, "p2p")
        assert pml.counts["p2p"][1, 2] == 1
        assert pml.sizes["p2p"][1, 2] == 8
        assert pml.counts["p2p"][2, 1] == 0

    def test_reset(self):
        pml = PmlMonitoring(2)
        pml.set_mode(1)
        pml.record(0, 1, 5, "p2p")
        pml.reset()
        assert pml.totals("p2p") == (0, 0)

    def test_bad_category(self):
        pml = PmlMonitoring(2)
        pml.set_mode(1)
        with pytest.raises(ValueError):
            pml.record(0, 1, 5, "weird")

    def test_bad_mode(self):
        pml = PmlMonitoring(2)
        with pytest.raises(ValueError):
            pml.set_mode(-1)

    def test_pvar_registration(self):
        iface = MpiToolInterface()
        pml = PmlMonitoring(2, mpit=iface)
        assert iface.cvar_read("pml_monitoring_enable") == 0
        iface.cvar_write("pml_monitoring_enable", 2)
        assert pml.mode == 2
        for cat in CATEGORIES:
            cname, sname = PVAR_NAMES[cat]
            assert cname in iface.pvar_names()
            assert sname in iface.pvar_names()

    def test_pvar_rows_are_per_process(self):
        iface = MpiToolInterface()
        pml = PmlMonitoring(3, mpit=iface)
        pml.set_mode(2)
        pml.record(1, 0, 64, "p2p")
        sess = iface.pvar_session_create()
        h0 = sess.handle_alloc("pml_monitoring_messages_size", 0)
        h1 = sess.handle_alloc("pml_monitoring_messages_size", 1)
        assert h0.read().sum() == 0
        assert h1.read()[0] == 64
