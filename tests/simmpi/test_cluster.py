"""Tests for cluster presets and configuration."""

import pytest

from repro.simmpi import Cluster, Topology
from repro.simmpi.network import ib_pair_params, plafrim_params


class TestPlafrimPreset:
    def test_shape(self):
        c = Cluster.plafrim(4)
        assert c.n_ranks == 96
        assert c.n_nodes == 4
        assert c.topology.arities == [4, 2, 12]

    def test_one_rank_per_core_default(self):
        c = Cluster.plafrim(2)
        assert c.n_ranks == c.topology.n_pus == 48

    def test_custom_rank_count(self):
        c = Cluster.plafrim(3, n_ranks=64)
        assert c.n_ranks == 64
        assert c.n_nodes == 3
        # 64 ranks on 72 cores: the paper's "some cores are spared".
        assert c.topology.n_pus == 72

    def test_binding_strategies(self):
        packed = Cluster.plafrim(2, binding="packed")
        rr = Cluster.plafrim(2, binding="rr")
        assert packed.node_of_rank(1) == 0
        assert rr.node_of_rank(1) == 1

    def test_random_binding_seeded(self):
        a = Cluster.plafrim(2, binding="random", seed=1)
        b = Cluster.plafrim(2, binding="random", seed=1)
        c = Cluster.plafrim(2, binding="random", seed=2)
        assert a.binding == b.binding
        assert a.binding != c.binding


class TestIbPairPreset:
    def test_two_ranks_two_nodes(self):
        c = Cluster.ib_pair()
        assert c.n_ranks == 2
        assert c.node_of_rank(0) == 0
        assert c.node_of_rank(1) == 1


class TestConfiguration:
    def test_explicit_binding(self):
        topo = Topology([("node", 2), ("core", 4)])
        c = Cluster(topo, 3, binding=[7, 0, 4])
        assert c.binding == [7, 0, 4]
        assert c.binding_strategy == "explicit"

    def test_rebind_copies(self):
        c = Cluster.plafrim(2, binding="packed")
        r = c.rebind("rr")
        assert c.binding != r.binding
        assert c.topology == r.topology
        assert c.params is r.params

    def test_too_many_ranks(self):
        topo = Topology([("node", 1), ("core", 2)])
        with pytest.raises(ValueError):
            Cluster(topo, 3)

    def test_zero_ranks(self):
        topo = Topology([("node", 1), ("core", 2)])
        with pytest.raises(ValueError):
            Cluster(topo, 0)

    def test_default_params_are_plafrim(self):
        topo = Topology([("node", 2), ("core", 2)])
        c = Cluster(topo, 2)
        assert c.params.links["cluster"].bandwidth == \
            plafrim_params().links["cluster"].bandwidth

    def test_ib_pair_params_distinct(self):
        assert ib_pair_params().links["cluster"].bandwidth != \
            plafrim_params().links["cluster"].bandwidth
