"""Unit tests for the hardware topology tree."""

import pytest

from repro.simmpi.topology import Topology


@pytest.fixture
def plafrim4():
    return Topology([("node", 4), ("socket", 2), ("core", 12)])


class TestShape:
    def test_n_pus(self, plafrim4):
        assert plafrim4.n_pus == 96

    def test_depth(self, plafrim4):
        assert plafrim4.depth == 3

    def test_arities(self, plafrim4):
        assert plafrim4.arities == [4, 2, 12]

    def test_level_names(self, plafrim4):
        assert plafrim4.level_names == ["node", "socket", "core"]

    def test_single_level(self):
        topo = Topology([("node", 5)])
        assert topo.n_pus == 5
        assert topo.depth == 1

    def test_empty_levels_rejected(self):
        with pytest.raises(ValueError):
            Topology([])

    def test_zero_arity_rejected(self):
        with pytest.raises(ValueError):
            Topology([("node", 0)])

    def test_duplicate_level_names_rejected(self):
        with pytest.raises(ValueError):
            Topology([("x", 2), ("x", 3)])


class TestCoords:
    def test_first_pu(self, plafrim4):
        assert plafrim4.coords(0) == (0, 0, 0)

    def test_last_pu(self, plafrim4):
        assert plafrim4.coords(95) == (3, 1, 11)

    def test_middle(self, plafrim4):
        # PU 30 = node 1 (24..47), socket 0 (24..35), core 6
        assert plafrim4.coords(30) == (1, 0, 6)

    def test_out_of_range(self, plafrim4):
        with pytest.raises(ValueError):
            plafrim4.coords(96)
        with pytest.raises(ValueError):
            plafrim4.coords(-1)

    def test_component_of(self, plafrim4):
        assert plafrim4.component_of(30, "node") == 1
        assert plafrim4.component_of(30, "socket") == 2
        assert plafrim4.component_of(30, "core") == 30

    def test_node_of(self, plafrim4):
        assert plafrim4.node_of(0) == 0
        assert plafrim4.node_of(24) == 1
        assert plafrim4.node_of(95) == 3

    def test_n_components(self, plafrim4):
        assert plafrim4.n_components("node") == 4
        assert plafrim4.n_components("socket") == 8
        assert plafrim4.n_components("core") == 96

    def test_pus_of_component(self, plafrim4):
        assert list(plafrim4.pus_of_component("node", 1)) == list(range(24, 48))
        assert list(plafrim4.pus_of_component("socket", 3)) == list(range(36, 48))

    def test_pus_of_component_bad_index(self, plafrim4):
        with pytest.raises(ValueError):
            plafrim4.pus_of_component("node", 4)

    def test_unknown_level(self, plafrim4):
        with pytest.raises(ValueError):
            plafrim4.component_of(0, "rack")


class TestDistances:
    def test_same_pu(self, plafrim4):
        assert plafrim4.common_depth(5, 5) == 3
        assert plafrim4.common_level_name(5, 5) == "self"
        assert plafrim4.hop_distance(5, 5) == 0

    def test_same_socket(self, plafrim4):
        assert plafrim4.common_level_name(0, 11) == "socket"
        assert plafrim4.hop_distance(0, 11) == 2

    def test_same_node_cross_socket(self, plafrim4):
        assert plafrim4.common_level_name(0, 12) == "node"
        assert plafrim4.hop_distance(0, 12) == 4

    def test_cross_node(self, plafrim4):
        assert plafrim4.common_level_name(0, 24) == "cluster"
        assert plafrim4.hop_distance(0, 24) == 6

    def test_symmetry(self, plafrim4):
        for a, b in [(0, 11), (3, 40), (95, 1)]:
            assert plafrim4.common_depth(a, b) == plafrim4.common_depth(b, a)

    def test_equality_and_hash(self, plafrim4):
        same = Topology([("node", 4), ("socket", 2), ("core", 12)])
        other = Topology([("node", 4), ("socket", 2), ("core", 6)])
        assert plafrim4 == same
        assert hash(plafrim4) == hash(same)
        assert plafrim4 != other
