"""Hot-path equivalence and scheduler fast-handoff tests.

The optimized engine (precomputed route tables, batched monitoring,
fused send materialization) must be *bit-exact* against the golden
snapshots captured from the seed implementation: every per-rank virtual
clock, monitoring matrix digest, NIC counter, and switch count.  The
``fast`` handoff policy trades that exactness for fewer baton handoffs;
it must still be deterministic per seed and preserve the monitoring
totals (message counts and bytes do not depend on interleaving).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.simmpi import Cluster, Engine

from scripts.capture_hotpath_golden import snapshot_engine
from tests.golden.hotpath_workloads import WORKLOADS

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "golden", "hotpath_golden.json"
)


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH, encoding="ascii") as fh:
        return json.load(fh)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_matches_seed_golden(name, golden):
    """Clocks, matrices, NIC counters, and switches match the seed
    implementation bit-for-bit (floats compared in hex form)."""
    engine, results = WORKLOADS[name]()
    snap = snapshot_engine(engine)
    snap["results"] = results
    expected = golden[name]
    # Compare field by field for a readable diff on failure.
    assert sorted(snap) == sorted(expected)
    for key in expected:
        assert snap[key] == expected[key], f"{name}: {key} diverged from seed"


# -- fast handoff -----------------------------------------------------------


def _fig6_shaped(handoff: str, seed: int = 7):
    """Fig. 6-shaped pipelined workload, built directly so the engine's
    ``handoff`` policy can be chosen (the golden workloads pin exact)."""
    from repro.apps.microbench import grouped_allgather_benchmark

    cluster = Cluster.plafrim(2, binding="rr")
    engine = Engine(cluster, seed=seed, handoff=handoff)

    def program(comm):
        res = grouped_allgather_benchmark(
            comm, group_size=8, n_ints=256, iterations=3
        )
        return [float.hex(res.t1), float.hex(res.t2), float.hex(res.t3)]

    results = engine.run(program)
    return engine, results


def test_handoff_validation():
    cluster = Cluster.plafrim(1)
    with pytest.raises(ValueError):
        Engine(cluster, handoff="bogus")
    assert Engine(cluster).handoff == "exact"
    assert Engine(cluster, handoff="fast").handoff == "fast"


def test_fast_mode_deterministic():
    """Two runs with the same seed produce identical snapshots."""
    eng_a, res_a = _fig6_shaped("fast")
    eng_b, res_b = _fig6_shaped("fast")
    assert res_a == res_b
    assert snapshot_engine(eng_a) == snapshot_engine(eng_b)


def test_fast_mode_reduces_switches():
    """Acceptance bar: >= 30% fewer baton handoffs on the Fig. 6
    microbenchmark (pipelined ring allgathers)."""
    eng_exact, _ = _fig6_shaped("exact")
    eng_fast, _ = _fig6_shaped("fast")
    assert eng_fast.messages == eng_exact.messages  # same traffic
    assert eng_fast.switches <= 0.7 * eng_exact.switches


def test_fast_mode_preserves_monitoring_totals():
    """Interleaving may differ, but what was sent does not: per-category
    (messages, bytes) totals are identical across handoff policies."""
    from repro.simmpi.pml_monitoring import CATEGORIES

    def build(handoff):
        cluster = Cluster.plafrim(2, binding="rr")
        engine = Engine(cluster, seed=5, handoff=handoff)

        def program(comm):
            comm.engine.pml.set_mode(2)
            comm.barrier()
            comm.allgather(None, nbytes=4_000, algorithm="ring")
            comm.sendrecv(None, dest=(comm.rank + 1) % comm.size,
                          source=(comm.rank - 1) % comm.size, nbytes=64)

        engine.run(program)
        return engine

    eng_exact = build("exact")
    eng_fast = build("fast")
    for cat in CATEGORIES:
        assert eng_fast.pml.totals(cat) == eng_exact.pml.totals(cat)


def test_messages_counter():
    """``engine.messages`` counts injected messages: one sendrecv per
    rank on a pure point-to-point program is exactly ``n_ranks``."""
    cluster = Cluster.plafrim(1, binding="packed")
    engine = Engine(cluster, seed=0)

    def program(comm):
        comm.sendrecv(None, dest=(comm.rank + 1) % comm.size,
                      source=(comm.rank - 1) % comm.size, nbytes=100)

    assert engine.messages == 0
    engine.run(program)
    assert engine.messages == cluster.n_ranks
    assert engine.switches > 0
