"""Tests for the dynamic rank-reordering algorithm (paper Fig. 1)."""

import numpy as np
import pytest

from repro.placement.mapping import is_permutation
from repro.placement.reorder import (
    redistribute_data,
    reorder_from_matrix,
    reorder_iterative,
    treematch_model_seconds,
)
from repro.simmpi import Cluster, Engine, Topology
from tests.conftest import run_spmd


def ring_iteration(nbytes=80_000):
    def iteration(it, comm):
        me, n = comm.rank, comm.size
        comm.sendrecv(None, dest=(me + 1) % n, source=(me - 1) % n,
                      sendtag=1, recvtag=1, nbytes=nbytes)

    return iteration


class TestModelTime:
    def test_matches_paper_table1_anchor(self):
        assert treematch_model_seconds(8192) == pytest.approx(2.6)

    def test_power_law_growth(self):
        assert treematch_model_seconds(65536) == pytest.approx(88.7, rel=0.3)

    def test_trivial_sizes(self):
        assert treematch_model_seconds(1) == 0.0
        assert treematch_model_seconds(0) == 0.0


class TestReorderFromMatrix:
    def test_k_is_permutation_and_consistent(self):
        def prog(comm):
            n = comm.size
            mat = np.zeros((n, n))
            for i in range(0, n, 2):  # heavy pairs (0,1), (2,3), ...
                mat[i, i + 1] = mat[i + 1, i] = 1000
            opt, k = reorder_from_matrix(
                comm, mat if comm.rank == 0 else None,
                charge_mapping_time=False)
            return (k.tolist(), opt.rank, opt.size)

        results, _ = run_spmd(prog, n_ranks=8, binding="rr")
        k0 = results[0][0]
        assert is_permutation(k0)
        # Every rank got the same k and its new rank equals k[old rank].
        for old_rank, (k, new_rank, size) in enumerate(results):
            assert k == k0
            assert new_rank == k0[old_rank]
            assert size == 8

    def test_missing_matrix_at_root_fails(self):
        def prog(comm):
            reorder_from_matrix(comm, None)

        from repro.simmpi import RankFailure

        with pytest.raises(RankFailure):
            run_spmd(prog, n_ranks=4)

    def test_mapping_time_charged_to_root(self):
        def prog(comm):
            mat = np.ones((comm.size, comm.size))
            t0 = comm.time
            reorder_from_matrix(comm, mat if comm.rank == 0 else None,
                                charge_mapping_time=True)
            return comm.time - t0

        results, _ = run_spmd(prog, n_ranks=4)
        assert results[0] >= treematch_model_seconds(4)


class TestRedistribute:
    def test_payloads_follow_roles(self):
        def prog(comm):
            k = np.array([1, 2, 0])  # old rank i -> new rank k[i]
            payload = f"data-of-role-{comm.rank}"
            out = redistribute_data(comm, k, payload=payload)
            return out

        results, _ = run_spmd(prog, n_ranks=3)
        # Rank i takes over logical role k[i]; it must now hold the
        # payload that belonged to the process whose old rank is k[i].
        assert results == ["data-of-role-1", "data-of-role-2", "data-of-role-0"]

    def test_identity_is_local(self):
        def prog(comm):
            k = np.arange(comm.size)
            return redistribute_data(comm, k, payload=comm.rank)

        results, _ = run_spmd(prog, n_ranks=4)
        assert results == [0, 1, 2, 3]

    def test_abstract_redistribution_costs_time(self):
        def prog(comm):
            k = np.roll(np.arange(comm.size), 1)
            t0 = comm.time
            redistribute_data(comm, k, nbytes=1_000_000)
            return comm.time - t0

        results, _ = run_spmd(prog, n_ranks=4)
        assert all(dt > 0 for dt in results)


class TestReorderIterative:
    def test_full_pipeline_improves_ring_on_rr(self):
        cluster = Cluster.plafrim(2, binding="rr")
        engine = Engine(cluster)
        iteration = ring_iteration()

        def prog(comm):
            comm.barrier()
            t0 = comm.time
            iteration(0, comm)
            comm.barrier()
            before = comm.time - t0
            opt, k = reorder_iterative(comm, iteration, max_it=2,
                                       charge_mapping_time=False)
            opt.barrier()
            t1 = comm.time
            iteration(99, opt)
            opt.barrier()
            after = comm.time - t1
            return (before, after, is_permutation(k))

        results = engine.run(prog)
        before, after, perm_ok = results[0]
        assert perm_ok
        assert after < before / 2  # RR ring: huge locality win

    def test_manage_env_false_requires_init(self):
        from repro.core.errors import MissingInit
        from repro.simmpi import RankFailure

        def prog(comm):
            reorder_iterative(comm, ring_iteration(), max_it=2,
                              manage_env=False)

        with pytest.raises(RankFailure) as e:
            run_spmd(prog, n_ranks=4)
        assert isinstance(e.value.original, MissingInit)
