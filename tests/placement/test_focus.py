"""Focus: diagnosis findings feeding the what-if candidate generators."""

import json

import numpy as np
import pytest

from repro.placement.focus import (DEFAULT_WEIGHT, Focus, focus_from_report,
                                   load_focus, weighted_matrix)
from repro.simmpi.topology import Topology


def _report(findings):
    return {"schema": 1, "findings": findings}


def test_focus_from_report_extracts_ranks_and_classes():
    doc = _report([
        {"pass": "stragglers", "subject": "rank 3",
         "detail": {"rank": 3, "lateness": 0.5}},
        {"pass": "stragglers", "subject": "rank 7", "detail": {"rank": 7}},
        {"pass": "stragglers", "subject": "rank 3",
         "detail": {"rank": 3}},                       # dup collapses
        {"pass": "congested_links", "subject": "node", "detail": {}},
        {"pass": "congested_links", "subject": "self", "detail": {}},
        {"pass": "algorithm_mismatch", "subject": "bcast", "detail": {}},
    ])
    focus = focus_from_report(doc, weight=3.0)
    assert focus.straggler_ranks == (3, 7)
    assert focus.congested_classes == ("node",)        # "self" dropped
    assert focus.weight == 3.0
    assert bool(focus)


def test_focus_from_report_rejects_non_reports():
    with pytest.raises(ValueError, match="findings"):
        focus_from_report({"schema": 1, "passes": []})


def test_empty_focus_is_falsy_and_roundtrips():
    focus = Focus()
    assert not focus
    assert Focus.from_dict(focus.to_dict()) == focus
    assert Focus.from_dict(None) == focus
    full = Focus(straggler_ranks=(2, 1), congested_classes=("node",),
                 weight=2.5)
    assert Focus.from_dict(full.to_dict()) == full


def test_cache_key_is_order_insensitive():
    a = Focus(straggler_ranks=(1, 2), congested_classes=("node", "socket"))
    b = Focus(straggler_ranks=(2, 1), congested_classes=("socket", "node"))
    assert a.cache_key() == b.cache_key()
    assert json.loads(a.cache_key())["weight"] == DEFAULT_WEIGHT


def test_load_focus_reads_diagnose_json(tmp_path):
    path = tmp_path / "report.json"
    path.write_text(json.dumps(_report([
        {"pass": "stragglers", "subject": "rank 5", "detail": {"rank": 5}},
    ])))
    focus = load_focus(str(path), weight=8.0)
    assert focus.straggler_ranks == (5,)
    assert focus.weight == 8.0

    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    with pytest.raises(ValueError, match="bad.json"):
        load_focus(str(bad))


def test_weighted_matrix_straggler_rows_and_cols():
    topo = Topology([("node", 2), ("core", 2)])
    matrix = np.ones((4, 4)) - np.eye(4)
    focus = Focus(straggler_ranks=(1,), weight=4.0)
    out = weighted_matrix(matrix, topo, [0, 1, 2, 3], focus)
    assert out[1, 2] == 4.0 and out[2, 1] == 4.0       # row and column
    assert out[2, 3] == 1.0                            # untouched
    assert matrix[1, 2] == 1.0                         # input unmodified


def test_weighted_matrix_congested_class_uses_recorded_binding():
    topo = Topology([("node", 2), ("core", 2)])
    matrix = np.ones((4, 4)) - np.eye(4)
    focus = Focus(congested_classes=("cluster",), weight=10.0)
    # Recorded binding splits ranks 0,1 / 2,3 across the two nodes:
    # pairs that cross nodes share only the (implicit) cluster root.
    out = weighted_matrix(matrix, topo, [0, 1, 2, 3], focus)
    assert out[0, 2] == 10.0                           # crosses nodes
    assert out[0, 1] == 1.0                            # same node
    # Under a different recorded binding the same pair stays local.
    out2 = weighted_matrix(matrix, topo, [0, 2, 1, 3], focus)
    assert out2[0, 2] == 1.0                           # now same node
    assert out2[0, 1] == 10.0


def test_weighted_matrix_compounds_both_axes():
    topo = Topology([("node", 2), ("core", 2)])
    matrix = np.ones((4, 4)) - np.eye(4)
    focus = Focus(straggler_ranks=(0,), congested_classes=("cluster",),
                  weight=2.0)
    out = weighted_matrix(matrix, topo, [0, 1, 2, 3], focus)
    # rank-0 row (x2 straggler) and node-crossing (x2 congested) compound
    assert out[0, 2] == 4.0
    assert out[0, 1] == 2.0                            # straggler only
    assert out[1, 3] == 2.0                            # congested only
    assert out[2, 3] == 1.0                            # neither


def test_search_scores_on_true_matrix_with_focus(tmp_path):
    """A focus changes what generators see, never how candidates are
    scored: the identity candidate's makespan is focus-invariant."""
    from repro.experiments import fig5_collectives
    from repro.replay import autorecord
    from repro.replay.search import what_if_search

    trace_path = str(tmp_path / "t.trace")
    autorecord.enable_to(trace_path, meta={})
    try:
        fig5_collectives.run_cell("reduce", 2, sizes=(50_000,), reps=1,
                                  seed=0)
    finally:
        autorecord.disable()
    from repro.replay.schema import ReplayTrace

    trace = ReplayTrace.load(trace_path)
    focus = Focus(straggler_ranks=(0, 1), weight=16.0)
    plain = what_if_search(trace, strategies=["identity", "treematch"])
    focused = what_if_search(trace, strategies=["identity", "treematch"],
                             focus=focus)
    plain_by = {c.strategy: c for c in plain.candidates}
    focused_by = {c.strategy: c for c in focused.candidates}
    assert focused_by["identity"].makespan == plain_by["identity"].makespan
    assert focused.meta["focus"] == focus.to_dict()
    assert plain.meta["focus"] is None
