"""Tests for mapping permutations and placement metrics."""

import numpy as np
import pytest

from repro.placement.mapping import (
    apply_permutation,
    invert_permutation,
    is_permutation,
    reorder_permutation,
    validate_placement,
)
from repro.placement.baselines import (
    greedy_edge_placement,
    identity_placement,
    random_placement,
    round_robin_placement,
)
from repro.placement.metrics import (
    hop_bytes,
    inter_node_bytes,
    level_bytes,
    modeled_cost,
)
from repro.simmpi.network import plafrim_params
from repro.simmpi.topology import Topology


@pytest.fixture
def topo():
    return Topology([("node", 2), ("socket", 2), ("core", 2)])  # 8 PUs


class TestPermutations:
    def test_is_permutation(self):
        assert is_permutation([2, 0, 1])
        assert not is_permutation([0, 0, 1])
        assert not is_permutation([1, 2, 3])

    def test_invert(self):
        k = np.array([2, 0, 1])
        inv = invert_permutation(k)
        assert inv.tolist() == [1, 2, 0]
        assert invert_permutation(inv).tolist() == k.tolist()

    def test_reorder_permutation_definition(self):
        # Rank i sits on PU rank_pus[i]; TreeMatch wants role j on
        # placement[j].  k[i] must be the role assigned to rank i's PU.
        placement = [4, 0, 2]  # role0->pu4, role1->pu0, role2->pu2
        rank_pus = [0, 2, 4]
        k = reorder_permutation(placement, rank_pus)
        assert k.tolist() == [1, 2, 0]

    def test_identity_when_aligned(self):
        assert reorder_permutation([3, 5, 7], [3, 5, 7]).tolist() == [0, 1, 2]

    def test_mismatched_pu_sets_rejected(self):
        with pytest.raises(ValueError):
            reorder_permutation([0, 1], [0, 2])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            reorder_permutation([0, 1, 2], [0, 1])

    def test_duplicate_placement_rejected(self):
        with pytest.raises(ValueError):
            reorder_permutation([0, 0], [0, 1])

    def test_apply_permutation(self):
        m = np.array([[0, 10], [20, 0]], dtype=float)
        k = np.array([1, 0])  # swap ranks
        out = apply_permutation(m, k)
        assert out.tolist() == [[0, 20], [10, 0]]

    def test_validate_placement(self):
        assert validate_placement([1, 3], [1, 2, 3]) == [1, 3]
        with pytest.raises(ValueError):
            validate_placement([1, 1], [1, 2])
        with pytest.raises(ValueError):
            validate_placement([9], [1, 2])


class TestBaselines:
    def test_identity(self, topo):
        assert identity_placement(4, topo) == [0, 1, 2, 3]

    def test_round_robin_alternates(self, topo):
        pl = round_robin_placement(4, topo)
        assert [topo.node_of(p) for p in pl] == [0, 1, 0, 1]

    def test_random_seeded(self, topo):
        assert random_placement(6, topo, seed=1) == random_placement(6, topo, seed=1)
        assert len(set(random_placement(8, topo, seed=2))) == 8

    def test_greedy_edge_covers_all(self, topo):
        m = np.zeros((4, 4))
        m[0, 3] = m[3, 0] = 100
        pl = greedy_edge_placement(m, topo)
        assert len(set(pl)) == 4
        # The heavy pair lands on adjacent PUs.
        assert abs(pl[0] - pl[3]) == 1

    def test_too_many_processes(self, topo):
        with pytest.raises(ValueError):
            identity_placement(9, topo)


class TestMetrics:
    def test_hop_bytes(self, topo):
        m = np.zeros((2, 2))
        m[0, 1] = 10
        assert hop_bytes(m, topo, [0, 1]) == 10 * 2  # same socket: dist 2
        assert hop_bytes(m, topo, [0, 4]) == 10 * 6  # cross node: dist 6

    def test_level_bytes_partition(self, topo):
        m = np.ones((4, 4)) - np.eye(4)
        lb = level_bytes(m, topo, [0, 1, 2, 4])
        assert lb["cluster"] + lb["node"] + lb["socket"] + lb["self"] == \
            pytest.approx(m.sum())

    def test_inter_node_bytes(self, topo):
        m = np.zeros((2, 2))
        m[0, 1] = m[1, 0] = 5
        assert inter_node_bytes(m, topo, [0, 4]) == 10
        assert inter_node_bytes(m, topo, [0, 1]) == 0

    def test_modeled_cost_prefers_local(self, topo):
        params = plafrim_params()
        m = np.zeros((2, 2))
        m[0, 1] = 1e9
        local = modeled_cost(m, topo, [0, 1], params)
        remote = modeled_cost(m, topo, [0, 4], params)
        assert local < remote

    def test_metrics_reject_non_square(self, topo):
        with pytest.raises(ValueError):
            hop_bytes(np.zeros((2, 3)), topo, [0, 1])
