"""Hand-computed ground truth for the placement metrics and baselines.

Every expected value here is worked out on paper from a tiny matrix
and the 8-PU ``(node 2, socket 2, core 2)`` tree, so a regression in
``hop_distance`` weighting, level attribution or the cost surrogate
shows up as a wrong *number*, not just a changed ordering.

Tree distances on that topology: same PU 0, same socket 2, same node
(other socket) 4, other node 6.
"""

import itertools

import numpy as np
import pytest

from repro.placement.baselines import (
    greedy_edge_placement,
    identity_placement,
    local_search_placement,
    round_robin_placement,
)
from repro.placement.metrics import (
    hop_bytes,
    inter_node_bytes,
    level_bytes,
    modeled_cost,
)
from repro.simmpi.network import LinkParams, NetworkParams
from repro.simmpi.topology import Topology


@pytest.fixture
def topo():
    return Topology([("node", 2), ("socket", 2), ("core", 2)])  # 8 PUs


@pytest.fixture
def matrix4():
    # ranks:     0     1     2     3
    m = np.array([[0,   100,    0,    7],
                  [0,     0,   40,    0],
                  [0,     0,    0,    3],
                  [60,    0,    0,    0]], dtype=float)
    return m


class TestHandComputedMetrics:
    def test_hop_bytes_identity(self, topo, matrix4):
        # PUs 0,1,2,3: (0,1) same socket d=2; (0,3),(3,0) same node d=4;
        # (1,2) same node d=4; (2,3) same socket d=2.
        # 100*2 + 7*4 + 40*4 + 3*2 + 60*4 = 200+28+160+6+240 = 634
        assert hop_bytes(matrix4, topo, [0, 1, 2, 3]) == 634.0

    def test_hop_bytes_cross_node(self, topo, matrix4):
        # PUs 0,1,4,5: (0,1) d=2; (0,3)->(0,5) d=6; (1,2)->(1,4) d=6;
        # (2,3)->(4,5) d=2; (3,0)->(5,0) d=6.
        # 100*2 + 7*6 + 40*6 + 3*2 + 60*6 = 200+42+240+6+360 = 848
        assert hop_bytes(matrix4, topo, [0, 1, 4, 5]) == 848.0

    def test_hop_bytes_self_traffic_is_free(self, topo):
        m = np.diag([1e9, 1e9])
        assert hop_bytes(m, topo, [0, 4]) == 0.0

    def test_level_bytes_breakdown(self, topo, matrix4):
        # PUs 0,1,2,6: (0,1) socket; (0,3)->(0,6) cluster;
        # (1,2) node; (2,3)->(2,6) cluster; (3,0)->(6,0) cluster.
        lb = level_bytes(matrix4, topo, [0, 1, 2, 6])
        assert lb == {"cluster": 7.0 + 3.0 + 60.0, "node": 40.0,
                      "socket": 100.0, "self": 0.0}

    def test_inter_node_bytes_matches_level_bytes(self, topo, matrix4):
        for pus in ([0, 1, 2, 3], [0, 1, 4, 5], [0, 2, 4, 6]):
            assert inter_node_bytes(matrix4, topo, pus) == \
                level_bytes(matrix4, topo, pus)["cluster"]

    def test_modeled_cost_exact(self, topo):
        # Distinct bandwidths per class so each term is attributable.
        params = NetworkParams(links={
            "cluster": LinkParams(latency=0.0, bandwidth=10.0),
            "node": LinkParams(latency=0.0, bandwidth=100.0),
            "socket": LinkParams(latency=0.0, bandwidth=1000.0),
            "self": LinkParams(latency=0.0, bandwidth=10000.0),
        })
        m = np.zeros((4, 4))
        m[0, 1] = 50.0   # socket  -> 50/1000
        m[1, 2] = 30.0   # node    -> 30/100
        m[2, 3] = 20.0   # socket  -> 20/1000
        m[3, 3] = 40.0   # self    -> 40/10000
        cost = modeled_cost(m, topo, [0, 1, 2, 3], params)
        assert cost == pytest.approx(0.05 + 0.3 + 0.02 + 0.004)

    def test_modeled_cost_cross_node(self, topo):
        params = NetworkParams(links={
            "cluster": LinkParams(latency=0.0, bandwidth=10.0),
            "self": LinkParams(latency=0.0, bandwidth=10000.0),
        })
        m = np.zeros((2, 2))
        m[0, 1] = 70.0
        # PUs on different nodes: 70/10; "node"-class falls back to
        # "self" (the next-cheaper defined level) when placed together.
        assert modeled_cost(m, topo, [0, 4], params) == pytest.approx(7.0)
        assert modeled_cost(m, topo, [0, 1], params) == pytest.approx(0.007)


class TestLocalSearch:
    def test_improves_a_bad_start(self, topo):
        # Ranks 0 and 1 exchange everything; start them on different
        # nodes.  One swap (rank 1 <-> rank 2) makes the pair adjacent.
        m = np.zeros((4, 4))
        m[0, 1] = m[1, 0] = 1000.0
        start = [0, 4, 1, 5]  # hop_bytes = 2000*6 = 12000
        out = local_search_placement(m, topo, start=start)
        assert sorted(out) == sorted(start)
        assert hop_bytes(m, topo, out) == 2000.0 * 2  # same socket

    def test_reaches_two_opt_optimum(self, topo):
        # Brute-force the best reachable-by-swaps assignment for a
        # small instance and check the search lands on a placement no
        # pairwise swap can improve.
        rng = np.random.default_rng(3)
        m = rng.integers(0, 50, (5, 5)).astype(float)
        np.fill_diagonal(m, 0.0)
        pus = [0, 1, 2, 4, 6]
        out = local_search_placement(m, topo, start=pus)
        base = hop_bytes(m, topo, out)
        for i, j in itertools.combinations(range(5), 2):
            swapped = list(out)
            swapped[i], swapped[j] = swapped[j], swapped[i]
            assert hop_bytes(m, topo, swapped) >= base - 1e-9

    def test_never_worse_than_greedy_start(self, topo):
        rng = np.random.default_rng(11)
        for trial in range(5):
            m = rng.integers(0, 100, (8, 8)).astype(float)
            np.fill_diagonal(m, 0.0)
            greedy = greedy_edge_placement(m, topo)
            refined = local_search_placement(m, topo)
            assert sorted(refined) == sorted(greedy)
            assert hop_bytes(m, topo, refined) <= \
                hop_bytes(m, topo, greedy) + 1e-9

    def test_start_length_validated(self, topo):
        with pytest.raises(ValueError):
            local_search_placement(np.zeros((3, 3)), topo, start=[0, 1])


class TestBaselineShapes:
    def test_all_baselines_are_valid_placements(self, topo):
        m = np.ones((6, 6)) - np.eye(6)
        for pl in (identity_placement(6, topo),
                   round_robin_placement(6, topo),
                   greedy_edge_placement(m, topo),
                   local_search_placement(m, topo)):
            assert len(pl) == 6
            assert len(set(pl)) == 6
            assert all(0 <= p < topo.n_pus for p in pl)

    def test_allowed_pus_respected(self, topo):
        allowed = [1, 3, 5, 7]
        m = np.ones((4, 4)) - np.eye(4)
        for pl in (identity_placement(4, topo, allowed),
                   round_robin_placement(4, topo, allowed),
                   greedy_edge_placement(m, topo, allowed),
                   local_search_placement(m, topo, allowed)):
            assert sorted(pl) == allowed
