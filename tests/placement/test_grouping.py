"""Tests for the greedy grouping kernel and matrix helpers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.placement.grouping import aggregate_matrix, greedy_group, symmetrize


def clique_matrix(n_cliques, size, strong=100.0, weak=0.1):
    n = n_cliques * size
    m = np.full((n, n), weak)
    for c in range(n_cliques):
        s = c * size
        m[s : s + size, s : s + size] = strong
    np.fill_diagonal(m, 0.0)
    return m


class TestSymmetrize:
    def test_makes_symmetric_zero_diagonal(self):
        m = np.array([[5.0, 1.0], [3.0, 7.0]])
        w = symmetrize(m)
        assert np.array_equal(w, [[0.0, 4.0], [4.0, 0.0]])

    def test_sparse_input(self):
        m = sp.csr_matrix(np.array([[1.0, 2.0], [0.0, 3.0]]))
        w = symmetrize(m)
        assert sp.issparse(w)
        assert w[0, 1] == 2.0 and w[1, 0] == 2.0
        assert w.diagonal().sum() == 0

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            symmetrize(np.zeros((2, 3)))


class TestGreedyGroup:
    def test_recovers_cliques(self):
        w = symmetrize(clique_matrix(3, 4))
        groups = greedy_group(w, [4, 4, 4])
        assert sorted(map(tuple, groups)) == [
            (0, 1, 2, 3), (4, 5, 6, 7), (8, 9, 10, 11)
        ]

    def test_prescribed_uneven_sizes(self):
        w = symmetrize(clique_matrix(2, 3))
        groups = greedy_group(w, [4, 2])
        assert len(groups[0]) == 4 and len(groups[1]) == 2
        assert sorted(sum(groups, [])) == list(range(6))

    def test_partition_property(self):
        rng = np.random.default_rng(0)
        w = symmetrize(rng.random((10, 10)))
        groups = greedy_group(w, [3, 3, 2, 2])
        flat = sorted(sum(groups, []))
        assert flat == list(range(10))

    def test_sparse_matches_dense(self):
        w = symmetrize(clique_matrix(2, 4))
        dense = greedy_group(w, [4, 4])
        sparse = greedy_group(symmetrize(sp.csr_matrix(clique_matrix(2, 4))),
                              [4, 4])
        assert sorted(map(tuple, dense)) == sorted(map(tuple, sparse))

    def test_sizes_must_sum(self):
        w = symmetrize(clique_matrix(2, 2))
        with pytest.raises(ValueError):
            greedy_group(w, [3, 3])

    def test_sizes_must_be_positive(self):
        w = symmetrize(clique_matrix(2, 2))
        with pytest.raises(ValueError):
            greedy_group(w, [4, 0])

    def test_singleton_groups(self):
        w = symmetrize(clique_matrix(1, 3))
        groups = greedy_group(w, [1, 1, 1])
        assert sorted(sum(groups, [])) == [0, 1, 2]


class TestAggregate:
    def test_group_affinity_sums(self):
        w = np.array([
            [0, 5, 1, 0],
            [5, 0, 0, 2],
            [1, 0, 0, 9],
            [0, 2, 9, 0],
        ], dtype=float)
        agg = aggregate_matrix(w, [[0, 1], [2, 3]])
        # Cross-group affinity: w[0,2]+w[0,3]+w[1,2]+w[1,3] = 1+0+0+2.
        assert agg[0, 1] == 3.0
        assert agg[1, 0] == 3.0
        assert agg[0, 0] == 0.0  # diagonal cleared

    def test_sparse_aggregate(self):
        w = sp.csr_matrix(np.array([[0, 1, 2], [1, 0, 0], [2, 0, 0]],
                                   dtype=float))
        agg = aggregate_matrix(w, [[0], [1, 2]])
        assert sp.issparse(agg)
        assert agg[0, 1] == 3.0
