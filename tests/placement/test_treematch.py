"""Tests for the TreeMatch placement algorithm."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.placement.metrics import inter_node_bytes
from repro.placement.treematch import TreeMatchError, treematch
from repro.simmpi.topology import Topology
from tests.placement.test_grouping import clique_matrix


@pytest.fixture
def topo():
    return Topology([("node", 2), ("socket", 2), ("core", 4)])  # 16 PUs


class TestBasics:
    def test_placement_is_injective(self, topo):
        m = clique_matrix(4, 4)
        pl = treematch(m, topo)
        assert len(set(pl)) == 16
        assert all(0 <= p < 16 for p in pl)

    def test_single_process(self, topo):
        assert treematch(np.zeros((1, 1)), topo, allowed_pus=[5]) == [5]

    def test_cliques_colocated_per_socket(self, topo):
        m = clique_matrix(4, 4)
        pl = treematch(m, topo)
        for c in range(4):
            sockets = {topo.component_of(pl[c * 4 + i], "socket")
                       for i in range(4)}
            assert len(sockets) == 1

    def test_beats_identity_on_shuffled_cliques(self, topo):
        rng = np.random.default_rng(3)
        perm = rng.permutation(16)
        m = clique_matrix(4, 4)[np.ix_(perm, perm)]
        pl = treematch(m, topo)
        identity = list(range(16))
        assert inter_node_bytes(m, topo, pl) < inter_node_bytes(m, topo, identity)

    def test_sparse_input(self, topo):
        m = sp.csr_matrix(clique_matrix(4, 4))
        pl = treematch(m, topo)
        assert sorted(pl) == list(range(16))


class TestConstrainedOccupancy:
    def test_partial_node(self, topo):
        # 10 processes on 12 allowed PUs spanning both nodes unevenly.
        pus = list(range(8)) + [8, 9, 12, 13]
        m = clique_matrix(5, 2)
        pl = treematch(m, topo, allowed_pus=pus)
        assert len(pl) == 10
        assert set(pl) <= set(pus)
        assert len(set(pl)) == 10

    def test_pairs_colocated_when_possible(self, topo):
        pus = list(range(6))  # all on node 0; sockets of 4: 0-3, 4-5
        m = clique_matrix(3, 2)
        pl = treematch(m, topo, allowed_pus=pus)
        # Each heavy pair should share a socket where capacity allows.
        same_socket = sum(
            topo.component_of(pl[2 * c], "socket")
            == topo.component_of(pl[2 * c + 1], "socket")
            for c in range(3)
        )
        assert same_socket >= 2

    def test_explicit_top_down(self, topo):
        m = clique_matrix(2, 2)
        pl = treematch(m, topo, allowed_pus=[0, 1, 8, 9],
                       algorithm="top_down")
        # Two pairs, two nodes with 2 PUs each: each pair on one node.
        assert topo.node_of(pl[0]) == topo.node_of(pl[1])
        assert topo.node_of(pl[2]) == topo.node_of(pl[3])

    def test_bottom_up_requires_full_occupancy(self, topo):
        m = clique_matrix(2, 2)
        with pytest.raises(TreeMatchError):
            treematch(m, topo, allowed_pus=[0, 1, 8, 9], algorithm="bottom_up")

    def test_auto_dispatch(self, topo):
        m = clique_matrix(4, 4)
        full = treematch(m, topo, algorithm="auto")
        partial = treematch(clique_matrix(2, 2), topo,
                            allowed_pus=[0, 1, 2, 8], algorithm="auto")
        assert sorted(full) == list(range(16))
        assert sorted(partial) == [0, 1, 2, 8]


class TestErrors:
    def test_non_square_matrix(self, topo):
        with pytest.raises(TreeMatchError):
            treematch(np.zeros((2, 3)), topo)

    def test_too_many_processes(self, topo):
        with pytest.raises(TreeMatchError):
            treematch(np.zeros((17, 17)), topo)

    def test_bad_pu(self, topo):
        with pytest.raises(TreeMatchError):
            treematch(np.zeros((2, 2)), topo, allowed_pus=[0, 99])

    def test_empty_pus(self, topo):
        with pytest.raises(TreeMatchError):
            treematch(np.zeros((1, 1)), topo, allowed_pus=[])

    def test_unknown_algorithm(self, topo):
        with pytest.raises(TreeMatchError):
            treematch(np.zeros((2, 2)), topo, algorithm="sideways")

    def test_more_pus_than_processes_padded(self, topo):
        # 6 processes over all 16 PUs: fakes fill the rest.
        m = clique_matrix(3, 2)
        pl = treematch(m, topo)
        assert len(pl) == 6
        assert len(set(pl)) == 6
