"""Tests for the Kernighan-Lin-style grouping refinement."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.placement.grouping import greedy_group, refine_groups, symmetrize
from tests.placement.test_grouping import clique_matrix


def cut_weight(W, groups):
    total = 0.0
    for gi, ga in enumerate(groups):
        for gb in groups[gi + 1 :]:
            total += W[np.ix_(ga, gb)].sum()
    return total


class TestRefineGroups:
    def test_repairs_bad_grouping(self):
        W = symmetrize(clique_matrix(2, 4))
        bad = [[0, 1, 4, 5], [2, 3, 6, 7]]  # cliques split across groups
        good = refine_groups(W, bad)
        assert cut_weight(W, good) < cut_weight(W, bad)
        assert sorted(map(tuple, good)) == [(0, 1, 2, 3), (4, 5, 6, 7)]

    def test_never_worse(self):
        rng = np.random.default_rng(5)
        W = symmetrize(rng.random((12, 12)))
        groups = greedy_group(W, [4, 4, 4])
        refined = refine_groups(W, groups)
        assert cut_weight(W, refined) <= cut_weight(W, groups) + 1e-9

    def test_sizes_preserved(self):
        rng = np.random.default_rng(6)
        W = symmetrize(rng.random((10, 10)))
        groups = greedy_group(W, [5, 3, 2])
        refined = refine_groups(W, groups)
        assert [len(g) for g in refined] == [5, 3, 2]
        assert sorted(sum(refined, [])) == list(range(10))

    def test_optimal_grouping_unchanged(self):
        W = symmetrize(clique_matrix(3, 3))
        opt = [[0, 1, 2], [3, 4, 5], [6, 7, 8]]
        assert refine_groups(W, opt) == opt

    def test_single_group_noop(self):
        W = symmetrize(clique_matrix(1, 4))
        assert refine_groups(W, [[0, 1, 2, 3]]) == [[0, 1, 2, 3]]

    def test_small_sparse_densified(self):
        W = symmetrize(sp.csr_matrix(clique_matrix(2, 3)))
        bad = [[0, 1, 3], [2, 4, 5]]
        good = refine_groups(W, bad)
        assert sorted(map(tuple, good)) == [(0, 1, 2), (3, 4, 5)]

    def test_huge_sparse_passthrough(self):
        n = 5000
        W = sp.identity(n, format="csr")
        groups = [list(range(n // 2)), list(range(n // 2, n))]
        out = refine_groups(W, groups)
        assert out == groups

    def test_uneven_group_swaps(self):
        # A 1-vs-3 split where the singleton belongs with the others.
        W = symmetrize(clique_matrix(1, 2))  # pair (0,1) heavy
        W2 = np.zeros((4, 4))
        W2[:2, :2] = W
        W2[2, 3] = W2[3, 2] = 100.0
        bad = [[0, 2], [1, 3]]
        good = refine_groups(W2, bad)
        assert sorted(map(tuple, good)) == [(0, 1), (2, 3)]
