"""Integration tests: full pipelines across subsystems."""

import numpy as np
import pytest

from repro.core import Flags, MonitoringSession, monitoring
from repro.core import api as mapi
from repro.core.constants import MPI_M_DATA_IGNORE
from repro.placement.mapping import is_permutation
from repro.placement.metrics import inter_node_bytes
from repro.placement.reorder import reorder_from_matrix, reorder_iterative
from repro.apps.cg import CGClass, CGConfig, run_cg
from repro.apps.stencil import StencilConfig, run_stencil, stencil_iteration, \
    stencil_setup
from repro.simmpi import Cluster, Engine


class TestMonitorThenReorder:
    """The paper's whole story on one small cluster: monitor a
    collective's decomposition, reorder, run faster."""

    def test_bcast_pipeline(self):
        cluster = Cluster.plafrim(2, binding="rr")
        engine = Engine(cluster)

        def prog(comm):
            with monitoring():
                with MonitoringSession(comm) as mon:
                    comm.bcast(None, root=0,
                               nbytes=4_000_000 if comm.rank == 0 else None)
                mats = mon.gather(root=0, flags=Flags.COLL_ONLY)
                mon.free()
            size_mat = mats[1] if mats else None
            opt, k = reorder_from_matrix(comm, size_mat)
            comm.barrier()
            t0 = comm.time
            comm.bcast(None, root=0,
                       nbytes=4_000_000 if comm.rank == 0 else None)
            comm.barrier()
            base = comm.time - t0
            opt.barrier()
            t1 = comm.time
            opt.bcast(None, root=0,
                      nbytes=4_000_000 if opt.rank == 0 else None)
            opt.barrier()
            reordered = comm.time - t1
            return (base, reordered, is_permutation(k))

        results = engine.run(prog)
        base, reordered, ok = results[0]
        assert ok
        assert reordered < base

    def test_monitored_matrix_matches_nic_totals(self):
        """Introspection vs hardware counters, as in §6.1: total bytes
        leaving each node must agree with the session's cross-node
        entries."""
        cluster = Cluster.plafrim(2, binding="packed")
        engine = Engine(cluster)

        def prog(comm):
            with monitoring():
                with MonitoringSession(comm) as mon:
                    if comm.rank == 0:
                        comm.send(None, dest=30, nbytes=100_000)  # node 0 -> 1
                        comm.send(None, dest=1, nbytes=50_000)  # intra-node
                    elif comm.rank in (1, 30):
                        comm.recv(source=0)
                # Local read only — no simulated traffic: rows travel
                # home through the per-rank return values.
                _, sizes = mon.get_data(Flags.P2P_ONLY)
                mon.free()
            return sizes

        rows = engine.run(prog)
        cross = sum(
            int(rows[i][j])
            for i in range(48)
            for j in range(48)
            if cluster.node_of_rank(i) != cluster.node_of_rank(j)
        )
        assert cross == engine.network.nic.total_xmit_bytes(0)
        assert cross == 100_000

    def test_stencil_reorder_preserves_numerics(self):
        """Reordering must not change the computed field, only the time."""
        results = {}
        for binding in ("rr",):
            cluster = Cluster.plafrim(1, n_ranks=16, binding=binding)
            engine = Engine(cluster)
            cfg = StencilConfig(tile=8)

            def prog(comm):
                state = stencil_setup(comm, cfg)
                # No reorder: plain run.
                for it in range(3):
                    stencil_iteration(comm, state, it)
                return float(state.field.sum())

            results["plain"] = engine.run(prog)

            engine2 = Engine(cluster)

            def prog2(comm):
                def iteration(it, c):
                    # Fresh state per communicator: roles follow ranks.
                    pass

                state = stencil_setup(comm, cfg)
                for it in range(3):
                    stencil_iteration(comm, state, it)
                return float(state.field.sum())

            results["again"] = engine2.run(prog2)
        assert results["plain"] == results["again"]


class TestCGFullPipeline:
    def test_numeric_cg_with_reordering_still_converges(self):
        tiny = CGClass("T", 320, 6, 2, 10.0)
        cluster = Cluster.plafrim(1, n_ranks=4, binding="rr")
        engine = Engine(cluster)

        def prog(comm):
            from repro.apps.cg import cg_outer_iteration, cg_setup

            cfg = CGConfig(tiny, mode="numeric", cgitmax=6)
            mapi.mpi_m_init()
            state = cg_setup(comm, cfg)
            _, msid = mapi.mpi_m_start(comm)
            cg_outer_iteration(comm, state, 0)
            mapi.mpi_m_suspend(msid)
            _, _, mat = mapi.mpi_m_rootgather_data(
                msid, 0, MPI_M_DATA_IGNORE, None, Flags.P2P_ONLY
            )
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            opt, _k = reorder_from_matrix(comm, mat)
            state2 = cg_setup(opt, cfg)
            rnorm = cg_outer_iteration(opt, state2, 1)
            return (rnorm, state2.zeta)

        results = engine.run(prog)
        rnorms = {round(r[0], 12) for r in results}
        zetas = {r[1] for r in results}
        assert len(rnorms) == 1  # all ranks agree
        assert len(zetas) == 1
        assert results[0][0] < 1e-6

    def test_modeled_cg_reordering_reduces_internode_traffic(self):
        cluster = Cluster.plafrim(1, n_ranks=16, binding="random")
        engine = Engine(cluster)
        cfg = CGConfig(CGClass("T", 1600, 5, 2, 10.0), mode="modeled")

        def prog(comm):
            from repro.apps.cg import cg_outer_iteration, cg_setup

            mapi.mpi_m_init()
            state = cg_setup(comm, cfg)
            _, msid = mapi.mpi_m_start(comm)
            cg_outer_iteration(comm, state, 0)
            mapi.mpi_m_suspend(msid)
            _, _, mat = mapi.mpi_m_rootgather_data(
                msid, 0, MPI_M_DATA_IGNORE, None, Flags.P2P_ONLY
            )
            mapi.mpi_m_free(msid)
            mapi.mpi_m_finalize()
            opt, k = reorder_from_matrix(comm, mat)
            if comm.rank == 0:
                n = comm.size
                m = np.asarray(mat, dtype=float).reshape(n, n)
                topo = comm.engine.cluster.topology
                pus = comm.engine.cluster.binding
                inv = np.empty(n, dtype=int)
                inv[np.asarray(k)] = np.arange(n)
                pus_new = [pus[inv[a]] for a in range(n)]
                # Socket-level traffic proxy: hop-bytes must not grow.
                from repro.placement.metrics import hop_bytes

                return (hop_bytes(m, topo, pus), hop_bytes(m, topo, pus_new))
            return None

        results = engine.run(prog)
        before, after = results[0]
        assert after <= before


class TestOverheadInvariant:
    def test_monitored_run_never_faster(self):
        """With a deterministic network, monitoring adds a strictly
        non-negative cost."""

        def body(comm):
            for _ in range(5):
                comm.barrier()
            return comm.time

        def run(monitored):
            cluster = Cluster.plafrim(1, n_ranks=8)
            engine = Engine(cluster, monitoring_overhead=1e-7)

            def prog(comm):
                if monitored:
                    mapi.mpi_m_init()
                    _, msid = mapi.mpi_m_start(comm)
                t = body(comm)
                if monitored:
                    mapi.mpi_m_suspend(msid)
                    mapi.mpi_m_free(msid)
                    mapi.mpi_m_finalize()
                return t

            return engine.run(prog)[0]

        assert run(True) >= run(False)
