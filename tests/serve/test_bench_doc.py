"""The committed BENCH_serve.json and its validator."""

import copy
import json
import os

import pytest

from repro.serve.bench import BENCH_SERVE_SCHEMA, verify_bench

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def _minimal_doc():
    return {
        "schema": BENCH_SERVE_SCHEMA,
        "phases": [
            {"name": "cold", "connections": 1, "requests": 8,
             "qps": 5.0, "p50_ms": 15.0, "p99_ms": 40.0, "hit_rate": 0.0},
            {"name": "hot-c4", "connections": 4, "requests": 5000,
             "qps": 1500.0, "p50_ms": 1.5, "p99_ms": 6.0, "hit_rate": 1.0},
        ],
        "sustained_qps": 1500.0,
        "min_qps": 1000.0,
        "parity": {"ok": True, "mismatches": []},
    }


def test_verify_accepts_good_doc():
    assert verify_bench(_minimal_doc())["sustained_qps"] == 1500.0


def test_verify_rejects_wrong_schema():
    doc = _minimal_doc()
    doc["schema"] = 99
    with pytest.raises(ValueError, match="schema"):
        verify_bench(doc)


def test_verify_rejects_slow_bench():
    doc = _minimal_doc()
    doc["sustained_qps"] = 500.0
    with pytest.raises(ValueError, match="below"):
        verify_bench(doc)
    # explicit floor overrides the stored one
    verify_bench(doc, min_qps=100.0)


def test_verify_rejects_parity_failure():
    doc = _minimal_doc()
    doc["parity"] = {"ok": False, "mismatches": ["treematch: makespan"]}
    with pytest.raises(ValueError, match="parity"):
        verify_bench(doc)


def test_verify_rejects_missing_hot_phase_and_fields():
    doc = _minimal_doc()
    doc["phases"] = [doc["phases"][0]]
    with pytest.raises(ValueError, match="hot"):
        verify_bench(doc)
    doc = _minimal_doc()
    del doc["phases"][1]["p99_ms"]
    with pytest.raises(ValueError, match="p99_ms"):
        verify_bench(doc)
    with pytest.raises(ValueError, match="phases"):
        verify_bench({"schema": BENCH_SERVE_SCHEMA, "phases": []})


def test_committed_bench_document_is_valid():
    """BENCH_serve.json in the repo root must always pass the same
    validation CI applies: schema, >= 1000 qps sustained hot-phase
    throughput, exact serve/direct parity, latency + hit-rate fields."""
    path = os.path.join(REPO_ROOT, "BENCH_serve.json")
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    verify_bench(doc, min_qps=1000.0)
    hot = [p for p in doc["phases"] if p["name"].startswith("hot")]
    assert all(p["hit_rate"] >= 0.99 for p in hot)
    assert doc["daemon_exit_code"] == 0
    assert doc["host"]["cpu_count"] >= 1


def test_verify_is_side_effect_free():
    doc = _minimal_doc()
    snapshot = copy.deepcopy(doc)
    verify_bench(doc)
    assert doc == snapshot
