"""Unit tests for the compiled-book LRU (eviction by real bytes)."""

import pytest

from repro.serve.store import BookEntry, BookStore


def _entry(fp: str, nbytes: int) -> BookEntry:
    return BookEntry(fingerprint=fp, path=f"/t/{fp}.trace", trace=None,
                     compiled=None, nbytes=nbytes)


def test_eviction_is_by_bytes_coldest_first():
    store = BookStore(max_bytes=100)
    assert store.put(_entry("a", 40)) == []
    assert store.put(_entry("b", 40)) == []
    assert store.put(_entry("c", 40)) == ["a"]       # 120 > 100: drop coldest
    assert store.fingerprints() == ["b", "c"]
    assert store.total_bytes == 80
    assert store.evictions == 1


def test_get_refreshes_recency():
    store = BookStore(max_bytes=100)
    store.put(_entry("a", 40))
    store.put(_entry("b", 40))
    assert store.get("a").fingerprint == "a"          # a is now hottest
    assert store.put(_entry("c", 40)) == ["b"]
    assert store.fingerprints() == ["a", "c"]


def test_newest_entry_survives_even_over_budget():
    store = BookStore(max_bytes=10)
    store.put(_entry("a", 5))
    evicted = store.put(_entry("huge", 50))
    assert evicted == ["a"]
    assert store.fingerprints() == ["huge"]           # over budget but held
    assert store.total_bytes == 50


def test_put_refresh_replaces_bytes():
    store = BookStore(max_bytes=100)
    store.put(_entry("a", 40))
    store.put(_entry("a", 60))                        # re-ingest, new size
    assert len(store) == 1
    assert store.total_bytes == 60


def test_hit_miss_counters_and_peek():
    store = BookStore(max_bytes=100)
    store.put(_entry("a", 10))
    assert store.get("missing") is None
    assert store.get("a") is not None
    assert store.peek("a") is not None                # no counter change
    stats = store.stats()
    assert stats == {"entries": 1, "bytes": 10, "max_bytes": 100,
                     "hits": 1, "misses": 1, "evictions": 0}


def test_budget_must_be_positive():
    with pytest.raises(ValueError):
        BookStore(max_bytes=0)


def test_built_entries_account_compiled_plus_events(serve_traces):
    from repro.replay.schema import ReplayTrace
    from repro.serve.store import trace_events_nbytes

    trace = ReplayTrace.load(serve_traces[0])
    entry = BookEntry.build("f" * 64, serve_traces[0], trace)
    assert entry.nbytes == (entry.compiled.nbytes()
                            + trace_events_nbytes(trace))
    assert entry.nbytes > len(trace.events) * 32      # events alone exceed
