"""Shared fixtures for the serve tests.

Two session-scoped fig5 recordings (different seeds, so different
fingerprints) feed every test, and ``serve_daemon`` spawns a real
``python -m repro.serve start`` subprocess on a private Unix socket —
the tests exercise the daemon exactly the way production would, signal
delivery and all.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import shutil
import subprocess
import sys
import tempfile
import time

import pytest

_COUNTER = itertools.count()


@pytest.fixture(scope="session")
def serve_traces(tmp_path_factory):
    """Two small recorded fig5 traces with distinct fingerprints."""
    from repro.experiments import fig5_collectives
    from repro.replay import autorecord

    root = tmp_path_factory.mktemp("serve-traces")
    paths = []
    for seed in (0, 1):
        path = str(root / f"fig5-seed{seed}.trace")
        autorecord.enable_to(path, meta={
            "workload": "fig5", "op": "reduce", "n_nodes": 2,
            "sizes": [100_000], "reps": 1, "seed": seed,
        })
        try:
            fig5_collectives.run_cell("reduce", 2, sizes=(100_000,),
                                      reps=1, seed=seed)
        finally:
            autorecord.disable()
        paths.append(path)
    return paths


@pytest.fixture()
def serve_daemon():
    """Factory: ``with serve_daemon(jobs=1, ...) as (sock, proc):``.

    Keyword args become ``--kebab-case`` daemon flags; ``env_extra``
    merges into the subprocess environment (chaos injection).  The
    daemon's stderr goes to ``daemon.log`` next to the socket and is
    echoed on teardown if the daemon died dirty.
    """
    tmps = []

    @contextlib.contextmanager
    def spawn(env_extra=None, wait_s: float = 30.0, **flags):
        # tempfile.mkdtemp keeps the socket path short (AF_UNIX limit).
        tmp = tempfile.mkdtemp(prefix="rs-")
        tmps.append(tmp)
        sock = os.path.join(tmp, f"s{next(_COUNTER)}.sock")
        log_path = os.path.join(tmp, "daemon.log")
        args = [sys.executable, "-m", "repro.serve", "start",
                "--socket", sock]
        for key, value in flags.items():
            args += [f"--{key.replace('_', '-')}", str(value)]
        env = dict(os.environ)
        env.update(env_extra or {})
        repro_src = os.path.dirname(os.path.dirname(os.path.abspath(
            __import__("repro").__file__)))
        env["PYTHONPATH"] = repro_src + os.pathsep + env.get("PYTHONPATH", "")
        log = open(log_path, "wb")
        proc = subprocess.Popen(args, stdout=log, stderr=log, env=env)
        try:
            _wait_ready(proc, sock, log_path, wait_s)
            yield sock, proc
        finally:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=15.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=15.0)
            log.close()

    yield spawn
    for tmp in tmps:
        shutil.rmtree(tmp, ignore_errors=True)


def _wait_ready(proc, sock: str, log_path: str, wait_s: float) -> None:
    from repro.serve.client import ServeClient

    deadline = time.monotonic() + wait_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            with open(log_path, "r", encoding="utf-8",
                      errors="replace") as fh:
                raise RuntimeError(
                    f"daemon exited rc={proc.returncode} during startup:\n"
                    + fh.read())
        if os.path.exists(sock):
            try:
                with ServeClient(path=sock, timeout_s=5.0) as client:
                    client.ping()
                return
            except OSError:
                pass
        time.sleep(0.05)
    raise RuntimeError(f"daemon not ready within {wait_s}s")
