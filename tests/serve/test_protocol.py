"""Unit tests for the wire protocol: framing, schema, validation."""

import socket
import struct

import pytest

from repro.core.errors import ServeProtocolError
from repro.serve import protocol


def test_frame_roundtrip_over_socketpair():
    a, b = socket.socketpair()
    try:
        doc = {"type": "query", "fingerprint": "ab" * 32, "seed": 3}
        protocol.write_frame_sock(a, doc)
        got = protocol.read_frame_sock(b)
        assert got["type"] == "query"
        assert got["fingerprint"] == "ab" * 32
        assert got["schema"] == protocol.PROTOCOL_SCHEMA
    finally:
        a.close()
        b.close()


def test_encode_stamps_schema_and_is_canonical():
    frame = protocol.encode_frame({"type": "ping"})
    (length,) = struct.unpack(">I", frame[:4])
    assert length == len(frame) - 4
    assert frame[4:] == b'{"schema":1,"type":"ping"}'


def test_clean_eof_returns_none():
    a, b = socket.socketpair()
    a.close()
    try:
        assert protocol.read_frame_sock(b) is None
    finally:
        b.close()


def test_mid_frame_eof_raises():
    a, b = socket.socketpair()
    try:
        a.sendall(struct.pack(">I", 100) + b"{")  # announce 100, send 1
        a.close()
        with pytest.raises(ServeProtocolError, match="mid-frame"):
            protocol.read_frame_sock(b)
    finally:
        b.close()


def test_oversized_frame_rejected_both_ways():
    with pytest.raises(ServeProtocolError, match="cap"):
        protocol.encode_frame({"type": "ping",
                               "pad": "x" * protocol.MAX_FRAME_BYTES})
    a, b = socket.socketpair()
    try:
        a.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
        with pytest.raises(ServeProtocolError, match="cap"):
            protocol.read_frame_sock(b)
    finally:
        a.close()
        b.close()


def test_non_json_payload_rejected():
    with pytest.raises(ServeProtocolError, match="not JSON"):
        protocol.decode_payload(b"\xff\xfe")
    with pytest.raises(ServeProtocolError, match="JSON object"):
        protocol.decode_payload(b"[1,2]")


def test_envelope_schema_and_type_checked():
    with pytest.raises(ServeProtocolError, match="schema"):
        protocol.validate_envelope({"schema": 99, "type": "ping"},
                                   protocol.REQUEST_TYPES)
    with pytest.raises(ServeProtocolError, match="unknown message type"):
        protocol.validate_envelope({"schema": 1, "type": "frobnicate"},
                                   protocol.REQUEST_TYPES)
    assert protocol.validate_envelope(
        {"schema": 1, "type": "ping"}, protocol.REQUEST_TYPES) == "ping"


@pytest.mark.parametrize("body, message", [
    ({"fingerprint": ""}, "fingerprint"),
    ({"fingerprint": 7}, "fingerprint"),
    ({"fingerprint": "ab", "strategies": []}, "strategies"),
    ({"fingerprint": "ab", "strategies": [1]}, "strategies"),
    ({"fingerprint": "ab", "seed": "zero"}, "seed"),
    ({"fingerprint": "ab", "seed": True}, "seed"),
    ({"fingerprint": "ab", "substitute": {"reduce": 3}}, "substitute"),
    ({"fingerprint": "ab", "focus": 5}, "focus"),
    ({"fingerprint": "ab", "focus": {"straggler_ranks": ["x"]}}, "focus"),
])
def test_query_validation_rejects(body, message):
    with pytest.raises(ServeProtocolError, match=message):
        protocol.validate_query(body)


def test_full_request_validation():
    ok = {"schema": 1, "type": "ingest", "path": "/tmp/x.trace"}
    assert protocol.validate_request(ok) == "ingest"
    with pytest.raises(ServeProtocolError, match="ingest.path"):
        protocol.validate_request({"schema": 1, "type": "ingest"})
    with pytest.raises(ServeProtocolError, match="shutdown.drain"):
        protocol.validate_request(
            {"schema": 1, "type": "shutdown", "drain": "yes"})
    good_focus = {"schema": 1, "type": "query", "fingerprint": "ab",
                  "focus": {"straggler_ranks": [3], "weight": 2.0,
                            "congested_classes": ["Switch"]}}
    assert protocol.validate_request(good_focus) == "query"
