"""Integration tests against a live daemon subprocess.

Each test spawns its own ``python -m repro.serve start`` with the
config it needs (tiny cache, chaos stalls, bounded queue) and talks to
it with the real client over the real socket — compile deduplication,
LRU eviction, backpressure, and SIGTERM drain are all observed from
the outside, the way an operator would.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.serve.client import ServeClient, ServeError


def _counters(client) -> dict:
    return client.stats()["metrics"]["counters"]


def test_parallel_clients_same_fingerprint_compile_once(
        serve_traces, serve_daemon):
    """N racing clients on one cold fingerprint: exactly one compile,
    exactly one scoring task — everyone shares the single flight."""
    with serve_daemon(jobs=2) as (sock, _proc):
        with ServeClient(path=sock) as client:
            fp = client.ingest(serve_traces[0],
                               compile=False)["fingerprint"]
        results = []
        errors = []

        def ask():
            try:
                with ServeClient(path=sock) as c:
                    results.append(
                        c.query(fp, strategies=["identity"], seed=0))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=ask) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert len(results) == 6
        makespans = {r["candidates"][0]["makespan"] for r in results}
        assert len(makespans) == 1

        with ServeClient(path=sock) as client:
            stats = client.stats()
        assert stats["metrics"]["counters"][
            "repro_serve_compiles_total"] == 1
        assert stats["pool"]["tasks_ok"] == 1


def test_served_results_bit_identical_to_direct_search(
        serve_traces, serve_daemon):
    from repro.replay.schema import ReplayTrace
    from repro.replay.search import what_if_search

    strategies = ["identity", "treematch", "greedy", "random"]
    with serve_daemon(jobs=2) as (sock, _proc):
        with ServeClient(path=sock) as client:
            fp = client.ingest(serve_traces[0])["fingerprint"]
            served = client.query(fp, strategies=strategies, seed=3)

    trace = ReplayTrace.load(serve_traces[0])
    direct = what_if_search(trace, strategies=strategies, seed=3)
    by_strategy = {c.strategy: c for c in direct.candidates}
    for cand in served["candidates"]:
        ref = by_strategy[cand["strategy"]]
        assert cand["makespan"] == ref.makespan
        assert cand["placement"] == [int(p) for p in ref.placement]
        assert cand["hop_bytes"] == ref.hop_bytes
        assert cand["inter_node_bytes"] == ref.inter_node_bytes
        assert cand["modeled_cost"] == ref.modeled_cost
    assert served["best"] == direct.best.strategy
    assert served["k"] == [int(v) for v in direct.k]
    assert served["recorded_makespan"] == direct.recorded_makespan


def test_lru_evicts_by_bytes_and_recompiles_transparently(
        serve_traces, serve_daemon):
    """A 1 MiB budget can't hold two multi-MiB books: the second
    ingest evicts the first, and querying the evicted book recompiles
    it (counted) instead of failing."""
    with serve_daemon(jobs=1, cache_mb=1) as (sock, _proc):
        with ServeClient(path=sock) as client:
            fp0 = client.ingest(serve_traces[0])["fingerprint"]
            fp1 = client.ingest(serve_traces[1])["fingerprint"]
            assert fp0 != fp1
            stats = client.stats()
            assert stats["store"]["entries"] == 1
            assert stats["store"]["evictions"] == 1
            assert _counters(client)["repro_serve_compiles_total"] == 2

            res = client.query(fp0, strategies=["identity"])
            assert res["best"] == "identity"
            assert _counters(client)["repro_serve_compiles_total"] == 3
            stats = client.stats()
            assert stats["store"]["entries"] == 1
            assert stats["store"]["evictions"] == 2


def test_backpressure_rejects_before_enqueue(serve_traces, serve_daemon):
    """With the queue bound at 1 and a worker stalled mid-batch, a
    second cold query is refused with ``overloaded`` — but answers the
    server already has (ping, hot cells) keep flowing."""
    chaos = {"REPRO_SERVE_CHAOS": "stall=2.0"}
    with serve_daemon(jobs=1, max_queue=1, env_extra=chaos) as (sock, _p):
        with ServeClient(path=sock) as client:
            fp = client.ingest(serve_traces[0])["fingerprint"]

        slow_result = {}

        def slow():
            with ServeClient(path=sock) as c:
                slow_result["r"] = c.query(fp, strategies=["identity"])

        t = threading.Thread(target=slow)
        t.start()
        time.sleep(0.7)  # admitted and stalling in the worker
        with ServeClient(path=sock) as client:
            with pytest.raises(ServeError) as excinfo:
                client.query(fp, strategies=["greedy"])
            assert excinfo.value.code == "overloaded"
            client.ping()  # the daemon itself is responsive throughout
            assert _counters(client)[
                "repro_serve_rejected_total{code=overloaded}"] == 1
        t.join(timeout=120)
        assert slow_result["r"]["best"] == "identity"

        # Queue drained: the same query is admitted now, and the
        # stalled cell it raced is a cache hit.
        with ServeClient(path=sock) as client:
            res = client.query(fp, strategies=["identity", "greedy"])
            assert res["cache"]["hits"] >= 1


def test_sigterm_drains_inflight_queries_then_exits_zero(
        serve_traces, serve_daemon):
    """SIGTERM mid-query: the in-flight query still gets its answer,
    new work is refused, and the daemon exits 0."""
    chaos = {"REPRO_SERVE_CHAOS": "stall=2.0"}
    with serve_daemon(jobs=1, env_extra=chaos) as (sock, proc):
        with ServeClient(path=sock) as client:
            fp = client.ingest(serve_traces[0])["fingerprint"]

        inflight = {}

        def slow():
            with ServeClient(path=sock) as c:
                inflight["r"] = c.query(fp, strategies=["identity"],
                                        seed=7)

        # Open the bystander connection before the listener closes.
        bystander = ServeClient(path=sock)
        t = threading.Thread(target=slow)
        t.start()
        time.sleep(0.7)
        proc.send_signal(signal.SIGTERM)
        time.sleep(0.3)

        with pytest.raises(ServeError) as excinfo:
            bystander.query(fp, strategies=["greedy"])
        assert excinfo.value.code == "shutting-down"
        bystander.close()

        t.join(timeout=120)
        assert inflight["r"]["best"] == "identity"
        assert proc.wait(timeout=60) == 0


def test_crashed_worker_is_replaced_and_query_retried(
        serve_traces, serve_daemon):
    """A worker that hard-exits mid-batch is replaced; the query is
    retried on the fresh worker and still answers correctly."""
    chaos = {"REPRO_SERVE_CHAOS": "crash=1"}
    with serve_daemon(jobs=1, backoff="0.01", env_extra=chaos) \
            as (sock, _proc):
        with ServeClient(path=sock) as client:
            fp = client.ingest(serve_traces[0])["fingerprint"]
            res = client.query(fp, strategies=["identity"])
            assert res["best"] == "identity"
            stats = client.stats()
            assert stats["pool"]["replaced"] == 1
            assert stats["pool"]["retries"] == 1


def test_unknown_fingerprint_and_bad_requests(serve_traces, serve_daemon):
    with serve_daemon(jobs=1) as (sock, _proc):
        with ServeClient(path=sock) as client:
            with pytest.raises(ServeError) as excinfo:
                client.query("ff" * 32, strategies=["identity"])
            assert excinfo.value.code == "unknown-fingerprint"

            fp = client.ingest(serve_traces[0])["fingerprint"]
            with pytest.raises(ServeError) as excinfo:
                client.query(fp, strategies=["warp-drive"])
            assert excinfo.value.code == "bad-request"

            with pytest.raises(ServeError) as excinfo:
                client.request({"type": "query"})  # no fingerprint
            assert excinfo.value.code == "bad-request"

            with pytest.raises(ServeError) as excinfo:
                client.ingest(serve_traces[0] + ".missing")
            assert excinfo.value.code == "bad-request"

            # The connection survives every rejection.
            assert client.ping()["type"] == "pong"


def test_focus_from_diagnosis_narrows_generators(serve_traces,
                                                 serve_daemon):
    """A query with a focus payload answers (and caches) separately
    from the unfocused one."""
    focus = {"straggler_ranks": [0, 1], "congested_classes": ["Switch"],
             "weight": 4.0}
    with serve_daemon(jobs=1) as (sock, _proc):
        with ServeClient(path=sock) as client:
            fp = client.ingest(serve_traces[0])["fingerprint"]
            plain = client.query(fp, strategies=["treematch"])
            focused = client.query(fp, strategies=["treematch"],
                                   focus=focus)
            assert focused["meta"]["focus"] == focus
            # Distinct cache cells: the second focused query hits.
            assert focused["cache"] == {"hits": 0, "misses": 1}
            again = client.query(fp, strategies=["treematch"], focus=focus)
            assert again["cache"] == {"hits": 1, "misses": 0}
            assert again["candidates"][0]["makespan"] == \
                focused["candidates"][0]["makespan"]
            assert plain["candidates"][0]["strategy"] == "treematch"


def test_stats_and_query_cli_json_to_stdout(serve_traces, serve_daemon):
    """CLI convention: machine-readable report on stdout (strict
    JSON), all chatter on stderr — same contract as
    ``repro.obs diagnose --json``."""
    with serve_daemon(jobs=1) as (sock, _proc):
        env = dict(os.environ)
        repro_src = os.path.dirname(os.path.dirname(os.path.abspath(
            __import__("repro").__file__)))
        env["PYTHONPATH"] = (repro_src + os.pathsep
                             + env.get("PYTHONPATH", ""))

        out = subprocess.run(
            [sys.executable, "-m", "repro.serve", "query",
             "--socket", sock, "--trace", serve_traces[0],
             "--strategies", "identity"],
            capture_output=True, text=True, env=env, timeout=300)
        assert out.returncode == 0, out.stderr
        doc = json.loads(out.stdout)       # stdout is pure JSON
        assert doc["type"] == "result"
        assert "best:" in out.stderr       # the human line went to stderr

        out = subprocess.run(
            [sys.executable, "-m", "repro.serve", "stats",
             "--socket", sock],
            capture_output=True, text=True, env=env, timeout=120)
        assert out.returncode == 0, out.stderr
        stats = json.loads(out.stdout)
        assert stats["type"] == "stats"
        assert stats["store"]["entries"] == 1
