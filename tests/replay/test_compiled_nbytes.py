"""CompiledTrace: public compile API, resident-size accounting."""

import numpy as np

from repro.replay import CompiledTrace, compile_trace


def test_compile_trace_is_cached_and_tuple_compatible(fig5_trace):
    book = compile_trace(fig5_trace)
    assert isinstance(book, CompiledTrace)
    assert compile_trace(fig5_trace) is book        # cached on the trace
    # Legacy positional destructuring still works (NamedTuple).
    prog, counts, sizes, total_counts, total_sizes, n_messages, max_seq = \
        book
    assert prog is book.prog
    assert n_messages == book.n_messages
    assert n_messages > 0


def test_nbytes_counts_numpy_tables_and_op_stream(fig5_trace):
    book = compile_trace(fig5_trace)
    nbytes = book.nbytes()
    matrix_bytes = sum(
        int(mat.nbytes)
        for table in (book.counts, book.sizes, book.total_counts,
                      book.total_sizes)
        for mat in table.values())
    assert nbytes > matrix_bytes                    # op stream counted too
    assert nbytes > len(book.prog) * 32             # per-slot floor
    # Every matrix really is a dense numpy buffer over the world.
    n = fig5_trace.world_size
    for mat in book.total_sizes.values():
        assert isinstance(mat, np.ndarray)
        assert mat.shape == (n, n)


def test_nbytes_scales_with_trace_size(fig5_trace):
    from repro.replay.schema import ReplayTrace

    book = compile_trace(fig5_trace)
    half = ReplayTrace(
        world_size=fig5_trace.world_size,
        topology=fig5_trace.topology,
        binding=fig5_trace.binding,
        params=fig5_trace.params,
        seed=fig5_trace.seed,
        monitoring_overhead=fig5_trace.monitoring_overhead,
        handoff=fig5_trace.handoff,
        comms=fig5_trace.comms,
        clocks=fig5_trace.clocks,
        events=fig5_trace.events[: len(fig5_trace.events) // 2],
        meta=fig5_trace.meta,
    )
    assert compile_trace(half).nbytes() < book.nbytes()
