"""Shared fixtures: record the golden fig5-shaped workload once.

The live run costs a few seconds, so one session-scoped recording
serves every replay test; treat the trace as read-only.
"""

import pytest

from repro.replay import autorecord


@pytest.fixture(scope="session")
def fig5_recording():
    """(trace, engine, results) for the golden fig5_shaped workload."""
    from tests.golden.hotpath_workloads import fig5_shaped

    with autorecord.capture(meta={"workload": "fig5_shaped"}) as traces:
        engine, results = fig5_shaped()
    assert len(traces) == 1
    return traces[0], engine, results


@pytest.fixture(scope="session")
def fig5_trace(fig5_recording):
    return fig5_recording[0]
