"""Replay correctness: golden bit-exactness, determinism, fast path,
and collective-algorithm substitution conservation.
"""

import hashlib
import json
import pathlib

import numpy as np
import pytest

from repro.replay.engine import (
    CATEGORIES,
    ReplayError,
    _build_network,
    _replay_compiled,
    _replay_recorded,
    replay,
    trace_byte_matrix,
)

GOLDEN = pathlib.Path(__file__).resolve().parent.parent / "golden" / \
    "hotpath_golden.json"


def _digest(m: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(m).tobytes()).hexdigest()


class TestIdentityBitExact:
    """Replaying the recorded configuration reproduces the live run —
    and therefore the committed hot-path golden — to the last ulp."""

    def test_clocks_match_live_engine(self, fig5_recording):
        trace, engine, _ = fig5_recording
        res = replay(trace, verify=True)
        assert res.exact
        assert res.clocks == list(engine.clocks())
        assert res.max_clock == engine.max_clock

    def test_matrices_match_live_engine(self, fig5_recording):
        trace, engine, _ = fig5_recording
        res = replay(trace)
        for c in CATEGORIES:
            assert np.array_equal(res.counts[c], engine.pml.counts[c])
            assert np.array_equal(res.sizes[c], engine.pml.sizes[c])

    def test_matches_committed_golden(self, fig5_trace):
        golden = json.loads(GOLDEN.read_text())["fig5_shaped"]
        res = replay(trace=fig5_trace, verify=True)
        assert [float.hex(c) for c in res.clocks] == golden["clocks"]
        assert float.hex(res.max_clock) == golden["max_clock"]
        for c in CATEGORIES:
            assert _digest(res.counts[c]) == golden["counts"][c]
            assert _digest(res.sizes[c]) == golden["sizes"][c]


class TestNonIdentityReplay:
    def test_permuted_replay_is_deterministic(self, fig5_trace):
        perm = list(reversed(fig5_trace.binding))
        a = replay(fig5_trace, binding=perm)
        b = replay(fig5_trace, binding=perm)
        assert not a.exact
        assert a.clocks == b.clocks

    def test_byte_matrix_is_placement_invariant(self, fig5_trace):
        perm = list(reversed(fig5_trace.binding))
        moved = replay(fig5_trace, binding=perm)
        stay = replay(fig5_trace)
        assert np.array_equal(moved.byte_matrix(), stay.byte_matrix())
        assert np.array_equal(moved.byte_matrix(), fig5_trace.byte_matrix())

    def test_fast_path_bitwise_equals_reference(self, fig5_trace):
        """_replay_compiled inlines Network.transfer; any drift from the
        straightforward interpreter is a bug, not a tolerance."""
        rng = np.random.default_rng(5)
        for _ in range(3):
            perm = [int(p) for p in rng.permutation(fig5_trace.binding)]
            slow = _replay_recorded(
                fig5_trace, _build_network(fig5_trace, perm, None, None, None),
                exact=False, verify=False)
            fast = _replay_compiled(
                fig5_trace, _build_network(fig5_trace, perm, None, None, None))
            assert fast.clocks == slow.clocks
            assert fast.n_messages == slow.n_messages
            for c in CATEGORIES:
                assert np.array_equal(fast.sizes[c], slow.sizes[c])
                assert np.array_equal(fast.total_sizes[c],
                                      slow.total_sizes[c])

    def test_trace_byte_matrix_matches_event_sweep(self, fig5_trace):
        assert np.array_equal(trace_byte_matrix(fig5_trace),
                              fig5_trace.byte_matrix())
        assert np.array_equal(
            trace_byte_matrix(fig5_trace, monitored_only=True),
            fig5_trace.byte_matrix(monitored_only=True))

    def test_verify_with_non_identity_binding_rejected(self, fig5_trace):
        with pytest.raises(ReplayError):
            replay(fig5_trace, binding=list(reversed(fig5_trace.binding)),
                   verify=True)


class TestSubstitution:
    def test_identity_algorithms_conserve_everything(self, fig5_trace):
        """Re-decomposing every collective with its *recorded* algorithm
        must regenerate the exact same wire traffic."""
        recorded_algs = {}
        for ev in fig5_trace.events:
            if ev[0] == "B" and ev[4]:
                recorded_algs[ev[3]] = ev[4]
        assert recorded_algs  # fig5 records named reduce/bcast algorithms
        base = replay(fig5_trace)
        subst = replay(fig5_trace, substitute=recorded_algs)
        assert subst.n_messages == base.n_messages
        for c in CATEGORIES:
            assert np.array_equal(subst.total_sizes[c], base.total_sizes[c])
            assert np.array_equal(subst.total_counts[c],
                                  base.total_counts[c])
            assert np.array_equal(subst.sizes[c], base.sizes[c])
            assert np.array_equal(subst.counts[c], base.counts[c])

    def test_identity_alg_makespan_close_to_recorded(self, fig5_trace):
        subst = replay(fig5_trace, substitute={
            ev[3]: ev[4] for ev in fig5_trace.events
            if ev[0] == "B" and ev[4]})
        recorded = max(fig5_trace.clocks)
        assert subst.max_clock == pytest.approx(recorded, rel=5e-3)

    def test_changing_algorithm_conserves_volume_not_edges(self, fig5_trace):
        base = replay(fig5_trace)
        subst = replay(fig5_trace, substitute={"bcast": "chain"})
        total = sum(m.sum() for m in base.total_sizes.values())
        total_s = sum(m.sum() for m in subst.total_sizes.values())
        assert total_s == total
        assert not np.array_equal(subst.total_sizes["coll"],
                                  base.total_sizes["coll"])

    def test_unknown_algorithm_rejected(self, fig5_trace):
        with pytest.raises(Exception):
            replay(fig5_trace, substitute={"bcast": "no-such-alg"})


def test_unsent_receive_raises(fig5_trace, tmp_path):
    from repro.replay.schema import ReplayTrace

    path = str(tmp_path / "t.trace")
    fig5_trace.dump(path)
    trace = ReplayTrace.load(path)
    # Drop the first send; its receive must now fail loudly.
    idx = next(i for i, ev in enumerate(trace.events) if ev[0] == "S")
    del trace.events[idx]
    with pytest.raises(ReplayError, match="unsent"):
        replay(trace, binding=list(reversed(trace.binding)))
