"""Trace persistence: exact round-trips and schema gating."""

import numpy as np
import pytest

from repro.core.errors import TraceSchemaError
from repro.replay.schema import SCHEMA_VERSION, ReplayTrace


def test_dump_load_roundtrip_is_exact(fig5_trace, tmp_path):
    path = str(tmp_path / "t.trace")
    fig5_trace.dump(path)
    back = ReplayTrace.load(path)
    assert back.world_size == fig5_trace.world_size
    assert back.seed == fig5_trace.seed
    assert back.binding == fig5_trace.binding
    assert back.topology == fig5_trace.topology
    assert back.params == fig5_trace.params
    assert back.monitoring_overhead == fig5_trace.monitoring_overhead
    assert back.clocks == fig5_trace.clocks  # floats, bit-for-bit
    assert back.events == fig5_trace.events
    assert back.meta == fig5_trace.meta


def test_byte_matrix_roundtrip(fig5_trace, tmp_path):
    path = str(tmp_path / "t.trace")
    fig5_trace.dump(path)
    back = ReplayTrace.load(path)
    assert np.array_equal(back.byte_matrix(), fig5_trace.byte_matrix())
    assert np.array_equal(back.byte_matrix(monitored_only=True),
                          fig5_trace.byte_matrix(monitored_only=True))


def test_future_schema_rejected(fig5_trace, tmp_path):
    path = str(tmp_path / "t.trace")
    fig5_trace.dump(path)
    lines = open(path).read().splitlines(keepends=True)
    lines[0] = lines[0].replace(f"schema={SCHEMA_VERSION}",
                                f"schema={SCHEMA_VERSION + 1}")
    mangled = str(tmp_path / "future.trace")
    open(mangled, "w").writelines(lines)
    with pytest.raises(TraceSchemaError):
        ReplayTrace.load(mangled)


def test_missing_schema_token_rejected(tmp_path):
    path = str(tmp_path / "bare.trace")
    open(path, "w").write("# repro.replay trace\n")
    with pytest.raises(TraceSchemaError):
        ReplayTrace.load(path)


class TestSiblingReaders:
    """The satellite migration: every on-disk reader gates on schema."""

    def test_message_tracer_roundtrip_and_gate(self, tmp_path):
        from repro.simmpi.trace import MessageTracer, TraceEvent

        tracer = MessageTracer(4)
        tracer.events = [TraceEvent(0.5, 0, 1, 100, "p2p"),
                         TraceEvent(1.5, 2, 3, 7, "coll", count=2)]
        path = str(tmp_path / "m.trace")
        tracer.dump(path)
        first = open(path).readline()
        assert f"schema={MessageTracer.SCHEMA}" in first
        back = MessageTracer.load(path)
        assert back.events == tracer.events

        mangled = str(tmp_path / "m2.trace")
        open(mangled, "w").write(
            open(path).read().replace(
                f"schema={MessageTracer.SCHEMA}", "schema=99"))
        with pytest.raises(TraceSchemaError):
            MessageTracer.load(mangled)

    def test_message_tracer_legacy_headerless_still_loads(self, tmp_path):
        from repro.simmpi.trace import MessageTracer

        path = str(tmp_path / "legacy.trace")
        open(path, "w").write("0.1 0 1 64 p2p 1\n")
        with pytest.warns(UserWarning, match="world_size"):
            back = MessageTracer.load(path)
        assert back.world_size == 2

    def test_flush_profile_gate(self, tmp_path):
        from repro.core.flushio import (PROFILE_SCHEMA, read_profile,
                                        write_local_profile)

        path = write_local_profile(
            str(tmp_path / "p"), 0,
            np.array([1, 2], dtype=np.uint64),
            np.array([10, 20], dtype=np.uint64), 0)
        assert f"schema={PROFILE_SCHEMA}" in open(path).readline()
        prof = read_profile(path)
        assert prof["kind"] == "local"
        assert prof["data"].tolist() == [[0, 0, 1, 10], [0, 1, 2, 20]]

        mangled = str(tmp_path / "p.bad.prof")
        open(mangled, "w").write(
            open(path).read().replace(f"schema={PROFILE_SCHEMA}",
                                      "schema=99"))
        with pytest.raises(TraceSchemaError):
            read_profile(mangled)
