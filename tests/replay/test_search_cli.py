"""What-if search behaviour and the four CLI subcommands."""

import json

import numpy as np
import pytest

from repro.placement.mapping import is_permutation
from repro.replay.cli import BENCH_SCHEMA, main
from repro.replay.search import STRATEGIES, what_if_search


class TestWhatIfSearch:
    def test_candidates_sorted_and_k_valid(self, fig5_trace):
        res = what_if_search(fig5_trace)
        assert [c.strategy for c in res.candidates[:1]] != []
        spans = [c.makespan for c in res.candidates]
        assert spans == sorted(spans)
        assert set(c.strategy for c in res.candidates) == set(STRATEGIES)
        assert is_permutation(res.k)
        assert sorted(res.best.placement) == sorted(fig5_trace.binding)

    def test_identity_candidate_reproduces_recording(self, fig5_trace):
        res = what_if_search(fig5_trace, strategies=["identity"])
        cand = res.candidates[0]
        # Identity goes through the non-exact fast path, which tracks
        # the recorded makespan to float-noise, not to the bit.
        assert cand.makespan == pytest.approx(res.recorded_makespan,
                                              rel=1e-9)
        assert res.k.tolist() == list(range(fig5_trace.world_size))

    def test_search_beats_recorded_placement(self, fig5_trace):
        """The paper's premise on this workload: the monitored matrix
        admits a better-than-recorded placement."""
        res = what_if_search(fig5_trace)
        assert res.best.makespan < res.recorded_makespan
        assert res.speedup > 1.0

    def test_unknown_strategy_rejected(self, fig5_trace):
        with pytest.raises(ValueError, match="unknown search strategy"):
            what_if_search(fig5_trace, strategies=["identity", "bogus"])

    def test_substitution_composes(self, fig5_trace):
        res = what_if_search(fig5_trace, strategies=["identity", "treematch"],
                             substitute={"bcast": "chain"})
        assert len(res.candidates) == 2
        assert res.meta["substitute"] == {"bcast": "chain"}


@pytest.fixture(scope="module")
def recorded_cell(tmp_path_factory):
    """A small fig5 cell recorded through the CLI."""
    path = str(tmp_path_factory.mktemp("cli") / "cell.trace")
    rc = main(["record", "-o", path, "--op", "reduce", "--nodes", "2",
               "--sizes", "200000", "--reps", "1", "--seed", "0"])
    assert rc == 0
    return path


class TestCli:
    def test_replay_verify_identity(self, recorded_cell, capsys):
        assert main(["replay", recorded_cell, "--verify"]) == 0
        assert "exact" in capsys.readouterr().out

    def test_replay_json_swap(self, recorded_cell, tmp_path):
        out = str(tmp_path / "replay.json")
        assert main(["replay", recorded_cell, "--swap-pus", "0", "24",
                     "--json", out]) == 0
        doc = json.loads(open(out).read())
        assert doc["exact"] is False
        assert doc["makespan"] > 0

    def test_search_writes_bench(self, recorded_cell, tmp_path, capsys):
        bench = str(tmp_path / "BENCH.json")
        assert main(["search", recorded_cell,
                     "--strategies", "treematch,greedy,local",
                     "--bench", bench]) == 0
        doc = json.loads(open(bench).read())
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["workload"] == "fig5"
        assert set(doc["strategies"]) == {"treematch", "greedy", "local"}
        for side in ("replay_search", "live_rerun"):
            assert doc[side]["total_wall_seconds"] > 0
            assert set(doc[side]["per_strategy"]) == set(doc["strategies"])
        assert doc["speedup"] == pytest.approx(
            doc["live_rerun"]["total_wall_seconds"]
            / doc["replay_search"]["total_wall_seconds"])

    def test_diff_identical_traces(self, recorded_cell, capsys):
        assert main(["diff", recorded_cell, recorded_cell]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_substitution_differs(self, recorded_cell, capsys):
        rc = main(["diff", recorded_cell, recorded_cell,
                   "--substitute", "reduce=flat"])
        assert rc == 1

    def test_search_json_mode(self, recorded_cell, tmp_path):
        out = str(tmp_path / "search.json")
        assert main(["search", recorded_cell,
                     "--strategies", "identity,treematch",
                     "--json", out]) == 0
        doc = json.loads(open(out).read())
        assert [c["strategy"] for c in doc["candidates"]]
        assert is_permutation(doc["k"])


class TestRecorderGating:
    def test_no_recording_outside_capture(self):
        from repro.replay import autorecord
        from repro.simmpi import Cluster, Engine

        assert not autorecord.is_recording()
        engine = Engine(Cluster.plafrim(2, binding="rr"), seed=0)
        assert engine._rr is None

    def test_reentry_rejected(self):
        from repro.replay import autorecord

        with autorecord.capture():
            with pytest.raises(RuntimeError):
                autorecord.enable_to("/tmp/never.trace")
