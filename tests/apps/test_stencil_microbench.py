"""Tests for the stencil app and the micro-benchmarks."""

import numpy as np
import pytest

from repro.apps.microbench import GroupBenchResult, collective_kernel, \
    grouped_allgather_benchmark
from repro.apps.stencil import (
    StencilConfig,
    process_grid,
    run_stencil,
    stencil_iteration,
    stencil_setup,
)
from repro.simmpi import Cluster, Engine, RankFailure, Topology
from tests.conftest import run_spmd


class TestProcessGrid:
    @pytest.mark.parametrize("p,expected", [
        (1, (1, 1)), (4, (2, 2)), (6, (2, 3)), (8, (2, 4)), (12, (3, 4)),
    ])
    def test_near_square(self, p, expected):
        assert process_grid(p) == expected


def sequential_jacobi(fields, pr, pc, steps, periodic=False):
    """Reference: assemble the global grid, run the same sweeps."""
    t = fields[0].shape[0] - 2
    H, W = pr * t, pc * t
    g = np.zeros((H + 2, W + 2))
    for r in range(pr):
        for c in range(pc):
            g[1 + r * t : 1 + (r + 1) * t, 1 + c * t : 1 + (c + 1) * t] = \
                fields[r * pc + c][1:-1, 1:-1]
    for _ in range(steps):
        inner = 0.25 * (g[:-2, 1:-1] + g[2:, 1:-1] + g[1:-1, :-2] + g[1:-1, 2:])
        g[1:-1, 1:-1] = inner
    return g


class TestStencilNumerics:
    def test_matches_sequential_reference(self):
        cfg = StencilConfig(tile=8, numeric=True)
        steps = 4

        def prog(comm):
            state = stencil_setup(comm, cfg)
            initial = state.field.copy()
            for it in range(steps):
                stencil_iteration(comm, state, it)
            return (initial, state.field.copy(), state.my_r, state.my_c)

        results, _ = run_spmd(prog, n_ranks=4)
        pr, pc = process_grid(4)
        ref = sequential_jacobi([r[0] for r in results], pr, pc, steps)
        t = cfg.tile
        for initial, final, r, c in results:
            expected = ref[1 + r * t : 1 + (r + 1) * t,
                           1 + c * t : 1 + (c + 1) * t]
            assert np.allclose(final[1:-1, 1:-1], expected)

    def test_run_stencil_stats(self):
        cfg = StencilConfig(tile=8)

        def prog(comm):
            return run_stencil(comm, cfg, iterations=3)

        results, _ = run_spmd(prog, n_ranks=4)
        s = results[0]
        assert s["iterations"] == 3
        assert s["time"] > s["comm_time"] > 0
        assert s["checksum"] != 0

    def test_modeled_mode_runs(self):
        cfg = StencilConfig(tile=64, numeric=False)

        def prog(comm):
            return run_stencil(comm, cfg, iterations=2)

        results, _ = run_spmd(prog, n_ranks=6)
        assert results[0]["checksum"] == 0
        assert results[0]["comm_time"] > 0

    def test_periodic_wraps(self):
        cfg = StencilConfig(tile=4, numeric=True, periodic=True)

        def prog(comm):
            state = stencil_setup(comm, cfg)
            assert all(n >= 0 for n in state.neighbours.values())
            stencil_iteration(comm, state, 0)
            return float(state.field.sum())

        results, _ = run_spmd(prog, n_ranks=4)
        assert all(np.isfinite(r) for r in results)


class TestCollectiveKernel:
    def test_reduce_and_bcast_elapse_time(self):
        def prog(comm):
            t_r = collective_kernel(comm, "reduce", 10_000)
            t_b = collective_kernel(comm, "bcast", 10_000)
            return (t_r, t_b)

        results, _ = run_spmd(prog, n_ranks=8)
        assert all(tr > 0 and tb > 0 for tr, tb in results)

    def test_unknown_op(self):
        def prog(comm):
            collective_kernel(comm, "gatherify", 10)

        with pytest.raises(RankFailure):
            run_spmd(prog, n_ranks=2)


class TestGroupedAllgather:
    def test_gain_definition(self):
        res = GroupBenchResult(t1=10.0, t2=1.0, t3=4.0, group_rank=0,
                               group_size=8)
        assert res.gain_percent == pytest.approx(50.0)
        assert GroupBenchResult(0.0, 1.0, 1.0, 0, 8).gain_percent == 0.0

    def test_groups_are_consecutive_blocks(self):
        cluster = Cluster.plafrim(2, binding="rr")
        engine = Engine(cluster)

        def prog(comm):
            res = grouped_allgather_benchmark(comm, group_size=8, n_ints=10,
                                              iterations=2)
            return (res.group_rank, res.group_size)

        results = engine.run(prog)
        assert results[0] == (0, 8)
        assert results[7] == (7, 8)
        assert results[8] == (0, 8)

    def test_indivisible_group_size_rejected(self):
        def prog(comm):
            grouped_allgather_benchmark(comm, group_size=3, n_ints=1,
                                        iterations=1)

        with pytest.raises(RankFailure):
            run_spmd(prog, n_ranks=4)

    def test_iteration_scaling_consistency(self):
        """Scaled t1/t3 must equal the unscaled measurement of the same
        iteration count (the workload is perfectly periodic)."""
        cluster = Cluster.plafrim(2, binding="rr")

        def prog(comm):
            res = grouped_allgather_benchmark(
                comm, group_size=8, n_ints=1000, iterations=20,
                measure_iterations=20)
            return res.t1

        def prog_scaled(comm):
            res = grouped_allgather_benchmark(
                comm, group_size=8, n_ints=1000, iterations=20,
                measure_iterations=10)
            return res.t1

        full = Engine(Cluster.plafrim(2, binding="rr")).run(prog)[0]
        scaled = Engine(Cluster.plafrim(2, binding="rr")).run(prog_scaled)[0]
        assert scaled == pytest.approx(full, rel=0.05)
