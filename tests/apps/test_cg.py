"""Tests for the NAS CG kernel reproduction."""

import numpy as np
import pytest

from repro.apps.cg import (
    CG_CLASSES,
    CGClass,
    CGConfig,
    _transpose_maps,
    cg_outer_iteration,
    cg_setup,
    grid_shape,
    make_spd_matrix,
    run_cg,
    sequential_cg,
)
from repro.apps.cg import _conj_grad
from repro.simmpi import Cluster, Engine, Topology
from tests.conftest import run_spmd

TINY = CGClass("T", 320, 6, 3, 10.0)


class TestGridShape:
    @pytest.mark.parametrize("p,expected", [
        (1, (1, 1)), (2, (1, 2)), (4, (2, 2)), (8, (2, 4)),
        (16, (4, 4)), (64, (8, 8)), (128, (8, 16)), (256, (16, 16)),
    ])
    def test_npb_grids(self, p, expected):
        assert grid_shape(p) == expected

    def test_non_pow2_rejected(self):
        with pytest.raises(ValueError):
            grid_shape(12)

    def test_classes_table(self):
        assert CG_CLASSES["B"].na == 75000
        assert CG_CLASSES["B"].niter == 75
        assert CG_CLASSES["D"].na == 1500000
        assert CG_CLASSES["C"].nonzer == 15


class TestTransposeMaps:
    @pytest.mark.parametrize("nprows,npcols", [(2, 2), (4, 4), (2, 4), (4, 8)])
    def test_send_recv_are_inverse_permutations(self, nprows, npcols):
        send_to, recv_from = _transpose_maps(nprows, npcols)
        p = nprows * npcols
        assert sorted(send_to) == list(range(p))
        for me in range(p):
            assert recv_from[send_to[me]] == me

    def test_square_is_matrix_transpose(self):
        send_to, _ = _transpose_maps(4, 4)
        for r in range(4):
            for c in range(4):
                assert send_to[r * 4 + c] == c * 4 + r


class TestNumericMode:
    @pytest.mark.parametrize("n_ranks", [4, 16])
    def test_matches_sequential_cg(self, n_ranks):
        cfg = CGConfig(TINY, mode="numeric", cgitmax=8)
        topo = Topology([("node", 2), ("socket", 2), ("core", 4)])

        def prog(comm):
            state = cg_setup(comm, cfg)
            z, rnorm = _conj_grad(comm, state)
            return (state.proc_col, z, rnorm)

        results, _ = run_spmd(prog, n_ranks=n_ranks, topology=topo)
        A = make_spd_matrix(TINY.na, TINY.nonzer, seed=cfg.seed)
        zref = sequential_cg(A, np.ones(TINY.na), 8)
        _, npcols = grid_shape(n_ranks)
        col_len = TINY.na // npcols
        for pc, z, rnorm in results:
            assert np.allclose(z, zref[pc * col_len : (pc + 1) * col_len],
                               rtol=1e-9)
            assert rnorm < 1e-6  # converged

    def test_zeta_converges_and_matches_all_ranks(self):
        cfg = CGConfig(TINY, mode="numeric", cgitmax=8)

        def prog(comm):
            stats = run_cg(comm, cfg, niter=2)
            return stats["zeta"]

        results, _ = run_spmd(prog, n_ranks=4)
        assert len(set(results)) == 1  # identical on every rank
        assert results[0] > TINY.shift  # shift + 1/(x·z), x·z > 0

    def test_numeric_requires_square_grid(self):
        cfg = CGConfig(TINY, mode="numeric")

        def prog(comm):
            cg_setup(comm, cfg)

        from repro.simmpi import RankFailure

        with pytest.raises(RankFailure):
            run_spmd(prog, n_ranks=8)

    def test_numeric_requires_divisible_na(self):
        cfg = CGConfig(CGClass("X", 321, 6, 3, 10.0), mode="numeric")

        def prog(comm):
            cg_setup(comm, cfg)

        from repro.simmpi import RankFailure

        with pytest.raises(RankFailure):
            run_spmd(prog, n_ranks=4)


class TestSpdMatrix:
    def test_symmetric(self):
        A = make_spd_matrix(100, 5, seed=2)
        assert (A != A.T).nnz == 0

    def test_positive_definite(self):
        A = make_spd_matrix(80, 5, seed=2).toarray()
        eigs = np.linalg.eigvalsh(A)
        assert eigs.min() > 0

    def test_deterministic(self):
        a = make_spd_matrix(50, 4, seed=7)
        b = make_spd_matrix(50, 4, seed=7)
        assert (a != b).nnz == 0


class TestModeledMode:
    def test_runs_all_class_shapes(self):
        cfg = CGConfig(CG_CLASSES["B"], mode="modeled")

        def prog(comm):
            return run_cg(comm, cfg, niter=1)

        results, _ = run_spmd(prog, n_ranks=16)
        stats = results[0]
        assert stats["time"] > 0
        assert 0 < stats["comm_time"] < stats["time"]
        assert stats["iterations"] == 1
        assert stats["mpi_calls"] > 0

    def test_message_counts_match_structure(self):
        """Per cgit: 2 scalar ladders + reduce-scatter + transpose +
        column allgather, plus the trailing norm mat-vec and ladders."""
        cfg = CGConfig(TINY, mode="modeled", cgitmax=2)

        def prog(comm):
            comm.engine.pml.set_mode(2)
            state = cg_setup(comm, cfg)
            _conj_grad(comm, state)

        _, engine = run_spmd(prog, n_ranks=4)
        # 4 ranks: grid 2x2, l2npcols=1, 1 column-doubling step.
        # Per matvec: 1 halving + 1 transpose + 1 doubling send per rank.
        # Per cgit: 3 ladders... counts: messages are all p2p category.
        count, size = engine.pml.totals("p2p")
        # Per rank: 1 initial rho ladder; per cgit a mat-vec (halving +
        # transpose + doubling = 3 sends) and two scalar ladders; then
        # the final residual mat-vec (3) and one norm ladder.
        expected_per_rank = 1 + 2 * (3 + 2) + 3 + 1
        assert count == 4 * expected_per_rank

    def test_compute_rate_scales_time(self):
        def run_with(rate):
            cfg = CGConfig(CG_CLASSES["A"], mode="modeled", compute_rate=rate)

            def prog(comm):
                return run_cg(comm, cfg, niter=1)["time"]

            results, _ = run_spmd(prog, n_ranks=4)
            return results[0]

        assert run_with(1e8) > run_with(1e10)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            CGConfig(TINY, mode="quantum")


class TestNonSquareGrid:
    def test_modeled_runs_on_8_ranks(self):
        """npcols = 2*nprows grids (odd log2 p) work in modeled mode."""
        cfg = CGConfig(TINY, mode="modeled", cgitmax=2)

        def prog(comm):
            state = cg_setup(comm, cfg)
            assert (state.nprows, state.npcols) == (2, 4)
            _conj_grad(comm, state)
            return state.mpi_calls

        results, _ = run_spmd(prog, n_ranks=8)
        assert all(r > 0 for r in results)
        assert len(set(results)) == 1  # symmetric message counts

    def test_transpose_chunk_sizes_consistent(self):
        """col_len == nprows * chunk on non-square grids too."""
        from repro.apps.cg import CGState

        cfg = CGConfig(CG_CLASSES["B"], mode="modeled")

        def prog(comm):
            state = cg_setup(comm, cfg)
            return (state.col_len, state.nprows * state.chunk)

        results, _ = run_spmd(prog, n_ranks=8)
        col_len, prod = results[0]
        assert prod >= col_len  # ceil rounding may overshoot slightly
        assert prod - col_len < 8  # by at most the rounding slack
