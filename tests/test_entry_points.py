"""The console scripts in pyproject.toml and the ``python -m`` CLIs
must be the same code: each ``repro-*`` entry point has to resolve to
the exact ``main`` callable the corresponding ``__main__`` module runs,
so the two spellings can never drift apart.
"""

import importlib
import pathlib
import re

import pytest

PYPROJECT = pathlib.Path(__file__).resolve().parent.parent / "pyproject.toml"

#: console script -> the module whose ``python -m`` spelling it mirrors
EXPECTED = {
    "repro-sweep": "repro.sweep",
    "repro-obs": "repro.obs",
    "repro-replay": "repro.replay",
    "repro-serve": "repro.serve",
}


def _scripts() -> dict:
    text = PYPROJECT.read_text(encoding="utf-8")
    try:
        import tomllib
    except ImportError:  # pragma: no cover - py3.10
        section = re.search(
            r"\[project\.scripts\](.*?)(?:\n\[|\Z)", text, re.S)
        assert section, "pyproject.toml lacks [project.scripts]"
        return dict(re.findall(r'([\w-]+)\s*=\s*"([^"]+)"', section.group(1)))
    return tomllib.loads(text)["project"]["scripts"]


def test_scripts_table_lists_all_clis():
    assert set(_scripts()) == set(EXPECTED)


@pytest.mark.parametrize("script", sorted(EXPECTED))
def test_script_matches_python_m(script):
    target = _scripts()[script]
    mod_name, func_name = target.split(":")
    entry = getattr(importlib.import_module(mod_name), func_name)
    assert callable(entry)
    # The -m path: repro.<pkg>.__main__ imports `main` and calls it.
    dunder = importlib.import_module(EXPECTED[script] + ".__main__")
    assert dunder.main is entry, (
        f"{script} runs {target} but python -m {EXPECTED[script]} runs "
        f"{dunder.main.__module__}.{dunder.main.__qualname__}")


@pytest.mark.parametrize("script", sorted(EXPECTED))
def test_entry_point_smoke_help(script, capsys):
    """Every entry point prints usage and exits 0 on --help."""
    mod_name, func_name = _scripts()[script].split(":")
    entry = getattr(importlib.import_module(mod_name), func_name)
    with pytest.raises(SystemExit) as exc:
        entry(["--help"])
    assert exc.value.code == 0
    assert "usage" in capsys.readouterr().out.lower()
