"""Smoke tests for the experiment drivers (tiny parameterizations)."""

import numpy as np
import pytest

from repro.experiments import (
    fig2_counters,
    fig4_overhead,
    fig5_collectives,
    fig6_allgather,
    fig7_cg,
    table1_treematch,
)
from repro.experiments.common import Series, geomean, render_table


class TestCommon:
    def test_render_table(self):
        out = render_table(["a", "bb"], [(1, 2.5), (30, 0.001)], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_series(self):
        s = Series("x")
        s.add(1, 2.0)
        s.add(2, 3.0)
        assert s.as_rows() == [(1, 2.0), (2, 3.0)]

    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert np.isnan(geomean([]))


class TestFig2:
    def test_monitors_agree(self):
        res = fig2_counters.run(duration=1.0)
        assert res.mon_window.sum() == res.total_sent
        # HW counter loses at most `lanes` bytes to integer division.
        assert abs(int(res.hw_window.sum()) - res.total_sent) <= 4
        assert res.max_cumulative_lag <= 4 * len(res.times)
        assert "introspection" in fig2_counters.report(res)

    def test_cumulative_monotone(self):
        res = fig2_counters.run(duration=0.5)
        assert (np.diff(res.hw_cumulative) >= 0).all()
        assert (np.diff(res.mon_cumulative) >= 0).all()


class TestFig4:
    def test_overhead_small_and_bounded(self):
        pts = fig4_overhead.run(node_counts=(2,), sizes=(1, 1000), reps=12)
        assert len(pts) == 2
        for p in pts:
            assert abs(p.mean_diff_us) < 5.0  # the paper's bound
            assert p.ci95_us > 0
        assert "Fig. 4" in fig4_overhead.report(pts)


class TestFig5:
    @pytest.mark.parametrize("op", ["reduce", "bcast"])
    def test_reordering_wins(self, op):
        pts = fig5_collectives.run(op, node_counts=(2,),
                                   sizes=(20_000_000,), reps=1)
        assert len(pts) == 1
        p = pts[0]
        assert p.t_reordered < p.t_baseline
        assert p.speedup > 1.2
        assert "Fig. 5" in fig5_collectives.report(pts)


class TestFig6:
    def test_heatmap_shape(self):
        cells = fig6_allgather.run(node_counts=(2,), sizes=(1, 100_000),
                                   iteration_counts=(1, 200))
        assert len(cells) == 4
        by = {(c.n_ints, c.iterations): c for c in cells}
        # Tiny work: reordering cost dominates (negative gain).
        assert by[(1, 1)].gain_percent < 0
        # Large buffers, many iterations: reordering pays off.
        assert by[(100_000, 200)].gain_percent > 20
        assert "Fig. 6" in fig6_allgather.report(cells)


class TestFig7:
    def test_ratios_above_one(self):
        pt = fig7_cg.run_one("B", 64, "rr", sim_iters=1)
        assert pt.exec_ratio > 1.0
        assert pt.comm_ratio > 1.0
        assert pt.comm_ratio > pt.exec_ratio  # comm gain drives exec gain
        assert "Fig. 7" in fig7_cg.report([pt])

    def test_nodes_for_matches_paper(self):
        assert fig7_cg.nodes_for(64) == 3
        assert fig7_cg.nodes_for(128) == 6
        assert fig7_cg.nodes_for(256) == 11
        assert fig7_cg.nodes_for(48) == 2


class TestTable1:
    def test_timings_grow_with_order(self):
        timings = table1_treematch.run(sizes=(256, 1024))
        assert [t.order for t in timings] == [256, 1024]
        assert timings[0].seconds >= 0
        assert timings[1].seconds > timings[0].seconds
        assert "Table 1" in table1_treematch.report(timings)

    def test_synthetic_matrix_structure(self):
        m = table1_treematch.synthetic_comm_matrix(64)
        assert m.shape == (64, 64)
        assert m.diagonal().sum() == 0
        assert m[0, 1] >= 1000  # heavy ring neighbour
