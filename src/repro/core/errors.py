"""Exception hierarchy mirroring the library's error codes.

The procedural API (:mod:`repro.core.api`) *returns* :class:`ErrorCode`
values like the C interface; the Pythonic front-end
(:mod:`repro.core.pythonic`) raises the corresponding exception.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.core.constants import ErrorCode

__all__ = [
    "MonitoringError",
    "InternalFail",
    "MpitFail",
    "MissingInit",
    "SessionStillActive",
    "SessionNotSuspended",
    "InvalidMsid",
    "SessionOverflow",
    "MultipleCall",
    "InvalidRoot",
    "TraceSchemaError",
    "ServeProtocolError",
    "error_class",
    "raise_for_code",
]


class TraceSchemaError(ValueError):
    """A persisted trace/profile declares a schema this code cannot read.

    Raised by every on-disk reader in the repository
    (:meth:`repro.simmpi.trace.MessageTracer.load`,
    :func:`repro.core.flushio.read_profile`,
    :meth:`repro.replay.schema.ReplayTrace.load`) when the file carries
    an explicit ``schema=N`` marker for an unsupported ``N`` — as
    opposed to the legacy headerless files, which still load with a
    warning.
    """


class ServeProtocolError(ValueError):
    """A ``repro.serve`` wire message violates the protocol.

    The serving layer applies the same discipline as the on-disk
    readers (:class:`TraceSchemaError`): every frame carries an
    explicit ``schema=N`` field, and a frame this build cannot
    understand — wrong schema, unknown request type, malformed or
    oversized payload — is rejected loudly instead of being guessed at.
    """


class MonitoringError(Exception):
    """Base class; carries the :class:`ErrorCode` it corresponds to."""

    code: ErrorCode = ErrorCode.MPI_M_INTERNAL_FAIL

    def __init__(self, message: str = ""):
        super().__init__(message or self.code.name)


class InternalFail(MonitoringError):
    code = ErrorCode.MPI_M_INTERNAL_FAIL


class MpitFail(MonitoringError):
    code = ErrorCode.MPI_M_MPIT_FAIL


class MissingInit(MonitoringError):
    code = ErrorCode.MPI_M_MISSING_INIT


class SessionStillActive(MonitoringError):
    code = ErrorCode.MPI_M_SESSION_STILL_ACTIVE


class SessionNotSuspended(MonitoringError):
    code = ErrorCode.MPI_M_SESSION_NOT_SUSPENDED


class InvalidMsid(MonitoringError):
    code = ErrorCode.MPI_M_INVALID_MSID


class SessionOverflow(MonitoringError):
    code = ErrorCode.MPI_M_SESSION_OVERFLOW


class MultipleCall(MonitoringError):
    code = ErrorCode.MPI_M_MULTIPLE_CALL


class InvalidRoot(MonitoringError):
    code = ErrorCode.MPI_M_INVALID_ROOT


_BY_CODE: Dict[ErrorCode, Type[MonitoringError]] = {
    cls.code: cls
    for cls in (
        InternalFail,
        MpitFail,
        MissingInit,
        SessionStillActive,
        SessionNotSuspended,
        InvalidMsid,
        SessionOverflow,
        MultipleCall,
        InvalidRoot,
    )
}


def error_class(code: ErrorCode) -> Type[MonitoringError]:
    return _BY_CODE[ErrorCode(code)]


def raise_for_code(code: ErrorCode, message: str = "") -> None:
    """Raise the exception matching a nonzero return code."""
    code = ErrorCode(code)
    if code is ErrorCode.MPI_SUCCESS:
        return
    raise _BY_CODE[code](message)
