"""Text rendering of communication matrices.

The paper's workflow ends with a human looking at a communication
matrix (or feeding it to TreeMatch); this module provides terminal
renderings: a sparse dot-matrix for counts and a log-scaled shade map
for byte volumes, plus a per-topology-level traffic summary.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["render_matrix", "render_heatmap", "traffic_summary",
           "render_bars", "render_findings"]

_SHADES = " .:-=+*#%@"


def render_matrix(matrix, max_size: int = 64) -> str:
    """Dot-matrix view: '.' for zero entries, counts (mod 10 shown as
    digits, '+' beyond 9) elsewhere.  Rows are senders."""
    m = np.asarray(matrix)
    n = m.shape[0]
    if n > max_size:
        return f"<{n}x{n} matrix; raise max_size to render>"
    lines = ["    " + " ".join(f"{j:2d}" for j in range(n))]
    for i in range(n):
        cells = []
        for j in range(n):
            v = int(m[i, j])
            if v == 0:
                cells.append(" .")
            elif v <= 9:
                cells.append(f" {v}")
            else:
                cells.append(" +")
        lines.append(f"{i:3d} " + " ".join(cells))
    return "\n".join(lines)


def render_heatmap(matrix, max_size: int = 64) -> str:
    """Log-scaled shade map of byte volumes (darker = more bytes)."""
    m = np.asarray(matrix, dtype=np.float64)
    n = m.shape[0]
    if n > max_size:
        return f"<{n}x{n} matrix; raise max_size to render>"
    nz = m[m > 0]
    if nz.size == 0:
        return render_matrix(m, max_size=max_size)
    lo = np.log10(nz.min())
    hi = np.log10(nz.max())
    span = max(hi - lo, 1e-9)
    lines = []
    for i in range(n):
        row = []
        for j in range(n):
            v = m[i, j]
            if v <= 0:
                row.append(" ")
            else:
                idx = int((np.log10(v) - lo) / span * (len(_SHADES) - 1))
                row.append(_SHADES[max(1, idx)])
        lines.append("".join(row))
    return "\n".join(lines)


def render_bars(pairs: Sequence[tuple], width: int = 40,
                title: str = "") -> str:
    """Horizontal bar chart of ``(label, value)`` pairs.

    Bars are linearly scaled to the largest value; values render with
    thousands separators (byte totals are the common payload)."""
    pairs = [(str(k), float(v)) for k, v in pairs]
    if not pairs:
        return title or ""
    top = max(v for _, v in pairs) or 1.0
    label_w = max(len(k) for k, _ in pairs)
    lines = [title] if title else []
    for label, value in pairs:
        n = int(round(width * value / top))
        lines.append(f"  {label:<{label_w}} {'#' * n:<{width}} "
                     f"{value:,.0f}")
    return "\n".join(lines)


def render_findings(findings: Sequence[dict]) -> str:
    """Terminal table of diagnosis findings (see repro.obs.diagnose).

    Each finding dict carries ``severity``/``pass``/``subject``/
    ``summary`` plus a ``[t0, t1]`` anchor window."""
    if not findings:
        return "  no findings — nothing obviously slow"
    lines = []
    for f in findings:
        window = ""
        t0, t1 = f.get("t0", 0.0), f.get("t1", 0.0)
        if t1 > t0:
            window = f"  [t={t0:.4g}s..{t1:.4g}s]"
        lines.append(f"  [{f['severity']:>8}] {f['pass']:<15} "
                     f"{f['subject']:<12} {f['summary']}{window}")
    return "\n".join(lines)


def traffic_summary(matrix, topology, rank_pus: Sequence[int],
                    label: str = "traffic") -> str:
    """One-line per-level breakdown of where the bytes travel."""
    from repro.placement.metrics import level_bytes

    lb = level_bytes(np.asarray(matrix, dtype=np.float64), topology, rank_pus)
    total = sum(lb.values()) or 1.0
    parts = [
        f"{name}: {vol:,.0f} B ({100.0 * vol / total:.0f}%)"
        for name, vol in lb.items()
        if vol > 0
    ]
    return f"{label}: " + ", ".join(parts) if parts else f"{label}: none"
