"""Text rendering of communication matrices.

The paper's workflow ends with a human looking at a communication
matrix (or feeding it to TreeMatch); this module provides terminal
renderings: a sparse dot-matrix for counts and a log-scaled shade map
for byte volumes, plus a per-topology-level traffic summary.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["render_matrix", "render_heatmap", "traffic_summary"]

_SHADES = " .:-=+*#%@"


def render_matrix(matrix, max_size: int = 64) -> str:
    """Dot-matrix view: '.' for zero entries, counts (mod 10 shown as
    digits, '+' beyond 9) elsewhere.  Rows are senders."""
    m = np.asarray(matrix)
    n = m.shape[0]
    if n > max_size:
        return f"<{n}x{n} matrix; raise max_size to render>"
    lines = ["    " + " ".join(f"{j:2d}" for j in range(n))]
    for i in range(n):
        cells = []
        for j in range(n):
            v = int(m[i, j])
            if v == 0:
                cells.append(" .")
            elif v <= 9:
                cells.append(f" {v}")
            else:
                cells.append(" +")
        lines.append(f"{i:3d} " + " ".join(cells))
    return "\n".join(lines)


def render_heatmap(matrix, max_size: int = 64) -> str:
    """Log-scaled shade map of byte volumes (darker = more bytes)."""
    m = np.asarray(matrix, dtype=np.float64)
    n = m.shape[0]
    if n > max_size:
        return f"<{n}x{n} matrix; raise max_size to render>"
    nz = m[m > 0]
    if nz.size == 0:
        return render_matrix(m, max_size=max_size)
    lo = np.log10(nz.min())
    hi = np.log10(nz.max())
    span = max(hi - lo, 1e-9)
    lines = []
    for i in range(n):
        row = []
        for j in range(n):
            v = m[i, j]
            if v <= 0:
                row.append(" ")
            else:
                idx = int((np.log10(v) - lo) / span * (len(_SHADES) - 1))
                row.append(_SHADES[max(1, idx)])
        lines.append("".join(row))
    return "\n".join(lines)


def traffic_summary(matrix, topology, rank_pus: Sequence[int],
                    label: str = "traffic") -> str:
    """One-line per-level breakdown of where the bytes travel."""
    from repro.placement.metrics import level_bytes

    lb = level_bytes(np.asarray(matrix, dtype=np.float64), topology, rank_pus)
    total = sum(lb.values()) or 1.0
    parts = [
        f"{name}: {vol:,.0f} B ({100.0 * vol / total:.0f}%)"
        for name, vol in lb.items()
        if vol > 0
    ]
    return f"{label}: " + ", ".join(parts) if parts else f"{label}: none"
