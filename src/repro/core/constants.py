"""Constants of the MPI_Monitoring library (paper §4.3).

Flags select which traffic categories a data accessor returns; they are
bitwise-combinable, exactly as in the C API.  The special values
``MPI_M_ALL_MSID``, ``MPI_M_DATA_IGNORE`` and ``MPI_M_INT_IGNORE``
reproduce the C interface's sentinel arguments.
"""

from __future__ import annotations

import enum

__all__ = [
    "Flags",
    "MPI_M_P2P_ONLY",
    "MPI_M_COLL_ONLY",
    "MPI_M_OSC_ONLY",
    "MPI_M_ALL_COMM",
    "ErrorCode",
    "MPI_SUCCESS",
    "MPI_M_ALL_MSID",
    "MPI_M_DATA_IGNORE",
    "MPI_M_INT_IGNORE",
    "MAX_SESSIONS",
    "THREAD_LEVEL_PROVIDED",
    "flags_to_categories",
    "format_flags",
]


class Flags(enum.IntFlag):
    """Traffic-category selection flags (bitwise-combinable)."""

    P2P_ONLY = 1  #: user-issued point-to-point messages only
    COLL_ONLY = 2  #: messages from decomposed collectives only
    OSC_ONLY = 4  #: one-sided communication only
    ALL_COMM = 7  #: everything


MPI_M_P2P_ONLY = Flags.P2P_ONLY
MPI_M_COLL_ONLY = Flags.COLL_ONLY
MPI_M_OSC_ONLY = Flags.OSC_ONLY
MPI_M_ALL_COMM = Flags.ALL_COMM

_FLAG_CATEGORY = {
    Flags.P2P_ONLY: "p2p",
    Flags.COLL_ONLY: "coll",
    Flags.OSC_ONLY: "osc",
}


def flags_to_categories(flags: int):
    """The monitoring categories a flag combination selects."""
    flags = Flags(int(flags))
    if not flags & Flags.ALL_COMM:
        raise ValueError(f"flags select no category: {flags!r}")
    return tuple(cat for f, cat in _FLAG_CATEGORY.items() if flags & f)


def format_flags(flags: int) -> str:
    flags = Flags(int(flags))
    if flags == Flags.ALL_COMM:
        return "ALL_COMM"
    parts = [f.name for f in (Flags.P2P_ONLY, Flags.COLL_ONLY, Flags.OSC_ONLY) if flags & f]
    return "|".join(parts) if parts else "NONE"


class ErrorCode(enum.IntEnum):
    """Return codes of the procedural API (paper §4.3 error table)."""

    MPI_SUCCESS = 0
    MPI_M_INTERNAL_FAIL = 1  #: an internal error occurred (allocation, syscall)
    MPI_M_MPIT_FAIL = 2  #: an MPI or MPI_T function failed
    MPI_M_MISSING_INIT = 3  #: no call to MPI_M_init has been done
    MPI_M_SESSION_STILL_ACTIVE = 4  #: at least one session not suspended
    MPI_M_SESSION_NOT_SUSPENDED = 5  #: the session has not been suspended
    MPI_M_INVALID_MSID = 6  #: msid invalid / NULL / forbidden ALL_MSID
    MPI_M_SESSION_OVERFLOW = 7  #: maximum number of sessions reached
    MPI_M_MULTIPLE_CALL = 8  #: init/continue (resp. suspend) called twice
    MPI_M_INVALID_ROOT = 9  #: the root parameter is invalid


MPI_SUCCESS = ErrorCode.MPI_SUCCESS


class _Sentinel:
    """A named, unique sentinel (identity-compared)."""

    __slots__ = ("_name",)

    def __init__(self, name: str):
        self._name = name

    def __repr__(self) -> str:
        return self._name


#: Act on every active-or-suspended session at once.
MPI_M_ALL_MSID = _Sentinel("MPI_M_ALL_MSID")
#: Discard an (unsigned long *) output parameter.
MPI_M_DATA_IGNORE = _Sentinel("MPI_M_DATA_IGNORE")
#: Discard an (int *) output parameter.
MPI_M_INT_IGNORE = _Sentinel("MPI_M_INT_IGNORE")

#: Sessions a process may hold simultaneously before SESSION_OVERFLOW.
MAX_SESSIONS = 128

#: The thread-support level MPI_M_get_info reports (MPI_THREAD_MULTIPLE:
#: the paper states all functions are thread-safe).
THREAD_LEVEL_PROVIDED = 3
