"""Content fingerprints for cache invalidation.

The sweep cache (:mod:`repro.sweep.cache`) keys every stored result on
a *code fingerprint* of the ``repro`` package: any edit to any source
file changes the fingerprint and orphans stale cache entries, so a
cached result is only ever served by the exact code that produced it.
"""

from __future__ import annotations

import hashlib
import os
from typing import Iterable, List, Tuple

__all__ = ["file_digest", "tree_fingerprint", "package_fingerprint"]

_CHUNK = 1 << 16


def file_digest(path: str) -> str:
    """SHA-256 hex digest of one file's bytes."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(_CHUNK)
            if not chunk:
                break
            h.update(chunk)
    return h.hexdigest()


def _iter_source_files(root: str, suffixes: Tuple[str, ...]) -> List[str]:
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if name.endswith(suffixes):
                out.append(os.path.join(dirpath, name))
    return out


def tree_fingerprint(root: str, suffixes: Iterable[str] = (".py",)) -> str:
    """SHA-256 over (relative path, content digest) of every source file
    under ``root``, walked in sorted order.

    Renames, additions, deletions and edits all change the result;
    ``__pycache__`` and non-source files do not.
    """
    root = os.path.abspath(root)
    suffixes = tuple(suffixes)
    h = hashlib.sha256()
    for path in _iter_source_files(root, suffixes):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        h.update(rel.encode("utf-8"))
        h.update(b"\0")
        h.update(file_digest(path).encode("ascii"))
        h.update(b"\n")
    return h.hexdigest()


def package_fingerprint() -> str:
    """Fingerprint of the installed ``repro`` package source tree."""
    import repro

    return tree_fingerprint(os.path.dirname(os.path.abspath(repro.__file__)))
