"""The procedural MPI_Monitoring API (paper §4.3), C-style.

Every function returns an :class:`ErrorCode` (``MPI_SUCCESS`` on
success) as its first value, exactly like the C interface — and like
the Fortran binding, where the return value travels through an extra
parameter.  Output "parameters" come back as additional tuple members;
the C sentinel arguments are honoured:

* pass :data:`MPI_M_DATA_IGNORE` / :data:`MPI_M_INT_IGNORE` for an
  output you do not want (``None`` is returned in its place);
* pass a preallocated ``numpy`` array to have it filled in place (the
  C calling convention); pass ``None`` (default) to let the library
  allocate;
* :data:`MPI_M_ALL_MSID` acts on every session in the applicable state.

As in the paper, all functions are collective over the session's
communicator except ``mpi_m_get_info`` — the gathering/flushing
accessors really do communicate (their traffic is itself monitored by
whatever *other* sessions are active, since sessions are independent).

For idiomatic Python (exceptions, context managers) use
:mod:`repro.core.pythonic`, which wraps these functions.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.core.constants import (
    MPI_M_ALL_MSID,
    MPI_M_DATA_IGNORE,
    MPI_M_INT_IGNORE,
    MPI_SUCCESS,
    ErrorCode,
    Flags,
    THREAD_LEVEL_PROVIDED,
)
from repro.core.errors import InvalidMsid, InvalidRoot, MonitoringError
from repro.core.flushio import write_local_profile, write_root_profiles
from repro.core.session import MonitoringRuntime, Session
from repro.simmpi.engine import current_process
from repro.simmpi.mpit import MpitError

__all__ = [
    "mpi_m_init",
    "mpi_m_finalize",
    "mpi_m_start",
    "mpi_m_suspend",
    "mpi_m_continue",
    "mpi_m_reset",
    "mpi_m_free",
    "mpi_m_get_info",
    "mpi_m_get_data",
    "mpi_m_allgather_data",
    "mpi_m_rootgather_data",
    "mpi_m_flush",
    "mpi_m_rootflush",
    "co_mpi_m_allgather_data",
    "co_mpi_m_rootgather_data",
    "co_mpi_m_rootflush",
]


# Number of output tuple members per call (beyond the error code),
# used to pad error returns; co_ variants share the blocking entry.
_N_OUT = {
    "mpi_m_start": 1,
    "mpi_m_get_info": 2,
    "mpi_m_get_data": 2,
    "mpi_m_allgather_data": 2,
    "mpi_m_rootgather_data": 2,
}


def _pad(f, code):
    name = f.__name__
    if name.startswith("co_"):
        name = name[3:]
    n = _N_OUT.get(name, 0)
    return (code, *([None] * n)) if n else code


def _guard(fn):
    """Translate library exceptions into C-style return codes."""

    def wrapper(*args, **kwargs):
        try:
            return fn(*args, **kwargs)
        except MonitoringError as exc:
            return _pad(fn, exc.code)
        except MpitError:
            return _pad(fn, ErrorCode.MPI_M_MPIT_FAIL)
        except OSError:
            return _pad(fn, ErrorCode.MPI_M_INTERNAL_FAIL)

    wrapper.__name__ = fn.__name__
    wrapper.__doc__ = fn.__doc__
    wrapper.__wrapped__ = fn
    return wrapper


def _co_guard(fn):
    """:func:`_guard` for resumable (generator) API functions."""

    def wrapper(*args, **kwargs):
        try:
            return (yield from fn(*args, **kwargs))
        except MonitoringError as exc:
            return _pad(fn, exc.code)
        except MpitError:
            return _pad(fn, ErrorCode.MPI_M_MPIT_FAIL)
        except OSError:
            return _pad(fn, ErrorCode.MPI_M_INTERNAL_FAIL)

    wrapper.__name__ = fn.__name__
    wrapper.__doc__ = fn.__doc__
    wrapper.__wrapped__ = fn
    return wrapper


# ---------------------------------------------------------------------------
# environment


@_guard
def mpi_m_init() -> ErrorCode:
    """Set the monitoring environment (call between MPI_Init/Finalize).

    Calling it twice without an intervening finalize is
    ``MPI_M_MULTIPLE_CALL``.
    """
    MonitoringRuntime.install(current_process())
    return MPI_SUCCESS


@_guard
def mpi_m_finalize() -> ErrorCode:
    """Finalize the monitoring environment.

    Fails with ``MPI_M_SESSION_STILL_ACTIVE`` if any session has not
    been suspended.
    """
    MonitoringRuntime.of(current_process()).finalize()
    return MPI_SUCCESS


# ---------------------------------------------------------------------------
# session state machine


@_guard
def mpi_m_start(comm) -> Tuple[ErrorCode, Any]:
    """Create and start a monitoring session attached to ``comm``.

    The count and size of messages between any two processes of
    ``comm`` are recorded while the session is active, even when the
    traffic travels on another communicator.  Returns ``(err, msid)``.
    """
    rt = MonitoringRuntime.of(current_process())
    session = rt.create_session(comm)
    return MPI_SUCCESS, session.msid


def _sessions_for(rt: MonitoringRuntime, msid, wanted_state: str):
    if msid is MPI_M_ALL_MSID:
        return [s for s in rt.live_sessions() if s.state == wanted_state]
    return [rt.lookup(msid)]


@_guard
def mpi_m_suspend(msid) -> ErrorCode:
    """Suspend an active session, making its data available.

    ``MPI_M_ALL_MSID`` suspends every active session.
    """
    rt = MonitoringRuntime.of(current_process())
    for session in _sessions_for(rt, msid, Session.ACTIVE):
        session.suspend()
    return MPI_SUCCESS


@_guard
def mpi_m_continue(msid) -> ErrorCode:
    """Restart a suspended session (named ``MPI_M_continue`` in C)."""
    rt = MonitoringRuntime.of(current_process())
    for session in _sessions_for(rt, msid, Session.SUSPENDED):
        session.resume()
    return MPI_SUCCESS


@_guard
def mpi_m_reset(msid) -> ErrorCode:
    """Zero the data of a suspended session."""
    rt = MonitoringRuntime.of(current_process())
    for session in _sessions_for(rt, msid, Session.SUSPENDED):
        session.reset()
    return MPI_SUCCESS


@_guard
def mpi_m_free(msid) -> ErrorCode:
    """Free a suspended session (its data is no longer available)."""
    rt = MonitoringRuntime.of(current_process())
    for session in _sessions_for(rt, msid, Session.SUSPENDED):
        session.free()
    return MPI_SUCCESS


# ---------------------------------------------------------------------------
# data accessors


def _no_all_msid(msid):
    if msid is MPI_M_ALL_MSID:
        raise InvalidMsid("MPI_M_ALL_MSID is not valid here")


def _fill(out, values: np.ndarray):
    """Honour the C output-parameter convention."""
    if out is MPI_M_DATA_IGNORE:
        return None
    if out is None:
        return values
    arr = np.asarray(out)
    if arr.size < values.size:
        raise InvalidMsid(  # pragma: no cover - defensive
            f"output buffer too small: {arr.size} < {values.size}"
        )
    np.copyto(arr.reshape(-1)[: values.size], values.reshape(-1))
    return out


@_guard
def mpi_m_get_info(msid, provided=None, array_size=None):
    """Accessor to session information (the only non-collective call).

    Returns ``(err, provided_thread_level, array_size)``; pass
    ``MPI_M_INT_IGNORE`` to skip an output.
    """
    rt = MonitoringRuntime.of(current_process())
    _no_all_msid(msid)
    session = rt.lookup(msid)
    p = None if provided is MPI_M_INT_IGNORE else THREAD_LEVEL_PROVIDED
    a = None if array_size is MPI_M_INT_IGNORE else session.comm.size
    return MPI_SUCCESS, p, a


@_guard
def mpi_m_get_data(msid, msg_counts=None, msg_sizes=None, flags=Flags.ALL_COMM):
    """This process's per-peer data: ``(err, msg_counts, msg_sizes)``.

    Arrays are indexed by rank in the session's communicator.  The
    session must be suspended.  Although the result is process-local,
    the call is collective over the communicator (as in the C API).
    """
    rt = MonitoringRuntime.of(current_process())
    _no_all_msid(msid)
    session = rt.lookup(msid)
    counts, sizes = session.data(flags)
    return MPI_SUCCESS, _fill(msg_counts, counts), _fill(msg_sizes, sizes)


@_guard
def mpi_m_allgather_data(msid, matrix_counts=None, matrix_sizes=None,
                         flags=Flags.ALL_COMM):
    """Full matrices on every process: ``(err, counts, sizes)``.

    Equivalent to ``get_data`` followed by ``MPI_Allgather`` (§4.1);
    matrices are comm_size × comm_size in row-major 1-D layout, row i =
    data sent by rank i.
    """
    rt = MonitoringRuntime.of(current_process())
    _no_all_msid(msid)
    session = rt.lookup(msid)
    counts, sizes = session.data(flags)
    rows = session.comm.allgather((counts, sizes))
    n = session.comm.size
    cmat = np.concatenate([r[0] for r in rows]).astype(np.uint64)
    smat = np.concatenate([r[1] for r in rows]).astype(np.uint64)
    assert cmat.size == n * n and smat.size == n * n
    return MPI_SUCCESS, _fill(matrix_counts, cmat), _fill(matrix_sizes, smat)


@_guard
def mpi_m_rootgather_data(msid, root, matrix_counts=None, matrix_sizes=None,
                          flags=Flags.ALL_COMM):
    """Like allgather_data but only ``root`` receives the matrices;
    other ranks get ``(MPI_SUCCESS, None, None)``."""
    rt = MonitoringRuntime.of(current_process())
    _no_all_msid(msid)
    session = rt.lookup(msid)
    if not isinstance(root, (int, np.integer)) or not 0 <= root < session.comm.size:
        raise InvalidRoot(f"root {root!r} not in [0, {session.comm.size})")
    counts, sizes = session.data(flags)
    rows = session.comm.gather((counts, sizes), root=int(root))
    if session.comm.rank != root:
        return MPI_SUCCESS, None, None
    cmat = np.concatenate([r[0] for r in rows]).astype(np.uint64)
    smat = np.concatenate([r[1] for r in rows]).astype(np.uint64)
    return MPI_SUCCESS, _fill(matrix_counts, cmat), _fill(matrix_sizes, smat)


# ---------------------------------------------------------------------------
# resumable variants of the communicating accessors
#
# The purely local calls (init/start/suspend/...) never need to park as
# long as the caller's deferred send is settled first — co rank
# programs do that with ``yield from comm.co_sync()`` and then call the
# blocking functions directly.  The accessors below really communicate
# (allgather/gather over the session's communicator), so they get co
# twins whose engine call sequence matches the blocking ones exactly.


@_co_guard
def co_mpi_m_allgather_data(msid, matrix_counts=None, matrix_sizes=None,
                            flags=Flags.ALL_COMM):
    """Resumable :func:`mpi_m_allgather_data`."""
    rt = MonitoringRuntime.of(current_process())
    _no_all_msid(msid)
    session = rt.lookup(msid)
    yield from session.comm.co_sync()
    counts, sizes = session.data(flags)
    rows = yield from session.comm.co_allgather((counts, sizes))
    n = session.comm.size
    cmat = np.concatenate([r[0] for r in rows]).astype(np.uint64)
    smat = np.concatenate([r[1] for r in rows]).astype(np.uint64)
    assert cmat.size == n * n and smat.size == n * n
    return MPI_SUCCESS, _fill(matrix_counts, cmat), _fill(matrix_sizes, smat)


@_co_guard
def co_mpi_m_rootgather_data(msid, root, matrix_counts=None,
                             matrix_sizes=None, flags=Flags.ALL_COMM):
    """Resumable :func:`mpi_m_rootgather_data`."""
    rt = MonitoringRuntime.of(current_process())
    _no_all_msid(msid)
    session = rt.lookup(msid)
    if not isinstance(root, (int, np.integer)) or not 0 <= root < session.comm.size:
        raise InvalidRoot(f"root {root!r} not in [0, {session.comm.size})")
    yield from session.comm.co_sync()
    counts, sizes = session.data(flags)
    rows = yield from session.comm.co_gather((counts, sizes), root=int(root))
    if session.comm.rank != root:
        return MPI_SUCCESS, None, None
    cmat = np.concatenate([r[0] for r in rows]).astype(np.uint64)
    smat = np.concatenate([r[1] for r in rows]).astype(np.uint64)
    return MPI_SUCCESS, _fill(matrix_counts, cmat), _fill(matrix_sizes, smat)


@_co_guard
def co_mpi_m_rootflush(msid, root, filename: str, flags=Flags.ALL_COMM):
    """Resumable :func:`mpi_m_rootflush`."""
    rt = MonitoringRuntime.of(current_process())
    _no_all_msid(msid)
    session = rt.lookup(msid)
    if not isinstance(root, (int, np.integer)) or not 0 <= root < session.comm.size:
        raise InvalidRoot(f"root {root!r} not in [0, {session.comm.size})")
    yield from session.comm.co_sync()
    counts, sizes = session.data(flags)
    rows = yield from session.comm.co_gather((counts, sizes), root=int(root))
    if session.comm.rank == int(root):
        n = session.comm.size
        cmat = np.stack([r[0] for r in rows]).astype(np.uint64).reshape(n, n)
        smat = np.stack([r[1] for r in rows]).astype(np.uint64).reshape(n, n)
        world_rank = session.comm.world_rank(int(root))
        write_root_profiles(filename, world_rank, cmat, smat, flags)
    return MPI_SUCCESS


# ---------------------------------------------------------------------------
# flushing


@_guard
def mpi_m_flush(msid, filename: str, flags=Flags.ALL_COMM) -> ErrorCode:
    """Each process writes ``filename.[rank].prof`` (rank in the
    session's communicator).  The directory must already exist."""
    rt = MonitoringRuntime.of(current_process())
    _no_all_msid(msid)
    session = rt.lookup(msid)
    counts, sizes = session.data(flags)
    write_local_profile(filename, session.comm.rank, counts, sizes, flags)
    return MPI_SUCCESS


@_guard
def mpi_m_rootflush(msid, root, filename: str, flags=Flags.ALL_COMM) -> ErrorCode:
    """``root`` gathers all data and writes ``filename_counts.[rank].prof``
    and ``filename_sizes.[rank].prof``, where ``[rank]`` is the root's
    rank in MPI_COMM_WORLD (per the paper's API table)."""
    rt = MonitoringRuntime.of(current_process())
    _no_all_msid(msid)
    session = rt.lookup(msid)
    if not isinstance(root, (int, np.integer)) or not 0 <= root < session.comm.size:
        raise InvalidRoot(f"root {root!r} not in [0, {session.comm.size})")
    counts, sizes = session.data(flags)
    rows = session.comm.gather((counts, sizes), root=int(root))
    if session.comm.rank == int(root):
        n = session.comm.size
        cmat = np.stack([r[0] for r in rows]).astype(np.uint64).reshape(n, n)
        smat = np.stack([r[1] for r in rows]).astype(np.uint64).reshape(n, n)
        world_rank = session.comm.world_rank(int(root))
        write_root_profiles(filename, world_rank, cmat, smat, flags)
    return MPI_SUCCESS
