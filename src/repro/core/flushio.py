"""Flush-file formats of MPI_M_flush / MPI_M_rootflush, plus a parser.

``MPI_M_flush`` makes each process write ``<base>.<rank>.prof`` (rank in
the session's communicator) with its per-peer counts and sizes.
``MPI_M_rootflush`` makes the root process write two files —
``<base>_counts.<rank>.prof`` and ``<base>_sizes.<rank>.prof``, where
``<rank>`` is the root's rank in MPI_COMM_WORLD (as the paper's API
table specifies) — each holding the full communicator-wide matrix.

Files are plain text: ``#``-prefixed header lines with ``key=value``
metadata, then whitespace-separated numeric rows, so they load with
``numpy.loadtxt`` as well as with :func:`read_profile`.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from typing import Any, Dict

import numpy as np

from repro.core.constants import format_flags
from repro.core.errors import TraceSchemaError

#: Flush-file format version; ``read_profile`` refuses files declaring
#: a different one (headerless legacy files still load).
PROFILE_SCHEMA = 1

__all__ = [
    "PROFILE_SCHEMA",
    "atomic_write",
    "local_profile_path",
    "root_profile_paths",
    "write_local_profile",
    "write_root_profiles",
    "read_profile",
]


@contextlib.contextmanager
def atomic_write(path: str, encoding: str = "utf-8"):
    """Write ``path`` via a same-directory temp file + ``os.replace``.

    Yields an open text handle.  On success the temp file atomically
    replaces ``path``; on any error it is unlinked and the original
    file (if one existed) is left untouched — a crashed exporter can
    never leave a truncated JSON behind.  Same-directory placement
    keeps the final rename on one filesystem, which is what makes it
    atomic.
    """
    d = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(prefix=os.path.basename(path) + ".",
                               suffix=".tmp", dir=d)
    try:
        with os.fdopen(fd, "w", encoding=encoding) as fh:
            yield fh
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def local_profile_path(base: str, rank: int) -> str:
    return f"{base}.{rank}.prof"


def root_profile_paths(base: str, world_rank: int):
    return (
        f"{base}_counts.{world_rank}.prof",
        f"{base}_sizes.{world_rank}.prof",
    )


def _check_dir(path: str) -> None:
    d = os.path.dirname(os.path.abspath(path))
    if not os.path.isdir(d):
        raise FileNotFoundError(f"directory does not exist: {d} (path has to exist)")


def _header(kind: str, meta: Dict[str, Any]) -> str:
    pairs = " ".join(f"{k}={v}" for k, v in meta.items())
    return (f"# MPI_Monitoring profile schema={PROFILE_SCHEMA}\n"
            f"# kind={kind} {pairs}\n")


def write_local_profile(
    base: str,
    rank: int,
    counts: np.ndarray,
    sizes: np.ndarray,
    flags: int,
) -> str:
    """One process's rows: ``src dst count bytes`` per peer."""
    path = local_profile_path(base, rank)
    _check_dir(path)
    n = len(counts)
    with open(path, "w", encoding="ascii") as fh:
        fh.write(
            _header(
                "local",
                {"rank": rank, "comm_size": n, "flags": format_flags(flags)},
            )
        )
        fh.write("# columns: src dst count bytes\n")
        for dst in range(n):
            fh.write(f"{rank} {dst} {int(counts[dst])} {int(sizes[dst])}\n")
    return path


def write_root_profiles(
    base: str,
    world_rank: int,
    counts_matrix: np.ndarray,
    sizes_matrix: np.ndarray,
    flags: int,
):
    """The root's two matrix files (counts and sizes)."""
    cpath, spath = root_profile_paths(base, world_rank)
    _check_dir(cpath)
    n = counts_matrix.shape[0]
    meta = {"comm_size": n, "flags": format_flags(flags)}
    for path, kind, mat in (
        (cpath, "root-counts", counts_matrix),
        (spath, "root-sizes", sizes_matrix),
    ):
        with open(path, "w", encoding="ascii") as fh:
            fh.write(_header(kind, meta))
            for row in np.asarray(mat).reshape(n, n):
                fh.write(" ".join(str(int(v)) for v in row) + "\n")
    return cpath, spath


def read_profile(path: str) -> Dict[str, Any]:
    """Load a flush file.

    Returns ``{"kind": ..., "meta": {...}, "data": ndarray}`` where
    ``data`` is an ``(n, 4)`` src/dst/count/bytes table for local
    profiles and an ``(n, n)`` matrix for root profiles.
    """
    meta: Dict[str, Any] = {}
    kind = None
    rows = []
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                for token in line[1:].split():
                    if "=" in token:
                        k, v = token.split("=", 1)
                        meta[k] = v
                kind = meta.get("kind", kind)
                continue
            rows.append([int(tok) for tok in line.split()])
    if kind is None:
        raise ValueError(f"{path} is not an MPI_Monitoring profile")
    if "schema" in meta and int(meta["schema"]) != PROFILE_SCHEMA:
        raise TraceSchemaError(
            f"{path}: profile schema={meta['schema']}, this reader "
            f"understands schema={PROFILE_SCHEMA}")
    data = np.array(rows, dtype=np.uint64)
    for key in ("rank", "comm_size"):
        if key in meta:
            meta[key] = int(meta[key])
    return {"kind": kind, "meta": meta, "data": data}
