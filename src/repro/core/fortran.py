"""Fortran-style binding of the monitoring library (paper §4.3).

The paper: "The MPI_Monitoring Library comes with an interface that
allows its usage within a Fortran code.  The datatype MPI_M_msid is
replaced by the type integer, and each function possesses an additional
parameter which is used to transmit the return value."

This module reproduces that calling convention:

* session identifiers are plain ``int`` handles (per process);
* every procedure takes a mutable ``ierr`` out-parameter (a one-element
  list, standing in for Fortran's INTEGER intent(out)) and returns
  ``None``;
* output values are likewise written into caller-supplied one-element
  lists / arrays.

Example (compare the paper's Listing 1)::

    ierr = [0]
    msid = [0]
    mpi_m_init_f(ierr)
    mpi_m_start_f(comm, msid, ierr)
    ...
    mpi_m_suspend_f(msid[0], ierr)
"""

from __future__ import annotations

from typing import List

from repro.core import api as capi
from repro.core.constants import MPI_M_ALL_MSID, ErrorCode, Flags
from repro.core.session import Msid
from repro.simmpi.engine import current_process

__all__ = [
    "MPI_M_ALL_MSID_F",
    "mpi_m_init_f",
    "mpi_m_finalize_f",
    "mpi_m_start_f",
    "mpi_m_suspend_f",
    "mpi_m_continue_f",
    "mpi_m_reset_f",
    "mpi_m_free_f",
    "mpi_m_get_info_f",
    "mpi_m_get_data_f",
    "mpi_m_allgather_data_f",
    "mpi_m_rootgather_data_f",
    "mpi_m_flush_f",
    "mpi_m_rootflush_f",
]

#: The Fortran value of MPI_M_ALL_MSID (an integer no real handle uses).
MPI_M_ALL_MSID_F = -1

_HANDLES_KEY = "mpi_m_fortran_handles"


def _table() -> dict:
    proc = current_process()
    return proc.userdata.setdefault(_HANDLES_KEY, {})


def _to_handle(msid: Msid) -> int:
    table = _table()
    handle = msid.value
    table[handle] = msid
    return handle


def _from_handle(handle: int):
    if handle == MPI_M_ALL_MSID_F:
        return MPI_M_ALL_MSID
    return _table().get(int(handle), handle)


def _set(ierr: List[int], code) -> None:
    if not isinstance(ierr, list) or len(ierr) != 1:
        raise TypeError("ierr must be a one-element list (INTEGER intent(out))")
    ierr[0] = int(code)


def mpi_m_init_f(ierr: List[int]) -> None:
    """CALL MPI_M_init(retval)"""
    _set(ierr, capi.mpi_m_init())


def mpi_m_finalize_f(ierr: List[int]) -> None:
    """CALL MPI_M_finalize(retval)"""
    _set(ierr, capi.mpi_m_finalize())


def mpi_m_start_f(comm, msid: List[int], ierr: List[int]) -> None:
    """CALL MPI_M_start(comm, msid, retval)"""
    if not isinstance(msid, list) or len(msid) != 1:
        raise TypeError("msid must be a one-element list (INTEGER intent(out))")
    code, handle = capi.mpi_m_start(comm)
    if code == ErrorCode.MPI_SUCCESS:
        msid[0] = _to_handle(handle)
    _set(ierr, code)


def mpi_m_suspend_f(msid: int, ierr: List[int]) -> None:
    """CALL MPI_M_suspend(msid, retval)"""
    _set(ierr, capi.mpi_m_suspend(_from_handle(msid)))


def mpi_m_continue_f(msid: int, ierr: List[int]) -> None:
    """CALL MPI_M_continue(msid, retval)"""
    _set(ierr, capi.mpi_m_continue(_from_handle(msid)))


def mpi_m_reset_f(msid: int, ierr: List[int]) -> None:
    """CALL MPI_M_reset(msid, retval)"""
    _set(ierr, capi.mpi_m_reset(_from_handle(msid)))


def mpi_m_free_f(msid: int, ierr: List[int]) -> None:
    """CALL MPI_M_free(msid, retval)"""
    _set(ierr, capi.mpi_m_free(_from_handle(msid)))


def mpi_m_get_info_f(msid: int, provided: List[int], array_size: List[int],
                     ierr: List[int]) -> None:
    """CALL MPI_M_get_info(msid, provided, array_size, retval)"""
    code, p, n = capi.mpi_m_get_info(_from_handle(msid))
    if code == ErrorCode.MPI_SUCCESS:
        provided[0] = p
        array_size[0] = n
    _set(ierr, code)


def mpi_m_get_data_f(msid: int, msg_counts, msg_sizes, flags: int,
                     ierr: List[int]) -> None:
    """CALL MPI_M_get_data(msid, msg_counts, msg_sizes, flags, retval)

    ``msg_counts``/``msg_sizes`` are caller-allocated NumPy arrays
    (filled in place), exactly like Fortran INTEGER(KIND=8) arrays.
    """
    code, _, _ = capi.mpi_m_get_data(_from_handle(msid), msg_counts,
                                     msg_sizes, Flags(flags))
    _set(ierr, code)


def mpi_m_allgather_data_f(msid: int, matrix_counts, matrix_sizes, flags: int,
                           ierr: List[int]) -> None:
    """CALL MPI_M_allgather_data(msid, counts, sizes, flags, retval)"""
    code, _, _ = capi.mpi_m_allgather_data(_from_handle(msid), matrix_counts,
                                           matrix_sizes, Flags(flags))
    _set(ierr, code)


def mpi_m_rootgather_data_f(msid: int, root: int, matrix_counts, matrix_sizes,
                            flags: int, ierr: List[int]) -> None:
    """CALL MPI_M_rootgather_data(msid, root, counts, sizes, flags, retval)"""
    code, _, _ = capi.mpi_m_rootgather_data(_from_handle(msid), root,
                                            matrix_counts, matrix_sizes,
                                            Flags(flags))
    _set(ierr, code)


def mpi_m_flush_f(msid: int, filename: str, flags: int, ierr: List[int]) -> None:
    """CALL MPI_M_flush(msid, filename, flags, retval)"""
    _set(ierr, capi.mpi_m_flush(_from_handle(msid), filename, Flags(flags)))


def mpi_m_rootflush_f(msid: int, root: int, filename: str, flags: int,
                      ierr: List[int]) -> None:
    """CALL MPI_M_rootflush(msid, root, filename, flags, retval)"""
    _set(ierr, capi.mpi_m_rootflush(_from_handle(msid), root, filename,
                                    Flags(flags)))
