"""Network-usage timelines from periodic session sampling.

The paper's discussion (§7) points to a follow-up use of introspection
monitoring: *detecting and predicting network usage* to schedule
background traffic (checkpoint fetches) into under-utilized windows
(Tseng et al., Euro-Par 2019, the paper's [18]).  This module provides
that capability on top of sessions:

* :class:`TimelineSampler` — the §6.1 sampling pattern productized:
  suspend → read → reset → continue on a fixed virtual-time period,
  yielding a per-window byte series;
* :func:`predict_next_window` — the simple sliding-window predictors
  such systems use (last value / moving average / linear trend);
* :func:`underutilized_windows` — find the quiet windows below a
  threshold, i.e. when to fetch the checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core import api as mapi
from repro.core.constants import Flags, MPI_M_DATA_IGNORE
from repro.core.errors import raise_for_code

__all__ = ["TimelineSampler", "predict_next_window", "underutilized_windows"]


@dataclass
class TimelineSampler:
    """Periodic sampler over one monitoring session.

    Create it *inside* a rank program after ``mpi_m_init``; call
    :meth:`sample` whenever a period boundary passes (the caller
    controls virtual time, e.g. by chunking its sleeps as in the §6.1
    experiment).  ``series()`` returns (window end time, bytes sent in
    window) pairs for this rank.
    """

    comm: object
    flags: Flags = Flags.ALL_COMM
    times: List[float] = field(default_factory=list)
    volumes: List[int] = field(default_factory=list)
    _msid: object = None

    def __post_init__(self):
        err, msid = mapi.mpi_m_start(self.comm)
        raise_for_code(err)
        self._msid = msid

    def sample(self) -> int:
        """Close the current window; returns its byte volume."""
        raise_for_code(mapi.mpi_m_suspend(self._msid))
        err, _, sizes = mapi.mpi_m_get_data(
            self._msid, MPI_M_DATA_IGNORE, None, self.flags
        )
        raise_for_code(err)
        raise_for_code(mapi.mpi_m_reset(self._msid))
        raise_for_code(mapi.mpi_m_continue(self._msid))
        vol = int(sizes.sum())
        self.times.append(self.comm.time)
        self.volumes.append(vol)
        return vol

    def close(self) -> None:
        raise_for_code(mapi.mpi_m_suspend(self._msid))
        raise_for_code(mapi.mpi_m_free(self._msid))

    def series(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.volumes, dtype=np.int64)


def predict_next_window(volumes, method: str = "moving_average",
                        window: int = 5) -> float:
    """Predict the next window's byte volume from the history."""
    v = np.asarray(volumes, dtype=np.float64)
    if v.size == 0:
        return 0.0
    if method == "last":
        return float(v[-1])
    if method == "moving_average":
        return float(v[-window:].mean())
    if method == "linear":
        tail = v[-window:]
        if tail.size < 2:
            return float(tail[-1])
        x = np.arange(tail.size, dtype=np.float64)
        slope, intercept = np.polyfit(x, tail, 1)
        return float(max(0.0, slope * tail.size + intercept))
    raise ValueError(f"unknown prediction method {method!r}")


def underutilized_windows(volumes, threshold_fraction: float = 0.25
                          ) -> List[int]:
    """Indices of windows whose volume is below ``threshold_fraction``
    of the peak — candidate slots for background transfers."""
    v = np.asarray(volumes, dtype=np.float64)
    if v.size == 0 or v.max() <= 0:
        return list(range(v.size))
    cutoff = threshold_fraction * v.max()
    return [int(i) for i in np.flatnonzero(v <= cutoff)]
