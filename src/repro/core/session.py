"""Monitoring sessions and the per-process library runtime.

A session is implemented exactly as the real library implements it on
top of MPI_T: *snapshot/diff of the component's performance variables*.

* ``start``/``continue`` snapshot the per-peer count/size pvar arrays;
* ``suspend`` accumulates ``current − snapshot`` into session-owned
  buffers ("the amount of data sent will be copied and stored in
  different buffers within the introspection library", §4.5);
* ``reset`` zeroes the accumulated buffers.

Because every session owns its buffers, sessions are completely
independent — they may overlap or nest arbitrarily (§4.1) — and a
session attached to a communicator records traffic between any two of
its members *whatever communicator carried it*, since the pvar arrays
are indexed by world rank and only projected onto the session's group
when data is read out.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.constants import MAX_SESSIONS, flags_to_categories
from repro.obs import registry as _obs_registry
from repro.core.errors import (
    InvalidMsid,
    MissingInit,
    MultipleCall,
    SessionNotSuspended,
    SessionOverflow,
)
from repro.simmpi.pml_monitoring import CATEGORIES, PVAR_NAMES

__all__ = ["Msid", "Session", "MonitoringRuntime"]

_RUNTIME_KEY = "mpi_m_runtime"


class Msid:
    """Opaque monitoring-session identifier (the C ``MPI_M_msid``)."""

    __slots__ = ("value", "owner_rank")

    def __init__(self, value: int, owner_rank: int):
        self.value = value
        self.owner_rank = owner_rank

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Msid({self.value}@rank{self.owner_rank})"


class Session:
    """One monitoring session: state machine + accumulated matrices."""

    ACTIVE = "active"
    SUSPENDED = "suspended"
    FREED = "freed"

    def __init__(self, runtime: "MonitoringRuntime", msid: Msid, comm):
        self.runtime = runtime
        self.msid = msid
        self.comm = comm
        self.state = Session.ACTIVE
        world = runtime.world_size
        self._acc_counts: Dict[str, np.ndarray] = {
            c: np.zeros(world, dtype=np.uint64) for c in CATEGORIES
        }
        self._acc_sizes: Dict[str, np.ndarray] = {
            c: np.zeros(world, dtype=np.uint64) for c in CATEGORIES
        }
        self._snap_counts: Dict[str, np.ndarray] = {}
        self._snap_sizes: Dict[str, np.ndarray] = {}
        # Pvar write-epoch at snapshot time, per category; lets
        # suspend/resume skip categories that have not changed.
        self._snap_epochs: Dict[str, Optional[int]] = {}
        self._take_snapshot()
        _obs_registry().counter("repro_session_events_total",
                                event="create").inc()

    # -- state transitions --------------------------------------------------

    def suspend(self) -> None:
        if self.state != Session.ACTIVE:
            raise MultipleCall(f"suspend on a {self.state} session")
        for cat in CATEGORIES:
            # Cheap probe first: if the category's write epoch has not
            # moved since the snapshot, the diff is zero — skip the two
            # array copies and the subtraction (the common case for osc
            # and, in point-to-point phases, coll).
            epoch = self.runtime.pvar_epoch(cat)
            if epoch is not None and epoch == self._snap_epochs.get(cat):
                continue
            counts, sizes = self.runtime.read_pvars(cat)
            self._acc_counts[cat] += counts - self._snap_counts[cat]
            self._acc_sizes[cat] += sizes - self._snap_sizes[cat]
        self.state = Session.SUSPENDED
        _obs_registry().counter("repro_session_events_total",
                                event="suspend").inc()

    def resume(self) -> None:
        if self.state != Session.SUSPENDED:
            raise MultipleCall(f"continue on a {self.state} session")
        self._take_snapshot()
        self.state = Session.ACTIVE
        _obs_registry().counter("repro_session_events_total",
                                event="resume").inc()

    def reset(self) -> None:
        if self.state != Session.SUSPENDED:
            raise SessionNotSuspended("reset requires a suspended session")
        for cat in CATEGORIES:
            self._acc_counts[cat][:] = 0
            self._acc_sizes[cat][:] = 0
        _obs_registry().counter("repro_session_events_total",
                                event="reset").inc()

    def free(self) -> None:
        if self.state != Session.SUSPENDED:
            raise SessionNotSuspended("free requires a suspended session")
        self.state = Session.FREED
        _obs_registry().counter("repro_session_events_total",
                                event="free").inc()

    def _take_snapshot(self) -> None:
        for cat in CATEGORIES:
            epoch = self.runtime.pvar_epoch(cat)
            if (epoch is not None and cat in self._snap_counts
                    and epoch == self._snap_epochs.get(cat)):
                # Unchanged since the previous snapshot (idle category
                # across a suspend/continue cycle): keep it.
                continue
            counts, sizes = self.runtime.read_pvars(cat)
            self._snap_counts[cat] = counts
            self._snap_sizes[cat] = sizes
            self._snap_epochs[cat] = epoch

    # -- data access -----------------------------------------------------------

    def data(self, flags: int) -> Tuple[np.ndarray, np.ndarray]:
        """This process's per-peer (counts, sizes), projected on the
        session communicator's group and summed over the categories the
        flags select.  Only valid while suspended."""
        if self.state != Session.SUSPENDED:
            raise SessionNotSuspended("data access requires a suspended session")
        members = np.asarray(self.comm.group, dtype=np.intp)
        n = len(members)
        counts = np.zeros(n, dtype=np.uint64)
        sizes = np.zeros(n, dtype=np.uint64)
        for cat in flags_to_categories(flags):
            counts += self._acc_counts[cat][members]
            sizes += self._acc_sizes[cat][members]
        return counts, sizes


class MonitoringRuntime:
    """Per-process state of the MPI_Monitoring library.

    Holds the MPI_T pvar session, the started pvar handles, and the
    table of monitoring sessions this process created.  Stored in the
    simulated process's ``userdata`` — the moral equivalent of the C
    library's per-process globals.
    """

    def __init__(self, proc):
        self.proc = proc
        self.engine = proc.engine
        self.world_size = self.engine.n_ranks
        self.sessions: Dict[int, Session] = {}
        self._next_msid = 1
        mpit = self.engine.mpit
        mpit.init_thread()
        # The library requires internal/external distinction (mode 2);
        # the cvar is the simulated --mca pml_monitoring_enable knob.
        mpit.cvar_write("pml_monitoring_enable", 2)
        self._pvar_session = mpit.pvar_session_create()
        self._handles = {}
        for cat in CATEGORIES:
            cname, sname = PVAR_NAMES[cat]
            hc = self._pvar_session.handle_alloc(cname, proc.rank)
            hs = self._pvar_session.handle_alloc(sname, proc.rank)
            hc.start()
            hs.start()
            self._handles[cat] = (hc, hs)

    # -- attach/detach to the current process --------------------------------

    @staticmethod
    def install(proc) -> "MonitoringRuntime":
        if _RUNTIME_KEY in proc.userdata:
            raise MultipleCall("MPI_M_init called twice without finalize")
        rt = MonitoringRuntime(proc)
        proc.userdata[_RUNTIME_KEY] = rt
        _obs_registry().counter("repro_session_events_total",
                                event="runtime_install").inc()
        return rt

    @staticmethod
    def of(proc) -> "MonitoringRuntime":
        rt = proc.userdata.get(_RUNTIME_KEY)
        if rt is None:
            raise MissingInit("no call to MPI_M_init has been done")
        return rt

    @staticmethod
    def maybe_of(proc) -> Optional["MonitoringRuntime"]:
        return proc.userdata.get(_RUNTIME_KEY)

    def finalize(self) -> None:
        from repro.core.errors import SessionStillActive

        live = [s for s in self.sessions.values() if s.state == Session.ACTIVE]
        if live:
            raise SessionStillActive(
                f"{len(live)} session(s) still active at MPI_M_finalize"
            )
        self._pvar_session.free()
        self.engine.mpit.finalize()
        del self.proc.userdata[_RUNTIME_KEY]
        _obs_registry().counter("repro_session_events_total",
                                event="runtime_finalize").inc()

    # -- session management --------------------------------------------------

    def create_session(self, comm) -> Session:
        n_live = sum(1 for s in self.sessions.values() if s.state != Session.FREED)
        if n_live >= MAX_SESSIONS:
            raise SessionOverflow(f"maximum of {MAX_SESSIONS} sessions reached")
        msid = Msid(self._next_msid, self.proc.rank)
        self._next_msid += 1
        session = Session(self, msid, comm)
        self.sessions[msid.value] = session
        return session

    def lookup(self, msid) -> Session:
        if not isinstance(msid, Msid):
            raise InvalidMsid(f"not a session identifier: {msid!r}")
        session = self.sessions.get(msid.value)
        if session is None or msid.owner_rank != self.proc.rank:
            raise InvalidMsid(f"unknown msid {msid!r}")
        if session.state == Session.FREED:
            raise InvalidMsid(f"msid {msid!r} refers to a freed session")
        return session

    def live_sessions(self):
        return [s for s in self.sessions.values() if s.state != Session.FREED]

    # -- pvar access -----------------------------------------------------------

    def read_pvars(self, category: str) -> Tuple[np.ndarray, np.ndarray]:
        hc, hs = self._handles[category]
        return hc.read(), hs.read()

    def pvar_epoch(self, category: str) -> Optional[int]:
        """The category's write epoch (count and size pvars share one),
        or None when the variable does not track versions.  Reading the
        epoch settles the caller's deferred send but copies nothing."""
        hc, _hs = self._handles[category]
        return hc.version()
