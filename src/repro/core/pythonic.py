"""Idiomatic Python front-end to the monitoring library.

Wraps the procedural API with exceptions and context managers::

    from repro.core import monitoring, MonitoringSession

    def program(comm):
        with monitoring():                       # MPI_M_init/finalize
            with MonitoringSession(comm) as mon:  # start ... suspend
                comm.bcast(data, root=0)
            counts, sizes = mon.get_data(Flags.COLL_ONLY)

A :class:`MonitoringSession` may be paused and resumed inside the
``with`` block, matching MPI_M_suspend/MPI_M_continue; data accessors
are valid only once the session is suspended (i.e. while paused or
after the block exits).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core import api
from repro.core.constants import Flags, MPI_M_DATA_IGNORE
from repro.core.errors import raise_for_code

__all__ = ["monitoring", "MonitoringSession"]


class monitoring:
    """Context manager for the library environment (init/finalize)."""

    def __enter__(self) -> "monitoring":
        raise_for_code(api.mpi_m_init())
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Propagate the user's exception in preference to finalize errors.
        code = api.mpi_m_finalize()
        if exc_type is None:
            raise_for_code(code)


class MonitoringSession:
    """One monitoring session as a context manager.

    Entering starts the session; exiting suspends it (the paper's
    "unique initial start ... must match a final suspend").  The
    session is *not* freed on exit so the data stays readable; call
    :meth:`free` (or use :meth:`freed`) when done.
    """

    def __init__(self, comm):
        self.comm = comm
        self.msid = None
        self._entered = False

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "MonitoringSession":
        if self._entered:
            raise RuntimeError("MonitoringSession is not re-entrant")
        err, msid = api.mpi_m_start(self.comm)
        raise_for_code(err)
        self.msid = msid
        self._entered = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        code = api.mpi_m_suspend(self.msid)
        if exc_type is None:
            raise_for_code(code)

    def pause(self) -> None:
        """MPI_M_suspend: stop recording; data becomes readable."""
        raise_for_code(api.mpi_m_suspend(self.msid))

    def resume(self) -> None:
        """MPI_M_continue: resume recording."""
        raise_for_code(api.mpi_m_continue(self.msid))

    def reset(self) -> None:
        """MPI_M_reset: zero the recorded data (while paused)."""
        raise_for_code(api.mpi_m_reset(self.msid))

    def free(self) -> None:
        """MPI_M_free: release the session (data no longer readable)."""
        raise_for_code(api.mpi_m_free(self.msid))

    # -- data access -----------------------------------------------------------

    @property
    def array_size(self) -> int:
        err, _, n = api.mpi_m_get_info(self.msid)
        raise_for_code(err)
        return n

    def get_data(self, flags: Flags = Flags.ALL_COMM) -> Tuple[np.ndarray, np.ndarray]:
        """This rank's per-peer ``(counts, sizes)`` arrays."""
        err, counts, sizes = api.mpi_m_get_data(self.msid, flags=flags)
        raise_for_code(err)
        return counts, sizes

    def counts(self, flags: Flags = Flags.ALL_COMM) -> np.ndarray:
        err, counts, _ = api.mpi_m_get_data(
            self.msid, msg_sizes=MPI_M_DATA_IGNORE, flags=flags
        )
        raise_for_code(err)
        return counts

    def sizes(self, flags: Flags = Flags.ALL_COMM) -> np.ndarray:
        err, _, sizes = api.mpi_m_get_data(
            self.msid, msg_counts=MPI_M_DATA_IGNORE, flags=flags
        )
        raise_for_code(err)
        return sizes

    def allgather(self, flags: Flags = Flags.ALL_COMM) -> Tuple[np.ndarray, np.ndarray]:
        """Full (counts, sizes) matrices on every rank, shape (n, n)."""
        err, cmat, smat = api.mpi_m_allgather_data(self.msid, flags=flags)
        raise_for_code(err)
        n = self.comm.size
        return cmat.reshape(n, n), smat.reshape(n, n)

    def gather(
        self, root: int = 0, flags: Flags = Flags.ALL_COMM
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Matrices at ``root`` (``None`` elsewhere)."""
        err, cmat, smat = api.mpi_m_rootgather_data(self.msid, root, flags=flags)
        raise_for_code(err)
        if cmat is None:
            return None
        n = self.comm.size
        return cmat.reshape(n, n), smat.reshape(n, n)

    def flush(self, filename: str, flags: Flags = Flags.ALL_COMM) -> None:
        raise_for_code(api.mpi_m_flush(self.msid, filename, flags=flags))

    def rootflush(self, root: int, filename: str, flags: Flags = Flags.ALL_COMM) -> None:
        raise_for_code(api.mpi_m_rootflush(self.msid, root, filename, flags=flags))
