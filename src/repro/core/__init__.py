"""``repro.core`` — the MPI_Monitoring introspection library.

This is the paper's contribution: a high-level, session-based
monitoring API built strictly on top of the low-level MPI_T monitoring
component (see :mod:`repro.simmpi.pml_monitoring`).  Two front-ends are
provided:

* the **procedural API** (:mod:`repro.core.api`): C-style functions
  returning :class:`ErrorCode`, with the paper's sentinel values
  (``MPI_M_ALL_MSID``, ``MPI_M_DATA_IGNORE``, ``MPI_M_INT_IGNORE``) —
  this doubles as the Fortran-binding equivalent;
* the **Pythonic API** (:mod:`repro.core.pythonic`): exceptions and
  context managers.
"""

from repro.core.api import (  # noqa: F401
    mpi_m_allgather_data,
    mpi_m_continue,
    mpi_m_finalize,
    mpi_m_flush,
    mpi_m_free,
    mpi_m_get_data,
    mpi_m_get_info,
    mpi_m_init,
    mpi_m_reset,
    mpi_m_rootflush,
    mpi_m_rootgather_data,
    mpi_m_start,
    mpi_m_suspend,
)
from repro.core.constants import (  # noqa: F401
    MAX_SESSIONS,
    MPI_M_ALL_COMM,
    MPI_M_ALL_MSID,
    MPI_M_COLL_ONLY,
    MPI_M_DATA_IGNORE,
    MPI_M_INT_IGNORE,
    MPI_M_OSC_ONLY,
    MPI_M_P2P_ONLY,
    MPI_SUCCESS,
    ErrorCode,
    Flags,
)
from repro.core.errors import (  # noqa: F401
    InternalFail,
    InvalidMsid,
    InvalidRoot,
    MissingInit,
    MonitoringError,
    MpitFail,
    MultipleCall,
    SessionNotSuspended,
    SessionOverflow,
    SessionStillActive,
    raise_for_code,
)
from repro.core.fingerprint import package_fingerprint, tree_fingerprint  # noqa: F401
from repro.core.flushio import read_profile  # noqa: F401
from repro.core.pythonic import MonitoringSession, monitoring  # noqa: F401
from repro.core.session import MonitoringRuntime, Msid, Session  # noqa: F401
from repro.core.timeline import (  # noqa: F401
    TimelineSampler,
    predict_next_window,
    underutilized_windows,
)
from repro.core.viz import render_heatmap, render_matrix, traffic_summary  # noqa: F401
