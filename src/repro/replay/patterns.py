"""Collective-algorithm substitution on recorded traces.

A recorded trace carries every collective *post-decomposition* (the
paper's key property: the monitoring layer sees the point-to-point
messages the algorithm actually generated) bracketed by B/E markers.
Substituting an algorithm therefore means: find each instance of the
op, erase its recorded point-to-point traffic, and synthesize the
replacement algorithm's traffic over the same payload — mirroring the
exact send/receive loop order of the live implementations in
:mod:`repro.simmpi.collectives.bcast` / ``reduce`` so a substituted
replay prices what the live run *would have* injected.

An instance is identified as the i-th top-level B marker per
communicator on each member rank: collectives are globally ordered per
communicator, so occurrence index i names the same call site on every
rank.  The instance's message set is derived from its *receives*:
every receive-wait between a rank's B and E markers was issued by that
collective call (waits execute in program order on the rank thread),
and every message a collective sends is received inside some member's
region — whereas its *sends* are unreliable region evidence, because a
deferred send routinely materializes outside the collective that
posted it (even inside a later collective's region).  Dropped sends
are therefore located by sequence number wherever they sit in the
stream.

The payload is measured from the matched sends (the maximum per-pair
byte total — every algorithm here sends the full buffer over each tree
edge); segment sizes follow ``split_buffer``'s abstract-buffer rule
(big-first byte divmod — array payloads in the live run split on
element boundaries instead, a difference of at most one element per
segment).  Unrelated events recorded inside a region (that deferred
point-to-point send from before the collective) are preserved in
place.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.replay.schema import ReplayTrace
from repro.simmpi.errorsim import CommError

__all__ = ["SUBSTITUTABLE", "apply_substitution"]

SUBSTITUTABLE = {
    "bcast": ("binomial", "flat", "chain"),
    "reduce": ("binomial", "binary", "flat"),
}


def apply_substitution(trace: ReplayTrace,
                       substitute: Dict[str, str]) -> List[List[tuple]]:
    """Return per-rank event streams with substituted collectives."""
    for op, alg in substitute.items():
        if op not in SUBSTITUTABLE:
            raise CommError(
                f"cannot substitute {op!r}; supported: "
                f"{sorted(SUBSTITUTABLE)}")
        if alg not in SUBSTITUTABLE[op]:
            raise CommError(
                f"unknown {op} algorithm {alg!r}; "
                f"have {SUBSTITUTABLE[op]}")

    n = trace.world_size
    per_rank: List[List[tuple]] = [[] for _ in range(n)]
    for ev in trace.events:
        per_rank[ev[1]].append(ev)

    instances = _find_instances(per_rank)
    seq_to_s = {ev[6]: ev for q in per_rank for ev in q if ev[0] == "S"}
    seq_counter = [max(seq_to_s, default=-1) + 1]

    # (rank -> list of (i_begin, i_end, replacement_events)), spliced
    # back-to-front so indices stay valid; dropped_seqs gathers every
    # replaced message so its send can be erased wherever it
    # materialized.
    splices: Dict[int, List[Tuple[int, int, List[tuple]]]] = {}
    dropped_seqs: set = set()
    for key in sorted(instances):
        inst = instances[key]
        new_alg = substitute.get(inst["op"])
        if new_alg is None:
            continue
        members = trace.comms.get(key[0])
        if members is None:
            raise CommError(
                f"trace lacks membership for communicator {key[0]}")
        _substitute_instance(per_rank, inst, members, new_alg, seq_to_s,
                             seq_counter, splices, dropped_seqs)

    for r, repl in splices.items():
        q = per_rank[r]
        for i_b, i_e, events in sorted(repl, reverse=True):
            q[i_b:i_e + 1] = events
    if dropped_seqs:
        # Erase replaced sends that materialized outside the replaced
        # regions (generated sends use fresh sequence numbers, so only
        # recorded events can match).
        for r in range(n):
            per_rank[r] = [ev for ev in per_rank[r]
                           if not (ev[0] == "S" and ev[6] in dropped_seqs)]
    return per_rank


# ---------------------------------------------------------------------------
# instance discovery


def _find_instances(per_rank) -> Dict[tuple, dict]:
    """Map (comm_id, occurrence) -> instance info with per-rank regions."""
    instances: Dict[tuple, dict] = {}
    for r, q in enumerate(per_rank):
        occ: Dict[int, int] = {}
        stack: List[Optional[tuple]] = []
        for i, ev in enumerate(q):
            kind = ev[0]
            if kind == "B":
                if not stack:
                    cid = ev[2]
                    k = (cid, occ.get(cid, 0))
                    occ[cid] = k[1] + 1
                    stack.append((k, i, ev))
                else:  # nested collective: owned by the outer region
                    stack.append(None)
            elif kind == "E" and stack:
                top = stack.pop()
                if top is None:
                    continue
                k, i_b, bev = top
                inst = instances.setdefault(
                    k, {"op": bev[3], "alg": bev[4], "root": bev[5],
                        "nbytes": bev[6], "segments": bev[7],
                        "regions": {}})
                inst["regions"][r] = (i_b, i)
    return instances


# ---------------------------------------------------------------------------
# one instance


def _substitute_instance(per_rank, inst, members, new_alg, seq_to_s,
                         seq_counter, splices, dropped_seqs) -> None:
    size = len(members)
    root = max(0, inst["root"])

    # Pass 1: every receive-wait inside a member region belongs to this
    # instance; their sequence numbers name the instance's messages.
    inst_seqs = set()
    for rank, (i_b, i_e) in inst["regions"].items():
        q = per_rank[rank]
        for ev in q[i_b + 1:i_e]:
            if ev[0] == "R":
                inst_seqs.add(ev[2])

    # Monitoring category is a per-*message* property, not per-instance:
    # monitoring can flip mid-run, and a deferred send posted before the
    # flip materializes (and is categorized) after it.  Replaying the
    # matched sends' categories per pair in sequence order keeps the
    # monitored matrices exact under identity substitution; edges a new
    # algorithm introduces fall back to the instance's dominant category.
    pair_bytes: Dict[Tuple[int, int], int] = {}
    pair_mcats: Dict[Tuple[int, int], List[str]] = {}
    mcat_votes: Dict[str, int] = {}
    for seq in sorted(inst_seqs):
        sev = seq_to_s.get(seq)
        if sev is None:
            raise CommError(
                f"trace references unsent message #{seq} inside a "
                f"{inst['op']} region")
        pair = (sev[1], sev[2])
        pair_bytes[pair] = pair_bytes.get(pair, 0) + sev[3]
        pair_mcats.setdefault(pair, []).append(sev[5])
        mcat_votes[sev[5]] = mcat_votes.get(sev[5], 0) + 1
    dropped_seqs.update(inst_seqs)

    fallback = max(mcat_votes, key=mcat_votes.get) if mcat_votes else ""
    payload = max(pair_bytes.values(), default=max(0, inst["nbytes"]))
    seg_sizes = _segment_sizes(inst, new_alg, payload)
    generated = _generate(inst["op"], new_alg, members, root, seg_sizes,
                          _mcat_lookup(pair_mcats, fallback), seq_counter)

    for lr in range(size):
        rank = members[lr]
        region = inst["regions"].get(rank)
        if region is None:
            raise CommError(
                f"rank {rank} has no recorded region for "
                f"{inst['op']} instance on communicator; trace truncated?")
        i_b, i_e = region
        q = per_rank[rank]
        bev = q[i_b]
        new_b = bev[:4] + (new_alg,) + bev[5:]
        carried = [ev for ev in q[i_b + 1:i_e]
                   if not (ev[0] == "S" and ev[6] in inst_seqs)
                   and not ev[0] == "R"]
        events = [new_b] + carried + generated[lr] + [("E", rank)]
        splices.setdefault(rank, []).append((i_b, i_e, events))


def _segment_sizes(inst, new_alg, payload: int) -> List[int]:
    from repro.simmpi.collectives.segment import n_segments

    pipelined = (inst["op"], new_alg) not in (
        ("bcast", "flat"), ("bcast", "chain"), ("reduce", "flat"))
    if not pipelined:
        return [payload]
    nseg = inst["segments"] if inst["segments"] > 0 else n_segments(payload)
    base, extra = divmod(payload, nseg)
    return [base + 1] * extra + [base] * (nseg - extra)


# ---------------------------------------------------------------------------
# algorithm event generators (loop orders mirror the live code)


def _mcat_lookup(pair_mcats, fallback):
    """Per-pair monitoring categories, consumed in segment order."""
    cursor: Dict[Tuple[int, int], int] = {}

    def mcat_of(src_w: int, dst_w: int) -> str:
        lst = pair_mcats.get((src_w, dst_w))
        if lst is None:
            return fallback
        i = cursor.get((src_w, dst_w), 0)
        if i >= len(lst):
            return fallback
        cursor[(src_w, dst_w)] = i + 1
        return lst[i]

    return mcat_of


def _generate(op, alg, members, root, seg_sizes, mcat_of,
              seq_counter) -> List[List[tuple]]:
    seqs: Dict[Tuple[int, int, int], int] = {}

    def seq_of(src_w: int, dst_w: int, s: int) -> int:
        key = (src_w, dst_w, s)
        got = seqs.get(key)
        if got is None:
            got = seq_counter[0]
            seq_counter[0] += 1
            seqs[key] = got
        return got

    size = len(members)
    out: List[List[tuple]] = [[] for _ in range(size)]

    def send(lr: int, dst_l: int, nb: int, s: int) -> None:
        me_w, dst_w = members[lr], members[dst_l]
        out[lr].append(("S", me_w, dst_w, nb, "coll", mcat_of(me_w, dst_w),
                        seq_of(me_w, dst_w, s), 0.0, 0.0))

    def recv(lr: int, src_l: int, s: int) -> None:
        me_w, src_w = members[lr], members[src_l]
        out[lr].append(("R", me_w, seq_of(src_w, me_w, s), 0.0, 0.0))

    if size == 1:
        return out
    if op == "bcast":
        _gen_bcast(alg, size, root, seg_sizes, send, recv)
    else:
        _gen_reduce(alg, size, root, seg_sizes, send, recv)
    return out


def _gen_bcast(alg, size, root, seg_sizes, send, recv) -> None:
    nseg = len(seg_sizes)
    for lr in range(size):
        vr = (lr - root) % size
        if alg == "flat":
            if vr == 0:
                for dst in range(size):
                    if dst != root:
                        send(lr, dst, seg_sizes[0], 0)
            else:
                recv(lr, root, 0)
            continue
        if alg == "chain":
            if vr > 0:
                recv(lr, (vr - 1 + root) % size, 0)
            if vr + 1 < size:
                send(lr, (vr + 1 + root) % size, seg_sizes[0], 0)
            continue
        # binomial (see bcast._binomial): receive mask is the lowest
        # set bit of the virtual rank; children descend from there.
        recv_mask = 0
        mask = 1
        while mask < size:
            if vr & mask:
                recv_mask = mask
                break
            mask <<= 1
        children = []
        m = (recv_mask or mask) >> 1
        while m > 0:
            if vr + m < size:
                children.append((vr + m + root) % size)
            m >>= 1
        if recv_mask == 0:  # root: pipeline every segment down the tree
            for s, nb in enumerate(seg_sizes):
                for child in children:
                    send(lr, child, nb, s)
        else:
            parent = (vr - recv_mask + root) % size
            recv(lr, parent, 0)
            for child in children:
                send(lr, child, seg_sizes[0], 0)
            for s in range(1, nseg):
                recv(lr, parent, s)
                for child in children:
                    send(lr, child, seg_sizes[s], s)


def _gen_reduce(alg, size, root, seg_sizes, send, recv) -> None:
    for lr in range(size):
        vr = (lr - root) % size
        if alg == "flat":
            if vr == 0:
                for src in range(size):
                    if src != root:
                        recv(lr, src, 0)
            else:
                send(lr, root, seg_sizes[0], 0)
            continue
        if alg == "binary":
            children_v = [c for c in (2 * vr + 1, 2 * vr + 2) if c < size]
            parent_v = None if vr == 0 else (vr - 1) // 2
        else:  # binomial: ascending-mask children, reduced before forwarding
            children_v = []
            parent_v = None
            mask = 1
            while mask < size:
                if vr & mask:
                    parent_v = vr & ~mask
                    break
                if vr | mask < size and vr | mask != vr:
                    children_v.append(vr | mask)
                mask <<= 1
        children = [(c + root) % size for c in children_v]
        parent = None if parent_v is None else (parent_v + root) % size
        for s, nb in enumerate(seg_sizes):
            for child in children:
                recv(lr, child, s)
            if parent is not None:
                send(lr, parent, nb, s)
