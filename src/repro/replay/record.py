"""Live-run event recorder driven from the engine's PML-layer hooks.

One :class:`ReplayRecorder` instance is attached per Engine (see
:mod:`repro.replay.autorecord`).  The engine calls the ``on_*`` methods
at exactly the points where a message claims shared network state —
immediately after :meth:`Network.transfer` for sends/puts/gets,
immediately after the clock update for receive-waits — so the recorded
event order *is* the global transfer-claim order: jitter draws, NIC
serialization windows and memory-bandwidth windows are consumed in
event order, which is what makes identity replay bit-exact.

Every timed event stores both the absolute pre-event clock ``t`` and
the local-computation gap ``gap = t - clock_after_previous_event`` on
the same rank.  Gaps absorb everything the replay engine does not
model (compute, file I/O, send overheads already folded into clocks by
the recorded run's own bookkeeping is *not* — those are re-derived),
letting one trace be re-costed under a different placement.
"""

from __future__ import annotations

from typing import Dict, List

from repro.replay import autorecord
from repro.replay.schema import ReplayTrace, params_to_json, topology_to_json

__all__ = ["ReplayRecorder"]


class ReplayRecorder:
    __slots__ = ("engine", "meta", "events", "comms",
                 "_last", "_msgseq", "_msgs", "_seq")

    def __init__(self, engine, meta: dict):
        self.engine = engine
        self.meta = meta
        self.events: List[tuple] = []
        self.comms: Dict[int, List[int]] = {}
        # rank -> virtual clock immediately after that rank's previous
        # recorded event (0.0 before the first: processes start at 0).
        self._last: Dict[int, float] = {}
        # id(msg) -> send sequence number.  Never popped: a completed
        # request's wait() may legally run twice (re-applying the clock
        # update), and the strong refs in _msgs keep ids from recycling.
        self._msgseq: Dict[int, int] = {}
        self._msgs: List[object] = []
        self._seq = 0

    # -- helpers ---------------------------------------------------------

    def _mcat(self, category: str, recorded: bool) -> str:
        if not recorded:
            return ""
        if self.engine.pml._mode == 1 and category == "coll":
            return "p2p"
        return category

    # -- hook sites ------------------------------------------------------

    def on_send(self, proc, dst_world: int, nbytes: int, category: str,
                recorded: bool, t_pre: float, msg) -> None:
        r = proc.rank
        seq = self._seq
        self._seq = seq + 1
        self._msgseq[id(msg)] = seq
        self._msgs.append(msg)
        self.events.append(
            ("S", r, dst_world, int(nbytes), category,
             self._mcat(category, recorded), seq,
             t_pre, t_pre - self._last.get(r, 0.0)))
        self._last[r] = proc.clock

    def on_recv(self, proc, t_pre: float, msg) -> None:
        seq = self._msgseq.get(id(msg))
        if seq is None:  # pragma: no cover - message predates recording
            return
        r = proc.rank
        self.events.append(
            ("R", r, seq, t_pre, t_pre - self._last.get(r, 0.0)))
        self._last[r] = proc.clock

    def on_put(self, proc, target_world: int, nbytes: int,
               recorded: bool, t_pre: float) -> None:
        r = proc.rank
        self.events.append(
            ("P", r, target_world, int(nbytes),
             self._mcat("osc", recorded),
             t_pre, t_pre - self._last.get(r, 0.0)))
        self._last[r] = proc.clock

    def on_get(self, proc, target_world: int, nbytes: int,
               recorded: bool, t_pre: float) -> None:
        r = proc.rank
        self.events.append(
            ("G", r, target_world, int(nbytes),
             self._mcat("osc", recorded),
             t_pre, t_pre - self._last.get(r, 0.0)))
        self._last[r] = proc.clock

    def on_coll_begin(self, proc, comm, opname: str, alg, kwargs) -> None:
        cid = comm.id
        if cid not in self.comms:
            self.comms[cid] = list(comm.group)
        root = kwargs.get("root")
        nbytes = kwargs.get("nbytes")
        segments = kwargs.get("segments")
        self.events.append(
            ("B", proc.rank, cid, opname, alg or "",
             -1 if root is None else int(root),
             -1 if nbytes is None else int(nbytes),
             0 if segments is None else int(segments)))

    def on_coll_end(self, proc) -> None:
        self.events.append(("E", proc.rank))

    # -- finalization ----------------------------------------------------

    def run_finished(self, engine) -> None:
        """Finalize the trace; the engine only calls this on clean runs."""
        for proc in engine.procs:
            t = proc.clock
            self.events.append(
                ("F", proc.rank, t, t - self._last.get(proc.rank, 0.0)))
        trace = ReplayTrace(
            world_size=engine.n_ranks,
            topology=topology_to_json(engine.cluster.topology),
            binding=list(engine.cluster.binding),
            params=params_to_json(engine.cluster.params),
            seed=engine.seed,
            monitoring_overhead=engine.monitoring_overhead,
            handoff=engine.handoff,
            comms=self.comms,
            clocks=[p.clock for p in engine.procs],
            events=self.events,
            meta=dict(self.meta),
        )
        autorecord._finished(trace)
