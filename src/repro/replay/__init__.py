"""repro.replay — trace record/replay and what-if placement search.

Record a deterministic event stream from a live simulated run, replay
it through the network cost model in milliseconds under an arbitrary
rank→core placement / topology / collective-algorithm substitution,
and search placements offline (the paper's "monitor once, then decide"
loop at interactive speed).

Entry points::

    from repro.replay import autorecord
    with autorecord.capture() as traces:
        engine.run(program)          # traces[0] is a ReplayTrace

    from repro.replay import replay, what_if_search
    result = replay(traces[0])       # bit-exact identity re-cost
    best = what_if_search(traces[0])

CLI: ``python -m repro.replay record|replay|search|diff``.

This module is imported by the simulator engine at load time, so it
re-exports lazily — nothing heavy is pulled in until used.
"""

from __future__ import annotations

__all__ = [
    "ReplayTrace",
    "ReplayResult",
    "CompiledTrace",
    "compile_trace",
    "replay",
    "what_if_search",
    "score_candidate",
    "autorecord",
]

from repro.replay import autorecord  # import-light by design


def __getattr__(name):
    if name == "ReplayTrace":
        from repro.replay.schema import ReplayTrace

        return ReplayTrace
    if name in ("ReplayResult", "CompiledTrace", "compile_trace", "replay"):
        from repro.replay import engine as _engine

        return getattr(_engine, name)
    if name in ("what_if_search", "score_candidate"):
        from repro.replay import search as _search

        return getattr(_search, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
