"""On-disk and in-memory format of a replayable event trace.

A :class:`ReplayTrace` is the dependency-carrying extension of
:class:`repro.simmpi.trace.MessageTracer`: instead of flat
``(time, src, dst, bytes)`` samples it stores the full PML-layer event
stream of a run — sends with their matching receive sequence numbers,
one-sided puts/gets, collective begin/end markers (post-decomposition,
so the point-to-point pattern inside each collective is preserved) and
per-rank finish times — plus everything needed to rebuild the network
cost model exactly: topology, binding, link parameters, jitter seed,
monitoring overhead and handoff policy.

File format (schema 1)::

    # repro.replay trace schema=1
    # header {"schema": 1, "world_size": 48, ...}
    S 0 13 65536 coll p2p 17 0x1.9p-10 0x0p+0
    R 13 17 0x1.ap-10 0x0p+0
    ...

Times are stored as ``float.hex`` so replay on the identity placement
is bit-exact.  Each timed event carries *both* its absolute issue time
``t`` (used when replaying the recorded configuration verbatim) and the
local-computation gap ``gap = t - clock_after_previous_event`` (used
when re-costing under a different placement, topology or collective
algorithm, where absolute times are no longer valid).

Event tuples (in-memory)::

    ("S", rank, dst, nbytes, cat, mcat, seq, t, gap)   point-to-point send
    ("R", rank, seq, t, gap)                           matching receive-wait
    ("P", rank, target, nbytes, mcat, t, gap)          one-sided put
    ("G", rank, target, nbytes, mcat, t, gap)          one-sided get
    ("B", rank, comm_id, op, alg, root, nbytes, segs)  collective begins
    ("E", rank)                                        collective ends
    ("F", rank, t, gap)                                rank finished

``cat`` is the raw wire category ("p2p"/"coll"/"osc"); ``mcat`` is the
category the monitoring layer actually charged ("" when the message was
not monitored, "p2p" for collectives under mode-1 counting, etc.), so a
replay reproduces the recorded monitored byte matrix bit-exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import TraceSchemaError

SCHEMA_VERSION = 1
MAGIC = "# repro.replay trace"

__all__ = [
    "SCHEMA_VERSION",
    "ReplayTrace",
    "params_to_json",
    "params_from_json",
    "topology_to_json",
    "topology_from_json",
    "build_cluster",
]


# ---------------------------------------------------------------------------
# simulator-object <-> JSON round-trips


def topology_to_json(topology) -> list:
    return [[name, int(arity)]
            for name, arity in zip(topology.level_names, topology.arities)]


def topology_from_json(spec) -> "Topology":
    from repro.simmpi.topology import Topology

    return Topology([(str(name), int(arity)) for name, arity in spec])


def params_to_json(params) -> dict:
    return {
        "links": {cls: [lp.latency, lp.bandwidth]
                  for cls, lp in params.links.items()},
        "send_overhead": params.send_overhead,
        "recv_overhead": params.recv_overhead,
        "nic_serialize": bool(params.nic_serialize),
        "mem_bandwidth": params.mem_bandwidth,
        "jitter": params.jitter,
        "lanes": int(params.lanes),
    }


def params_from_json(spec) -> "NetworkParams":
    from repro.simmpi.network import LinkParams, NetworkParams

    return NetworkParams(
        links={cls: LinkParams(latency=float(lat), bandwidth=float(bw))
               for cls, (lat, bw) in spec["links"].items()},
        send_overhead=float(spec["send_overhead"]),
        recv_overhead=float(spec["recv_overhead"]),
        nic_serialize=bool(spec["nic_serialize"]),
        mem_bandwidth=(None if spec["mem_bandwidth"] is None
                       else float(spec["mem_bandwidth"])),
        jitter=float(spec["jitter"]),
        lanes=int(spec["lanes"]),
    )


def build_cluster(trace: "ReplayTrace", binding: Optional[List[int]] = None):
    """Rebuild the recorded Cluster, optionally under a new binding."""
    from repro.simmpi.cluster import Cluster

    return Cluster(
        topology_from_json(trace.topology),
        trace.world_size,
        binding=list(trace.binding if binding is None else binding),
        params=params_from_json(trace.params),
        seed=trace.seed,
    )


# ---------------------------------------------------------------------------
# the trace object


@dataclass
class ReplayTrace:
    world_size: int
    topology: list                 # [[level_name, arity], ...]
    binding: List[int]             # recorded rank -> PU map
    params: dict                   # params_to_json() form
    seed: int                      # engine/network jitter seed
    monitoring_overhead: float
    handoff: str
    comms: Dict[int, List[int]]    # comm_id -> world ranks (group order)
    clocks: List[float]            # final per-rank virtual clocks
    events: List[tuple] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    # -- header ---------------------------------------------------------

    def header(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "world_size": int(self.world_size),
            "topology": self.topology,
            "binding": [int(b) for b in self.binding],
            "params": self.params,
            "seed": int(self.seed),
            "monitoring_overhead": self.monitoring_overhead,
            "handoff": self.handoff,
            "comms": {str(k): [int(r) for r in v]
                      for k, v in self.comms.items()},
            "clocks": [float(c).hex() for c in self.clocks],
            "n_events": len(self.events),
            "meta": self.meta,
        }

    # -- serialization --------------------------------------------------

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(f"{MAGIC} schema={SCHEMA_VERSION}\n")
            fh.write("# header "
                     + json.dumps(self.header(), separators=(",", ":"))
                     + "\n")
            w = fh.write
            for ev in self.events:
                w(_format_event(ev))

    @classmethod
    def load(cls, path: str) -> "ReplayTrace":
        with open(path, "r", encoding="utf-8") as fh:
            first = fh.readline()
            if not first.startswith(MAGIC):
                raise TraceSchemaError(
                    f"{path}: not a repro.replay trace "
                    f"(expected leading {MAGIC!r} line)")
            schema = _parse_schema_token(first, path)
            if schema != SCHEMA_VERSION:
                raise TraceSchemaError(
                    f"{path}: trace schema {schema} is not supported "
                    f"(this build reads schema {SCHEMA_VERSION})")
            second = fh.readline()
            if not second.startswith("# header "):
                raise TraceSchemaError(f"{path}: missing '# header' line")
            hdr = json.loads(second[len("# header "):])
            events = [_parse_event(line, path, lineno)
                      for lineno, line in enumerate(fh, start=3)
                      if line.strip() and not line.startswith("#")]
        trace = cls(
            world_size=int(hdr["world_size"]),
            topology=hdr["topology"],
            binding=[int(b) for b in hdr["binding"]],
            params=hdr["params"],
            seed=int(hdr["seed"]),
            monitoring_overhead=float(hdr["monitoring_overhead"]),
            handoff=str(hdr["handoff"]),
            comms={int(k): [int(r) for r in v]
                   for k, v in hdr["comms"].items()},
            clocks=[float.fromhex(c) for c in hdr["clocks"]],
            events=events,
            meta=hdr.get("meta", {}),
        )
        if trace.header()["n_events"] != hdr["n_events"]:
            raise TraceSchemaError(
                f"{path}: truncated trace — header promises "
                f"{hdr['n_events']} events, found {len(events)}")
        return trace

    # -- convenience ----------------------------------------------------

    def byte_matrix(self, monitored_only: bool = False):
        """Per-pair byte totals as a dense (n, n) uint64 matrix.

        With ``monitored_only`` the matrix only counts events the
        monitoring layer recorded, split no further by category — the
        aggregate the placement stack consumes.
        """
        import numpy as np

        n = self.world_size
        mat = np.zeros((n, n), dtype=np.uint64)
        for ev in self.events:
            kind = ev[0]
            if kind == "S" or kind == "P":
                rank, dst, nbytes = ev[1], ev[2], ev[3]
                mcat = ev[5] if kind == "S" else ev[4]
                if monitored_only and not mcat:
                    continue
                mat[rank, dst] += np.uint64(nbytes)
            elif kind == "G":
                rank, target, nbytes, mcat = ev[1], ev[2], ev[3], ev[4]
                if monitored_only and not mcat:
                    continue
                # gets move bytes target -> origin, as monitored
                mat[target, rank] += np.uint64(nbytes)
        return mat


# ---------------------------------------------------------------------------
# event line round-trip


def _opt(s: str) -> str:
    return s if s else "-"


def _unopt(s: str) -> str:
    return "" if s == "-" else s


def _format_event(ev: tuple) -> str:
    kind = ev[0]
    if kind == "S":
        _, rank, dst, nbytes, cat, mcat, seq, t, gap = ev
        return (f"S {rank} {dst} {nbytes} {cat} {_opt(mcat)} {seq} "
                f"{t.hex()} {gap.hex()}\n")
    if kind == "R":
        _, rank, seq, t, gap = ev
        return f"R {rank} {seq} {t.hex()} {gap.hex()}\n"
    if kind == "P" or kind == "G":
        _, rank, peer, nbytes, mcat, t, gap = ev
        return (f"{kind} {rank} {peer} {nbytes} {_opt(mcat)} "
                f"{t.hex()} {gap.hex()}\n")
    if kind == "B":
        _, rank, comm_id, op, alg, root, nbytes, segs = ev
        return (f"B {rank} {comm_id} {op} {_opt(alg)} {root} "
                f"{nbytes} {segs}\n")
    if kind == "E":
        return f"E {ev[1]}\n"
    if kind == "F":
        _, rank, t, gap = ev
        return f"F {rank} {t.hex()} {gap.hex()}\n"
    raise ValueError(f"unknown event kind {kind!r}")


def _parse_event(line: str, path: str, lineno: int) -> tuple:
    parts = line.split()
    kind = parts[0]
    try:
        if kind == "S":
            return ("S", int(parts[1]), int(parts[2]), int(parts[3]),
                    parts[4], _unopt(parts[5]), int(parts[6]),
                    float.fromhex(parts[7]), float.fromhex(parts[8]))
        if kind == "R":
            return ("R", int(parts[1]), int(parts[2]),
                    float.fromhex(parts[3]), float.fromhex(parts[4]))
        if kind == "P" or kind == "G":
            return (kind, int(parts[1]), int(parts[2]), int(parts[3]),
                    _unopt(parts[4]),
                    float.fromhex(parts[5]), float.fromhex(parts[6]))
        if kind == "B":
            return ("B", int(parts[1]), int(parts[2]), parts[3],
                    _unopt(parts[4]), int(parts[5]), int(parts[6]),
                    int(parts[7]))
        if kind == "E":
            return ("E", int(parts[1]))
        if kind == "F":
            return ("F", int(parts[1]),
                    float.fromhex(parts[2]), float.fromhex(parts[3]))
    except (IndexError, ValueError) as exc:
        raise TraceSchemaError(
            f"{path}:{lineno}: malformed {kind!r} event: {line!r}") from exc
    raise TraceSchemaError(
        f"{path}:{lineno}: unknown event kind {kind!r}")


def _parse_schema_token(line: str, path: str) -> int:
    for token in line.split():
        if token.startswith("schema="):
            try:
                return int(token[len("schema="):])
            except ValueError:
                raise TraceSchemaError(
                    f"{path}: bad schema token {token!r}") from None
    raise TraceSchemaError(f"{path}: magic line lacks a schema= token")
