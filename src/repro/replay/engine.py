"""Replay a recorded event stream through the network cost model.

Two scheduling regimes:

**Recorded order** (no collective substitution).  Events execute in
the order the live engine's transfers claimed shared network state —
the jitter stream, NIC serialization windows and memory-bandwidth
windows are consumed in the identical sequence, so replaying the
recorded configuration verbatim is *bit-exact*: per-pair byte matrices
and every per-rank virtual clock match the live run to the last ulp.
Under a different placement/topology/parameters the same global order
is kept (it is a valid dependency order of the program) while issue
times are re-derived from the recorded per-rank computation gaps —
a deterministic, documented approximation: the live engine would claim
resources in the new (clock, rank) order, replay claims them in the
recorded order.

**Derived order** (collective substitution).  Substituted instances
have no recorded order, so all events are rescheduled: each rank's
stream is consumed in program order, receives unblock when their
matching send has been injected, and among ready sends the earliest
``(issue time, rank)`` goes first — the same tie-break the live
scheduler uses.

Timing rules mirror the engine's hook sites one-to-one:

======  ==============================================================
event   clock update (``tt`` = issue time; exact mode uses the
        recorded absolute ``t``, otherwise ``last[r] + gap``)
======  ==============================================================
S       ``tt += ovh`` if monitored; ``last[r] = transfer(...)[0]``
R       ``last[r] = max(tt, arrival[seq]) + recv_overhead``
P       like S (one-sided put; no arrival consumed)
G       request flies ``tt + latency``; data returns target→origin;
        ``last[r] = max(tt, arrival) + recv_overhead``
F       ``last[r] = tt`` (end-of-program compute tail)
======  ==============================================================
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional

import numpy as np

from repro.replay.schema import (
    ReplayTrace,
    params_from_json,
    topology_from_json,
)

__all__ = ["ReplayError", "ReplayVerifyError", "ReplayResult",
           "CompiledTrace", "compile_trace", "replay", "trace_byte_matrix"]

CATEGORIES = ("p2p", "coll", "osc")


class ReplayError(RuntimeError):
    """Replay could not make progress (corrupt or inconsistent trace)."""


class ReplayVerifyError(ReplayError):
    """Exact-mode verification found a clock divergence."""


@dataclass
class ReplayResult:
    """Outcome of one replay pass.

    ``counts``/``sizes`` reproduce the monitoring component's matrices
    (what the live run's PML layer charged, post mode-remapping);
    ``total_counts``/``total_sizes`` book *every* wire message by raw
    category — the aggregate placement search scores.
    """

    clocks: List[float]
    counts: Dict[str, np.ndarray]
    sizes: Dict[str, np.ndarray]
    total_counts: Dict[str, np.ndarray]
    total_sizes: Dict[str, np.ndarray]
    n_messages: int
    exact: bool

    @property
    def max_clock(self) -> float:
        return max(self.clocks) if self.clocks else 0.0

    def byte_matrix(self, monitored_only: bool = False) -> np.ndarray:
        src = self.sizes if monitored_only else self.total_sizes
        out = np.zeros_like(next(iter(src.values())))
        for mat in src.values():
            out += mat
        return out


class _Books:
    """Per-category (src, dst, nbytes) accumulators -> dense matrices."""

    __slots__ = ("n", "mon", "tot")

    def __init__(self, n: int):
        self.n = n
        self.mon = {c: ([], [], []) for c in CATEGORIES}
        self.tot = {c: ([], [], []) for c in CATEGORIES}

    def book(self, cat: str, mcat: str, src: int, dst: int,
             nbytes: int) -> None:
        rows, cols, vals = self.tot[cat]
        rows.append(src)
        cols.append(dst)
        vals.append(nbytes)
        if mcat:
            rows, cols, vals = self.mon[mcat]
            rows.append(src)
            cols.append(dst)
            vals.append(nbytes)

    def _dense(self, triples, weights: bool) -> Dict[str, np.ndarray]:
        out = {}
        for cat, (rows, cols, vals) in triples.items():
            mat = np.zeros((self.n, self.n), dtype=np.uint64)
            if rows:
                w = (np.asarray(vals, dtype=np.uint64) if weights
                     else np.uint64(1))
                np.add.at(mat, (np.asarray(rows), np.asarray(cols)), w)
            out[cat] = mat
        return out

    def result(self, clocks, n_messages, exact) -> ReplayResult:
        return ReplayResult(
            clocks=list(clocks),
            counts=self._dense(self.mon, weights=False),
            sizes=self._dense(self.mon, weights=True),
            total_counts=self._dense(self.tot, weights=False),
            total_sizes=self._dense(self.tot, weights=True),
            n_messages=n_messages,
            exact=exact,
        )


def _build_network(trace: ReplayTrace, binding, topology, params, seed):
    from repro.simmpi.network import Network

    topo = topology if topology is not None \
        else topology_from_json(trace.topology)
    prm = params if params is not None else params_from_json(trace.params)
    bnd = list(trace.binding) if binding is None else list(binding)
    if len(bnd) != trace.world_size:
        raise ReplayError(
            f"binding has {len(bnd)} entries for {trace.world_size} ranks")
    sd = trace.seed if seed is None else int(seed)
    # record_nic=False: the replayer never reads the per-node hardware
    # counters, and skipping their per-message appends does not change
    # any cost computation.
    return Network(topo, bnd, prm, seed=sd, record_nic=False)


def _is_exact(trace: ReplayTrace, binding, topology, params, seed) -> bool:
    if binding is not None and list(binding) != list(trace.binding):
        return False
    if topology is not None and \
            [[n, a] for n, a in
             zip(topology.level_names, topology.arities)] != \
            [[n, int(a)] for n, a in trace.topology]:
        return False
    if params is not None and params != params_from_json(trace.params):
        return False
    if seed is not None and int(seed) != trace.seed:
        return False
    return True


def replay(
    trace: ReplayTrace,
    binding: Optional[List[int]] = None,
    topology=None,
    params=None,
    seed: Optional[int] = None,
    substitute: Optional[Dict[str, str]] = None,
    verify: bool = False,
) -> ReplayResult:
    """Re-cost a recorded run, optionally under a different placement.

    With every knob left at None the replay is *exact*: issue times use
    the recorded absolute clocks and the result is bit-identical to the
    live run.  ``verify=True`` additionally cross-checks the recomputed
    clocks against the recorded ones at every zero-gap event (a strong
    internal-consistency audit of the timing model).

    ``substitute`` maps collective op names to replacement algorithms,
    e.g. ``{"bcast": "chain"}`` — every recorded instance of the op is
    re-decomposed with the replacement algorithm and the whole trace is
    rescheduled in derived order.
    """
    if substitute:
        from repro.replay.patterns import apply_substitution

        per_rank = apply_substitution(trace, substitute)
        net = _build_network(trace, binding, topology, params, seed)
        return _replay_derived(trace, per_rank, net)
    net = _build_network(trace, binding, topology, params, seed)
    exact = _is_exact(trace, binding, topology, params, seed)
    if verify and not exact:
        raise ReplayError("verify requires an exact (identity) replay")
    if exact or verify:
        return _replay_recorded(trace, net, exact, verify)
    return _replay_compiled(trace, net)


# ---------------------------------------------------------------------------
# recorded-order replay


def _replay_recorded(trace: ReplayTrace, net, exact: bool,
                     verify: bool) -> ReplayResult:
    n = trace.world_size
    last = [0.0] * n
    # Sequence numbers are dense (a single recorder counter), so a
    # flat slot table beats a dict on the per-event hot path.
    arrivals: List[Optional[float]] = [None] * (len(trace.events) + 1)
    books = _Books(n)
    ovh = trace.monitoring_overhead
    orecv = net.recv_overhead
    alpha = net._alpha_l
    nr = net._n_ranks
    transfer = net.transfer
    bad: List[str] = []

    def check(r: int, t: float, gap: float) -> None:
        if gap == 0.0 and last[r] != t:
            bad.append(f"rank {r}: computed {last[r]!r} != recorded {t!r}")

    for ev in trace.events:
        kind = ev[0]
        if kind == "S":
            _, r, dst, nb, cat, mcat, seq, t, gap = ev
            if verify:
                check(r, t, gap)
            tt = t if exact else last[r] + gap
            if mcat and ovh > 0.0:
                tt = tt + ovh
            done, arr = transfer(r, dst, nb, tt)
            arrivals[seq] = arr
            last[r] = done
            books.book(cat, mcat, r, dst, nb)
        elif kind == "R":
            _, r, seq, t, gap = ev
            if verify:
                check(r, t, gap)
            tt = t if exact else last[r] + gap
            arr = arrivals[seq]
            if arr is None:
                raise ReplayError(
                    f"receive references unsent message #{seq}")
            last[r] = max(tt, arr) + orecv
        elif kind == "P":
            _, r, dst, nb, mcat, t, gap = ev
            if verify:
                check(r, t, gap)
            tt = t if exact else last[r] + gap
            if mcat and ovh > 0.0:
                tt = tt + ovh
            done, _arr = transfer(r, dst, nb, tt)
            last[r] = done
            books.book("osc", mcat, r, dst, nb)
        elif kind == "G":
            _, r, target, nb, mcat, t, gap = ev
            if verify:
                check(r, t, gap)
            tt = t if exact else last[r] + gap
            if mcat and ovh > 0.0:
                tt = tt + ovh
            t_req = tt + alpha[r * nr + target]
            _done, arr = transfer(target, r, nb, t_req)
            last[r] = max(tt, arr) + orecv
            books.book("osc", mcat, target, r, nb)
        elif kind == "F":
            _, r, t, gap = ev
            if verify:
                check(r, t, gap)
            last[r] = t if exact else last[r] + gap
        # "B"/"E" markers carry no cost in recorded order.

    if bad:
        head = "; ".join(bad[:5])
        raise ReplayVerifyError(
            f"{len(bad)} clock divergences in exact replay: {head}")
    return books.result(last, net.n_messages, exact)


# ---------------------------------------------------------------------------
# compiled recorded-order replay (the placement-search hot path)


class CompiledTrace(NamedTuple):
    """A trace pre-digested for repeated re-costing.

    Tuple-compatible with the historical 7-tuple (the per-candidate
    loop still destructures it positionally); :meth:`nbytes` adds the
    memory estimate the serving layer's byte-bounded LRU evicts by.
    """

    prog: List[tuple]
    counts: Dict[str, "np.ndarray"]
    sizes: Dict[str, "np.ndarray"]
    total_counts: Dict[str, "np.ndarray"]
    total_sizes: Dict[str, "np.ndarray"]
    n_messages: int
    max_seq: int

    def nbytes(self) -> int:
        """Resident size of the book, in bytes.

        Numpy buffers are exact; the compact op stream is estimated as
        the list spine + each record's tuple shell + one boxed float /
        large int per payload slot (CPython boxes are 28–32 bytes;
        small ints and the empty-overhead 0.0 are interned, so 32 per
        slot is a deliberate slight over-estimate — an LRU should err
        toward evicting early, not late).
        """
        total = 0
        for table in (self.counts, self.sizes,
                      self.total_counts, self.total_sizes):
            for mat in table.values():
                total += int(mat.nbytes)
        total += sys.getsizeof(self.prog)
        for rec in self.prog:
            total += sys.getsizeof(rec) + 32 * (len(rec) - 1)
        return total


def compile_trace(trace: ReplayTrace) -> CompiledTrace:
    """Public spelling of the compile step (cached on the trace).

    Standalone use: ``compile_trace(trace).nbytes()`` is what one hot
    book costs to keep resident — the unit the ``repro.serve`` LRU
    budgets by.
    """
    return _compile_trace(trace)


def _compile_trace(trace: ReplayTrace) -> CompiledTrace:
    """Pre-digest a trace for repeated re-costing (cached on the trace).

    Two facts make this profitable: the byte matrices are
    *placement-invariant* (what was sent does not depend on where ranks
    sit), so the books can be built once per trace instead of once per
    candidate; and B/E markers carry no cost in recorded order, so the
    per-candidate loop only needs a compact op stream of the timed
    events, with the rank-pair index and the monitoring-overhead charge
    resolved at compile time.  Assumes ``trace.events`` is not mutated
    afterwards (nothing in this package mutates a loaded trace).
    """
    cached = getattr(trace, "_compiled", None)
    if cached is not None:
        return cached
    n = trace.world_size
    ovh = trace.monitoring_overhead
    books = _Books(n)
    prog: List[tuple] = []
    n_messages = 0
    max_seq = 0
    for ev in trace.events:
        kind = ev[0]
        if kind == "S":
            _, r, dst, nb, cat, mcat, seq, _t, gap = ev
            o = ovh if (mcat and ovh > 0.0) else 0.0
            prog.append((0, r, dst, nb, o, seq, gap, r * n + dst))
            books.book(cat, mcat, r, dst, nb)
            n_messages += 1
            max_seq = seq if seq > max_seq else max_seq
        elif kind == "R":
            prog.append((1, ev[1], ev[2], ev[4]))
        elif kind == "F":
            prog.append((2, ev[1], ev[3]))
        elif kind == "P":
            _, r, dst, nb, mcat, _t, gap = ev
            o = ovh if (mcat and ovh > 0.0) else 0.0
            prog.append((3, r, dst, nb, o, gap))
            books.book("osc", mcat, r, dst, nb)
            n_messages += 1
        elif kind == "G":
            _, r, target, nb, mcat, _t, gap = ev
            o = ovh if (mcat and ovh > 0.0) else 0.0
            prog.append((4, r, target, nb, o, gap))
            books.book("osc", mcat, target, r, nb)
            n_messages += 1
        # "B"/"E" markers cost nothing in recorded order.
    counts = books._dense(books.mon, weights=False)
    sizes = books._dense(books.mon, weights=True)
    total_counts = books._dense(books.tot, weights=False)
    total_sizes = books._dense(books.tot, weights=True)
    compiled = CompiledTrace(prog, counts, sizes, total_counts, total_sizes,
                             n_messages, max_seq)
    trace._compiled = compiled
    return compiled


def trace_byte_matrix(trace: ReplayTrace,
                      monitored_only: bool = False) -> np.ndarray:
    """Same matrix as :meth:`ReplayTrace.byte_matrix`, but summed from
    the compile cache — one event sweep serves both the matrix and all
    subsequent re-costings, which matters when the search is racing a
    live re-simulation."""
    compiled = _compile_trace(trace)
    src = compiled[2] if monitored_only else compiled[4]
    out = np.zeros((trace.world_size, trace.world_size), dtype=np.uint64)
    for mat in src.values():
        out += mat
    return out


def _replay_compiled(trace: ReplayTrace, net) -> ReplayResult:
    """Recorded-order re-costing under a non-identity configuration.

    Produces clocks bitwise-identical to :func:`_replay_recorded` in
    non-exact mode (pinned by a test): the send path below inlines
    :meth:`Network.transfer` operation-for-operation — same float
    expression order, same jitter-stream consumption — minus the
    per-message call overhead and the hardware-counter bookkeeping the
    replayer never reads.  The shared matrices in the result come from
    the per-trace compile cache; treat them as read-only.
    """
    prog, counts, sizes, total_counts, total_sizes, n_messages, max_seq = \
        _compile_trace(trace)
    n = trace.world_size
    last = [0.0] * n
    arrivals: List[Optional[float]] = [None] * (max_seq + 1)
    orecv = net.recv_overhead
    alpha_l = net._alpha_l
    nr = net._n_ranks
    pair_l = net._pair_l
    nic_free = net._nic_free
    mem_free = net._mem_free
    mem_bw = net._mem_bw
    o_send = net._o_send
    sigma = net._sigma
    blk = net._jit_blk
    jlen = len(blk)
    jpos = net._jit_pos
    transfer = net.transfer

    for rec in prog:
        k = rec[0]
        if k == 0:  # send — Network.transfer inlined
            _, r, dst, nb, o, seq, gap, pidx = rec
            tt = last[r] + gap
            if o:
                tt = tt + o
            alpha, bw, src_node, dst_node, _cross, nic_gate, mem_gate = \
                pair_l[pidx]
            if sigma > 0.0:
                if jpos + 2 > jlen:
                    # _refill_jitter slices the unconsumed tail from
                    # _jit_pos, so the local cursor must be synced first.
                    net._jit_pos = jpos
                    blk = net._refill_jitter()
                    jlen = len(blk)
                    jpos = 0
                lat = alpha * blk[jpos]
                bwt = (nb / bw) * blk[jpos + 1]
                jpos = jpos + 2
            else:
                lat = alpha
                bwt = nb / bw
            start = tt + o_send
            if nic_gate:
                f = nic_free[src_node]
                if f > start:
                    start = f
            mem_gate = mem_gate and nb > 0
            if mem_gate:
                start = max(start, mem_free[src_node], mem_free[dst_node])
            if nic_gate:
                nic_free[src_node] = start + bwt
            if mem_gate:
                mem_t = nb / mem_bw
                mem_free[src_node] = start + mem_t
                if dst_node != src_node:
                    mem_free[dst_node] = start + mem_t
            arrivals[seq] = start + lat + bwt
            last[r] = start + bwt
        elif k == 1:  # receive-wait
            _, r, seq, gap = rec
            tt = last[r] + gap
            arr = arrivals[seq]
            if arr is None:
                raise ReplayError(
                    f"receive references unsent message #{seq}")
            last[r] = arr + orecv if arr > tt else tt + orecv
        elif k == 2:  # final compute tail
            _, r, gap = rec
            last[r] = last[r] + gap
        elif k == 3:  # one-sided put
            _, r, dst, nb, o, gap = rec
            net._jit_pos = jpos
            net._jit_blk = blk
            tt = last[r] + gap
            if o:
                tt = tt + o
            done, _arr = transfer(r, dst, nb, tt)
            last[r] = done
            blk = net._jit_blk
            jlen = len(blk)
            jpos = net._jit_pos
        else:  # one-sided get
            _, r, target, nb, o, gap = rec
            net._jit_pos = jpos
            net._jit_blk = blk
            tt = last[r] + gap
            if o:
                tt = tt + o
            t_req = tt + alpha_l[r * nr + target]
            _done, arr = transfer(target, r, nb, t_req)
            last[r] = max(tt, arr) + orecv
            blk = net._jit_blk
            jlen = len(blk)
            jpos = net._jit_pos

    net._jit_pos = jpos
    net._jit_blk = blk
    return ReplayResult(
        clocks=list(last),
        counts=counts,
        sizes=sizes,
        total_counts=total_counts,
        total_sizes=total_sizes,
        n_messages=n_messages,
        exact=False,
    )


# ---------------------------------------------------------------------------
# derived-order replay (collective substitution)


def _replay_derived(trace: ReplayTrace, per_rank: List[List[tuple]],
                    net) -> ReplayResult:
    n = trace.world_size
    last = [0.0] * n
    max_seq = max((ev[6] for q in per_rank for ev in q if ev[0] == "S"),
                  default=0)
    arrivals: List[Optional[float]] = [None] * (max_seq + 1)
    books = _Books(n)
    ovh = trace.monitoring_overhead
    orecv = net.recv_overhead
    alpha = net._alpha_l
    nr = net._n_ranks
    transfer = net.transfer
    heads = [0] * n
    remaining = sum(len(q) for q in per_rank)

    while remaining:
        progress = True
        while progress:
            progress = False
            for r in range(n):
                q = per_rank[r]
                i = heads[r]
                while i < len(q):
                    ev = q[i]
                    kind = ev[0]
                    if kind == "B" or kind == "E":
                        i += 1
                        remaining -= 1
                        progress = True
                        continue
                    if kind == "R":
                        arr = arrivals[ev[2]]
                        if arr is None:
                            break
                        last[r] = max(last[r] + ev[4], arr) + orecv
                        i += 1
                        remaining -= 1
                        progress = True
                        continue
                    if kind == "F":
                        last[r] = last[r] + ev[3]
                        i += 1
                        remaining -= 1
                        progress = True
                        continue
                    break
                heads[r] = i

        # Among ranks parked on an injection (S/P/G), the earliest
        # (issue time, rank) claims the network next — the live
        # scheduler's tie-break.
        best_r = -1
        best_t = 0.0
        for r in range(n):
            q = per_rank[r]
            if heads[r] < len(q):
                ev = q[heads[r]]
                if ev[0] in ("S", "P", "G"):
                    t_issue = last[r] + ev[-1]
                    if best_r < 0 or t_issue < best_t:
                        best_r = r
                        best_t = t_issue
        if best_r < 0:
            if remaining:
                stuck = [(r, per_rank[r][heads[r]][0]) for r in range(n)
                         if heads[r] < len(per_rank[r])]
                raise ReplayError(
                    f"replay deadlock: {remaining} events stuck, "
                    f"blocked heads {stuck[:8]}")
            break

        r = best_r
        ev = per_rank[r][heads[r]]
        heads[r] += 1
        remaining -= 1
        kind = ev[0]
        tt = best_t
        if kind == "S":
            _, _r, dst, nb, cat, mcat, seq, _t, _gap = ev
            if mcat and ovh > 0.0:
                tt = tt + ovh
            done, arr = transfer(r, dst, nb, tt)
            arrivals[seq] = arr
            last[r] = done
            books.book(cat, mcat, r, dst, nb)
        elif kind == "P":
            _, _r, dst, nb, mcat, _t, _gap = ev
            if mcat and ovh > 0.0:
                tt = tt + ovh
            done, _arr = transfer(r, dst, nb, tt)
            last[r] = done
            books.book("osc", mcat, r, dst, nb)
        else:  # "G"
            _, _r, target, nb, mcat, _t, _gap = ev
            if mcat and ovh > 0.0:
                tt = tt + ovh
            t_req = tt + alpha[r * nr + target]
            _done, arr = transfer(target, r, nb, t_req)
            last[r] = max(tt, arr) + orecv
            books.book("osc", mcat, target, r, nb)

    return books.result(last, net.n_messages, exact=False)
