"""What-if placement search over a recorded trace.

The paper's loop is *monitor once, then decide*: the introspection
matrix feeds TreeMatch, which produces a permutation the application
applies via ``MPI_Comm_split``.  A recorded replay trace lets that
decision run **offline**: candidate placements are scored by replaying
the same event stream through the network cost model under each
binding — milliseconds per candidate instead of re-running the live
simulation — and the winner is folded back into the live protocol as
the permutation ``k`` that :func:`repro.placement.reorder` expects.

Strategies (all consume the trace's aggregate byte matrix and the
recorded binding's PU set):

==========  ==============================================================
identity    the recorded binding, unchanged (the score to beat)
treematch   :func:`repro.placement.treematch.treematch`
round_robin the paper's RR baseline (deal ranks across nodes)
random      seeded uniform permutation of the allowed PUs
greedy      heaviest-edge-first adjacent packing
local       greedy start + pairwise-swap hill climbing on hop-bytes
==========  ==============================================================

Each candidate is scored by the replay makespan (the decision metric)
and by the static placement metrics (:mod:`repro.placement.metrics`),
so disagreements between the cost model and the static surrogates are
visible in the report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs as _obs
from repro.replay.engine import replay, trace_byte_matrix
from repro.replay.schema import ReplayTrace, params_from_json, topology_from_json

__all__ = ["STRATEGIES", "Candidate", "SearchResult", "score_candidate",
           "what_if_search"]

STRATEGIES = ("identity", "treematch", "round_robin", "random", "greedy",
              "local")


@dataclass
class Candidate:
    """One scored placement."""

    strategy: str
    placement: List[int]  # placement[rank] = PU
    makespan: float  # replayed end-to-end virtual time (the decision metric)
    hop_bytes: float
    inter_node_bytes: float
    modeled_cost: float
    wall_seconds: float  # compute placement + replay, host time


@dataclass
class SearchResult:
    """All candidates (best first) plus the winning permutation."""

    candidates: List[Candidate]
    recorded_makespan: float
    k: np.ndarray  # new rank of each original rank, for comm.split
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def best(self) -> Candidate:
        return self.candidates[0]

    @property
    def speedup(self) -> float:
        m = self.best.makespan
        return self.recorded_makespan / m if m else float("inf")


def _candidate_placement(strategy: str, matrix, topology, allowed_pus,
                         seed: int) -> List[int]:
    from repro.placement import baselines
    from repro.placement.treematch import treematch

    if strategy == "identity":
        return list(allowed_pus)
    if strategy == "treematch":
        return treematch(matrix, topology, allowed_pus=allowed_pus)
    if strategy == "round_robin":
        return baselines.round_robin_placement(
            len(allowed_pus), topology, allowed_pus=allowed_pus)
    if strategy == "random":
        return baselines.random_placement(
            len(allowed_pus), topology, allowed_pus=allowed_pus, seed=seed)
    if strategy == "greedy":
        return baselines.greedy_edge_placement(
            matrix, topology, allowed_pus=allowed_pus)
    if strategy == "local":
        return baselines.local_search_placement(
            matrix, topology, allowed_pus=allowed_pus)
    raise ValueError(
        f"unknown search strategy {strategy!r}; have {STRATEGIES}")


def _generator_matrix(matrix, topology, recorded, focus):
    """The matrix the candidate *generators* see.

    With a focus (:mod:`repro.placement.focus`) the matrix-driven
    strategies optimize a re-weighted copy biased toward the diagnosed
    straggler ranks / congested link classes; scoring always uses the
    true matrix, so ranking stays honest.
    """
    if not focus:
        return matrix
    from repro.placement.focus import weighted_matrix

    return weighted_matrix(matrix, topology, recorded, focus)


def _score(trace: ReplayTrace, strategy: str, matrix, gen_matrix, topology,
           params, recorded, seed: int,
           substitute: Optional[Dict[str, str]]) -> Candidate:
    from repro.placement import metrics as pmetrics

    t0 = time.perf_counter()
    placement = _candidate_placement(strategy, gen_matrix, topology,
                                     recorded, seed)
    res = replay(trace, binding=placement, substitute=substitute)
    wall = time.perf_counter() - t0
    return Candidate(
        strategy=strategy,
        placement=list(placement),
        makespan=res.max_clock,
        hop_bytes=pmetrics.hop_bytes(matrix, topology, placement),
        inter_node_bytes=pmetrics.inter_node_bytes(
            matrix, topology, placement),
        modeled_cost=pmetrics.modeled_cost(
            matrix, topology, placement, params),
        wall_seconds=wall,
    )


def score_candidate(
    trace: ReplayTrace,
    strategy: str,
    seed: int = 0,
    substitute: Optional[Dict[str, str]] = None,
    focus=None,
) -> Candidate:
    """Score one placement strategy against a recorded trace.

    Candidates are independent — each replay rebuilds the network cost
    model from the trace header, so scoring a strategy alone yields the
    **bit-identical** Candidate that :func:`what_if_search` would have
    produced for it inside a full sweep.  This is the unit of work the
    ``repro.serve`` worker pool dispatches (and its result cache keys).
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown search strategy {strategy!r}; "
                         f"have {STRATEGIES}")
    topology = topology_from_json(trace.topology)
    params = params_from_json(trace.params)
    recorded = list(trace.binding)
    matrix = trace_byte_matrix(trace)
    gen_matrix = _generator_matrix(matrix, topology, recorded, focus)
    return _score(trace, strategy, matrix, gen_matrix, topology, params,
                  recorded, seed, substitute)


def what_if_search(
    trace: ReplayTrace,
    strategies: Optional[Sequence[str]] = None,
    seed: int = 0,
    substitute: Optional[Dict[str, str]] = None,
    focus=None,
) -> SearchResult:
    """Score candidate placements for a recorded trace by replay.

    Returns a :class:`SearchResult` whose candidates are sorted by
    replayed makespan (ties broken by strategy-list order, so the
    cheaper-to-apply strategy wins an exact tie).  ``substitute``
    forwards a collective-algorithm substitution to every replay, so
    "what if we *also* switched the bcast to chain" composes with the
    placement axis.  ``focus`` (a :class:`repro.placement.focus.Focus`
    from a diagnosis report) re-weights the matrix the candidate
    generators optimize; see :func:`_generator_matrix`.
    """
    from repro.placement.mapping import reorder_permutation

    names = list(strategies) if strategies is not None else list(STRATEGIES)
    for s in names:
        if s not in STRATEGIES:
            raise ValueError(f"unknown search strategy {s!r}; "
                             f"have {STRATEGIES}")

    topology = topology_from_json(trace.topology)
    params = params_from_json(trace.params)
    recorded = list(trace.binding)
    # One event sweep builds both this matrix and the compiled program
    # every candidate replay reuses.
    matrix = trace_byte_matrix(trace)
    gen_matrix = _generator_matrix(matrix, topology, recorded, focus)
    reg = _obs.registry()
    rec = _obs.spans()

    candidates: List[Candidate] = []
    for strategy in names:
        if rec is not None:
            rec.wall_begin(f"replay.search[{strategy}]")
        try:
            cand = _score(trace, strategy, matrix, gen_matrix, topology,
                          params, recorded, seed, substitute)
        finally:
            if rec is not None:
                rec.wall_end()
        candidates.append(cand)
        reg.counter("replay_search_candidates_total",
                    strategy=strategy).inc()
        reg.gauge("replay_search_makespan_seconds",
                  strategy=strategy).set(cand.makespan)

    order = sorted(range(len(candidates)),
                   key=lambda i: (candidates[i].makespan, i))
    ranked = [candidates[i] for i in order]
    best = ranked[0]
    k = reorder_permutation(best.placement, recorded)
    recorded_makespan = max(trace.clocks) if trace.clocks else 0.0
    return SearchResult(
        candidates=ranked,
        recorded_makespan=recorded_makespan,
        k=k,
        meta={
            "strategies": names,
            "seed": int(seed),
            "substitute": dict(substitute) if substitute else None,
            "focus": focus.to_dict() if focus else None,
            "world_size": trace.world_size,
            "n_events": len(trace.events),
        },
    )
