"""``python -m repro.replay`` — record, replay, search, diff.

Subcommands::

    record   run a Fig. 5 collective cell under the recorder, write a trace
    replay   re-cost a trace (identity, new binding, or substituted algs)
    search   score candidate placements offline; optionally benchmark
             the search against live re-simulation (``--bench``)
    diff     compare two traces (or two replays of one trace)

The trace file is the interchange format: any experiment driver can
produce one via its shared ``--trace-out`` flag
(:mod:`repro.experiments.common`), and everything here consumes it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

__all__ = ["main"]

BENCH_SCHEMA = 1


# ---------------------------------------------------------------------------
# shared helpers


def _parse_substitute(pairs: Optional[List[str]]) -> Optional[Dict[str, str]]:
    if not pairs:
        return None
    out: Dict[str, str] = {}
    for pair in pairs:
        if "=" not in pair:
            raise argparse.ArgumentTypeError(
                f"--substitute wants op=alg, got {pair!r}")
        op, alg = pair.split("=", 1)
        out[op.strip()] = alg.strip()
    return out


def _parse_binding(text: Optional[str]) -> Optional[List[int]]:
    if text is None:
        return None
    return [int(tok) for tok in text.replace(",", " ").split()]


def _load(path: str):
    from repro.replay.schema import ReplayTrace

    return ReplayTrace.load(path)


def _summary_lines(trace, res) -> List[str]:
    lines = [
        f"events      {len(trace.events)}",
        f"ranks       {trace.world_size}",
        f"messages    {res.n_messages}",
        f"mode        {'exact (bit-identical to the live run)' if res.exact else 'recosted'}",
        f"makespan    {res.max_clock:.6f} s (recorded {max(trace.clocks):.6f} s)",
    ]
    for cat, mat in res.total_sizes.items():
        total = int(mat.sum())
        if total:
            lines.append(f"bytes[{cat}] {total}")
    return lines


# ---------------------------------------------------------------------------
# record


def _cmd_record(args) -> int:
    from repro.experiments import fig5_collectives
    from repro.replay import autorecord

    sizes = args.sizes or (1_000_000, 5_000_000)
    meta = {
        "workload": "fig5",
        "op": args.op,
        "n_nodes": args.nodes,
        "sizes": list(sizes),
        "reps": args.reps,
        "seed": args.seed,
        "core": args.core,
    }
    autorecord.enable_to(args.out, meta=meta)
    try:
        points = fig5_collectives.run_cell(
            args.op, args.nodes, sizes=tuple(sizes), reps=args.reps,
            seed=args.seed, core=args.core)
    finally:
        autorecord.disable()
    trace = _load(args.out)
    print(f"recorded {len(trace.events)} events from fig5[{args.op}] "
          f"({trace.world_size} ranks, {args.core} core) -> {args.out}")
    for p in points:
        print(f"  n_ints={p.n_ints:>10}  baseline {p.t_baseline:.4f}s  "
              f"reordered {p.t_reordered:.4f}s")
    return 0


# ---------------------------------------------------------------------------
# replay


def _cmd_replay(args) -> int:
    from repro.replay.engine import replay

    trace = _load(args.trace)
    binding = _parse_binding(args.binding)
    if args.swap_pus:
        binding = list(trace.binding) if binding is None else binding
        a, b = args.swap_pus
        binding = [b if pu == a else a if pu == b else pu for pu in binding]
    res = replay(trace, binding=binding, seed=args.seed,
                 substitute=_parse_substitute(args.substitute),
                 verify=args.verify)
    for line in _summary_lines(trace, res):
        print(line)
    if args.verify:
        print("verify      every zero-gap clock matches the recording")
    if args.json:
        doc = {
            "makespan": res.max_clock,
            "clocks": res.clocks,
            "exact": res.exact,
            "n_messages": res.n_messages,
            "total_bytes": {c: int(m.sum())
                            for c, m in res.total_sizes.items()},
            "monitored_bytes": {c: int(m.sum())
                                for c, m in res.sizes.items()},
        }
        with open(args.json, "w", encoding="ascii") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


# ---------------------------------------------------------------------------
# search


def _cmd_search(args) -> int:
    from repro.experiments.common import render_table
    from repro.replay.engine import compile_trace
    from repro.replay.search import STRATEGIES, what_if_search

    trace = _load(args.trace)
    strategies = ([s.strip() for s in args.strategies.split(",") if s.strip()]
                  if args.strategies else list(STRATEGIES))
    focus = None
    if args.focus_from:
        from repro.placement.focus import DEFAULT_WEIGHT, load_focus

        weight = (args.focus_weight if args.focus_weight is not None
                  else DEFAULT_WEIGHT)
        focus = load_focus(args.focus_from, weight=weight)
        print(f"focus from {args.focus_from}: "
              f"stragglers {list(focus.straggler_ranks) or '-'}, "
              f"congested {list(focus.congested_classes) or '-'} "
              f"(weight {focus.weight:g}x on the generator matrix)",
              file=sys.stderr)
    t0 = time.perf_counter()
    res = what_if_search(trace, strategies=strategies, seed=args.seed,
                         substitute=_parse_substitute(args.substitute),
                         focus=focus)
    search_wall = time.perf_counter() - t0
    book = compile_trace(trace)
    rows = [
        (c.strategy, round(c.makespan, 6),
         round(res.recorded_makespan / c.makespan, 3) if c.makespan else "inf",
         int(c.inter_node_bytes), round(c.wall_seconds * 1e3, 1))
        for c in res.candidates
    ]
    print(render_table(
        ["strategy", "makespan (s)", "speedup", "inter-node bytes",
         "wall (ms)"],
        rows,
        title=f"what-if placement search over {args.trace} "
              f"({trace.world_size} ranks, {len(trace.events)} events)"))
    print(f"\nbest: {res.best.strategy} "
          f"(makespan {res.best.makespan:.6f}s, "
          f"{res.speedup:.2f}x vs recorded; search took {search_wall:.3f}s)")
    print(f"k = {list(map(int, res.k))}")
    print(f"compiled book: {book.nbytes():,} bytes resident "
          f"({book.n_messages} messages), shared across all "
          f"{len(res.candidates)} candidates")
    if args.bench:
        _write_bench(args.bench, trace, res, search_wall)
    if args.json:
        doc = {
            "recorded_makespan": res.recorded_makespan,
            "best": res.best.strategy,
            "speedup": res.speedup,
            "k": [int(v) for v in res.k],
            "candidates": [
                {"strategy": c.strategy, "makespan": c.makespan,
                 "placement": c.placement, "hop_bytes": c.hop_bytes,
                 "inter_node_bytes": c.inter_node_bytes,
                 "modeled_cost": c.modeled_cost,
                 "wall_seconds": c.wall_seconds}
                for c in res.candidates
            ],
            "meta": res.meta,
        }
        with open(args.json, "w", encoding="ascii") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


def _write_bench(path: str, trace, res, search_wall: float) -> None:
    """Benchmark the replay search against live re-simulation.

    For every candidate the search scored, re-run the *recording
    workload* live under that candidate's binding and wall-time it —
    the honest comparator: what scoring the same placements would cost
    without the trace.  Only traces recorded by ``record`` (or any
    driver that stamps ``meta["workload"]``) know their workload.
    """
    from repro.experiments import fig5_collectives
    from repro.replay.schema import build_cluster
    from repro.simmpi import Engine

    meta = trace.meta or {}
    if meta.get("workload") != "fig5":
        raise SystemExit(
            "--bench needs a trace recorded by `repro-replay record` "
            f"(meta.workload == 'fig5'); this trace has {meta!r}")
    live: Dict[str, Dict[str, float]] = {}
    live_total = 0.0
    for c in res.candidates:
        cluster = build_cluster(trace, binding=c.placement)
        engine = Engine(cluster, seed=int(meta.get("seed", 0)))
        t0 = time.perf_counter()
        fig5_collectives.run_cell(
            meta["op"], int(meta["n_nodes"]),
            sizes=tuple(meta["sizes"]), reps=int(meta["reps"]),
            seed=int(meta.get("seed", 0)), engine=engine)
        wall = time.perf_counter() - t0
        live_total += wall
        live[c.strategy] = {"wall_seconds": wall,
                            "makespan": engine.max_clock}
    replay_total = sum(c.wall_seconds for c in res.candidates)
    doc = {
        "schema": BENCH_SCHEMA,
        "workload": meta.get("workload"),
        "cell": {k: meta[k] for k in
                 ("op", "n_nodes", "sizes", "reps", "seed") if k in meta},
        "world_size": trace.world_size,
        "n_events": len(trace.events),
        "strategies": [c.strategy for c in res.candidates],
        "replay_search": {
            "total_wall_seconds": search_wall,
            "candidate_wall_seconds": replay_total,
            "per_strategy": {
                c.strategy: {"wall_seconds": c.wall_seconds,
                             "makespan": c.makespan}
                for c in res.candidates
            },
        },
        "live_rerun": {
            "total_wall_seconds": live_total,
            "per_strategy": live,
        },
        "speedup": live_total / search_wall if search_wall else float("inf"),
    }
    with open(path, "w", encoding="ascii") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"bench: live {live_total:.3f}s vs replay search "
          f"{search_wall:.3f}s = {doc['speedup']:.1f}x -> {path}")


# ---------------------------------------------------------------------------
# diff


def _cmd_diff(args) -> int:
    import numpy as np

    from repro.replay.engine import replay

    ta, tb = _load(args.a), _load(args.b)
    if ta.world_size != tb.world_size:
        print(f"world size differs: {ta.world_size} vs {tb.world_size}")
        return 1
    sub = _parse_substitute(args.substitute)
    ra = replay(ta)
    rb = replay(tb, substitute=sub)
    rc = 0
    print(f"events     {len(ta.events)} vs {len(tb.events)}")
    print(f"messages   {ra.n_messages} vs {rb.n_messages}")
    print(f"makespan   {ra.max_clock:.6f} vs {rb.max_clock:.6f} "
          f"(delta {rb.max_clock - ra.max_clock:+.6f})")
    for label, ma, mb in (
        ("total", ra.byte_matrix(), rb.byte_matrix()),
        ("monitored", ra.byte_matrix(True), rb.byte_matrix(True)),
    ):
        if np.array_equal(ma, mb):
            print(f"{label:9s}  byte matrices identical "
                  f"({int(ma.sum())} bytes)")
        else:
            d = np.argwhere(ma != mb)
            delta = int(mb.sum()) - int(ma.sum())
            print(f"{label:9s}  {len(d)} pairs differ, "
                  f"net {delta:+d} bytes; first "
                  + ", ".join(
                      f"({int(i)},{int(j)}): {int(ma[i, j])}->{int(mb[i, j])}"
                      for i, j in d[:4]))
            rc = 1
    return rc


# ---------------------------------------------------------------------------
# parser


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.replay",
        description=__doc__.split("\n", 1)[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("record",
                       help="run a Fig. 5 cell under the recorder")
    p.add_argument("-o", "--out", required=True, metavar="PATH",
                   help="trace file to write")
    p.add_argument("--op", choices=["reduce", "bcast"], default="reduce")
    p.add_argument("--nodes", type=int, default=2,
                   help="PlaFRIM node count (24 ranks per node)")
    p.add_argument("--sizes", type=_sizes, default=None, metavar="N,N,...",
                   help="buffer sizes in MPI_INT counts "
                        "(default 1000000,5000000)")
    p.add_argument("--reps", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--core", choices=["threads", "eventloop"],
                   default="threads",
                   help="engine core to record under; both cores "
                        "produce bit-identical traces")
    p.set_defaults(func=_cmd_record)

    p = sub.add_parser("replay", help="re-cost a recorded trace")
    p.add_argument("trace", help="trace file from record / --trace-out")
    p.add_argument("--binding", default=None, metavar="PU,PU,...",
                   help="rank->PU binding override (world-rank order)")
    p.add_argument("--swap-pus", type=int, nargs=2, default=None,
                   metavar=("A", "B"), help="swap two PUs in the binding")
    p.add_argument("--substitute", action="append", metavar="OP=ALG",
                   help="collective algorithm substitution (repeatable)")
    p.add_argument("--seed", type=int, default=None,
                   help="jitter seed override")
    p.add_argument("--verify", action="store_true",
                   help="cross-check replayed clocks against the recording")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="also dump the result as JSON")
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser("search", help="what-if placement search")
    p.add_argument("trace")
    p.add_argument("--strategies", default=None, metavar="S,S,...",
                   help="comma-separated strategy list (default: all)")
    p.add_argument("--substitute", action="append", metavar="OP=ALG")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--focus-from", default=None, metavar="REPORT.json",
                   help="seed/weight the candidate generators from a "
                        "`repro.obs diagnose` report (straggler ranks + "
                        "congested link classes)")
    p.add_argument("--focus-weight", type=float, default=None,
                   metavar="W", help="generator-matrix multiplier for "
                                     "focused traffic (default 4)")
    p.add_argument("--json", metavar="PATH", default=None)
    p.add_argument("--bench", metavar="PATH", default=None,
                   help="also wall-time live re-simulation of every "
                        "candidate and write a benchmark JSON")
    p.set_defaults(func=_cmd_search)

    p = sub.add_parser("diff", help="compare two traces")
    p.add_argument("a")
    p.add_argument("b")
    p.add_argument("--substitute", action="append", metavar="OP=ALG",
                   help="apply a substitution to the second trace")
    p.set_defaults(func=_cmd_diff)
    return parser


def _sizes(text: str):
    from repro.experiments.common import parse_sizes

    return parse_sizes(text)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
