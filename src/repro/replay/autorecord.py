"""Ambient trace recording — the engine→replay coupling point.

:class:`repro.simmpi.engine.Engine` calls :func:`attach` once per
construction and, when recording is active, drives the returned
:class:`~repro.replay.record.ReplayRecorder` from its PML-layer hook
sites.  This module holds only the *ambient switch*: a process-global
"recording on/off" flag plus the sink finished traces go to.  It is
imported by the engine at module load, so it must stay import-light —
the actual recorder (and numpy-heavy schema code) is imported lazily,
only when recording is actually enabled.

Two front-ends:

``capture()``
    Context manager for tests and library code.  Every engine run that
    *finishes* inside the block appends its :class:`ReplayTrace` to the
    yielded list.

``enable_to(path)`` / ``disable()``
    Imperative pair used by the shared ``--trace-out`` experiment flag.
    The first finished run is dumped to ``path``, subsequent ones to
    ``path.1``, ``path.2``, ...
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, List, Optional

__all__ = ["capture", "enable_to", "disable", "is_recording", "attach"]

# Process-global recording state.  Deliberately a plain dict so the
# engine's fast path only pays one dict lookup when recording is off.
_state: Dict[str, Any] = {
    "active": False,
    "meta": None,      # dict merged into every trace header's "meta"
    "sink": None,      # list collecting ReplayTrace objects (capture mode)
    "path": None,      # base path for dump mode (enable_to)
    "count": 0,        # traces dumped so far in dump mode
}


def is_recording() -> bool:
    return bool(_state["active"])


@contextlib.contextmanager
def capture(meta: Optional[dict] = None):
    """Record every engine run finishing inside the block.

    Yields a list that accumulates :class:`ReplayTrace` objects, one per
    completed :meth:`Engine.run`.  Nested/concurrent use is not
    supported (the switch is process-global); re-entry raises.
    """
    if _state["active"]:
        raise RuntimeError("replay recording is already active")
    traces: List[Any] = []
    _state.update(active=True, meta=dict(meta or {}), sink=traces,
                  path=None, count=0)
    try:
        yield traces
    finally:
        disable()


def enable_to(path: str, meta: Optional[dict] = None) -> None:
    """Dump every finished run to ``path`` (then ``path.1``, ``path.2``...)."""
    if _state["active"]:
        raise RuntimeError("replay recording is already active")
    _state.update(active=True, meta=dict(meta or {}), sink=None,
                  path=str(path), count=0)


def disable() -> None:
    _state.update(active=False, meta=None, sink=None, path=None, count=0)


def attach(engine) -> Optional[object]:
    """Called by Engine.__init__; returns a recorder or None.

    Engines built while recording is off never record (the flag is
    sampled once, at construction), which keeps nested helper engines
    out of a capture only if they are constructed outside the block —
    engines built inside record as expected.
    """
    if not _state["active"]:
        return None
    from repro.replay.record import ReplayRecorder

    return ReplayRecorder(engine, dict(_state["meta"] or {}))


def _finished(trace) -> None:
    """Recorder callback: a run completed and its trace is final."""
    if not _state["active"]:
        return
    sink = _state["sink"]
    if sink is not None:
        sink.append(trace)
        return
    path = _state["path"]
    if path is None:  # pragma: no cover - defensive
        return
    n = _state["count"]
    target = path if n == 0 else f"{path}.{n}"
    trace.dump(target)
    _state["count"] = n + 1
