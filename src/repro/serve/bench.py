"""Load generator for the placement-advisory daemon.

``python -m repro.serve bench`` spawns a real daemon as a subprocess
on a private Unix socket, ingests a trace, and drives it through a
cold phase (unique seeds, so every query runs the worker pool) and a
ramp of hot phases (repeated queries at rising connection counts, so
answers come from the result cache).  Per-phase it records QPS and
p50/p99 latency plus the result-cache hit rate over the phase, then
checks **parity**: one served query is compared field-by-field against
a direct :func:`repro.replay.search.what_if_search` on the same trace
and parameters — makespans, placements, and the permutation ``k`` must
match exactly, which they do by construction (both paths run
:func:`~repro.replay.search.score_candidate`).

The committed ``BENCH_serve.json`` is written with
``schema=BENCH_SERVE_SCHEMA`` and validated in CI by
:func:`verify_bench` (sustained hot-phase QPS ≥ 1000 and exact
parity).  Measurement bound, stated honestly: the numbers come from a
single CI-class host over loopback — client, daemon, and workers share
the CPUs recorded in ``host.cpu_count``, so they are a *lower* bound
on what a dedicated daemon host would serve, not a cluster claim.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

from repro.serve import protocol
from repro.serve.client import ServeClient

__all__ = ["BENCH_SERVE_SCHEMA", "run_bench", "verify_bench",
           "DEFAULT_MIN_QPS"]

BENCH_SERVE_SCHEMA = 1

#: The acceptance floor for hot-phase throughput on a CI host.
DEFAULT_MIN_QPS = 1000.0

_HOT_STRATEGIES = ["identity", "treematch", "greedy"]


def _percentile(sorted_vals: List[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


# ---------------------------------------------------------------------------
# the async load loop


async def _client_loop(sock_path: str, query: Dict[str, Any],
                       stop_at: float, latencies: List[float]) -> int:
    reader, writer = await asyncio.open_unix_connection(sock_path)
    n = 0
    try:
        while time.perf_counter() < stop_at:
            t0 = time.perf_counter()
            await protocol.write_frame_async(writer, query)
            reply = await protocol.read_frame_async(reader)
            latencies.append(time.perf_counter() - t0)
            if reply is None or reply.get("type") != "result":
                raise RuntimeError(f"bench query failed: {reply!r}")
            n += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    return n


async def _hot_phase(sock_path: str, query: Dict[str, Any],
                     connections: int, duration_s: float) -> Dict[str, Any]:
    latencies: List[float] = []
    stop_at = time.perf_counter() + duration_s
    t0 = time.perf_counter()
    counts = await asyncio.gather(*[
        _client_loop(sock_path, query, stop_at, latencies)
        for _ in range(connections)
    ])
    wall = time.perf_counter() - t0
    latencies.sort()
    total = sum(counts)
    return {
        "connections": connections,
        "duration_s": round(wall, 4),
        "requests": total,
        "qps": round(total / wall, 1) if wall else 0.0,
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 4),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 4),
    }


# ---------------------------------------------------------------------------
# daemon management


def _spawn_daemon(sock_path: str, jobs: int, log_path: str):
    env = dict(os.environ)
    log = open(log_path, "wb")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "start",
         "--socket", sock_path, "--jobs", str(jobs)],
        stdout=log, stderr=log, env=env)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            log.close()
            with open(log_path, "r", encoding="utf-8",
                      errors="replace") as fh:
                raise RuntimeError(
                    f"daemon exited rc={proc.returncode} before serving:\n"
                    + fh.read())
        if os.path.exists(sock_path):
            try:
                with ServeClient(path=sock_path, timeout_s=5.0) as c:
                    c.ping()
                return proc, log
            except OSError:
                pass
        time.sleep(0.05)
    proc.kill()
    log.close()
    raise RuntimeError("daemon did not come up within 30s")


# ---------------------------------------------------------------------------
# parity: served results vs the direct search


def _parity_check(trace_path: str, served: Dict[str, Any],
                  strategies: List[str], seed: int) -> Dict[str, Any]:
    from repro.replay.schema import ReplayTrace
    from repro.replay.search import what_if_search

    trace = ReplayTrace.load(trace_path)
    direct = what_if_search(trace, strategies=strategies, seed=seed)
    mismatches: List[str] = []
    direct_by = {c.strategy: c for c in direct.candidates}
    for cand in served["candidates"]:
        ref = direct_by[cand["strategy"]]
        if cand["makespan"] != ref.makespan:
            mismatches.append(
                f"{cand['strategy']}: makespan {cand['makespan']!r} "
                f"!= {ref.makespan!r}")
        if [int(p) for p in cand["placement"]] != \
                [int(p) for p in ref.placement]:
            mismatches.append(f"{cand['strategy']}: placement differs")
    if served["best"] != direct.best.strategy:
        mismatches.append(
            f"best {served['best']} != {direct.best.strategy}")
    if [int(v) for v in served["k"]] != [int(v) for v in direct.k]:
        mismatches.append("permutation k differs")
    if served["recorded_makespan"] != direct.recorded_makespan:
        mismatches.append("recorded_makespan differs")
    return {
        "ok": not mismatches,
        "strategies": strategies,
        "seed": seed,
        "mismatches": mismatches,
    }


# ---------------------------------------------------------------------------
# the bench


def run_bench(
    trace_path: str,
    out_path: Optional[str] = None,
    jobs: int = 2,
    duration_s: float = 2.0,
    connection_ramp: (tuple) = (1, 4, 16),
    cold_queries: int = 16,
    min_qps: float = DEFAULT_MIN_QPS,
) -> Dict[str, Any]:
    """Benchmark a live daemon end to end; returns (and writes) the doc."""
    if min_qps is None:
        min_qps = DEFAULT_MIN_QPS
    trace_path = os.path.abspath(trace_path)
    tmpdir = tempfile.mkdtemp(prefix="repro-serve-bench-")
    sock_path = os.path.join(tmpdir, "serve.sock")
    log_path = os.path.join(tmpdir, "daemon.log")
    proc, log = _spawn_daemon(sock_path, jobs, log_path)
    doc = None
    try:
        doc = _run_phases(sock_path, trace_path, jobs, duration_s,
                          connection_ramp, cold_queries, min_qps)
    finally:
        try:
            with ServeClient(path=sock_path, timeout_s=10.0) as c:
                c.shutdown()
        except Exception:
            proc.terminate()
        rc = proc.wait(timeout=30.0)
        log.close()
        if doc is not None:
            doc["daemon_exit_code"] = rc
    if out_path:
        tmp = out_path + ".tmp"
        with open(tmp, "w", encoding="ascii") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, out_path)
        print(f"[bench] wrote {out_path}", file=sys.stderr)
    return doc


def _run_phases(sock_path: str, trace_path: str, jobs: int,
                duration_s: float, connection_ramp, cold_queries: int,
                min_qps: float) -> Dict[str, Any]:
    with ServeClient(path=sock_path, timeout_s=300.0) as client:
        ing = client.ingest(trace_path, compile=True)
        fp = ing["fingerprint"]
        print(f"[bench] ingested {os.path.basename(trace_path)} "
              f"fp={fp[:12]}… book={ing.get('nbytes', 0):,} bytes",
              file=sys.stderr)

        # Cold phase: unique seeds force every query through the pool.
        cold_lat: List[float] = []
        t0 = time.perf_counter()
        for i in range(cold_queries):
            q0 = time.perf_counter()
            client.query(fp, strategies=["random"], seed=i)
            cold_lat.append(time.perf_counter() - q0)
        cold_wall = time.perf_counter() - t0
        cold_lat.sort()
        cold_phase = {
            "name": "cold",
            "connections": 1,
            "duration_s": round(cold_wall, 4),
            "requests": cold_queries,
            "qps": round(cold_queries / cold_wall, 1) if cold_wall else 0.0,
            "p50_ms": round(_percentile(cold_lat, 0.50) * 1e3, 4),
            "p99_ms": round(_percentile(cold_lat, 0.99) * 1e3, 4),
            "hit_rate": 0.0,
        }
        print(f"[bench] cold: {cold_phase['qps']} qps "
              f"p50={cold_phase['p50_ms']}ms", file=sys.stderr)

        # Warm the hot cells once, then ramp connections.
        hot_query = {"type": "query", "fingerprint": fp,
                     "strategies": _HOT_STRATEGIES, "seed": 0}
        client.query(fp, strategies=_HOT_STRATEGIES, seed=0)
        phases = [cold_phase]
        for conns in connection_ramp:
            before = client.stats()["metrics"]["counters"]
            phase = asyncio.run(
                _hot_phase(sock_path, hot_query, conns, duration_s))
            after = client.stats()["metrics"]["counters"]
            hits = (after.get("repro_serve_result_cache_hits_total", 0)
                    - before.get("repro_serve_result_cache_hits_total", 0))
            misses = (after.get("repro_serve_result_cache_misses_total", 0)
                      - before.get("repro_serve_result_cache_misses_total",
                                   0))
            phase["name"] = f"hot-c{conns}"
            phase["hit_rate"] = (round(hits / (hits + misses), 4)
                                 if hits + misses else 1.0)
            phases.append(phase)
            print(f"[bench] {phase['name']}: {phase['qps']} qps "
                  f"p50={phase['p50_ms']}ms p99={phase['p99_ms']}ms "
                  f"hit_rate={phase['hit_rate']}", file=sys.stderr)

        served = client.query(fp, strategies=_HOT_STRATEGIES, seed=0)
        parity = _parity_check(trace_path, served, _HOT_STRATEGIES, 0)
        stats = client.stats()

    hot = [p for p in phases if p["name"].startswith("hot")]
    sustained = max((p["qps"] for p in hot), default=0.0)
    return {
        "schema": BENCH_SERVE_SCHEMA,
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": sys.platform,
            "python": sys.version.split()[0],
        },
        "config": {
            "jobs": jobs,
            "duration_s": duration_s,
            "connection_ramp": list(connection_ramp),
            "cold_queries": cold_queries,
            "hot_strategies": _HOT_STRATEGIES,
        },
        "trace": {
            "file": os.path.basename(trace_path),
            "fingerprint": fp,
            "world_size": served["meta"]["world_size"],
            "n_events": served["meta"]["n_events"],
            "book_nbytes": stats["store"]["bytes"],
        },
        "phases": phases,
        "sustained_qps": sustained,
        "min_qps": min_qps,
        "parity": parity,
        "store": stats["store"],
        "pool": stats["pool"],
        "note": ("single-host loopback measurement: client, daemon and "
                 "scoring workers share host.cpu_count CPUs, so "
                 "sustained_qps is a lower bound on a dedicated host"),
    }


# ---------------------------------------------------------------------------
# CI validation


def verify_bench(doc: Dict[str, Any],
                 min_qps: Optional[float] = None) -> Dict[str, Any]:
    """Validate a BENCH_serve.json document; raises ValueError.

    Checks the schema, the phase records, the sustained hot-phase QPS
    floor, and exact serve/direct parity.
    """
    if doc.get("schema") != BENCH_SERVE_SCHEMA:
        raise ValueError(f"bench schema={doc.get('schema')!r}, expected "
                         f"{BENCH_SERVE_SCHEMA}")
    floor = float(min_qps if min_qps is not None
                  else doc.get("min_qps") or DEFAULT_MIN_QPS)
    phases = doc.get("phases")
    if not isinstance(phases, list) or not phases:
        raise ValueError("bench has no phases")
    for phase in phases:
        for key in ("name", "connections", "requests", "qps",
                    "p50_ms", "p99_ms", "hit_rate"):
            if key not in phase:
                raise ValueError(f"phase {phase.get('name')!r} lacks {key!r}")
    if not any(p["name"].startswith("hot") for p in phases):
        raise ValueError("bench has no hot phase")
    sustained = float(doc.get("sustained_qps", 0.0))
    if sustained < floor:
        raise ValueError(
            f"sustained hot-phase throughput {sustained} qps is below the "
            f"{floor} qps floor")
    parity = doc.get("parity") or {}
    if not parity.get("ok"):
        raise ValueError("serve/direct parity failed: "
                         + "; ".join(parity.get("mismatches", ["missing"])))
    return doc
