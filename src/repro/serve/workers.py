"""Supervised scoring pool: candidate replays in worker processes.

The asyncio server cannot score candidates on its own thread — a cold
replay of a large trace costs tens of milliseconds of pure CPU and
would stall every connection — so scoring is dispatched to a small
pool of worker processes.  The pool re-applies the
:mod:`repro.sweep.executor` supervision discipline, translated to the
event loop:

* **batched dispatch** — the dispatcher drains up to ``batch`` queued
  candidate tasks into one worker message, so concurrent queries for
  the same book amortize the IPC round trip;
* **per-batch timeouts** — a worker that exceeds
  ``timeout_s x batch-size`` is killed and replaced by a fresh
  process;
* **crash replacement** — a worker that dies mid-batch is detected by
  the broken pipe and replaced; its tasks are requeued;
* **bounded retries with backoff** — every requeue counts as an
  attempt; a task failing ``retries + 1`` times surfaces the error to
  the awaiting query.

Each worker owns a private :class:`~repro.serve.store.BookStore`
(loaded lazily from the trace *path*, keyed by the parent's
fingerprint), so a hot worker replays straight from memory.  Scoring
calls :func:`repro.replay.search.score_candidate` — the exact code
path of a direct ``repro.replay search`` — which is what makes served
results bit-identical to offline ones.

Chaos injection for the tests/CI mirrors the sweep executor:
``REPRO_SERVE_CHAOS="stall=0.5"`` makes every batch sleep first (holds
tasks in flight, exercising backpressure and drain), and
``"crash=N"`` makes N batches hard-exit the worker mid-flight.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["ScoreTask", "WorkerPool", "parse_chaos"]

_EXIT = ("exit",)


def parse_chaos(text: Optional[str]) -> Dict[str, float]:
    """``"stall=0.5,crash=2"`` → ``{"stall": 0.5, "crash": 2.0}``."""
    out: Dict[str, float] = {}
    if not text:
        return out
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        kind, _, value = token.partition("=")
        if kind not in ("stall", "crash"):
            raise ValueError(f"unknown chaos kind {kind!r} "
                             "(expected stall=SECONDS or crash=N)")
        out[kind] = float(value or 1)
    return out


@dataclass
class ScoreTask:
    """One candidate to score: the pool's (and result cache's) unit."""

    fingerprint: str
    path: str
    strategy: str
    seed: int = 0
    substitute: Optional[Dict[str, str]] = None
    focus: Optional[Dict[str, Any]] = None
    attempts: int = 0

    def payload(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "path": self.path,
            "strategy": self.strategy,
            "seed": self.seed,
            "substitute": self.substitute,
            "focus": self.focus,
        }


class WorkerScoreError(RuntimeError):
    """A task failed terminally (all retries exhausted)."""


# ---------------------------------------------------------------------------
# worker process


def _score_one(payload: Dict[str, Any], store) -> Dict[str, Any]:
    from repro.replay.search import score_candidate
    from repro.serve.store import BookEntry

    fp = payload["fingerprint"]
    entry = store.get(fp)
    if entry is None:
        from repro.replay.schema import ReplayTrace

        trace = ReplayTrace.load(payload["path"])
        entry = BookEntry.build(fp, payload["path"], trace)
        store.put(entry)
    focus = payload.get("focus")
    if focus:
        from repro.placement.focus import Focus

        focus = Focus.from_dict(focus)
    else:
        focus = None
    cand = score_candidate(entry.trace, payload["strategy"],
                           seed=int(payload.get("seed", 0)),
                           substitute=payload.get("substitute"),
                           focus=focus)
    return {
        "strategy": cand.strategy,
        "placement": [int(p) for p in cand.placement],
        "makespan": cand.makespan,
        "hop_bytes": cand.hop_bytes,
        "inter_node_bytes": cand.inter_node_bytes,
        "modeled_cost": cand.modeled_cost,
        "wall_seconds": cand.wall_seconds,
    }


def _worker_main(conn, book_bytes: int, chaos_stall: float,
                 chaos_crash) -> None:
    """One worker: receive batches of score payloads, reply per-task."""
    from repro.serve.store import BookStore

    store = BookStore(max_bytes=book_bytes)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg[0] == "exit":
            return
        _, payloads = msg
        if chaos_stall > 0.0:
            time.sleep(chaos_stall)
        if chaos_crash is not None:
            with chaos_crash.get_lock():
                take = chaos_crash.value > 0
                if take:
                    chaos_crash.value -= 1
            if take:
                os._exit(42)  # simulated hard crash mid-batch
        t0 = time.perf_counter()
        results: List[Tuple[str, Any]] = []
        for payload in payloads:
            try:
                results.append(("ok", _score_one(payload, store)))
            except BaseException:
                results.append(("err", traceback.format_exc(limit=20)))
        try:
            conn.send(("batch", results, time.perf_counter() - t0,
                       store.stats()))
        except (BrokenPipeError, OSError):
            return


def _recv_quietly(conn):
    """Blocking recv that never raises (runs on an executor thread —
    the supervisor decides what a dead pipe means, not the thread)."""
    try:
        return conn.recv()
    except BaseException as exc:
        return ("__dead__", repr(exc))


# ---------------------------------------------------------------------------
# the pool


class _Slot:
    def __init__(self, ctx, slot_id: int, book_bytes: int,
                 chaos_stall: float, chaos_crash):
        self.id = slot_id
        parent_conn, child_conn = ctx.Pipe()
        self.conn = parent_conn
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, book_bytes, chaos_stall, chaos_crash),
            daemon=True,
            name=f"serve-worker-{slot_id}",
        )
        self.proc.start()
        child_conn.close()
        self.busy_s = 0.0

    def kill(self) -> None:
        try:
            self.proc.kill()
        except (OSError, AttributeError):  # pragma: no cover - raced exit
            pass
        self.proc.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass

    def shutdown(self) -> None:
        try:
            self.conn.send(_EXIT)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=5.0)
        if self.proc.is_alive():  # pragma: no cover - stuck worker
            self.proc.kill()
            self.proc.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


@dataclass
class PoolStats:
    workers: int = 0
    workers_spawned: int = 0
    workers_replaced: int = 0
    batches: int = 0
    tasks_ok: int = 0
    tasks_failed: int = 0
    retries: int = 0
    busy_s: float = 0.0
    started_at: float = field(default_factory=time.monotonic)

    def utilization(self) -> float:
        wall = max(time.monotonic() - self.started_at, 1e-9)
        return min(1.0, self.busy_s / (wall * max(self.workers, 1)))


class WorkerPool:
    """Async facade over the supervised worker processes."""

    def __init__(
        self,
        jobs: int = 2,
        timeout_s: float = 60.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        batch: int = 8,
        book_bytes: int = 256 * 1024 * 1024,
        chaos: Optional[Dict[str, float]] = None,
    ):
        self.jobs = max(1, int(jobs))
        self.timeout_s = float(timeout_s)
        self.retries = max(0, int(retries))
        self.backoff_s = float(backoff_s)
        self.batch = max(1, int(batch))
        self.book_bytes = int(book_bytes)
        if chaos is None:
            chaos = parse_chaos(os.environ.get("REPRO_SERVE_CHAOS"))
        self.chaos = chaos
        self.stats = PoolStats()
        self._queue: "asyncio.Queue" = asyncio.Queue()
        self._slots: List[_Slot] = []
        self._loops: List[asyncio.Task] = []
        self._stopping = False
        self._ctx = None
        self._chaos_crash = None
        self.worker_stores: Dict[int, Dict[str, Any]] = {}

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        crash_budget = int(self.chaos.get("crash", 0))
        self._chaos_crash = (self._ctx.Value("i", crash_budget)
                             if crash_budget else None)
        self.stats.workers = self.jobs
        self.stats.started_at = time.monotonic()
        for _ in range(self.jobs):
            self._slots.append(self._spawn())
        self._loops = [asyncio.create_task(self._slot_loop(i))
                       for i in range(self.jobs)]

    def _spawn(self) -> _Slot:
        slot = _Slot(self._ctx, self.stats.workers_spawned, self.book_bytes,
                     float(self.chaos.get("stall", 0.0)), self._chaos_crash)
        self.stats.workers_spawned += 1
        return slot

    async def stop(self) -> None:
        """Stop the loops after in-queue work is handed out, then the
        workers.  Callers drain pending futures first if they care."""
        self._stopping = True
        for _ in self._loops:
            self._queue.put_nowait(None)
        if self._loops:
            await asyncio.gather(*self._loops, return_exceptions=True)
        for slot in self._slots:
            slot.shutdown()
        self._slots = []
        self._loops = []

    # -- dispatch ------------------------------------------------------

    def submit(self, task: ScoreTask) -> "asyncio.Future":
        """Queue one task; the future resolves to the result dict."""
        fut = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((task, fut))
        return fut

    def queue_depth(self) -> int:
        return self._queue.qsize()

    async def _slot_loop(self, index: int) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is None:
                return
            batch: List[Tuple[ScoreTask, asyncio.Future]] = [item]
            while len(batch) < self.batch:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is None:  # propagate the stop token
                    self._queue.put_nowait(None)
                    break
                batch.append(nxt)
            await self._run_batch(loop, index, batch)

    async def _run_batch(self, loop, index: int, batch) -> None:
        slot = self._slots[index]
        payloads = [task.payload() for task, _fut in batch]
        deadline = self.timeout_s * len(batch)
        t0 = time.monotonic()
        try:
            slot.conn.send(("score", payloads))
            reply = await asyncio.wait_for(
                loop.run_in_executor(None, _recv_quietly, slot.conn),
                timeout=deadline)
        except asyncio.TimeoutError:
            self._replace(index, f"batch timeout after {deadline:.1f}s")
            self._requeue_all(batch, f"worker timeout ({deadline:.1f}s)")
            return
        except (BrokenPipeError, OSError) as exc:
            self._replace(index, "send failed")
            self._requeue_all(batch, f"worker pipe broke: {exc}")
            return
        finally:
            slot.busy_s += time.monotonic() - t0
            self.stats.busy_s += time.monotonic() - t0
        if reply[0] == "__dead__":
            self._replace(index, "crashed mid-batch")
            self._requeue_all(batch, f"worker crashed mid-batch: {reply[1]}")
            return
        _, results, _elapsed, store_stats = reply
        self.stats.batches += 1
        self.worker_stores[slot.id] = store_stats
        for (task, fut), (status, payload) in zip(batch, results):
            if fut.cancelled():
                continue
            if status == "ok":
                self.stats.tasks_ok += 1
                fut.set_result(payload)
            else:
                self._retry_or_fail(task, fut, f"error in worker:\n{payload}")

    # -- supervision ---------------------------------------------------

    def _replace(self, index: int, why: str) -> None:
        self._slots[index].kill()
        self._slots[index] = self._spawn()
        self.stats.workers_replaced += 1

    def _requeue_all(self, batch, reason: str) -> None:
        for task, fut in batch:
            if not fut.cancelled():
                self._retry_or_fail(task, fut, reason)

    def _retry_or_fail(self, task: ScoreTask, fut, reason: str) -> None:
        task.attempts += 1
        if task.attempts <= self.retries and not self._stopping:
            self.stats.retries += 1
            delay = self.backoff_s * (2.0 ** (task.attempts - 1))
            asyncio.get_running_loop().call_later(
                delay, self._queue.put_nowait, (task, fut))
        else:
            self.stats.tasks_failed += 1
            fut.set_exception(WorkerScoreError(
                f"scoring {task.strategy} on {task.fingerprint[:12]} failed "
                f"after {task.attempts} attempt(s): {reason}"))
