"""repro.serve — a concurrent placement-advisory service.

The paper's loop is *monitoring data in, rank-reordering decision
out*.  :mod:`repro.replay` made the decision step cheap — a recorded
trace compiles once into placement-invariant books, and every what-if
candidate re-costs in milliseconds.  This package serves that
capability at traffic: a long-running asyncio daemon ingests recorded
traces, keeps compiled books hot in a byte-bounded LRU keyed by
content fingerprint, and answers placement what-if queries
concurrently — cold candidates are scored on a supervised
worker-process pool, hot (fingerprint, strategy, seed, substitution,
focus) results come straight from the in-memory result cache.

Pieces:

* :mod:`repro.serve.protocol` — length-prefixed JSON over TCP/Unix
  sockets, schema-versioned request/response envelopes with a
  validator;
* :mod:`repro.serve.store` — the compiled-book LRU (evicts by the
  books' real :meth:`~repro.replay.engine.CompiledTrace.nbytes`);
* :mod:`repro.serve.workers` — the supervised scoring pool
  (per-batch timeouts, bounded retries with backoff, crashed-worker
  replacement — the :mod:`repro.sweep.executor` discipline);
* :mod:`repro.serve.server` — the async core: accept loop, per-trace
  compile deduplication, candidate batching across queries, bounded
  queue with explicit backpressure, graceful drain on SIGTERM;
* :mod:`repro.serve.client` — the thin blocking client the CLI and
  tests use;
* :mod:`repro.serve.bench` — the load generator behind
  ``python -m repro.serve bench`` and ``BENCH_serve.json``.

CLI: ``python -m repro.serve start|ingest|query|stats|bench`` (also
installed as the ``repro-serve`` console script).
"""

from __future__ import annotations

__all__ = [
    "PROTOCOL_SCHEMA",
    "ServeClient",
    "ServeConfig",
    "PlacementServer",
]


def __getattr__(name):
    if name == "PROTOCOL_SCHEMA":
        from repro.serve.protocol import PROTOCOL_SCHEMA

        return PROTOCOL_SCHEMA
    if name == "ServeClient":
        from repro.serve.client import ServeClient

        return ServeClient
    if name in ("ServeConfig", "PlacementServer"):
        from repro.serve import server as _server

        return getattr(_server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
