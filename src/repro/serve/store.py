"""The compiled-book store: a byte-bounded LRU keyed by fingerprint.

A *book* is one ingested trace held hot: the parsed
:class:`~repro.replay.schema.ReplayTrace` plus its compiled form
(:class:`~repro.replay.engine.CompiledTrace`).  Keys are **content
fingerprints** (:func:`repro.core.fingerprint.file_digest` of the
trace file), so the same trace ingested twice — or by two different
paths — occupies one slot, and a re-recorded file at the same path is
a *different* book.

Eviction is by real resident size, not entry count: each entry's
``nbytes`` sums the compiled book's numpy buffers + op stream
(:meth:`CompiledTrace.nbytes`) and an estimate of the raw event
tuples, and the store drops least-recently-used entries until the
total fits ``max_bytes``.  The most recent entry is never evicted —
a budget smaller than one book still serves that book (it just can't
keep a second one warm).

The store itself is synchronous and unlocked: the server wraps it in
the event loop (single-threaded access), and each worker process owns
a private instance.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["BookEntry", "BookStore", "trace_events_nbytes"]


def trace_events_nbytes(trace) -> int:
    """Estimated resident size of a trace's raw event stream.

    Same accounting as :meth:`CompiledTrace.nbytes`: list spine +
    tuple shells + 32 bytes per boxed payload slot.
    """
    events = trace.events
    total = sys.getsizeof(events)
    for ev in events:
        total += sys.getsizeof(ev) + 32 * (len(ev) - 1)
    return total


@dataclass
class BookEntry:
    fingerprint: str
    path: str
    trace: object          # ReplayTrace
    compiled: object       # CompiledTrace
    nbytes: int

    @classmethod
    def build(cls, fingerprint: str, path: str, trace) -> "BookEntry":
        from repro.replay.engine import compile_trace

        compiled = compile_trace(trace)
        return cls(
            fingerprint=fingerprint,
            path=path,
            trace=trace,
            compiled=compiled,
            nbytes=compiled.nbytes() + trace_events_nbytes(trace),
        )


class BookStore:
    """Size-bounded LRU of :class:`BookEntry` objects."""

    def __init__(self, max_bytes: int = 256 * 1024 * 1024):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[str, BookEntry]" = OrderedDict()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def fingerprints(self) -> List[str]:
        """Coldest-first order (the eviction order)."""
        return list(self._entries)

    def get(self, fingerprint: str) -> Optional[BookEntry]:
        """Hit: the entry becomes most-recently-used.  Miss: None."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        return entry

    def peek(self, fingerprint: str) -> Optional[BookEntry]:
        """Like :meth:`get` but touches neither recency nor counters."""
        return self._entries.get(fingerprint)

    def put(self, entry: BookEntry) -> List[str]:
        """Insert (or refresh) an entry; returns evicted fingerprints."""
        old = self._entries.pop(entry.fingerprint, None)
        if old is not None:
            self.total_bytes -= old.nbytes
        self._entries[entry.fingerprint] = entry
        self.total_bytes += entry.nbytes
        evicted: List[str] = []
        while self.total_bytes > self.max_bytes and len(self._entries) > 1:
            fp, dropped = self._entries.popitem(last=False)
            self.total_bytes -= dropped.nbytes
            self.evictions += 1
            evicted.append(fp)
        return evicted

    def stats(self) -> Dict[str, object]:
        return {
            "entries": len(self._entries),
            "bytes": self.total_bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
