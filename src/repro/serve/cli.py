"""``python -m repro.serve`` — run and talk to the advisory daemon.

Subcommands::

    start    run the daemon (unix socket by default, TCP with --host)
    ingest   register + compile a trace file into a running daemon
    query    ask a daemon for placement advice on a fingerprint/trace
    stats    dump a daemon's live statistics
    stop     ask a daemon to drain and exit
    bench    spawn a daemon and measure it (writes BENCH_serve.json)

Output convention (shared with ``repro.obs diagnose --json``):
machine-readable reports go to **stdout**, all human/log chatter goes
to **stderr** — piping any subcommand into a JSON consumer just works.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

__all__ = ["main"]


def _parse_substitute(pairs: Optional[List[str]]) -> Optional[Dict[str, str]]:
    if not pairs:
        return None
    out: Dict[str, str] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--substitute wants op=alg, got {pair!r}")
        op, alg = pair.split("=", 1)
        out[op.strip()] = alg.strip()
    return out


def _endpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help="unix socket path of the daemon")
    parser.add_argument("--host", default=None,
                        help="TCP host instead of a unix socket")
    parser.add_argument("--port", type=int, default=0)


def _client(args):
    from repro.serve.client import ServeClient

    return ServeClient(path=args.socket, host=args.host, port=args.port)


def _emit(doc) -> None:
    """The machine-readable report — stdout, nothing else on stdout."""
    json.dump(doc, sys.stdout, indent=1, sort_keys=True)
    sys.stdout.write("\n")


def _load_focus(args):
    if not getattr(args, "focus_from", None):
        return None
    from repro.placement.focus import DEFAULT_WEIGHT, load_focus

    weight = (args.focus_weight if args.focus_weight is not None
              else DEFAULT_WEIGHT)
    focus = load_focus(args.focus_from, weight=weight)
    print(f"focus from {args.focus_from}: "
          f"stragglers {list(focus.straggler_ranks) or '-'}, "
          f"congested {list(focus.congested_classes) or '-'} "
          f"(weight {focus.weight:g}x on the generator matrix)",
          file=sys.stderr)
    return focus.to_dict()


# ---------------------------------------------------------------------------
# subcommands


def _cmd_start(args) -> int:
    import asyncio

    from repro.serve.server import PlacementServer, ServeConfig

    config = ServeConfig(
        socket=args.socket, host=args.host, port=args.port,
        jobs=args.jobs, timeout_s=args.timeout, retries=args.retries,
        backoff_s=args.backoff, cache_bytes=args.cache_mb * 1024 * 1024,
        max_queue=args.max_queue, batch=args.batch)
    server = PlacementServer(config)
    return asyncio.run(server.run())


def _cmd_ingest(args) -> int:
    with _client(args) as client:
        reply = client.ingest(args.trace, compile=not args.no_compile)
    print(f"ingested {args.trace} -> fp={reply['fingerprint'][:12]}…"
          + (f" ({reply['nbytes']:,} bytes compiled)"
             if reply.get("compiled") else " (not compiled)"),
          file=sys.stderr)
    _emit(reply)
    return 0


def _cmd_query(args) -> int:
    focus = _load_focus(args)
    strategies = ([s.strip() for s in args.strategies.split(",") if s.strip()]
                  if args.strategies else None)
    with _client(args) as client:
        if args.trace:
            fp = client.ingest(args.trace, compile=True)["fingerprint"]
        else:
            fp = args.fingerprint
        reply = client.query(fp, strategies=strategies, seed=args.seed,
                             substitute=_parse_substitute(args.substitute),
                             focus=focus)
    print(f"best: {reply['best']} ({reply['speedup']:.2f}x vs recorded, "
          f"cache {reply['cache']['hits']}h/{reply['cache']['misses']}m)",
          file=sys.stderr)
    _emit(reply)
    return 0


def _cmd_stats(args) -> int:
    with _client(args) as client:
        reply = client.stats()
    _emit(reply)
    return 0


def _cmd_stop(args) -> int:
    with _client(args) as client:
        reply = client.shutdown()
    print("daemon draining", file=sys.stderr)
    _emit(reply)
    return 0


def _cmd_bench(args) -> int:
    from repro.serve.bench import run_bench, verify_bench

    if args.verify:
        with open(args.verify, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        verify_bench(doc, min_qps=args.min_qps)
        print(f"{args.verify}: ok "
              f"(sustained {doc['sustained_qps']} qps, parity exact)",
              file=sys.stderr)
        return 0
    if not args.trace:
        raise SystemExit("bench needs --trace (or --verify FILE)")
    connections = tuple(int(c) for c in args.connections.split(","))
    doc = run_bench(args.trace, out_path=args.out, jobs=args.jobs,
                    duration_s=args.duration, connection_ramp=connections,
                    cold_queries=args.cold, min_qps=args.min_qps)
    _emit(doc)
    if args.check:
        verify_bench(doc, min_qps=args.min_qps)
        print(f"bench ok: sustained {doc['sustained_qps']} qps "
              f">= {doc['min_qps']}", file=sys.stderr)
    return 0


# ---------------------------------------------------------------------------
# parser


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description=__doc__.split("\n", 1)[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("start", help="run the advisory daemon")
    _endpoint_args(p)
    p.add_argument("--jobs", type=int, default=2,
                   help="scoring worker processes (default 2)")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="per-candidate scoring timeout, seconds")
    p.add_argument("--retries", type=int, default=2,
                   help="scoring attempts beyond the first")
    p.add_argument("--backoff", type=float, default=0.05,
                   help="retry backoff base, seconds (doubles per attempt)")
    p.add_argument("--cache-mb", type=int, default=256,
                   help="compiled-book LRU budget, MiB")
    p.add_argument("--max-queue", type=int, default=256,
                   help="cold-candidate admission bound")
    p.add_argument("--batch", type=int, default=8,
                   help="max candidates per worker round trip")
    p.set_defaults(func=_cmd_start)

    p = sub.add_parser("ingest", help="register+compile a trace")
    _endpoint_args(p)
    p.add_argument("trace", help="replay trace file")
    p.add_argument("--no-compile", action="store_true",
                   help="register only; compile lazily on first query")
    p.set_defaults(func=_cmd_ingest)

    p = sub.add_parser("query", help="ask for placement advice")
    _endpoint_args(p)
    p.add_argument("--trace", default=None,
                   help="trace file (ingested first)")
    p.add_argument("--fingerprint", default=None,
                   help="fingerprint of an already-ingested trace")
    p.add_argument("--strategies", default=None, metavar="S,S,...")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--substitute", action="append", metavar="OP=ALG")
    p.add_argument("--focus-from", default=None, metavar="REPORT.json",
                   help="seed/weight the candidate generators from a "
                        "`repro.obs diagnose` report")
    p.add_argument("--focus-weight", type=float, default=None, metavar="W")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("stats", help="dump daemon statistics as JSON")
    _endpoint_args(p)
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("stop", help="drain and stop the daemon")
    _endpoint_args(p)
    p.set_defaults(func=_cmd_stop)

    p = sub.add_parser("bench", help="benchmark a daemon under load")
    p.add_argument("--trace", default=None,
                   help="trace file to serve")
    p.add_argument("-o", "--out", default=None, metavar="PATH",
                   help="write the benchmark JSON here")
    p.add_argument("--jobs", type=int, default=2)
    p.add_argument("--duration", type=float, default=2.0,
                   help="seconds per hot phase")
    p.add_argument("--connections", default="1,4,16", metavar="N,N,...",
                   help="hot-phase connection ramp")
    p.add_argument("--cold", type=int, default=16,
                   help="cold (unique-seed) queries")
    p.add_argument("--min-qps", type=float, default=None,
                   help="QPS floor for --check/--verify")
    p.add_argument("--check", action="store_true",
                   help="fail if the fresh bench misses the QPS floor")
    p.add_argument("--verify", default=None, metavar="BENCH.json",
                   help="validate an existing bench file instead of running")
    p.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "query" and not args.trace and not args.fingerprint:
        raise SystemExit("query needs --trace or --fingerprint")
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
