"""Thin blocking client for the placement-advisory daemon.

One socket, one request/response at a time — deliberately boring.  The
CLI, the tests, and anything embedding advice into a run loop use this;
the load generator (:mod:`repro.serve.bench`) drives the asyncio stream
helpers directly instead.

An ``error`` response raises :class:`ServeError` carrying the server's
error ``code`` (``overloaded`` → back off and retry; ``bad-request`` →
fix the caller; ``shutting-down`` → find another daemon).
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional

from repro.serve import protocol

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """The daemon answered with an ``error`` response."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code


class ServeClient:
    """Blocking client; usable as a context manager.

    ``ServeClient(path="/run/repro-serve.sock")`` for Unix sockets,
    ``ServeClient(host="127.0.0.1", port=7777)`` for TCP.
    """

    def __init__(self, path: Optional[str] = None,
                 host: Optional[str] = None, port: int = 0,
                 timeout_s: float = 120.0):
        if not path and not host:
            raise ValueError("ServeClient needs a unix socket path or a "
                             "host/port")
        if path:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout_s)
            self._sock.connect(path)
        else:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout_s)
        self.endpoint = path if path else f"{host}:{port}"

    # -- plumbing ------------------------------------------------------

    def request(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request, return the (non-error) response."""
        protocol.write_frame_sock(self._sock, doc)
        reply = protocol.read_frame_sock(self._sock)
        if reply is None:
            raise protocol.ServeProtocolError(
                "server closed the connection without answering")
        protocol.validate_envelope(reply, protocol.RESPONSE_TYPES)
        if reply["type"] == "error":
            raise ServeError(reply.get("code", "internal"),
                             reply.get("message", ""))
        return reply

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the verbs -----------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request({"type": "ping"})

    def ingest(self, path: str, compile: bool = True) -> Dict[str, Any]:
        return self.request(
            {"type": "ingest", "path": path, "compile": compile})

    def query(
        self,
        fingerprint: str,
        strategies: Optional[List[str]] = None,
        seed: int = 0,
        substitute: Optional[Dict[str, str]] = None,
        focus: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"type": "query", "fingerprint": fingerprint,
                               "seed": seed}
        if strategies is not None:
            doc["strategies"] = list(strategies)
        if substitute is not None:
            doc["substitute"] = dict(substitute)
        if focus is not None:
            doc["focus"] = dict(focus)
        return self.request(doc)

    def stats(self) -> Dict[str, Any]:
        return self.request({"type": "stats"})

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        return self.request({"type": "shutdown", "drain": drain})
