"""Wire protocol of the placement-advisory service.

Frames are length-prefixed JSON: a 4-byte big-endian payload length
followed by that many bytes of UTF-8 JSON.  The framing works over any
byte stream — the daemon listens on a Unix socket by default and on
TCP with ``--host/--port`` — and the same helpers serve the asyncio
server, the blocking client, and the load generator.

Every message is an *envelope*: ``{"schema": 1, "type": <str>, ...}``.
Unknown schemas, unknown types, and structurally invalid payloads
raise :class:`~repro.core.errors.ServeProtocolError` — the same
fail-loudly discipline as the trace readers; the server converts these
into ``error`` responses rather than dropping the connection, so a
confused client learns *why* it is confused.

Request types (client → server)::

    ping      {}
    ingest    {path, compile?: bool}        register + (optionally) compile
    query     {fingerprint, strategies?, seed?, substitute?, focus?}
    stats     {}
    shutdown  {drain?: bool}                ask the daemon to exit

Response types (server → client): ``pong``, ``ingested``, ``result``,
``stats``, ``bye`` — plus ``error`` with ``code`` one of
``bad-request`` / ``unknown-fingerprint`` / ``overloaded`` /
``shutting-down`` / ``internal``.  An ``overloaded`` error is the
backpressure signal: the scoring queue is full and the request was
rejected *before* admission, so retrying later is safe.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, List, Optional

from repro.core.errors import ServeProtocolError

__all__ = [
    "PROTOCOL_SCHEMA", "MAX_FRAME_BYTES",
    "REQUEST_TYPES", "RESPONSE_TYPES", "ERROR_CODES",
    "ServeProtocolError",
    "encode_frame", "decode_payload", "validate_envelope",
    "validate_request", "validate_query",
    "read_frame_async", "write_frame_async",
    "read_frame_sock", "write_frame_sock",
]

PROTOCOL_SCHEMA = 1

#: Hard cap on one frame's payload.  Responses carry at most a few
#: placements per strategy (kilobytes); anything bigger is a framing
#: bug or an attack, not a query.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_LEN = struct.Struct(">I")

REQUEST_TYPES = ("ping", "ingest", "query", "stats", "shutdown")
RESPONSE_TYPES = ("pong", "ingested", "result", "stats", "bye", "error")
ERROR_CODES = ("bad-request", "unknown-fingerprint", "overloaded",
               "shutting-down", "internal")


# ---------------------------------------------------------------------------
# framing


def encode_frame(doc: Dict[str, Any]) -> bytes:
    """Envelope + frame one message (the schema field is stamped in)."""
    body = dict(doc)
    body.setdefault("schema", PROTOCOL_SCHEMA)
    payload = json.dumps(body, separators=(",", ":"),
                         sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ServeProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap")
    return _LEN.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, Any]:
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeProtocolError(f"frame payload is not JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise ServeProtocolError(
            f"frame payload must be a JSON object, got {type(doc).__name__}")
    return doc


def _frame_length(header: bytes) -> int:
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServeProtocolError(
            f"frame announces {length} bytes, cap is {MAX_FRAME_BYTES}")
    return length


# ---------------------------------------------------------------------------
# validation


def validate_envelope(doc: Dict[str, Any], types) -> str:
    """Check schema + type; returns the type.  Raises on violation."""
    schema = doc.get("schema")
    if schema != PROTOCOL_SCHEMA:
        raise ServeProtocolError(
            f"message schema={schema!r}, this build speaks "
            f"schema={PROTOCOL_SCHEMA}")
    mtype = doc.get("type")
    if mtype not in types:
        raise ServeProtocolError(
            f"unknown message type {mtype!r}; expected one of {types}")
    return mtype


def validate_query(doc: Dict[str, Any]) -> None:
    """Structural check of a ``query`` request body."""
    fp = doc.get("fingerprint")
    if not isinstance(fp, str) or not fp:
        raise ServeProtocolError("query.fingerprint must be a hex string")
    strategies = doc.get("strategies")
    if strategies is not None:
        if (not isinstance(strategies, list) or not strategies
                or not all(isinstance(s, str) for s in strategies)):
            raise ServeProtocolError(
                "query.strategies must be a non-empty list of strings")
    seed = doc.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ServeProtocolError("query.seed must be an integer")
    substitute = doc.get("substitute")
    if substitute is not None:
        if (not isinstance(substitute, dict)
                or not all(isinstance(k, str) and isinstance(v, str)
                           for k, v in substitute.items())):
            raise ServeProtocolError(
                "query.substitute must map op name -> algorithm name")
    focus = doc.get("focus")
    if focus is not None:
        if not isinstance(focus, dict):
            raise ServeProtocolError("query.focus must be an object")
        ranks = focus.get("straggler_ranks", [])
        classes = focus.get("congested_classes", [])
        if (not isinstance(ranks, list)
                or not all(isinstance(r, int) for r in ranks)
                or not isinstance(classes, list)
                or not all(isinstance(c, str) for c in classes)):
            raise ServeProtocolError(
                "query.focus wants straggler_ranks: [int] and "
                "congested_classes: [str]")


def validate_request(doc: Dict[str, Any]) -> str:
    """Full request validation; returns the request type."""
    mtype = validate_envelope(doc, REQUEST_TYPES)
    if mtype == "ingest":
        path = doc.get("path")
        if not isinstance(path, str) or not path:
            raise ServeProtocolError("ingest.path must be a file path")
        if not isinstance(doc.get("compile", True), bool):
            raise ServeProtocolError("ingest.compile must be a bool")
    elif mtype == "query":
        validate_query(doc)
    elif mtype == "shutdown":
        if not isinstance(doc.get("drain", True), bool):
            raise ServeProtocolError("shutdown.drain must be a bool")
    return mtype


# ---------------------------------------------------------------------------
# asyncio stream I/O


async def read_frame_async(reader) -> Optional[Dict[str, Any]]:
    """Read one frame from an asyncio StreamReader; None at clean EOF."""
    try:
        header = await reader.readexactly(4)
    except Exception as exc:  # IncompleteReadError at EOF, reset, ...
        import asyncio

        if isinstance(exc, asyncio.IncompleteReadError) and not exc.partial:
            return None
        raise ServeProtocolError(f"connection broke mid-frame: {exc}") \
            from None
    length = _frame_length(header)
    try:
        payload = await reader.readexactly(length)
    except Exception as exc:
        raise ServeProtocolError(f"connection broke mid-frame: {exc}") \
            from None
    return decode_payload(payload)


async def write_frame_async(writer, doc: Dict[str, Any]) -> None:
    writer.write(encode_frame(doc))
    await writer.drain()


# ---------------------------------------------------------------------------
# blocking socket I/O (the thin client)


def read_frame_sock(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame from a blocking socket; None at clean EOF."""
    header = _recv_exact(sock, 4)
    if header is None:
        return None
    length = _frame_length(header)
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ServeProtocolError("connection closed mid-frame")
    return decode_payload(payload)


def write_frame_sock(sock: socket.socket, doc: Dict[str, Any]) -> None:
    sock.sendall(encode_frame(doc))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    chunks: List[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            return None if not chunks else _short(got, n)
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def _short(got: int, want: int) -> bytes:
    raise ServeProtocolError(
        f"connection closed mid-frame ({got}/{want} bytes)")
