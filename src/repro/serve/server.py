"""The placement-advisory daemon: async core of ``repro.serve``.

One asyncio task per connection reads length-prefixed JSON requests
(:mod:`repro.serve.protocol`) and dispatches them against three pieces
of shared state:

* the **book store** — a byte-bounded LRU of compiled traces keyed by
  content fingerprint (:mod:`repro.serve.store`).  Compilation is
  deduplicated with single-flight futures: when N clients race on a
  cold fingerprint, exactly one compile runs (on an executor thread so
  the loop keeps serving) and all N await the same future.  The
  fingerprint → path registry survives eviction, so an evicted book
  recompiles transparently on the next query.
* the **result cache + scoring pool** — per-candidate results are
  cached under ``(fingerprint, strategy, seed, substitution, focus)``;
  this is sound because :func:`repro.replay.search.score_candidate` is
  deterministic and candidates are independent.  Cold cells are
  deduplicated the same single-flight way and dispatched to the
  supervised worker pool (:mod:`repro.serve.workers`), which batches
  candidates across concurrent queries.
* the **admission gate** — a query that needs more cold cells than the
  scoring queue has room for is rejected *before* anything is
  enqueued, with an ``overloaded`` error the client can retry on.
  Cache-hit-only queries are always admitted; backpressure applies to
  work, not to answers the server already has.

SIGTERM/SIGINT triggers a graceful drain: the listener closes, new
requests on live connections get ``shutting-down`` errors, in-flight
requests run to completion and their responses are written, then the
pool shuts down and the daemon exits 0.

Every request is observed on the server's own
:class:`~repro.obs.metrics.MetricsRegistry`: request-latency
histograms with sub-millisecond buckets, result-cache hit/miss
counters, a queue-depth gauge, worker-utilization and compile
counters.  The ``stats`` request returns the live snapshot.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import ServeProtocolError
from repro.obs.metrics import MetricsRegistry
from repro.serve import protocol
from repro.serve.store import BookEntry, BookStore
from repro.serve.workers import ScoreTask, WorkerPool

__all__ = ["ServeConfig", "PlacementServer", "LATENCY_BUCKETS"]

#: Sub-millisecond latency resolution: hot (cached) queries answer in
#: tens of microseconds, cold ones in tens of milliseconds.
LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


@dataclass
class ServeConfig:
    """Daemon knobs; the CLI maps flags onto this 1:1."""

    socket: Optional[str] = None     # Unix socket path (preferred)
    host: Optional[str] = None       # TCP instead, with port
    port: int = 0
    jobs: int = 2                    # scoring worker processes
    timeout_s: float = 60.0          # per-candidate scoring timeout
    retries: int = 2                 # scoring attempts beyond the first
    backoff_s: float = 0.05          # retry backoff base (doubles)
    cache_bytes: int = 256 * 1024 * 1024   # compiled-book LRU budget
    max_queue: int = 256             # cold-cell admission bound
    batch: int = 8                   # candidates per worker round trip
    result_cache_max: int = 65536    # per-candidate result entries

    def __post_init__(self):
        if not self.socket and not self.host:
            raise ValueError("ServeConfig needs a unix socket path or a "
                             "host/port")

    def endpoint(self) -> str:
        return self.socket if self.socket else f"{self.host}:{self.port}"


class PlacementServer:
    """The daemon.  ``await run()`` serves until shutdown."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.metrics = MetricsRegistry()
        self.store = BookStore(max_bytes=config.cache_bytes)
        self.pool = WorkerPool(
            jobs=config.jobs, timeout_s=config.timeout_s,
            retries=config.retries, backoff_s=config.backoff_s,
            batch=config.batch, book_bytes=config.cache_bytes)
        self._paths: Dict[str, str] = {}          # fingerprint -> trace path
        self._compiling: Dict[str, asyncio.Future] = {}
        self._results: "OrderedDict[Tuple, Dict[str, Any]]" = OrderedDict()
        self._responses: "OrderedDict[Tuple, Dict[str, Any]]" = OrderedDict()
        self._inflight: Dict[Tuple, asyncio.Future] = {}
        self._pending_cells = 0                   # admitted, not yet done
        self._active_requests = 0
        self._draining = False
        self._shutdown = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._conns: set = set()          # (task, writer) of live handlers
        self._started_at = time.monotonic()
        self.exit_code = 0

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        await self.pool.start()
        if self.config.socket:
            path = self.config.socket
            if os.path.exists(path):
                os.unlink(path)
            self._server = await asyncio.start_unix_server(
                self._handle_conn, path=path)
        else:
            self._server = await asyncio.start_server(
                self._handle_conn, host=self.config.host,
                port=self.config.port)
            if self.config.port == 0:
                self.config.port = \
                    self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    def request_shutdown(self) -> None:
        """Begin the graceful drain (idempotent; signal-handler safe)."""
        self._draining = True
        self._shutdown.set()

    async def run(self) -> int:
        """Serve until :meth:`request_shutdown`, then drain and stop."""
        if self._server is None:
            await self.start()
        self._log(f"serving on {self.config.endpoint()} "
                  f"(jobs={self.config.jobs}, "
                  f"cache={self.store.max_bytes // (1024 * 1024)}MiB, "
                  f"queue={self.config.max_queue})")
        await self._shutdown.wait()
        self._log("drain: listener closed, finishing in-flight requests")
        self._server.close()
        await self._server.wait_closed()
        await self._idle.wait()           # in-flight requests responded
        # Idle keep-alive connections would otherwise die noisily when
        # the loop tears down; hang up on them now that work is done.
        for task, writer in list(self._conns):
            writer.close()
        if self._conns:
            await asyncio.gather(*(t for t, _w in list(self._conns)),
                                 return_exceptions=True)
        await self.pool.stop()
        if self.config.socket and os.path.exists(self.config.socket):
            os.unlink(self.config.socket)
        self._log("drain complete")
        return self.exit_code

    def _log(self, msg: str) -> None:
        print(f"[repro-serve] {msg}", file=sys.stderr, flush=True)

    # -- connection handling -------------------------------------------

    async def _handle_conn(self, reader, writer) -> None:
        me = (asyncio.current_task(), writer)
        self._conns.add(me)
        try:
            while True:
                try:
                    doc = await protocol.read_frame_async(reader)
                except ServeProtocolError as exc:
                    await self._send_error(writer, "bad-request", str(exc))
                    break
                if doc is None:
                    break
                await self._serve_request(doc, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._conns.discard(me)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_request(self, doc: Dict[str, Any], writer) -> None:
        t0 = time.perf_counter()
        try:
            mtype = protocol.validate_request(doc)
        except ServeProtocolError as exc:
            await self._send_error(writer, "bad-request", str(exc))
            return
        self.metrics.counter("repro_serve_requests_total", type=mtype).inc()
        if self._draining and mtype not in ("ping", "stats", "shutdown"):
            await self._send_error(writer, "shutting-down",
                                   "daemon is draining; not accepting work")
            return
        self._active_requests += 1
        self._idle.clear()
        try:
            if mtype == "ping":
                reply = {"type": "pong"}
            elif mtype == "ingest":
                reply = await self._do_ingest(doc)
            elif mtype == "query":
                reply = await self._do_query(doc)
            elif mtype == "stats":
                reply = self._do_stats()
            else:  # shutdown
                reply = {"type": "bye", "draining": True}
                self.request_shutdown()
            reply.setdefault("elapsed_s", time.perf_counter() - t0)
            await protocol.write_frame_async(writer, reply)
        except _Reject as rej:
            self.metrics.counter("repro_serve_rejected_total",
                                 code=rej.code).inc()
            await self._send_error(writer, rej.code, str(rej))
        except ServeProtocolError as exc:
            await self._send_error(writer, "bad-request", str(exc))
        except FileNotFoundError as exc:
            await self._send_error(writer, "bad-request", str(exc))
        except Exception as exc:  # noqa: BLE001 - fail loudly, keep serving
            self._log(f"internal error on {mtype}: {exc!r}")
            await self._send_error(writer, "internal", repr(exc))
        finally:
            self._active_requests -= 1
            if self._active_requests == 0:
                self._idle.set()
            self.metrics.histogram("repro_serve_request_seconds",
                                   buckets=LATENCY_BUCKETS,
                                   type=mtype).observe(
                time.perf_counter() - t0)

    async def _send_error(self, writer, code: str, message: str) -> None:
        assert code in protocol.ERROR_CODES
        try:
            await protocol.write_frame_async(
                writer, {"type": "error", "code": code, "message": message})
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass

    # -- ingest --------------------------------------------------------

    async def _do_ingest(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        from repro.core.fingerprint import file_digest

        path = os.path.abspath(doc["path"])
        loop = asyncio.get_running_loop()
        fp = await loop.run_in_executor(None, file_digest, path)
        known = fp in self._paths
        self._paths[fp] = path
        reply = {
            "type": "ingested",
            "fingerprint": fp,
            "path": path,
            "known": known,
            "compiled": False,
        }
        if doc.get("compile", True):
            entry = await self._ensure_book(fp)
            reply["compiled"] = True
            reply["nbytes"] = entry.nbytes
            reply["world_size"] = entry.trace.world_size
            reply["n_events"] = len(entry.trace.events)
        self._observe_store()
        return reply

    async def _ensure_book(self, fp: str) -> BookEntry:
        """Hot book for ``fp`` — compiling at most once per residency.

        Single-flight: concurrent callers on a cold fingerprint share
        one future; the compile itself runs on an executor thread.
        """
        entry = self.store.get(fp)
        if entry is not None:
            return entry
        fut = self._compiling.get(fp)
        if fut is not None:
            return await fut
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        self._compiling[fp] = fut
        try:
            path = self._paths.get(fp)
            if path is None:
                raise _Reject(
                    "unknown-fingerprint",
                    f"fingerprint {fp[:12]}… was never ingested here")
            entry = await loop.run_in_executor(
                None, self._compile_blocking, fp, path)
            self.metrics.counter("repro_serve_compiles_total").inc()
            evicted = self.store.put(entry)
            for gone in evicted:
                self._log(f"evicted book {gone[:12]}… "
                          f"(budget {self.store.max_bytes} bytes)")
            fut.set_result(entry)
            return entry
        except BaseException as exc:
            fut.set_exception(exc)
            # someone may already be awaiting it; don't also warn
            fut.exception()
            raise
        finally:
            del self._compiling[fp]

    @staticmethod
    def _compile_blocking(fp: str, path: str) -> BookEntry:
        from repro.replay.schema import ReplayTrace

        trace = ReplayTrace.load(path)
        return BookEntry.build(fp, path, trace)

    # -- query ---------------------------------------------------------

    async def _do_query(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        from repro.placement.mapping import reorder_permutation
        from repro.replay.search import STRATEGIES

        fp = doc["fingerprint"]
        if fp not in self._paths:
            raise _Reject("unknown-fingerprint",
                          f"fingerprint {fp[:12]}… was never ingested here")
        strategies = doc.get("strategies") or list(STRATEGIES)
        for s in strategies:
            if s not in STRATEGIES:
                raise ServeProtocolError(
                    f"unknown strategy {s!r}; have {STRATEGIES}")
        seed = int(doc.get("seed", 0))
        substitute = doc.get("substitute")
        focus = doc.get("focus")

        # Hot path: the whole ranked response for this exact query was
        # built before — answer from memory without touching the pool,
        # the book store, or the ranking code.
        keys = [self._cell_key(fp, s, seed, substitute, focus)
                for s in strategies]
        response_key = (tuple(keys),)
        hot = self._responses.get(response_key)
        if hot is not None:
            self._responses.move_to_end(response_key)
            self.metrics.counter(
                "repro_serve_result_cache_hits_total").inc(len(keys))
            reply = dict(hot)
            reply["cache"] = {"hits": len(keys), "misses": 0}
            return reply
        hits = misses = 0
        waits: List[Tuple[int, asyncio.Future]] = []
        cold: List[Tuple[int, Tuple]] = []
        results: List[Optional[Dict[str, Any]]] = [None] * len(keys)
        for i, key in enumerate(keys):
            cached = self._results.get(key)
            if cached is not None:
                self._results.move_to_end(key)
                results[i] = cached
                hits += 1
                continue
            misses += 1
            fut = self._inflight.get(key)
            if fut is not None:
                waits.append((i, fut))
            else:
                cold.append((i, key))

        # Admission control: reject before enqueueing anything.
        if cold and self._pending_cells + len(cold) > self.config.max_queue:
            raise _Reject(
                "overloaded",
                f"scoring queue full ({self._pending_cells} pending, "
                f"{len(cold)} new cells, bound {self.config.max_queue}); "
                "retry later")
        if hits:
            self.metrics.counter(
                "repro_serve_result_cache_hits_total").inc(hits)
        if misses:
            self.metrics.counter(
                "repro_serve_result_cache_misses_total").inc(misses)

        # Register + submit cold cells *before* the first await: between
        # classification and registration the loop must not suspend, or
        # a concurrent identical query would double-score the cell.
        for i, key in cold:
            task = ScoreTask(fingerprint=fp, path=self._paths[fp],
                             strategy=strategies[i], seed=seed,
                             substitute=substitute, focus=focus)
            fut = self.pool.submit(task)
            shared = asyncio.get_running_loop().create_future()
            self._inflight[key] = shared
            self._pending_cells += 1
            self._observe_queue()
            fut.add_done_callback(
                lambda f, key=key, shared=shared: self._cell_done(
                    key, shared, f))
            waits.append((i, shared))

        # The hot book yields the recorded binding/clocks the response
        # needs (workers load their own copy from the path).
        entry = await self._ensure_book(fp)

        for i, fut in waits:
            results[i] = await asyncio.shield(fut)

        order = sorted(range(len(results)),
                       key=lambda i: (results[i]["makespan"], i))
        ranked = [results[i] for i in order]
        best = ranked[0]
        recorded = list(entry.trace.binding)
        k = reorder_permutation(best["placement"], recorded)
        recorded_makespan = (max(entry.trace.clocks)
                             if entry.trace.clocks else 0.0)
        reply = {
            "type": "result",
            "fingerprint": fp,
            "recorded_makespan": recorded_makespan,
            "best": best["strategy"],
            "speedup": (recorded_makespan / best["makespan"]
                        if best["makespan"] else float("inf")),
            "k": [int(v) for v in k],
            "candidates": ranked,
            "cache": {"hits": hits, "misses": misses},
            "meta": {
                "strategies": strategies,
                "seed": seed,
                "substitute": dict(substitute) if substitute else None,
                "focus": focus,
                "world_size": entry.trace.world_size,
                "n_events": len(entry.trace.events),
            },
        }
        self._responses[response_key] = reply
        while len(self._responses) > self.config.result_cache_max:
            self._responses.popitem(last=False)
        return dict(reply)

    def _cell_done(self, key: Tuple, shared: "asyncio.Future",
                   fut: "asyncio.Future") -> None:
        self._pending_cells -= 1
        self._observe_queue()
        self._inflight.pop(key, None)
        if fut.cancelled():
            shared.cancel()
            return
        exc = fut.exception()
        if exc is not None:
            shared.set_exception(exc)
            shared.exception()  # may have multiple awaiters or none
            return
        result = fut.result()
        self._results[key] = result
        while len(self._results) > self.config.result_cache_max:
            self._results.popitem(last=False)
        shared.set_result(result)

    @staticmethod
    def _cell_key(fp: str, strategy: str, seed: int, substitute,
                  focus) -> Tuple:
        sub_key = (json.dumps(substitute, sort_keys=True,
                              separators=(",", ":"))
                   if substitute else "")
        focus_key = (json.dumps(focus, sort_keys=True,
                                separators=(",", ":")) if focus else "")
        return (fp, strategy, seed, sub_key, focus_key)

    # -- stats ---------------------------------------------------------

    def _do_stats(self) -> Dict[str, Any]:
        self._observe_store()
        self._observe_queue()
        self.metrics.gauge("repro_serve_worker_utilization").set(
            round(self.pool.stats.utilization(), 4))
        pool = self.pool.stats
        return {
            "type": "stats",
            "endpoint": self.config.endpoint(),
            "uptime_s": time.monotonic() - self._started_at,
            "draining": self._draining,
            "traces_known": len(self._paths),
            "store": self.store.stats(),
            "result_cache": {
                "entries": len(self._results),
                "max_entries": self.config.result_cache_max,
            },
            "queue": {
                "pending_cells": self._pending_cells,
                "max_queue": self.config.max_queue,
            },
            "pool": {
                "workers": pool.workers,
                "spawned": pool.workers_spawned,
                "replaced": pool.workers_replaced,
                "batches": pool.batches,
                "tasks_ok": pool.tasks_ok,
                "tasks_failed": pool.tasks_failed,
                "retries": pool.retries,
                "utilization": round(pool.utilization(), 4),
            },
            "metrics": self.metrics.snapshot(),
        }

    def _observe_store(self) -> None:
        stats = self.store.stats()
        self.metrics.gauge("repro_serve_books_resident").set(
            stats["entries"])
        self.metrics.gauge("repro_serve_books_bytes").set(stats["bytes"])

    def _observe_queue(self) -> None:
        self.metrics.gauge("repro_serve_queue_depth").set(
            self._pending_cells)


class _Reject(Exception):
    """A request refused with a protocol error code (not a bug)."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
