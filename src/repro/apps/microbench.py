"""Micro-benchmarks used by the paper's evaluation.

* :func:`collective_kernel` — the §6.3 experiment body: one collective
  (reduce or bcast) over MPI_COMM_WORLD at a given buffer size.
* :func:`grouped_allgather_benchmark` — the §6.4 benchmark: groups of
  ranks perform an ``MPI_Allgather`` on their group communicator every
  iteration.  With a round-robin binding each group's communicator
  spans all nodes — the worst case the per-group reordering then fixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core import api as mapi
from repro.core.constants import Flags, MPI_M_DATA_IGNORE
from repro.core.errors import raise_for_code
from repro.placement.reorder import co_reorder_from_matrix
from repro.simmpi.engine import _drive
from repro.simmpi.op import MAX

__all__ = [
    "collective_kernel", "co_collective_kernel",
    "grouped_allgather_benchmark", "co_grouped_allgather_benchmark",
    "GroupBenchResult",
]


def collective_kernel(comm, op: str, n_ints: int, root: int = 0,
                      algorithm: Optional[str] = None) -> float:
    """One timed collective; returns the caller's elapsed virtual time.

    ``op`` is ``"reduce"`` (binary tree by default, as in Fig. 5a:
    MPI_Reduce with MPI_MAX) or ``"bcast"`` (binomial tree, Fig. 5b).
    The buffer is ``n_ints`` 4-byte integers, abstract (never
    allocated: the paper goes up to 2·10⁸ ints = 800 MB).
    """
    return _drive(co_collective_kernel(comm, op, n_ints, root, algorithm))


def co_collective_kernel(comm, op: str, n_ints: int, root: int = 0,
                         algorithm: Optional[str] = None):
    """Resumable :func:`collective_kernel` (the canonical body)."""
    nbytes = 4 * n_ints
    t0 = yield from comm.co_time()
    if op == "reduce":
        yield from comm.co_reduce(None, MAX, root=root, nbytes=nbytes,
                                  algorithm=algorithm or "binary")
    elif op == "bcast":
        yield from comm.co_bcast(None, root=root,
                                 nbytes=nbytes if comm.rank == root else None,
                                 algorithm=algorithm or "binomial")
    else:
        raise ValueError(f"unknown collective {op!r}")
    t1 = yield from comm.co_time()
    return t1 - t0


@dataclass
class GroupBenchResult:
    """Per-rank outcome of the §6.4 benchmark."""

    t1: float  # n iterations before reordering
    t2: float  # the reordering itself (gather + TreeMatch + split)
    t3: float  # n iterations after reordering
    group_rank: int
    group_size: int

    @property
    def gain_percent(self) -> float:
        """The paper's metric: 100·(t1 − (t2 + t3)) / t1."""
        if self.t1 <= 0:
            return 0.0
        return 100.0 * (self.t1 - (self.t2 + self.t3)) / self.t1


def _allgather_loop(comm, n_ints: int, iterations: int) -> float:
    return _drive(_co_allgather_loop(comm, n_ints, iterations))


def _co_allgather_loop(comm, n_ints: int, iterations: int):
    nbytes = 4 * n_ints
    t0 = yield from comm.co_time()
    for _ in range(iterations):
        yield from comm.co_allgather(None, nbytes=nbytes, algorithm="ring")
    t1 = yield from comm.co_time()
    return t1 - t0


def grouped_allgather_benchmark(
    comm,
    group_size: int,
    n_ints: int,
    iterations: int,
    manage_env: bool = True,
    measure_iterations: Optional[int] = None,
) -> GroupBenchResult:
    """The §6.4 protocol on one rank (call from every rank).

    Groups are blocks of ``group_size`` consecutive ranks, so with a
    round-robin binding each group's communicator spans all the nodes
    (the paper's setup).  Phase 1
    times ``iterations`` allgathers, phase 2 monitors one allgather and
    reorders the group, phase 3 times ``iterations`` again.

    ``measure_iterations`` (default: min(iterations, 30)) bounds how
    many iterations are *simulated*; the exact per-iteration virtual
    time is scaled to ``iterations``, which is exact for this perfectly
    periodic workload (see DESIGN.md §6).
    """
    return _drive(co_grouped_allgather_benchmark(
        comm, group_size, n_ints, iterations,
        manage_env=manage_env, measure_iterations=measure_iterations,
    ))


def co_grouped_allgather_benchmark(
    comm,
    group_size: int,
    n_ints: int,
    iterations: int,
    manage_env: bool = True,
    measure_iterations: Optional[int] = None,
):
    """Resumable :func:`grouped_allgather_benchmark` (the canonical body).

    The monitoring API calls stay the plain blocking ones — they are
    local, and the ``co_sync`` before each one settles any deferred
    send so their internal pvar-read settles no-op (DESIGN.md §4.5).
    """
    if comm.size % group_size:
        raise ValueError(f"{comm.size} ranks not divisible into groups of {group_size}")
    me = comm.rank
    group = yield from comm.co_split(color=me // group_size, key=me % group_size)

    sim_iters = measure_iterations if measure_iterations is not None else min(
        iterations, 30
    )
    sim_iters = max(1, min(sim_iters, iterations))
    scale = iterations / sim_iters

    if manage_env:
        yield from comm.co_sync()
        raise_for_code(mapi.mpi_m_init())

    # Phase 1: the un-reordered loop.
    t1 = (yield from _co_allgather_loop(group, n_ints, sim_iters)) * scale

    # Phase 2: monitor one iteration, gather the matrix, reorder.
    t2_start = yield from comm.co_time()
    yield from comm.co_sync()
    err, msid = mapi.mpi_m_start(group)
    raise_for_code(err)
    yield from _co_allgather_loop(group, n_ints, 1)
    yield from comm.co_sync()
    raise_for_code(mapi.mpi_m_suspend(msid))
    err, _, size_mat = yield from mapi.co_mpi_m_rootgather_data(
        msid, 0, MPI_M_DATA_IGNORE, None, Flags.ALL_COMM
    )
    raise_for_code(err)
    yield from comm.co_sync()
    raise_for_code(mapi.mpi_m_free(msid))
    opt_group, _k = yield from co_reorder_from_matrix(group, size_mat)
    t2 = (yield from comm.co_time()) - t2_start

    # Phase 3: the reordered loop.
    t3 = (yield from _co_allgather_loop(opt_group, n_ints, sim_iters)) * scale

    if manage_env:
        yield from comm.co_sync()
        raise_for_code(mapi.mpi_m_finalize())
    return GroupBenchResult(
        t1=t1, t2=t2, t3=t3, group_rank=group.rank, group_size=group.size
    )


def main(argv=None) -> int:
    """Demo entry point: time the Fig. 5 collective kernel on a small
    simulated cluster (``python -m repro.apps.microbench``)."""
    from repro.experiments.common import experiment_parser, render_table
    from repro.simmpi import Cluster, Engine

    parser = experiment_parser(
        "python -m repro.apps.microbench",
        "Time one collective across buffer sizes on a simulated cluster.",
        sizes_help="buffer sizes in MPI_INT counts (default 1e6,1e7)",
    )
    parser.add_argument("--op", choices=["reduce", "bcast"], default="reduce")
    parser.add_argument("--nodes", type=int, default=2)
    args = parser.parse_args(argv)
    sizes = args.sizes or (1_000_000, 10_000_000)

    cluster = Cluster.plafrim(args.nodes, binding="rr")
    engine = Engine(cluster, seed=args.seed)

    def program(comm):
        return [(n, collective_kernel(comm, args.op, n)) for n in sizes]

    rows = engine.run(program)[0]
    print(render_table(
        ["ints", "time (s)"],
        [(n, round(t, 5)) for n, t in rows],
        title=f"MPI_{args.op.capitalize()} on {cluster.n_ranks} "
              "round-robin ranks",
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
