"""``repro.apps`` — workloads: NAS CG, a halo stencil, micro-benchmarks."""

from repro.apps.cg import (  # noqa: F401
    CG_CLASSES,
    CGClass,
    CGConfig,
    CGState,
    cg_outer_iteration,
    cg_setup,
    grid_shape,
    make_spd_matrix,
    run_cg,
    sequential_cg,
)
from repro.apps.microbench import (  # noqa: F401
    GroupBenchResult,
    collective_kernel,
    grouped_allgather_benchmark,
)
from repro.apps.stencil import (  # noqa: F401
    StencilConfig,
    StencilState,
    process_grid,
    run_stencil,
    stencil_iteration,
    stencil_setup,
)
