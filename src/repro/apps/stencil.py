"""2-D halo-exchange (Jacobi) stencil — an iterative workload for the
rank-reordering examples.

Ranks form a ``pr × pc`` process grid, each owning a tile of a global
field.  One iteration = exchange halos with the four neighbours
(point-to-point ``sendrecv``), then a 5-point Jacobi sweep.  The halo
pattern is exactly the kind of neighbour-heavy logical pattern the
paper's dynamic reordering benefits from when the initial binding is
round-robin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["StencilConfig", "StencilState", "stencil_setup",
           "stencil_iteration", "run_stencil", "process_grid"]


def process_grid(p: int) -> Tuple[int, int]:
    """Near-square factorization of the process count."""
    pr = int(np.sqrt(p))
    while p % pr:
        pr -= 1
    return pr, p // pr


@dataclass
class StencilConfig:
    """Tile size is per-rank: the workload weak-scales like the paper's
    micro-benchmarks."""

    tile: int = 64  # local tile edge (cells)
    numeric: bool = True  # False: abstract halos, modeled compute
    compute_rate: float = 2.0e9
    periodic: bool = False


@dataclass
class StencilState:
    config: StencilConfig
    pr: int
    pc: int
    my_r: int
    my_c: int
    field: Optional[np.ndarray]
    neighbours: Dict[str, int]
    comm_time: float = 0.0


def _neighbour(pr, pc, r, c, dr, dc, periodic) -> int:
    nr, nc = r + dr, c + dc
    if periodic:
        nr %= pr
        nc %= pc
    elif not (0 <= nr < pr and 0 <= nc < pc):
        return -1
    return nr * pc + nc


def stencil_setup(comm, config: StencilConfig) -> StencilState:
    pr, pc = process_grid(comm.size)
    r, c = divmod(comm.rank, pc)
    t = config.tile
    field = None
    if config.numeric:
        rng = np.random.default_rng(1000 + comm.rank)
        field = rng.random((t + 2, t + 2))
        # Dirichlet-0 boundary: the halo ring starts at zero and is only
        # ever overwritten by neighbour exchanges (never at the physical
        # domain boundary).
        field[0, :] = field[-1, :] = 0.0
        field[:, 0] = field[:, -1] = 0.0
    return StencilState(
        config=config,
        pr=pr,
        pc=pc,
        my_r=r,
        my_c=c,
        field=field,
        neighbours={
            "n": _neighbour(pr, pc, r, c, -1, 0, config.periodic),
            "s": _neighbour(pr, pc, r, c, +1, 0, config.periodic),
            "w": _neighbour(pr, pc, r, c, 0, -1, config.periodic),
            "e": _neighbour(pr, pc, r, c, 0, +1, config.periodic),
        },
    )


def stencil_iteration(comm, state: StencilState, it: int) -> None:
    """Halo exchange + Jacobi sweep.  ``comm`` may be the reordered
    communicator: neighbours are *logical ranks*, so reordering changes
    which physical process plays which grid role."""
    cfg = state.config
    t = cfg.tile
    f = state.field
    nb = state.neighbours
    pairs = [("n", "s"), ("s", "n"), ("w", "e"), ("e", "w")]
    extract = {
        "n": (lambda: f[1, 1:-1].copy()) if f is not None else None,
        "s": (lambda: f[-2, 1:-1].copy()) if f is not None else None,
        "w": (lambda: f[1:-1, 1].copy()) if f is not None else None,
        "e": (lambda: f[1:-1, -2].copy()) if f is not None else None,
    }
    halo_nbytes = 8 * t
    t0 = comm.time
    reqs = []
    for send_dir, recv_dir in pairs:
        dst = nb[send_dir]
        src = nb[recv_dir]
        tag = 100 + it % 1000
        if src >= 0:
            reqs.append((recv_dir, comm.irecv(source=src, tag=tag)))
        if dst >= 0:
            payload = extract[send_dir]() if cfg.numeric else None
            comm.isend(payload, dest=dst, tag=tag,
                       nbytes=None if cfg.numeric else halo_nbytes)
    received = {}
    for direction, req in reqs:
        received[direction] = req.wait().payload
    state.comm_time += comm.time - t0

    if cfg.numeric:
        if "n" in received:
            f[0, 1:-1] = received["n"]
        if "s" in received:
            f[-1, 1:-1] = received["s"]
        if "w" in received:
            f[1:-1, 0] = received["w"]
        if "e" in received:
            f[1:-1, -1] = received["e"]
        inner = 0.25 * (f[:-2, 1:-1] + f[2:, 1:-1] + f[1:-1, :-2] + f[1:-1, 2:])
        f[1:-1, 1:-1] = inner
        comm.compute(5.0 * t * t / cfg.compute_rate)
    else:
        comm.compute(5.0 * t * t / cfg.compute_rate)


def run_stencil(comm, config: StencilConfig, iterations: int) -> Dict[str, float]:
    """Run the stencil; returns per-rank total and communication time."""
    state = stencil_setup(comm, config)
    t0 = comm.time
    for it in range(iterations):
        stencil_iteration(comm, state, it)
    return {
        "time": comm.time - t0,
        "comm_time": state.comm_time,
        "iterations": iterations,
        "checksum": float(state.field.sum()) if state.field is not None else 0.0,
    }


def main(argv=None) -> int:
    """Demo entry point: run the stencil on a round-robin simulated
    cluster for a few tile sizes (``python -m repro.apps.stencil``)."""
    from repro.experiments.common import experiment_parser, render_table
    from repro.simmpi import Cluster, Engine

    parser = experiment_parser(
        "python -m repro.apps.stencil",
        "2-D halo-exchange stencil on a simulated cluster.",
        sizes_help="per-rank tile edges in cells (default 32,64)",
    )
    parser.add_argument("--nodes", type=int, default=2)
    parser.add_argument("--iters", type=int, default=20)
    args = parser.parse_args(argv)
    tiles = args.sizes or (32, 64)

    rows = []
    for tile in tiles:
        cluster = Cluster.plafrim(args.nodes, binding="rr")
        engine = Engine(cluster, seed=args.seed)
        stats = engine.run(
            lambda comm: run_stencil(comm, StencilConfig(tile=tile),
                                     args.iters))
        worst = max(stats, key=lambda s: s["time"])
        rows.append((tile, round(worst["time"], 5),
                     round(worst["comm_time"], 5)))
    print(render_table(
        ["tile", "time (s)", "comm (s)"], rows,
        title=f"{args.iters} Jacobi iterations on "
              f"{cluster.n_ranks} round-robin ranks",
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
