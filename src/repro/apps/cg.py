"""NAS Parallel Benchmarks CG kernel (paper §6.5).

The conjugate-gradient kernel with NPB 3.3's parallel structure: a 2-D
processor grid (``num_proc_rows × num_proc_cols``, ``npcols = 2·nprows``
when log₂ p is odd), pairwise exchange ladders along processor rows for
scalar reductions and for the reduce-scatter of the partial
matrix-vector product, a transpose exchange, and a doubling ladder
along processor columns to rebuild the q vector.  All point-to-point
traffic goes through the *world* communicator with explicitly computed
global ranks, exactly like the NPB source — which is why the paper's
reordering experiment works by swapping the communicator the iteration
uses.

Two execution modes:

* ``numeric`` — a real distributed sparse CG solve.  A deterministic
  diagonally-dominant SPD matrix replaces NPB's ``makea`` (whose exact
  random sparse generator is irrelevant to communication behaviour);
  results are validated against a sequential solve in the test suite.
  Requires the block sizes to divide evenly.
* ``modeled`` — identical message pattern and sizes, abstract payloads,
  compute time charged analytically from the flop count.  This is how
  classes B/C/D run (class D has ≈ 7·10⁸ nonzeros — the paper ran it on
  256 cores of PlaFRIM; we model the compute and simulate every
  message).

Per-rank statistics mirror the paper's measurement: total time and
time spent in MPI calls ("we have added a timer that measures the time
spent by rank 0 in MPI calls").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.simmpi.comm import Communicator

__all__ = ["CGClass", "CG_CLASSES", "CGConfig", "CGState", "cg_setup",
           "cg_outer_iteration", "run_cg", "grid_shape", "make_spd_matrix",
           "sequential_cg"]


@dataclass(frozen=True)
class CGClass:
    """An NPB problem class."""

    name: str
    na: int
    nonzer: int
    niter: int
    shift: float

    @property
    def approx_nnz(self) -> int:
        """NPB's nz bound: na·(nonzer+1)² (used for the flop model)."""
        return self.na * (self.nonzer + 1) ** 2


CG_CLASSES: Dict[str, CGClass] = {
    "S": CGClass("S", 1400, 7, 15, 10.0),
    "W": CGClass("W", 7000, 8, 15, 12.0),
    "A": CGClass("A", 14000, 11, 15, 20.0),
    "B": CGClass("B", 75000, 13, 75, 60.0),
    "C": CGClass("C", 150000, 15, 75, 110.0),
    "D": CGClass("D", 1500000, 21, 100, 500.0),
}


def grid_shape(p: int) -> Tuple[int, int]:
    """NPB processor grid: (num_proc_rows, num_proc_cols), both powers
    of two, ``npcols == nprows`` or ``npcols == 2·nprows``."""
    if p < 1 or p & (p - 1):
        raise ValueError(f"CG needs a power-of-two process count, got {p}")
    log2p = p.bit_length() - 1
    npcols = 1 << ((log2p + 1) // 2)
    nprows = p // npcols
    return nprows, npcols


@dataclass
class CGConfig:
    """How to run the kernel."""

    cg_class: CGClass
    mode: str = "modeled"  # "numeric" | "modeled"
    cgitmax: int = 25  # NPB's inner iteration count
    niter: Optional[int] = None  # outer iterations (default: class niter)
    # Effective sustained flop/s per core.  CG is memory-bound: NPB
    # class B sustains ~0.1-0.3 GFLOP/s per Haswell core when all 24
    # cores are busy; calibrated so the communication share of class B
    # at 64 ranks matches the share the paper's Fig. 7 ratios imply.
    compute_rate: float = 1.2e8
    seed: int = 1  # matrix generator seed (numeric mode)

    def __post_init__(self):
        if self.mode not in ("numeric", "modeled"):
            raise ValueError(f"unknown CG mode {self.mode!r}")

    @property
    def outer_iterations(self) -> int:
        return self.niter if self.niter is not None else self.cg_class.niter


# ---------------------------------------------------------------------------
# matrix generation (numeric mode)


def make_spd_matrix(na: int, nonzer: int, seed: int = 1) -> sp.csr_matrix:
    """Deterministic sparse symmetric positive-definite matrix.

    ``nonzer`` off-diagonal entries per row (before symmetrization),
    negative off-diagonals and a diagonally dominant diagonal — a
    weighted-Laplacian-plus-identity, guaranteed SPD.  Stands in for
    NPB's ``makea`` (documented substitution; the communication pattern
    does not depend on the matrix values).
    """
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(na), nonzer)
    cols = rng.integers(0, na, size=na * nonzer)
    vals = rng.uniform(0.1, 1.0, size=na * nonzer)
    B = sp.csr_matrix((vals, (rows, cols)), shape=(na, na))
    B = (B + B.T) * 0.5
    B.setdiag(0)
    B.eliminate_zeros()
    off = -B
    diag = np.asarray(B.sum(axis=1)).ravel() + 1.0
    return (off + sp.diags(diag)).tocsr()


def sequential_cg(A: sp.csr_matrix, x: np.ndarray, cgitmax: int) -> np.ndarray:
    """Reference solve: ``cgitmax`` plain CG iterations for A z = x."""
    z = np.zeros_like(x)
    r = x.copy()
    p = r.copy()
    rho = float(r @ r)
    for _ in range(cgitmax):
        q = A @ p
        alpha = rho / float(p @ q)
        z += alpha * p
        r -= alpha * q
        rho0, rho = rho, float(r @ r)
        p = r + (rho / rho0) * p
    return z


# ---------------------------------------------------------------------------
# per-rank state


@dataclass
class CGState:
    config: CGConfig
    nprows: int
    npcols: int
    l2npcols: int
    proc_row: int
    proc_col: int
    row_len: int  # rows per processor row (ceil)
    col_len: int  # cols per processor column (ceil)
    chunk: int  # reduce-scatter chunk: row_len / npcols (ceil)
    transpose_send_to: int
    transpose_recv_from: int
    A_local: Optional[sp.csr_matrix] = None
    x_seg: Optional[np.ndarray] = None
    z_seg: Optional[np.ndarray] = None
    comm_time: float = 0.0
    mpi_calls: int = 0
    zeta: float = 0.0

    def rank_of(self, row: int, col: int) -> int:
        return row * self.npcols + col


def _transpose_maps(nprows: int, npcols: int) -> Tuple[List[int], List[int]]:
    """Global send/recv partner per rank for the transpose exchange.

    Square grid: the matrix transpose (an involution).  Non-square
    (npcols = 2·nprows): the chunk (r, c) belongs to column block
    ``2r + (c >= npcols/2)`` and goes to the processor of that column
    whose row index is ``c mod nprows``.
    """
    p = nprows * npcols
    send_to = [0] * p
    for r in range(nprows):
        for c in range(npcols):
            me = r * npcols + c
            if nprows == npcols:
                send_to[me] = c * npcols + r
            else:
                c_new = 2 * r + (1 if c >= npcols // 2 else 0)
                r_new = c % nprows
                send_to[me] = r_new * npcols + c_new
    recv_from = [0] * p
    for me, dst in enumerate(send_to):
        recv_from[dst] = me
    return send_to, recv_from


def cg_setup(comm: Communicator, config: CGConfig) -> CGState:
    """Build the per-rank state (grid position, partners, local data)."""
    p = comm.size
    nprows, npcols = grid_shape(p)
    me = comm.rank
    proc_row, proc_col = divmod(me, npcols)
    na = config.cg_class.na
    row_len = -(-na // nprows)
    col_len = -(-na // npcols)
    chunk = -(-row_len // npcols)
    send_to, recv_from = _transpose_maps(nprows, npcols)
    state = CGState(
        config=config,
        nprows=nprows,
        npcols=npcols,
        l2npcols=npcols.bit_length() - 1,
        proc_row=proc_row,
        proc_col=proc_col,
        row_len=row_len,
        col_len=col_len,
        chunk=chunk,
        transpose_send_to=send_to[me],
        transpose_recv_from=recv_from[me],
    )
    if config.mode == "numeric":
        if nprows != npcols:
            raise ValueError("numeric mode requires a square processor grid")
        if na % (nprows * npcols * npcols) != 0:
            raise ValueError(
                f"numeric mode needs na divisible by nprows*npcols^2; "
                f"na={na}, grid={nprows}x{npcols}"
            )
        A = make_spd_matrix(na, config.cg_class.nonzer, seed=config.seed)
        r0 = proc_row * row_len
        c0 = proc_col * col_len
        state.A_local = A[r0 : r0 + row_len, c0 : c0 + col_len].tocsr()
        state.x_seg = np.ones(col_len, dtype=np.float64)
        state.z_seg = np.zeros(col_len, dtype=np.float64)
    return state


# ---------------------------------------------------------------------------
# communication building blocks (all timed into state.comm_time)


def _timed_sendrecv(comm, state: CGState, value, dest, source, tag, nbytes=None):
    t0 = comm.time
    msg = comm.sendrecv(value, dest=dest, source=source, sendtag=tag,
                        recvtag=tag, nbytes=nbytes)
    state.comm_time += comm.time - t0
    state.mpi_calls += 2
    return msg


def _row_ladder_sum(comm, state: CGState, value: float, tag: int) -> float:
    """Scalar all-sum along the processor row: l2npcols pairwise
    exchanges with reduce_exch_proc (8-byte messages)."""
    c = state.proc_col
    acc = value
    numeric = state.config.mode == "numeric"
    for i in range(state.l2npcols):
        d = state.npcols >> (i + 1)
        partner = state.rank_of(state.proc_row, c ^ d)
        msg = _timed_sendrecv(
            comm, state,
            np.float64(acc) if numeric else None,
            dest=partner, source=partner, tag=tag + i,
            nbytes=None if numeric else 8,
        )
        if numeric:
            acc += float(msg.payload)
    return acc


def _reduce_scatter_row(comm, state: CGState, w, tag: int):
    """Recursive halving of the partial mat-vec along the row.

    Step i exchanges segments of ``row_len / 2^(i+1)`` doubles with the
    partner at column distance ``npcols / 2^(i+1)``; the caller ends up
    owning chunk ``proc_col`` of the row sum.
    """
    c = state.proc_col
    numeric = state.config.mode == "numeric"
    seg = w
    lo = 0  # global start of the held segment (numeric bookkeeping)
    length = state.row_len
    for i in range(state.l2npcols):
        d = state.npcols >> (i + 1)
        partner = state.rank_of(state.proc_row, c ^ d)
        half = length // 2 if numeric else -(-length // 2)
        if numeric:
            keep_low = (c & d) == 0
            mine = seg[:half] if keep_low else seg[half:]
            theirs = seg[half:] if keep_low else seg[:half]
            msg = _timed_sendrecv(comm, state, theirs, dest=partner,
                                  source=partner, tag=tag + i)
            seg = mine + msg.payload
            if not keep_low:
                lo += half
            length = half
        else:
            _timed_sendrecv(comm, state, None, dest=partner, source=partner,
                            tag=tag + i, nbytes=8 * half)
            length = half
    return seg, lo


def _allgather_column(comm, state: CGState, seg, tag: int):
    """Recursive doubling along the processor column to rebuild the
    q/r vector segment of length ``col_len`` from per-rank chunks."""
    r = state.proc_row
    numeric = state.config.mode == "numeric"
    pieces = {r: seg} if numeric else None
    # col_len == nprows · chunk on both square and non-square grids.
    length = state.chunk
    steps = state.nprows.bit_length() - 1
    for i in range(steps):
        d = 1 << i
        partner = state.rank_of(r ^ d, state.proc_col)
        if numeric:
            nbytes = None
            payload = dict(pieces)
            msg = _timed_sendrecv(comm, state, payload, dest=partner,
                                  source=partner, tag=tag + i)
            pieces.update(msg.payload)
        else:
            _timed_sendrecv(comm, state, None, dest=partner, source=partner,
                            tag=tag + i, nbytes=8 * length)
            length *= 2
    if numeric:
        out = np.concatenate([pieces[j] for j in sorted(pieces)])
        return out
    return None


# ---------------------------------------------------------------------------
# the solver


def _next_tag(state: CGState) -> int:
    """Per-phase tag base; all ranks advance in lockstep (SPMD)."""
    tag = getattr(state, "_tag_seq", 0)
    state._tag_seq = tag + 1
    return (tag % 30_000) * 32


def _matvec(comm, state: CGState, p_seg):
    """q = A·p with the NPB communication skeleton:
    local partial product, reduce-scatter along the row, transpose
    exchange, doubling ladder along the column."""
    numeric = state.config.mode == "numeric"
    if numeric:
        w = state.A_local @ p_seg
        comm.compute(2.0 * state.A_local.nnz / state.config.compute_rate)
    else:
        nnz_local = state.config.cg_class.approx_nnz / (state.nprows * state.npcols)
        comm.compute(2.0 * nnz_local / state.config.compute_rate)
        w = None

    seg, _lo = _reduce_scatter_row(comm, state, w, tag=_next_tag(state))

    tag = _next_tag(state)
    msg = None
    t0 = comm.time
    req = comm.irecv(source=state.transpose_recv_from, tag=tag)
    comm.isend(seg, dest=state.transpose_send_to, tag=tag,
               nbytes=None if numeric else 8 * state.chunk)
    msg = req.wait()
    state.comm_time += comm.time - t0
    state.mpi_calls += 2

    chunk = msg.payload if numeric else None
    return _allgather_column(comm, state, chunk, tag=_next_tag(state))


def _vector_ops_cost(comm, state: CGState, n_ops: int) -> None:
    """Charge modeled time for n_ops AXPY/dot passes over the segment."""
    comm.compute(n_ops * state.col_len / state.config.compute_rate)


def _conj_grad(comm, state: CGState):
    """One NPB ``conj_grad`` call: cgitmax inner CG iterations plus the
    residual-norm evaluation.  Returns (z_seg, rnorm) in numeric mode,
    (None, 0.0) in modeled mode."""
    numeric = state.config.mode == "numeric"
    if numeric:
        x = state.x_seg
        z = np.zeros_like(x)
        r = x.copy()
        p = r.copy()
        rho = _row_ladder_sum(comm, state, float(r @ r), tag=_next_tag(state))
    else:
        z = r = p = x = None
        _row_ladder_sum(comm, state, 0.0, tag=_next_tag(state))
        rho = 1.0

    for _ in range(state.config.cgitmax):
        q = _matvec(comm, state, p)
        if numeric:
            d = _row_ladder_sum(comm, state, float(p @ q), tag=_next_tag(state))
            alpha = rho / d
            z += alpha * p
            r -= alpha * q
            rho0 = rho
            rho = _row_ladder_sum(comm, state, float(r @ r), tag=_next_tag(state))
            p = r + (rho / rho0) * p
        else:
            _vector_ops_cost(comm, state, 5)
            _row_ladder_sum(comm, state, 0.0, tag=_next_tag(state))
            _row_ladder_sum(comm, state, 0.0, tag=_next_tag(state))

    # Residual norm ||x - A z|| (one extra mat-vec, as in NPB).
    az = _matvec(comm, state, z)
    if numeric:
        local = float(((x - az) ** 2).sum())
        rnorm = np.sqrt(_row_ladder_sum(comm, state, local, tag=_next_tag(state)))
        return z, float(rnorm)
    _vector_ops_cost(comm, state, 2)
    _row_ladder_sum(comm, state, 0.0, tag=_next_tag(state))
    return None, 0.0


def cg_outer_iteration(comm, state: CGState, it: int) -> float:
    """One outer iteration: conj_grad + zeta + renormalization of x.

    Returns the residual norm (numeric) or 0.0 (modeled).
    """
    z, rnorm = _conj_grad(comm, state)
    numeric = state.config.mode == "numeric"
    if numeric:
        tnorm1 = _row_ladder_sum(comm, state, float(state.x_seg @ z),
                                 tag=_next_tag(state))
        tnorm2 = _row_ladder_sum(comm, state, float(z @ z), tag=_next_tag(state))
        state.zeta = state.config.cg_class.shift + 1.0 / tnorm1
        state.x_seg = z / np.sqrt(tnorm2)
        state.z_seg = z
    else:
        _row_ladder_sum(comm, state, 0.0, tag=_next_tag(state))
        _row_ladder_sum(comm, state, 0.0, tag=_next_tag(state))
        _vector_ops_cost(comm, state, 2)
    return rnorm


def run_cg(comm, config: CGConfig, skip_init: bool = False,
           niter: Optional[int] = None) -> Dict[str, float]:
    """Run the kernel like the NPB main program: one untimed
    initialization iteration (the one the paper monitors for its
    reordering), then ``niter`` timed iterations.

    Returns per-rank stats: total/communication virtual seconds over
    the timed phase, iteration count, MPI call count, final zeta.
    """
    state = cg_setup(comm, config)
    if not skip_init:
        cg_outer_iteration(comm, state, 0)
        if state.config.mode == "numeric":
            state.x_seg = np.ones(state.col_len, dtype=np.float64)
    n = niter if niter is not None else config.outer_iterations
    t0, c0, m0 = comm.time, state.comm_time, state.mpi_calls
    for it in range(1, n + 1):
        cg_outer_iteration(comm, state, it)
    return {
        "time": comm.time - t0,
        "comm_time": state.comm_time - c0,
        "mpi_calls": state.mpi_calls - m0,
        "iterations": n,
        "zeta": state.zeta,
    }


def main(argv=None) -> int:
    """Demo entry point: modeled NPB CG on a simulated cluster
    (``python -m repro.apps.cg``)."""
    from repro.experiments.common import experiment_parser, render_table
    from repro.simmpi import Cluster, Engine

    parser = experiment_parser(
        "python -m repro.apps.cg",
        "NAS CG kernel (modeled mode) on a simulated cluster.",
        sizes_help="power-of-two rank counts (default 16)",
    )
    parser.add_argument("--cg-class", dest="cg_class", default="S",
                        choices=sorted(CG_CLASSES))
    parser.add_argument("--iters", type=int, default=2,
                        help="timed outer iterations (default 2)")
    args = parser.parse_args(argv)
    rank_counts = args.sizes or (16,)

    rows = []
    for np_count in rank_counts:
        cluster = Cluster.plafrim(
            max(1, -(-np_count // 24)), n_ranks=np_count, binding="rr")
        engine = Engine(cluster, seed=args.seed)
        config = CGConfig(CG_CLASSES[args.cg_class], mode="modeled",
                          niter=args.iters)
        stats = engine.run(lambda comm: run_cg(comm, config))
        r0 = stats[0]
        rows.append((np_count, round(r0["time"], 4),
                     round(r0["comm_time"], 4), r0["mpi_calls"]))
    print(render_table(
        ["NP", "time (s)", "comm (s)", "MPI calls"], rows,
        title=f"CG class {args.cg_class}, {args.iters} timed iterations "
              "(rank-0 view)",
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
