"""Deterministic cooperative-thread simulation engine.

Every MPI rank runs its per-rank program on a real Python thread, but a
*baton* protocol guarantees that exactly one thread executes at any
instant: the scheduler (the caller's thread) repeatedly picks the
runnable rank with the smallest ``(virtual clock, rank)`` and hands it
the baton; the rank runs until it blocks (e.g. an unmatched receive),
yields, or finishes, then hands the baton back.  The result is a fully
deterministic discrete-event simulation in which user code is ordinary
blocking MPI-style Python — no ``yield`` infection, no data races.

Virtual time: each rank owns a clock (seconds).  Point-to-point sends
and receives advance clocks according to the :mod:`repro.simmpi.network`
model; ``compute()``/``sleep()`` advance them explicitly.  A rank never
observes another rank's clock directly, so causality is preserved:
receive completion is ``max(post time, message arrival)``.

Deadlock (all live ranks blocked) raises :class:`DeadlockError` with a
per-rank state dump instead of hanging the host process.
"""

from __future__ import annotations

import heapq
import threading
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.simmpi.cluster import Cluster
from repro.simmpi.errorsim import Aborted, DeadlockError, RankFailure, SimError
from repro.simmpi.mpit import MpiToolInterface
from repro.simmpi.network import Network
from repro.simmpi.pml_monitoring import PmlMonitoring

__all__ = ["Engine", "SimProcess", "current_process"]


class _State(Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


_tls = threading.local()


def current_process() -> "SimProcess":
    """The :class:`SimProcess` executing on the calling thread.

    Only valid inside a rank program; library layers (communicators,
    the monitoring API) use this to know "who is calling".
    """
    proc = getattr(_tls, "proc", None)
    if proc is None:
        raise SimError("not inside a simulated MPI process")
    return proc


class SimProcess:
    """Per-rank simulation state: clock, scheduler handshake, userdata."""

    __slots__ = (
        "engine",
        "rank",
        "clock",
        "state",
        "thread",
        "resume_evt",
        "blocked_on",
        "exc",
        "result",
        "userdata",
        "ready_seq",
    )

    def __init__(self, engine: "Engine", rank: int):
        self.engine = engine
        self.rank = rank
        self.clock = 0.0
        self.state = _State.NEW
        self.thread: Optional[threading.Thread] = None
        self.resume_evt = threading.Event()
        self.blocked_on: str = ""
        self.exc: Optional[BaseException] = None
        self.result: Any = None
        self.ready_seq = 0  # invalidates stale ready-heap entries
        # Scratch space for per-process library state (e.g. the MPI_M
        # monitoring runtime attaches its session table here).
        self.userdata: Dict[str, Any] = {}

    # -- virtual time -----------------------------------------------------

    def advance(self, seconds: float) -> None:
        """Move this rank's clock forward by ``seconds`` of work/sleep."""
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        self.clock += seconds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimProcess(rank={self.rank}, t={self.clock:.6g}, "
            f"state={self.state.value})"
        )


class Engine:
    """Run SPMD programs over a simulated cluster.

    Parameters
    ----------
    cluster:
        Machine description (topology + binding + network parameters).
    seed:
        Seed for the network jitter stream.
    monitoring_overhead:
        CPU seconds charged to a sender per message *recorded* by the
        monitoring component (the cost the paper's Fig. 4 measures).
        Zero when monitoring is disabled.
    """

    def __init__(
        self,
        cluster: Cluster,
        seed: int = 0,
        monitoring_overhead: float = 5.0e-8,
    ):
        self.cluster = cluster
        self.network = Network(
            cluster.topology, cluster.binding, cluster.params, seed=seed
        )
        self.monitoring_overhead = float(monitoring_overhead)
        self.procs: List[SimProcess] = []
        self.mpit = MpiToolInterface()
        self.pml = PmlMonitoring(cluster.n_ranks, mpit=self.mpit)
        # Shared registries used by the communicator layer; only one
        # thread runs at a time so plain dicts are safe.
        self.comm_registry: Dict[Any, Any] = {}
        self.match_queues: Dict[Any, Any] = {}
        self._next_comm_id = 0
        self._sched_evt = threading.Event()
        self._aborting = False
        self._switches = 0
        self._ready_heap: List = []  # (clock, rank, seq, proc), lazily cleaned
        self._n_done = 0
        self.world = None  # set by run(); apps may also build comms directly

    # -- identifiers ------------------------------------------------------

    @property
    def n_ranks(self) -> int:
        return self.cluster.n_ranks

    def alloc_comm_id(self) -> int:
        cid = self._next_comm_id
        self._next_comm_id += 1
        return cid

    @property
    def switches(self) -> int:
        """Number of baton handoffs so far (a cost/diagnostic metric)."""
        return self._switches

    # -- running a program --------------------------------------------------

    def run(
        self,
        main: Callable,
        args: Sequence[Any] = (),
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> List[Any]:
        """Execute ``main(world_comm, *args, **kwargs)`` on every rank.

        Returns the per-rank return values, in rank order.  Any rank
        exception is re-raised as :class:`RankFailure`; a global hang
        raises :class:`DeadlockError`.
        """
        from repro.simmpi.comm import Communicator  # local: avoid cycle

        if self.procs:
            raise SimError("Engine.run is single-shot; build a new Engine")
        kwargs = kwargs or {}
        self.procs = [SimProcess(self, r) for r in range(self.n_ranks)]
        self.world = Communicator(self, list(range(self.n_ranks)))

        for proc in self.procs:
            t = threading.Thread(
                target=self._thread_main,
                args=(proc, main, args, kwargs),
                name=f"simmpi-rank-{proc.rank}",
                daemon=True,
            )
            proc.thread = t
            self._set_ready(proc)
            t.start()

        try:
            self._schedule()
        finally:
            self._drain()

        failed = [p for p in self.procs if p.exc is not None]
        if failed:
            p = min(failed, key=lambda q: q.rank)
            raise RankFailure(p.rank, p.exc) from p.exc
        return [p.result for p in self.procs]

    @property
    def max_clock(self) -> float:
        """Largest per-rank clock (the simulated makespan) after run()."""
        if not self.procs:
            return 0.0
        return max(p.clock for p in self.procs)

    def clocks(self) -> List[float]:
        return [p.clock for p in self.procs]

    # -- scheduler core ---------------------------------------------------

    def _set_ready(self, proc: SimProcess) -> None:
        """Transition a process to READY and enqueue it for scheduling."""
        proc.state = _State.READY
        proc.ready_seq += 1
        heapq.heappush(self._ready_heap, (proc.clock, proc.rank, proc.ready_seq, proc))

    def _pop_ready(self) -> Optional[SimProcess]:
        heap = self._ready_heap
        while heap:
            _, _, seq, proc = heapq.heappop(heap)
            if proc.state is _State.READY and proc.ready_seq == seq:
                return proc
        return None

    def min_ready_clock(self) -> Optional[float]:
        """Clock of the frontmost runnable rank (lazy heap cleanup)."""
        heap = self._ready_heap
        while heap:
            clock, _, seq, proc = heap[0]
            if proc.state is _State.READY and proc.ready_seq == seq:
                return clock
            heapq.heappop(heap)
        return None

    def _schedule(self) -> None:
        while True:
            if self._aborting:
                return
            nxt = self._pop_ready()
            if nxt is None:
                if self._n_done == len(self.procs):
                    return
                blocked = [
                    (p.rank, f"blocked on {p.blocked_on} at t={p.clock:.6g}")
                    for p in self.procs
                    if p.state is _State.BLOCKED
                ]
                self._aborting = True
                raise DeadlockError(blocked)
            self._hand_baton(nxt)

    def _hand_baton(self, proc: SimProcess) -> None:
        self._switches += 1
        proc.state = _State.RUNNING
        self._sched_evt.clear()
        proc.resume_evt.set()
        self._sched_evt.wait()

    def _drain(self) -> None:
        """Unwind any live rank threads after an abort or failure."""
        self._aborting = True
        for proc in self.procs:
            while proc.state is not _State.DONE:
                self._sched_evt.clear()
                proc.resume_evt.set()
                self._sched_evt.wait()
        for proc in self.procs:
            if proc.thread is not None:
                proc.thread.join(timeout=10.0)

    # -- rank-thread side ---------------------------------------------------

    def _thread_main(self, proc: SimProcess, main, args, kwargs) -> None:
        _tls.proc = proc
        try:
            self._await_baton(proc)
            proc.result = main(self.world, *args, **kwargs)
        except Aborted:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported via RankFailure
            proc.exc = exc
            self._aborting = True
        finally:
            proc.state = _State.DONE
            self._n_done += 1
            self._sched_evt.set()

    def _await_baton(self, proc: SimProcess) -> None:
        proc.resume_evt.wait()
        proc.resume_evt.clear()
        if self._aborting:
            raise Aborted()

    # -- primitives used by the communicator layer ---------------------------

    def block(self, proc: SimProcess, reason: str) -> None:
        """Park the calling rank until another rank calls :meth:`wake`."""
        assert proc is current_process()
        proc.state = _State.BLOCKED
        proc.blocked_on = reason
        self._sched_evt.set()
        self._await_baton(proc)
        proc.blocked_on = ""

    def wake(self, proc: SimProcess) -> None:
        """Mark a blocked rank runnable (called while holding the baton)."""
        if proc.state is _State.BLOCKED:
            self._set_ready(proc)

    def maybe_yield(self, proc: SimProcess) -> None:
        """Give way to ranks that are behind in virtual time.

        Called at communication points so that shared timed resources
        (the per-node NIC busy windows) are claimed in approximately
        virtual-time order rather than baton order.
        """
        front = self.min_ready_clock()
        if front is not None and front < proc.clock:
            self._set_ready(proc)
            self._sched_evt.set()
            self._await_baton(proc)
            proc.state = _State.RUNNING

    def charge_monitoring_overhead(self, proc: SimProcess, n_records: int = 1) -> None:
        """Charge the per-message bookkeeping cost to a sender's clock."""
        if self.pml.enabled and self.monitoring_overhead > 0.0:
            proc.clock += self.monitoring_overhead * n_records
