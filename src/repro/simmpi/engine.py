"""Deterministic cooperative-thread simulation engine.

Every MPI rank runs its per-rank program on a real Python thread, but a
*baton* protocol guarantees that exactly one thread executes at any
instant.  The baton moves by **direct handoff**: the thread that is
about to stop running (because it blocked, yielded, or finished) pops
the next runnable rank from the ready heap and signals it directly.
There is no scheduler thread in the steady state — the main thread only
kicks off the first rank and is woken again when the simulation
finishes, aborts, or stalls (deadlock).

Because the baton is unique, every park has exactly one matching wake,
so the signal itself needs no shared lock and no condition variable: a
per-thread ``threading.Lock`` used as a binary semaphore (created
locked; park = ``acquire``, wake = ``release``) is enough, and the
release-before-acquire case is handled by the lock itself.  A handoff
is therefore one futex wake plus one futex wait — measurably cheaper
than the earlier shared-lock + per-process ``Condition`` handshake
(which paid an extra waiter allocation and outer-lock reacquisition on
every switch), and about half the cost again of the original
double-``Event`` scheduler-loop design.

Virtual time: each rank owns a clock (seconds).  Point-to-point sends
and receives advance clocks according to the :mod:`repro.simmpi.network`
model; ``compute()``/``sleep()`` advance them explicitly.  A rank never
observes another rank's clock directly, so causality is preserved:
receive completion is ``max(post time, message arrival)``.

Scheduling policy
-----------------

Shared timed resources (NIC/memory busy windows, the jitter RNG
stream) must be claimed in the same global order regardless of baton
order, so a rank about to inject a message first gives way to every
runnable rank whose virtual clock is strictly behind its own.  The
classic engine implemented this by parking the sender's thread;
profiling shows those parks dominate wall-clock time at paper-scale
rank counts.  This engine eliminates most of them with **deferred
sends**: a sender that must give way enqueues its fully-described
transfer (buffer copy, destination, category) keyed by ``(clock,
rank)`` and *keeps running* — it only stops at its next engine
interaction (``wait``, ``time``, another send, …), and whoever holds
the baton materializes due transfers inline, in exactly the order the
park-based engine produced.  A sender's thread now parks only when a
real thread (not just a pending transfer) must run before it.

Ready-heap entries are ``(clock, rank, seq, proc, marker)`` — ordered
exactly like the classic ``(clock, rank)`` policy.  The ``marker``
field carries one further switch elision applied only *at pop time*,
when the entry wins the heap, so it cannot perturb the order: a
*phantom* marker means a message bind targeted a request of a blocked
rank other than the one it is waiting on.  The classic engine wakes
the rank, which re-checks its wait loop and immediately blocks again
— no application code runs.  A phantom entry occupies the identical
heap slot (so other ranks' yield decisions still see it) but simply
evaporates when popped, unless the awaited message has arrived in the
meantime.  (Elisions that would delay a *real* resume — e.g. skipping
ahead to the receiver's post-recv clock — are deliberately absent:
they reorder application code such as monitoring-mode changes against
other ranks' sends.)

Deadlock (all live ranks blocked) raises :class:`DeadlockError` with a
per-rank state dump instead of hanging the host process.
"""

from __future__ import annotations

import heapq
import inspect
import threading
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs as _obs
from repro.replay import autorecord as _replay
from repro.simmpi.cluster import Cluster
from repro.simmpi.errorsim import Aborted, DeadlockError, RankFailure, SimError
from repro.simmpi.match import ANY_SOURCE, ANY_TAG, Message
from repro.simmpi.mpit import MpiToolInterface
from repro.simmpi.network import Network
from repro.simmpi.pml_monitoring import PmlMonitoring

__all__ = ["Engine", "SimProcess", "current_process"]


class _State(Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


_tls = threading.local()

# Sentinel for ready-heap entries that stand in for a blocked process
# whose wake would be provably spurious (see module docstring).
_PHANTOM = object()


def current_process() -> "SimProcess":
    """The :class:`SimProcess` executing on the calling thread.

    Only valid inside a rank program; library layers (communicators,
    the monitoring API) use this to know "who is calling".
    """
    proc = getattr(_tls, "proc", None)
    if proc is None:
        raise SimError("not inside a simulated MPI process")
    return proc


def _drive(gen):
    """Run a co-generator to completion on the calling thread.

    Blocking wrappers use this to run the canonical ``co_*``
    implementations on the thread-per-rank engine: there the engine's
    co services delegate to their blocking equivalents without ever
    yielding, so the whole generator runs start-to-finish in a single
    resume and its return value pops out of ``StopIteration``.  A
    yield reaching this frame means co code ran outside the event
    loop's scheduler — always a bug.
    """
    try:
        next(gen)
    except StopIteration as stop:
        return stop.value
    gen.close()
    raise SimError("co_ continuation yielded outside the event-driven engine")


# A deferred message injection, materialized in ``(clock, rank)`` order
# by whichever thread holds the baton when it comes due.  Represented as
# a plain list (building one is a single C-level op on the per-message
# hot path); the slots are:
#
#   [0] proc      — the sending SimProcess
#   [1] queue     — destination MatchQueue
#   [2] msg       — pre-built Message (arrival filled at materialization)
#   [3] dst_world — destination world rank (for monitoring/transfer)
#   [4] nbytes    — wire size
#   [5] batch     — PeerBatch for batched collectives, else None; the
#                   send is still gated (and charged monitoring
#                   overhead) individually at materialization
#   [6] parked    — True once the owning thread parks awaiting
#                   materialization; tells the materializer to hand the
#                   owner the baton right after the transfer (transfer +
#                   continuation form one tenure, exactly as when the
#                   park-based engine resumed a sender)
_PS_PROC, _PS_QUEUE, _PS_MSG, _PS_DSTW, _PS_NBYTES, _PS_BATCH, _PS_PARKED = \
    range(7)


class SimProcess:
    """Per-rank simulation state: clock, scheduler handshake, userdata."""

    __slots__ = (
        "engine",
        "rank",
        "clock",
        "state",
        "thread",
        "task",
        "sem",
        "blocked_on",
        "wait_obj",
        "pending",
        "exc",
        "result",
        "userdata",
        "ready_seq",
    )

    #: Live execution state that cannot (and need not) survive pickling:
    #: the OS thread, the baton semaphore, and the rank continuation.
    _EPHEMERAL = ("thread", "task", "sem")

    def __init__(self, engine: "Engine", rank: int):
        self.engine = engine
        self.rank = rank
        self.clock = 0.0
        self.state = _State.NEW
        self.thread: Optional[threading.Thread] = None
        # The rank continuation (a generator) on the event-driven core;
        # None on the thread-per-rank core.
        self.task: Any = None
        # Binary semaphore carrying the baton: created locked, released
        # by whoever hands this rank the baton, acquired by this rank's
        # thread to park.  The baton is unique, so releases and
        # acquires pair up exactly.
        self.sem = threading.Lock()
        self.sem.acquire()
        self.blocked_on: Any = ""
        # The request this rank is currently parked in ``wait()`` on,
        # if any.  Message binds to *other* requests of this rank are
        # provably spurious wakes (see Engine.wake).
        self.wait_obj: Any = None
        # This rank's deferred send, if any (at most one: posting a
        # second send settles the first, since its injection clock
        # depends on the first's completion).
        self.pending: Optional[list] = None
        self.exc: Optional[BaseException] = None
        self.result: Any = None
        self.ready_seq = 0  # invalidates stale ready-heap entries
        # Scratch space for per-process library state (e.g. the MPI_M
        # monitoring runtime attaches its session table here).
        self.userdata: Dict[str, Any] = {}

    # -- virtual time -----------------------------------------------------

    def advance(self, seconds: float) -> None:
        """Move this rank's clock forward by ``seconds`` of work/sleep."""
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        if self.pending is not None:
            self.engine.settle(self)
        self.clock += seconds

    # -- pickling ---------------------------------------------------------

    def __getstate__(self):
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot not in self._EPHEMERAL
        }

    def __setstate__(self, state):
        for key, value in state.items():
            setattr(self, key, value)
        self.thread = None
        self.task = None
        self.sem = threading.Lock()
        self.sem.acquire()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimProcess(rank={self.rank}, t={self.clock:.6g}, "
            f"state={self.state.value})"
        )


class Engine:
    """Run SPMD programs over a simulated cluster.

    Parameters
    ----------
    cluster:
        Machine description (topology + binding + network parameters).
    seed:
        Seed for the network jitter stream.
    monitoring_overhead:
        CPU seconds charged to a sender per message *recorded* by the
        monitoring component (the cost the paper's Fig. 4 measures).
        Zero when monitoring is disabled.
    handoff:
        Scheduler handoff policy.  ``"exact"`` (default) reproduces
        the park-based engine's serialization bit-for-bit: transfers
        claim the shared NIC/memory windows and the jitter stream in
        global ``(clock, rank)`` order, so every virtual clock and
        monitoring matrix matches the seed implementation.  ``"fast"``
        drops the virtual-time give-way entirely: a rank injects its
        messages immediately and keeps the baton until it hits a real
        data dependency (a receive whose message has not arrived), so
        shared resources are claimed in baton order instead.  On
        pipelined workloads this collapses the one-handoff-per-message
        lockstep into long tenures (fewer baton handoffs by an order
        of magnitude).  Fast mode is fully deterministic for a given
        seed and uses the identical network model; only the
        interleaving of concurrent transfers — and hence low-order
        timing details — may differ from exact mode.
    core:
        Execution core.  ``"auto"`` (default) picks per program:
        generator rank programs run on the event-driven core (one
        continuation per rank, zero OS threads), plain callables on
        the thread-per-rank core.  ``"threads"`` forces OS threads —
        generator programs are then driven to completion on their
        thread, which is the A/B path the bit-exactness tests use.
        ``"eventloop"`` requires a generator program and rejects
        plain callables.  Both cores produce bit-identical clocks,
        matrices, and switch counts for the same program (a switch is
        a scheduler resume on the event core).
    """

    def __init__(
        self,
        cluster: Cluster,
        seed: int = 0,
        monitoring_overhead: float = 5.0e-8,
        handoff: str = "exact",
        core: str = "auto",
    ):
        if handoff not in ("exact", "fast"):
            raise ValueError("handoff must be 'exact' or 'fast'")
        if core not in ("auto", "threads", "eventloop"):
            raise ValueError("core must be 'auto', 'threads', or 'eventloop'")
        self.core = core
        # True while running on the event-driven core (set by run());
        # the co_* services dispatch on it.
        self._ev = False
        # task.send() count on the event core (the event-side analogue
        # of a baton handoff; switches are counted identically on both
        # cores, resumes only grow on the event core).
        self._resumes = 0
        self.handoff = handoff
        self._fast = handoff == "fast"
        self.seed = int(seed)
        self.cluster = cluster
        self.network = Network(
            cluster.topology, cluster.binding, cluster.params, seed=seed
        )
        self.monitoring_overhead = float(monitoring_overhead)
        # The main thread's park/wake semaphore (see SimProcess.sem).
        self._main_sem = threading.Lock()
        self._main_sem.acquire()
        self.procs: List[SimProcess] = []
        self.mpit = MpiToolInterface()
        self.pml = PmlMonitoring(cluster.n_ranks, mpit=self.mpit)
        self.pml.sync = self._settle_caller
        # Shared registries used by the communicator layer; only one
        # thread runs at a time so plain dicts are safe.
        self.comm_registry: Dict[Any, Any] = {}
        self.match_queues: Dict[Any, Any] = {}
        self._next_comm_id = 0
        self._aborting = False
        self._switches = 0
        # (clock, rank, seq, proc, hint), lazily cleaned.
        self._ready_heap: List = []
        # (clock, rank, qseq, pending-send list); entries are never stale.
        self._pending_heap: List = []
        self._qseq = 0
        self._n_done = 0
        # Elided handoffs (self-handoffs and evaporated phantoms):
        # plain ints bumped on branches that are rare by construction,
        # published by the observer — and useful diagnostics even
        # without it.
        self._self_handoffs = 0
        self._phantom_elisions = 0
        # Observability: None unless the obs layer was enabled when
        # this engine was built; every hot-path consultation is a
        # single ``is not None`` check on a per-wait (not per-message)
        # path.
        if _obs.is_enabled():
            from repro.obs.hooks import EngineObserver  # local: lazy

            self._obs = EngineObserver(self)
            self._obs_spans = self._obs.spans
        else:
            self._obs = None
            self._obs_spans = None
        # Replay recording: None unless repro.replay.autorecord was
        # active when this engine was built; same is-not-None fast-path
        # discipline as the observer.
        self._rr = _replay.attach(self)
        self.world = None  # set by run(); apps may also build comms directly

    # -- identifiers ------------------------------------------------------

    @property
    def n_ranks(self) -> int:
        return self.cluster.n_ranks

    def alloc_comm_id(self) -> int:
        cid = self._next_comm_id
        self._next_comm_id += 1
        return cid

    @property
    def switches(self) -> int:
        """Number of baton handoffs so far (a cost/diagnostic metric)."""
        return self._switches

    @property
    def messages(self) -> int:
        """Number of messages injected into the network so far."""
        return self.network.n_messages

    @property
    def resumes(self) -> int:
        """Scheduler resumes so far.  On the event-driven core every
        ``task.send()`` counts; on the thread-per-rank core a resume
        and a baton handoff are the same event, so dashboards keep a
        comparable signal across both cores."""
        return self._resumes if self._ev else self._switches

    # -- running a program --------------------------------------------------

    def run(
        self,
        main: Callable,
        args: Sequence[Any] = (),
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> List[Any]:
        """Execute ``main(world_comm, *args, **kwargs)`` on every rank.

        Returns the per-rank return values, in rank order.  Any rank
        exception is re-raised as :class:`RankFailure`; a global hang
        raises :class:`DeadlockError`.
        """
        from repro.simmpi.comm import Communicator  # local: avoid cycle

        if self.procs:
            raise SimError("Engine.run is single-shot; build a new Engine")
        kwargs = kwargs or {}
        is_gen = inspect.isgeneratorfunction(main)
        if self.core == "eventloop" and not is_gen:
            raise SimError(
                "core='eventloop' requires a generator rank program; "
                "write it against the co_* API (or use core='threads')"
            )
        self._ev = is_gen and self.core != "threads"
        self.procs = [SimProcess(self, r) for r in range(self.n_ranks)]
        self.world = Communicator(self, list(range(self.n_ranks)))

        if self._ev:
            for proc in self.procs:
                proc.task = self._rank_main(proc, main, args, kwargs)
                self._set_ready(proc)
        else:
            target = main
            if is_gen:
                # Thread-core fallback for generator programs: each
                # rank thread drives its continuation to completion —
                # the A/B path bit-exactness runs compare against.
                def target(world, *a, **k):
                    return _drive(main(world, *a, **k))

            for proc in self.procs:
                t = threading.Thread(
                    target=self._thread_main,
                    args=(proc, target, args, kwargs),
                    name=f"simmpi-rank-{proc.rank}",
                    daemon=True,
                )
                proc.thread = t
                self._set_ready(proc)
                t.start()

        if self._obs is not None:
            self._obs.run_started()
        try:
            if self._ev:
                # The scheduler runs on the calling thread and leaves
                # the current-process slot exactly as it found it
                # (nested engines, post-run library calls).
                prev_proc = getattr(_tls, "proc", None)
                try:
                    self._run_eventloop()
                finally:
                    _tls.proc = prev_proc
            else:
                self._main_loop()
        finally:
            # Sampled before _drain(), which unconditionally raises the
            # abort flag while unwinding parked threads.
            clean = (not self._aborting
                     and self._n_done == len(self.procs)
                     and all(p.exc is None for p in self.procs))
            self._drain()
            if self._obs is not None:
                self._obs.run_finished()
            if clean and self._rr is not None:
                self._rr.run_finished(self)

        failed = [p for p in self.procs if p.exc is not None]
        if failed:
            p = min(failed, key=lambda q: q.rank)
            raise RankFailure(p.rank, p.exc) from p.exc
        return [p.result for p in self.procs]

    @property
    def max_clock(self) -> float:
        """Largest per-rank clock (the simulated makespan) after run()."""
        if not self.procs:
            return 0.0
        return max(p.clock for p in self.procs)

    def clocks(self) -> List[float]:
        return [p.clock for p in self.procs]

    # -- pickling ----------------------------------------------------------

    # Live machinery that cannot cross a pickle boundary: the main
    # thread's park semaphore, the MPI_T registry (its readers are
    # closures over this engine's components), and the optional
    # observer/recorder taps.  ``__setstate__`` rebuilds the semaphore
    # and the registry and leaves the taps detached: a thawed engine is
    # inspectable state (clocks, matrices, NIC counters) and can run a
    # fresh program if it never ran one, but it is not a resumable
    # mid-run scheduler — rank continuations and threads do not
    # survive the trip (see SimProcess._EPHEMERAL).
    _EPHEMERAL = ("_main_sem", "mpit", "_obs", "_obs_spans", "_rr")

    def __getstate__(self):
        state = self.__dict__.copy()
        for key in self._EPHEMERAL:
            state.pop(key, None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        sem = threading.Lock()
        sem.acquire()
        self._main_sem = sem
        self.mpit = MpiToolInterface()
        self.pml.register(self.mpit)
        self.pml.sync = self._settle_caller
        fs = self.__dict__.get("_filesystem")
        if fs is not None:
            fs._register_pvars(self.mpit)
        self._obs = None
        self._obs_spans = None
        self._rr = None

    # -- ready heap (baton holder only; no lock needed) -------------------

    def _set_ready(self, proc: SimProcess) -> None:
        """Transition a process to READY and enqueue it for scheduling."""
        proc.state = _State.READY
        proc.ready_seq += 1
        heapq.heappush(
            self._ready_heap,
            (proc.clock, proc.rank, proc.ready_seq, proc, None),
        )

    def _clean_front(self) -> Optional[Tuple]:
        """Drop stale heap entries; return the valid front entry, if any.

        An entry is live when its sequence number is current and its
        process is in the state the entry stands for — READY for a
        normal entry, BLOCKED for a phantom.  This is the one lazy
        cleanup shared by :meth:`_pop_ready` and
        :meth:`min_ready_clock` (inlined: it runs once per send and
        once per yield check).
        """
        heap = self._ready_heap
        pop = heapq.heappop
        while heap:
            entry = heap[0]
            proc = entry[3]
            if proc.ready_seq == entry[2]:
                if entry[4] is None:
                    if proc.state is _State.READY:
                        return entry
                elif proc.state is _State.BLOCKED:
                    return entry
            pop(heap)
        return None

    def min_ready_clock(self) -> Optional[float]:
        """Clock of the frontmost due work — thread or deferred send."""
        entry = self._clean_front()
        clock = None if entry is None else entry[0]
        ph = self._pending_heap
        if ph and (clock is None or ph[0][0] < clock):
            return ph[0][0]
        return clock

    def _pop_ready(self, settle_for: Optional[SimProcess] = None
                   ) -> Optional[SimProcess]:
        """Materialize due deferred sends, then pop the next thread.

        With ``settle_for``, stop (returning None) as soon as that
        process's own deferred send has been materialized — used by
        :meth:`settle` so the caller keeps the baton, exactly as the
        park-based engine resumed a sender the moment its transfer
        completed.
        """
        heap = self._ready_heap
        ph = self._pending_heap
        pop = heapq.heappop
        while True:
            if settle_for is not None and settle_for.pending is None:
                return None
            # _clean_front, inlined (this loop runs once per switch).
            t = None
            while heap:
                e = heap[0]
                p = e[3]
                if p.ready_seq == e[2]:
                    if e[4] is None:
                        if p.state is _State.READY:
                            t = e
                            break
                    elif p.state is _State.BLOCKED:
                        t = e
                        break
                pop(heap)
            if ph:
                p = ph[0]
                if t is None or p[0] < t[0] or (p[0] == t[0] and p[1] < t[1]):
                    pop(ph)
                    owner = self._materialize(p[3])
                    if owner is not None:
                        # The sender's thread is parked on this very
                        # transfer: it resumes here, mid-tenure, just
                        # as the park-based engine resumed it after
                        # the transfer it parked on.
                        return owner
                    continue
            if t is None:
                return None
            entry = pop(heap)
            proc = entry[3]
            if entry[4] is _PHANTOM:
                wo = proc.wait_obj
                if wo is not None and wo._msg is not None:
                    # The awaited message arrived while the phantom was
                    # queued: this is a real resume after all.
                    return proc
                # The classic engine would resume the blocked rank here
                # only for it to re-check its wait loop and block again
                # at the same clock.  Evaporate instead.
                self._phantom_elisions += 1
                continue
            return proc

    # -- deferred sends ----------------------------------------------------

    def post_send(self, proc: SimProcess, queue, src_local: int,
                  dst_local: int, dst_world: int, buf, tag: int,
                  context, category: str, batch=None) -> None:
        """Inject a message, deferring it if ranks are due before us.

        The transfer executes immediately when this rank is frontmost
        (same condition under which the classic engine proceeded
        without parking); otherwise it is queued at ``(clock, rank)``
        and the calling thread keeps running — its clock and the
        message's delivery are settled lazily, in global order.
        """
        if proc.pending is not None:
            self.settle(proc)
        clock = proc.clock
        if not self._fast:
            # Fast handoff skips the deferral check entirely: transfers
            # claim the network in baton order.  Exact mode defers when
            # any rank or queued send is due before us (this is
            # min_ready_clock with _clean_front's lazy cleanup, both
            # inlined — it runs once per message).
            heap = self._ready_heap
            pop = heapq.heappop
            entry = None
            while heap:
                e = heap[0]
                p = e[3]
                if p.ready_seq == e[2]:
                    if e[4] is None:
                        if p.state is _State.READY:
                            entry = e
                            break
                    elif p.state is _State.BLOCKED:
                        entry = e
                        break
                pop(heap)
            ph = self._pending_heap
            if (entry is not None and entry[0] < clock) or \
                    (ph and ph[0][0] < clock):
                # Message.__init__, unrolled (skips the generated
                # dataclass frame; arrival is filled at materialization).
                msg = Message.__new__(Message)
                msg.src = src_local
                msg.dst = dst_local
                msg.tag = tag
                msg.context = context
                msg.buf = buf
                msg.arrival = 0.0
                msg.category = category
                ps = [proc, queue, msg, dst_world, buf.nbytes, batch, False]
                proc.pending = ps
                self._qseq += 1
                heapq.heappush(ph, (clock, proc.rank, self._qseq, ps))
                return
        # Frontmost (or fast mode): run the transfer inline, without
        # building a pending-send record.  This duplicates _materialize
        # minus the deferral bookkeeping — keep the two in sync.
        nbytes = buf.nbytes
        if batch is None:
            recorded = self.pml.record(proc.rank, dst_world, nbytes,
                                       category, clock)
        else:
            # pml.note_batched, inlined (same observable behaviour as
            # record: trace hook, mode gate, and mode-1 remapping all
            # evaluated now; tallies land in the batch).
            pml = self.pml
            hook = pml.trace_hook
            if hook is not None:
                hook(clock, batch.src, batch.dst, nbytes, batch.category, 1)
            mode = pml._mode
            if mode == 0:
                recorded = False
            else:
                tl = batch.tallies
                if mode == 1 and batch.category == "coll":
                    tl[2] += 1
                    tl[3] += nbytes
                else:
                    tl[0] += 1
                    tl[1] += nbytes
                recorded = True
        t_pre = clock
        if recorded and self.monitoring_overhead > 0.0:
            proc.clock = clock = clock + self.monitoring_overhead
        sender_done, arrival = self.network.transfer(
            proc.rank, dst_world, nbytes, clock
        )
        proc.clock = sender_done
        msg = Message(src_local, dst_local, tag, context, buf,
                      arrival, category)
        req = queue.deliver(msg)
        if req is not None:
            self._wake_bound(req)
        rr = self._rr
        if rr is not None:
            rr.on_send(proc, dst_world, nbytes, category, recorded,
                       t_pre, msg)

    def _materialize(self, ps: list) -> Optional[SimProcess]:
        """Execute a send: record, charge, transfer, deliver.

        Runs at the exact position in the global ``(clock, rank)``
        order where the park-based engine resumed the sender, so the
        monitoring mode, jitter stream, and NIC/memory windows all see
        the same sequence of operations.  Returns the owning process
        when its thread is parked on this transfer and must be handed
        the baton now (its post-transfer code belongs to this tenure).
        """
        proc, mq, msg, dst_world, nbytes, batch, parked = ps
        proc.pending = None
        clock = proc.clock
        if batch is None:
            recorded = self.pml.record(proc.rank, dst_world, nbytes,
                                       msg.category, clock)
        else:
            # pml.note_batched, inlined (keep in sync with post_send):
            # gate and tally into the collective's PeerBatch at this
            # exact point in the global order.
            pml = self.pml
            hook = pml.trace_hook
            if hook is not None:
                hook(clock, batch.src, batch.dst, nbytes, batch.category, 1)
            mode = pml._mode
            if mode == 0:
                recorded = False
            else:
                tl = batch.tallies
                if mode == 1 and batch.category == "coll":
                    tl[2] += 1
                    tl[3] += nbytes
                else:
                    tl[0] += 1
                    tl[1] += nbytes
                recorded = True
        t_pre = clock
        if recorded and self.monitoring_overhead > 0.0:
            proc.clock = clock = clock + self.monitoring_overhead
        # Network.transfer, inlined (nearly every message materializes
        # through here; post_send's rare immediate path still calls the
        # method).  The nbytes >= 0 precondition is Buffer's invariant.
        net = self.network
        alpha, bw, src_node, dst_node, cross, nic_gate, mem_gate = \
            net._pair_l[proc.rank * net._n_ranks + dst_world]
        if net._sigma > 0.0:
            blk = net._jit_blk
            pos = net._jit_pos
            if pos + 2 > len(blk):
                blk = net._refill_jitter()
                pos = 0
            lat = alpha * blk[pos]
            bwt = (nbytes / bw) * blk[pos + 1]
            net._jit_pos = pos + 2
        else:
            lat = alpha
            bwt = nbytes / bw
        start = clock + net._o_send
        if nic_gate:
            nic_free = net._nic_free
            f = nic_free[src_node]
            if f > start:
                start = f
        if mem_gate and nbytes > 0:
            mem_free = net._mem_free
            f = mem_free[src_node]
            if f > start:
                start = f
            f = mem_free[dst_node]
            if f > start:
                start = f
            mem_t = start + nbytes / net._mem_bw
            mem_free[src_node] = mem_t
            if dst_node != src_node:
                mem_free[dst_node] = mem_t
        sender_done = start + bwt
        if nic_gate:
            nic_free[src_node] = sender_done
        arrival = start + lat + bwt
        net.n_messages += 1
        if cross:
            # Buffer.nbytes is a plain int by construction, so the NIC
            # running totals need no cast here.
            nic = net.nic
            times, totals = nic._xmit[src_node]
            tv = sender_done
            if times and tv < times[-1]:
                tv = times[-1]
            times.append(tv)
            totals.append((totals[-1] if totals else 0) + nbytes)
            times, totals = nic._rcv[dst_node]
            tv = arrival
            if times and tv < times[-1]:
                tv = times[-1]
            times.append(tv)
            totals.append((totals[-1] if totals else 0) + nbytes)

        proc.clock = sender_done
        msg.arrival = arrival
        # MatchQueue.deliver + the phantom-eliding wake, inlined.
        req = None
        posted = mq._posted
        if posted:
            ctx, src, tag = msg.context, msg.src, msg.tag
            for i, r in enumerate(posted):
                if (r.context == ctx
                        and r.source in (ANY_SOURCE, src)
                        and r.tag in (ANY_TAG, tag)):
                    del posted[i]
                    if r._msg is not None:
                        raise SimError("receive request bound twice")
                    r._msg = msg
                    req = r
                    break
        if req is None:
            mq._unexpected.append(msg)
        else:
            rp = req.proc
            if rp.state is _State.BLOCKED:
                rp.ready_seq += 1
                if rp.wait_obj is not None and rp.wait_obj._msg is None:
                    heapq.heappush(self._ready_heap,
                                   (rp.clock, rp.rank, rp.ready_seq, rp,
                                    _PHANTOM))
                else:
                    rp.state = _State.READY
                    heapq.heappush(self._ready_heap,
                                   (rp.clock, rp.rank, rp.ready_seq, rp,
                                    None))
        rr = self._rr
        if rr is not None:
            rr.on_send(proc, dst_world, nbytes, msg.category, recorded,
                       t_pre, msg)
        if parked:
            return proc
        return None

    def _settle_caller(self) -> None:
        """Settle the calling thread's deferred send, if it has one.

        Installed as ``pml.sync``: monitoring-state reads and mode
        changes observe/affect the global record order, so they must
        happen at the same position a non-deferred engine would put
        them — right after the caller's own sends have completed.
        """
        proc = getattr(_tls, "proc", None)
        if proc is not None and proc.engine is self and proc.pending is not None:
            self.settle(proc)

    def settle(self, proc: SimProcess) -> None:
        """Materialize this process's deferred send, in global order.

        Runs every piece of due work keyed before the send — deferred
        transfers inline, threads by handing them the baton and parking
        until our send has been materialized.
        """
        heap = self._ready_heap
        ph = self._pending_heap
        pop = heapq.heappop
        while proc.pending is not None:
            # _pop_ready(settle_for=proc), inlined: most settles drain
            # the due deferred sends right here without a switch, so the
            # scan-materialize loop runs in this frame.
            nxt = None
            while True:
                # _clean_front, inlined.
                t = None
                while heap:
                    e = heap[0]
                    p = e[3]
                    if p.ready_seq == e[2]:
                        if e[4] is None:
                            if p.state is _State.READY:
                                t = e
                                break
                        elif p.state is _State.BLOCKED:
                            t = e
                            break
                    pop(heap)
                if ph:
                    p = ph[0]
                    if t is None or p[0] < t[0] or \
                            (p[0] == t[0] and p[1] < t[1]):
                        pop(ph)
                        owner = self._materialize(p[3])
                        if owner is not None:
                            # That send's thread is parked on it and
                            # must resume mid-tenure.
                            nxt = owner
                            break
                        if proc.pending is None:
                            break
                        continue
                if t is None:
                    break
                entry = pop(heap)
                nxt = entry[3]
                if entry[4] is _PHANTOM:
                    wo = nxt.wait_obj
                    if wo is not None and wo._msg is not None:
                        # The awaited message arrived while the phantom
                        # was queued: a real resume after all.
                        break
                    self._phantom_elisions += 1
                    nxt = None
                    continue
                break
            if nxt is None:
                if proc.pending is not None:  # pragma: no cover - invariant
                    raise SimError("deferred send lost from the queue")
                return
            # A thread is due before our deferred send: it gets the
            # baton; our send will be materialized (and this thread
            # re-enqueued at its completion clock) when it comes due.
            # (_switch_to inlined: this runs once per handed-off send.)
            if self._ev:
                self._no_blocking_park()
            proc.pending[_PS_PARKED] = True
            proc.state = _State.READY
            self._switches += 1
            nxt.state = _State.RUNNING
            nxt.sem.release()
            proc.sem.acquire()
            if self._aborting:
                raise Aborted()
            proc.state = _State.RUNNING
            proc.blocked_on = ""

    # -- direct handoff core ----------------------------------------------

    def _no_blocking_park(self) -> None:
        """A blocking park would hang the event loop (no thread will
        ever release the semaphore).  During teardown this is the
        normal unwind path — a parked thread woken by _drain raises
        Aborted from the same spot; otherwise it is co code that
        called a blocking API which needed to park, a bug."""
        if self._aborting:
            raise Aborted()
        raise SimError(
            "blocking engine call needed to park inside the event-driven "
            "core; use the co_* API from generator rank programs"
        )

    def _signal(self, proc: SimProcess) -> None:
        """Hand the baton to ``proc`` (the caller must hold it).

        Cold-path helper (startup, teardown, main loop); the per-switch
        hot paths (:meth:`_switch_to`, :meth:`block`, :meth:`settle`)
        inline these three lines.
        """
        self._switches += 1
        proc.state = _State.RUNNING
        proc.sem.release()

    def _switch_to(self, nxt: SimProcess, proc: SimProcess) -> None:
        """Signal ``nxt`` and park the calling thread until re-signalled."""
        if self._ev:
            self._no_blocking_park()
        self._switches += 1
        nxt.state = _State.RUNNING
        nxt.sem.release()
        proc.sem.acquire()
        if self._aborting:
            raise Aborted()

    def _handoff_from(self, proc: SimProcess) -> None:
        """Pass the baton to the next due rank and park the caller.

        When no rank is ready the main thread is woken instead — it
        decides between normal completion, abort unwinding, and
        deadlock.  Returns once this process is signalled again; raises
        :class:`Aborted` if the simulation is being torn down.
        """
        nxt = self._pop_ready()
        if nxt is proc:
            # Materialized sends can leave this process frontmost again:
            # handing the baton to ourselves is a no-op, skip the park.
            self._self_handoffs += 1
            proc.state = _State.RUNNING
            if self._aborting:
                raise Aborted()
            return
        if self._ev:
            self._no_blocking_park()
        if nxt is not None:
            self._switches += 1
            nxt.state = _State.RUNNING
            nxt.sem.release()
        else:
            self._main_sem.release()
        proc.sem.acquire()
        if self._aborting:
            raise Aborted()

    def _main_loop(self) -> None:
        """Kick off the first rank, then sleep until finish/abort/stall."""
        first = self._pop_ready()
        if first is None:  # pragma: no cover - zero-rank engine
            return
        self._signal(first)
        while True:
            self._main_sem.acquire()
            if self._aborting or self._n_done == len(self.procs):
                return
            nxt = self._pop_ready()
            if nxt is not None:  # pragma: no cover - defensive
                self._signal(nxt)
                continue
            blocked = [
                (p.rank, f"blocked on {p.blocked_on} at t={p.clock:.6g}")
                for p in self.procs
                if p.state is _State.BLOCKED
            ]
            self._aborting = True
            raise DeadlockError(blocked)

    def _drain(self) -> None:
        """Unwind any live rank threads after an abort or failure.

        Parked threads are woken one at a time; each observes
        ``_aborting``, raises :class:`Aborted`, marks itself DONE and
        wakes the main thread back (its ``finally`` block), so the
        handshake stays strictly sequential.

        On the event-driven core the same handshake is a direct
        ``throw``: each live continuation gets :class:`Aborted` raised
        at its suspension point (never-started tasks surface it from
        ``throw`` itself — their bodies never run, like a thread that
        aborts in ``_await_first``).  A task that yields while
        unwinding is thrown at again, mirroring a parked thread
        re-observing ``_aborting`` after every wake.
        """
        self._aborting = True
        if self._ev:
            for proc in self.procs:
                while proc.state is not _State.DONE:
                    try:
                        proc.task.throw(Aborted)
                    except (StopIteration, Aborted):
                        proc.state = _State.DONE
                        self._n_done += 1
            return
        for proc in self.procs:
            while proc.state is not _State.DONE:
                try:
                    proc.sem.release()
                except RuntimeError:
                    # Torn down mid-handoff (e.g. an interrupt landed
                    # between a signal and its consumption): the baton
                    # is already pending; the thread will observe
                    # ``_aborting`` when it consumes it.
                    pass
                self._main_sem.acquire()
        for proc in self.procs:
            if proc.thread is not None:
                proc.thread.join(timeout=10.0)

    # -- rank-thread side ---------------------------------------------------

    def _thread_main(self, proc: SimProcess, main, args, kwargs) -> None:
        _tls.proc = proc
        try:
            self._await_first(proc)
            proc.result = main(self.world, *args, **kwargs)
            if proc.pending is not None:
                self.settle(proc)
        except Aborted:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported via RankFailure
            proc.exc = exc
            self._aborting = True
        finally:
            proc.state = _State.DONE
            self._n_done += 1
            if self._aborting:
                nxt = None
            else:
                nxt = self._pop_ready()
            if nxt is not None:
                self._signal(nxt)
            else:
                self._main_sem.release()

    def _await_first(self, proc: SimProcess) -> None:
        proc.sem.acquire()
        if self._aborting:
            raise Aborted()

    # -- event-driven core --------------------------------------------------
    #
    # Rank programs become generators; a park is a ``yield`` carrying a
    # scheduler directive — the SimProcess to resume next (the co code
    # already did the heap pop and switch bookkeeping, exactly like the
    # threaded release sites), or None to let the scheduler make the
    # main thread's decision (finish / defensive pop / deadlock).  The
    # co_* services below are line-by-line transliterations of their
    # blocking twins: every ``nxt.sem.release(); proc.sem.acquire()``
    # pair becomes ``yield nxt`` followed by the same abort check, and
    # every heap decision and switch increment happens at the same
    # program point — which is how bit-exactness (clocks, matrices,
    # switch counters) against the thread-per-rank core is proven.
    # On the threaded core the same services delegate to their blocking
    # twins without yielding, so one canonical co implementation serves
    # both cores (see _drive).

    def _rank_main(self, proc: SimProcess, main, args, kwargs):
        """Generator twin of :meth:`_thread_main`.

        The scheduler's first ``send()`` plays the role of
        ``_await_first``'s baton grant; completion bookkeeping (DONE,
        handing off) lives in the scheduler, at ``StopIteration``.
        """
        try:
            if self._aborting:
                raise Aborted()
            proc.result = yield from main(self.world, *args, **kwargs)
            if proc.pending is not None:
                yield from self.co_settle(proc)
        except Aborted:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported via RankFailure
            proc.exc = exc
            self._aborting = True

    def _run_eventloop(self) -> None:
        """Single-threaded scheduler: resume rank continuations directly.

        One iteration of this loop is what a baton handoff costs on the
        event core: a generator ``send`` instead of two futex syscalls
        and an OS reschedule.  It mirrors :meth:`_main_loop` plus
        :meth:`_thread_main`'s scheduling epilogue exactly, so switch
        counters and the global ``(clock, rank)`` order are
        bit-identical to the threaded core.
        """
        current = self._pop_ready()
        if current is None:  # pragma: no cover - zero-rank engine
            return
        # _signal, minus the semaphore: the first task starts here.
        self._switches += 1
        current.state = _State.RUNNING
        while True:
            _tls.proc = current
            self._resumes += 1
            try:
                nxt = current.task.send(None)
            except StopIteration:
                # _thread_main's finally: this rank finished/aborted.
                current.state = _State.DONE
                self._n_done += 1
                nxt = None if self._aborting else self._pop_ready()
                if nxt is not None:
                    self._switches += 1
                    nxt.state = _State.RUNNING
                    current = nxt
                    continue
            else:
                if nxt is not None:
                    # The yield site already did the switch bookkeeping.
                    current = nxt
                    continue
            # The main thread's decision (one _main_loop iteration).
            if self._aborting or self._n_done == len(self.procs):
                return
            nxt = self._pop_ready()
            if nxt is not None:  # pragma: no cover - defensive
                self._switches += 1
                nxt.state = _State.RUNNING
                current = nxt
                continue
            blocked = [
                (p.rank, f"blocked on {p.blocked_on} at t={p.clock:.6g}")
                for p in self.procs
                if p.state is _State.BLOCKED
            ]
            self._aborting = True
            raise DeadlockError(blocked)

    def _settle_scan(self, proc: SimProcess) -> Optional[SimProcess]:
        """One settle pass for the event core: materialize due deferred
        sends until ``proc``'s own send is done (return None) or a rank
        continuation must run first (return it — the caller parks).

        This is the park-free common case of :meth:`co_settle`, split
        out as a plain method so the per-send settle costs no generator
        allocation; :meth:`_co_settle_park` is its rare yielding tail.
        """
        heap = self._ready_heap
        ph = self._pending_heap
        pop = heapq.heappop
        # settle()'s scan-materialize loop, verbatim.
        while True:
            t = None
            while heap:
                e = heap[0]
                p = e[3]
                if p.ready_seq == e[2]:
                    if e[4] is None:
                        if p.state is _State.READY:
                            t = e
                            break
                    elif p.state is _State.BLOCKED:
                        t = e
                        break
                pop(heap)
            if ph:
                p = ph[0]
                if t is None or p[0] < t[0] or \
                        (p[0] == t[0] and p[1] < t[1]):
                    pop(ph)
                    owner = self._materialize(p[3])
                    if owner is not None:
                        return owner
                    if proc.pending is None:
                        return None
                    continue
            if t is None:
                if proc.pending is not None:  # pragma: no cover - invariant
                    raise SimError("deferred send lost from the queue")
                return None
            entry = pop(heap)
            nxt = entry[3]
            if entry[4] is _PHANTOM:
                wo = nxt.wait_obj
                if wo is not None and wo._msg is not None:
                    return nxt
                self._phantom_elisions += 1
                continue
            return nxt

    def _co_settle_park(self, proc: SimProcess, nxt: SimProcess):
        """Yielding tail of :meth:`co_settle`: park for ``nxt``, then
        keep settling until ``proc``'s deferred send is materialized."""
        while True:
            proc.pending[_PS_PARKED] = True
            proc.state = _State.READY
            self._switches += 1
            nxt.state = _State.RUNNING
            yield nxt
            if self._aborting:
                raise Aborted()
            proc.state = _State.RUNNING
            proc.blocked_on = ""
            if proc.pending is None:
                return
            nxt = self._settle_scan(proc)
            if nxt is None:
                return

    def co_settle(self, proc: SimProcess):
        """Continuation twin of :meth:`settle` (idempotent: no-op when
        nothing is pending, so co code may pre-settle right before
        blocking library calls that settle internally — the inner
        settle then no-ops and the engine op order is unchanged)."""
        if not self._ev:
            if proc.pending is not None:
                self.settle(proc)
            return
        if proc.pending is None:
            return
        nxt = self._settle_scan(proc)
        if nxt is not None:
            yield from self._co_settle_park(proc, nxt)

    def co_block(self, proc: SimProcess, reason: Any):
        """Continuation twin of :meth:`block`."""
        if not self._ev:
            self.block(proc, reason)
            return
        proc.state = _State.BLOCKED
        proc.blocked_on = reason
        o = self._obs
        if o is not None:
            o.note_block(len(self._ready_heap))
        nxt = self._pop_ready()
        if nxt is not proc:
            if nxt is not None:
                self._switches += 1
                nxt.state = _State.RUNNING
                yield nxt
            else:
                yield None
        else:
            self._self_handoffs += 1
        if self._aborting:
            raise Aborted()
        proc.state = _State.RUNNING
        proc.blocked_on = ""

    def co_give_way(self, proc: SimProcess):
        """Continuation twin of :meth:`maybe_yield` (give way to ranks
        behind in virtual time; includes :meth:`_handoff_from`)."""
        if not self._ev:
            self.maybe_yield(proc)
            return
        if self._fast:
            return
        if proc.pending is not None:
            yield from self.co_settle(proc)
        f = self.min_ready_clock()
        if f is not None and f < proc.clock:
            self._set_ready(proc)
            # _handoff_from, transliterated.
            nxt = self._pop_ready()
            if nxt is proc:
                self._self_handoffs += 1
                proc.state = _State.RUNNING
                if self._aborting:
                    raise Aborted()
                return
            if nxt is not None:
                self._switches += 1
                nxt.state = _State.RUNNING
                yield nxt
            else:  # pragma: no cover - defensive (we are in the heap)
                yield None
            if self._aborting:
                raise Aborted()

    # -- primitives used by the communicator layer ---------------------------

    def block(self, proc: SimProcess, reason: Any) -> None:
        """Park the calling rank until another rank calls :meth:`wake`.

        ``reason`` may be any object; it is only formatted (via
        ``str``) if a deadlock dump has to display it.  This is the
        per-wait hot path: :meth:`_handoff_from` is inlined here."""
        proc.state = _State.BLOCKED
        proc.blocked_on = reason
        o = self._obs
        if o is not None:
            o.note_block(len(self._ready_heap))
        nxt = self._pop_ready()
        if nxt is not proc:
            if self._ev:
                self._no_blocking_park()
            if nxt is not None:
                self._switches += 1
                nxt.state = _State.RUNNING
                nxt.sem.release()
            else:
                self._main_sem.release()
            proc.sem.acquire()
        else:
            self._self_handoffs += 1
        if self._aborting:
            raise Aborted()
        proc.state = _State.RUNNING
        proc.blocked_on = ""

    def _wake_bound(self, req) -> None:
        """Wake the poster of a receive that delivery just bound.

        Same phantom-elision logic as :meth:`wake`, specialized for the
        per-message delivery path: it runs only when the message
        matched a *posted* receive, so the not-blocked early-out of the
        generic wake (binds at post time, poster still running) never
        pays a call frame.
        """
        proc = req.proc
        if proc.state is not _State.BLOCKED:
            return
        wo = proc.wait_obj
        proc.ready_seq += 1
        if wo is not None and wo._msg is None:
            heapq.heappush(
                self._ready_heap,
                (proc.clock, proc.rank, proc.ready_seq, proc, _PHANTOM),
            )
            return
        proc.state = _State.READY
        heapq.heappush(
            self._ready_heap,
            (proc.clock, proc.rank, proc.ready_seq, proc, None),
        )

    def wake(self, proc: SimProcess) -> None:
        """Mark a blocked rank runnable (called while holding the baton).

        A wake of a rank that is still waiting on a request whose
        message has not arrived (``waitall`` progress) is provably
        spurious — the rank would resume, re-check its wait loop, and
        block again at the same clock.  Such wakes are enqueued as
        phantom entries: they occupy the identical heap slot (so other
        ranks' scheduling decisions are unchanged) but evaporate at pop
        time without a thread switch.
        """
        if proc.state is not _State.BLOCKED:
            return
        wo = proc.wait_obj
        proc.ready_seq += 1
        if wo is not None and wo._msg is None:
            heapq.heappush(
                self._ready_heap,
                (proc.clock, proc.rank, proc.ready_seq, proc, _PHANTOM),
            )
            return
        # _set_ready, inlined (this runs once per delivered message).
        proc.state = _State.READY
        heapq.heappush(
            self._ready_heap,
            (proc.clock, proc.rank, proc.ready_seq, proc, None),
        )

    def maybe_yield(self, proc: SimProcess) -> None:
        """Give way to ranks that are behind in virtual time.

        Called at communication points so that shared timed resources
        (the per-node NIC busy windows) are claimed in virtual-time
        order rather than baton order.  While this rank remains
        frontmost it keeps running — no heap or lock traffic.  Fast
        handoff skips the give-way entirely: a rank runs until it hits
        a data dependency (an unarrived message).
        """
        if self._fast:
            return
        if proc.pending is not None:
            self.settle(proc)
        f = self.min_ready_clock()
        if f is not None and f < proc.clock:
            self._set_ready(proc)
            self._handoff_from(proc)

    def charge_monitoring_overhead(self, proc: SimProcess, n_records: int = 1) -> None:
        """Charge the per-message bookkeeping cost to a sender's clock."""
        if self.pml.enabled and self.monitoring_overhead > 0.0:
            proc.clock += self.monitoring_overhead * n_records
