"""Exceptions raised by the simulated MPI runtime."""

from __future__ import annotations

__all__ = [
    "SimError",
    "DeadlockError",
    "RankFailure",
    "CommError",
    "Aborted",
]


class SimError(Exception):
    """Base class for simulator errors."""


class DeadlockError(SimError):
    """All live ranks are blocked: the simulated program deadlocked.

    Carries a per-rank state dump to make the hang diagnosable.
    """

    def __init__(self, states):
        self.states = states
        lines = "\n".join(f"  rank {r}: {s}" for r, s in states)
        super().__init__(f"deadlock: every live rank is blocked\n{lines}")


class RankFailure(SimError):
    """A rank's program raised; wraps the original exception."""

    def __init__(self, rank: int, exc: BaseException):
        self.rank = rank
        self.original = exc
        super().__init__(f"rank {rank} failed: {exc!r}")


class CommError(SimError):
    """Invalid communication arguments (bad rank, tag, size...)."""


class Aborted(BaseException):
    """Internal: unwinds rank threads when the simulation is torn down.

    Derives from ``BaseException`` so user-level ``except Exception``
    blocks cannot swallow it.
    """
