"""A small MPI Tool Information Interface (MPI_T) shim.

The paper's library deliberately hides MPI_T's "extremely low level"
machinery (§3): performance-variable *sessions*, *handles* bound to an
object, and explicit read/start/stop/reset calls.  This module
reproduces that machinery for the simulated runtime so that the
high-level library in :mod:`repro.core` can be implemented strictly on
top of it — the same layering as the real software stack.

Control variables (cvars) are named scalars with get/set (the component
is enabled through ``pml_monitoring_enable``, mirroring
``--mca pml_monitoring_enable`` on the ``mpirun`` command line).
Performance variables (pvars) are named per-process arrays; reading a
handle yields a snapshot copy.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import numpy as np

__all__ = [
    "MpiToolInterface",
    "PvarSession",
    "PvarHandle",
    "MpitError",
]


class MpitError(Exception):
    """Raised for misuse of the tool interface (unknown variable...)."""


class _ControlVariable:
    def __init__(self, name: str, getter: Callable[[], Any], setter: Callable[[Any], None], doc: str):
        self.name = name
        self.getter = getter
        self.setter = setter
        self.doc = doc


class _PerfVariable:
    def __init__(self, name: str, reader: Callable[[int], np.ndarray], doc: str,
                 version: Optional[Callable[[], int]] = None):
        self.name = name
        self.reader = reader
        self.doc = doc
        # Optional monotonic write counter; lets snapshot layers skip
        # re-reading variables that have not changed.
        self.version = version


class PvarHandle:
    """A started/stopped handle on one pvar, bound to one process."""

    def __init__(self, session: "PvarSession", var: _PerfVariable, rank: int):
        self._session = session
        self._var = var
        self.rank = rank
        self.started = False
        self.freed = False

    @property
    def name(self) -> str:
        return self._var.name

    def start(self) -> None:
        self._check()
        self.started = True

    def stop(self) -> None:
        self._check()
        self.started = False

    def read(self) -> np.ndarray:
        """Snapshot of the variable for the bound process (a copy)."""
        self._check()
        return np.array(self._var.reader(self.rank), dtype=np.uint64, copy=True)

    def version(self) -> Optional[int]:
        """The variable's write epoch, or None if it does not track one.

        Reading the version does *not* flush or copy anything — it is
        the cheap "has this changed since my snapshot?" probe.
        """
        self._check()
        if self._var.version is None:
            return None
        return int(self._var.version())

    def free(self) -> None:
        self.freed = True

    def _check(self) -> None:
        if self.freed:
            raise MpitError(f"handle on {self._var.name} already freed")
        if self._session.freed:
            raise MpitError("pvar session already freed")


class PvarSession:
    """An MPI_T pvar session: a bag of handles freed together."""

    def __init__(self, iface: "MpiToolInterface"):
        self._iface = iface
        self.handles: List[PvarHandle] = []
        self.freed = False

    def handle_alloc(self, name: str, rank: int) -> PvarHandle:
        if self.freed:
            raise MpitError("pvar session already freed")
        var = self._iface._pvar(name)
        h = PvarHandle(self, var, rank)
        self.handles.append(h)
        return h

    def free(self) -> None:
        for h in self.handles:
            h.free()
        self.handles.clear()
        self.freed = True


class MpiToolInterface:
    """Registry of control and performance variables."""

    def __init__(self):
        self._cvars: Dict[str, _ControlVariable] = {}
        self._pvars: Dict[str, _PerfVariable] = {}
        self._initialized = 0

    # -- lifecycle (MPI_T_init_thread / MPI_T_finalize) --------------------

    def init_thread(self) -> None:
        self._initialized += 1

    def finalize(self) -> None:
        if self._initialized == 0:
            raise MpitError("MPI_T finalize without init")
        self._initialized -= 1

    @property
    def initialized(self) -> bool:
        return self._initialized > 0

    # -- registration (done by components such as pml_monitoring) ----------

    def register_cvar(
        self,
        name: str,
        getter: Callable[[], Any],
        setter: Callable[[Any], None],
        doc: str = "",
    ) -> None:
        if name in self._cvars:
            raise MpitError(f"cvar {name!r} already registered")
        self._cvars[name] = _ControlVariable(name, getter, setter, doc)

    def register_pvar(
        self,
        name: str,
        reader: Callable[[int], np.ndarray],
        doc: str = "",
        version: Optional[Callable[[], int]] = None,
    ) -> None:
        if name in self._pvars:
            raise MpitError(f"pvar {name!r} already registered")
        self._pvars[name] = _PerfVariable(name, reader, doc, version=version)

    # -- queries ---------------------------------------------------------

    def cvar_names(self) -> List[str]:
        return sorted(self._cvars)

    def pvar_names(self) -> List[str]:
        return sorted(self._pvars)

    def cvar_read(self, name: str) -> Any:
        return self._cvar(name).getter()

    def cvar_write(self, name: str, value: Any) -> None:
        self._cvar(name).setter(value)

    def pvar_session_create(self) -> PvarSession:
        return PvarSession(self)

    # -- internals ----------------------------------------------------------

    def _cvar(self, name: str) -> _ControlVariable:
        try:
            return self._cvars[name]
        except KeyError:
            raise MpitError(f"unknown control variable {name!r}") from None

    def _pvar(self, name: str) -> _PerfVariable:
        try:
            return self._pvars[name]
        except KeyError:
            raise MpitError(f"unknown performance variable {name!r}") from None
