"""One-sided communication (RMA windows).

A minimal MPI-3 window: collectively created, with ``put``, ``get``,
``accumulate`` and ``fence``.  Data movement is recorded under the
``"osc"`` monitoring category so the paper's ``MPI_M_OSC_ONLY`` flag
has real traffic to select.

Timing model: the target CPU does not participate (true RMA).  A put
charges the origin its injection time; a get pays a request latency to
the target plus the data transfer back.  ``fence`` is a barrier whose
zero-byte synchronization messages are also ``"osc"`` traffic.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.simmpi.collectives.util import ceil_log2
from repro.simmpi.datatypes import Buffer
from repro.simmpi.errorsim import CommError

__all__ = ["Window"]


class Window:
    """A one-sided memory window over a communicator."""

    def __init__(self, comm, win_id: int):
        self.comm = comm
        self.id = win_id
        # rank -> exposed local data (None allowed: zero-size window)
        self._memory: Dict[int, Any] = {}
        self._nbytes: Dict[int, int] = {}

    @classmethod
    def create(cls, comm, local_data: Any = None, nbytes: Optional[int] = None) -> "Window":
        """Collective window creation (synchronizes like MPI_Win_create)."""
        win = cls._lookup(comm, local_data, nbytes)
        win.fence()
        return win

    @classmethod
    def co_create(cls, comm, local_data: Any = None, nbytes: Optional[int] = None):
        """Resumable :meth:`create`."""
        win = cls._lookup(comm, local_data, nbytes)
        yield from win.co_fence()
        return win

    @classmethod
    def _lookup(cls, comm, local_data, nbytes) -> "Window":
        seq = comm._split_seq()
        reg_key = ("win", comm.id, seq)
        win = comm.engine.comm_registry.get(reg_key)
        if win is None:
            win = cls(comm, comm.engine.alloc_comm_id())
            comm.engine.comm_registry[reg_key] = win
        me = comm.rank
        buf = Buffer.wrap(local_data, nbytes)
        win._memory[me] = buf.payload
        win._nbytes[me] = buf.nbytes
        return win

    # -- epochs -----------------------------------------------------------

    def fence(self) -> None:
        """Synchronize all window members (dissemination, osc traffic)."""
        comm = self.comm
        ctx = ("osc-fence", self.id, self._fence_seq())
        me, size = comm.rank, comm.size
        token = Buffer(None, nbytes=0)
        for k in range(ceil_log2(size)) if size > 1 else []:
            dist = 1 << k
            req = comm._irecv((me - dist) % size, tag=k, context=ctx)
            comm._isend(token, (me + dist) % size, tag=k, context=ctx,
                        category="osc")
            req.wait()

    def co_fence(self):
        """Resumable :meth:`fence`."""
        comm = self.comm
        ctx = ("osc-fence", self.id, self._fence_seq())
        me, size = comm.rank, comm.size
        token = Buffer(None, nbytes=0)
        for k in range(ceil_log2(size)) if size > 1 else []:
            dist = 1 << k
            req = comm._irecv((me - dist) % size, tag=k, context=ctx)
            yield from comm._co_isend(token, (me + dist) % size, k, ctx, "osc")
            yield from req.co_wait()

    def _fence_seq(self) -> int:
        proc = self.comm._current()
        key = ("fence_seq", self.id)
        seq = proc.userdata.get(key, 0)
        proc.userdata[key] = seq + 1
        return seq

    # -- RMA operations ------------------------------------------------------

    def put(self, value: Any, target: int, nbytes: Optional[int] = None) -> None:
        """Write ``value`` into the target's window memory."""
        comm = self.comm
        comm._check_rank(target)
        proc = comm._current()
        buf = Buffer.wrap(value, nbytes)
        comm.engine.maybe_yield(proc)
        self._put_body(proc, buf, target)

    def co_put(self, value: Any, target: int, nbytes: Optional[int] = None):
        """Resumable :meth:`put`."""
        comm = self.comm
        comm._check_rank(target)
        proc = comm._current()
        buf = Buffer.wrap(value, nbytes)
        yield from comm.engine.co_give_way(proc)
        self._put_body(proc, buf, target)

    def _put_body(self, proc, buf: Buffer, target: int) -> None:
        # Everything after the give-way is park-free: record, charge,
        # transfer, and the memory copy at the origin's clock.
        comm = self.comm
        engine = comm.engine
        origin_w = proc.rank
        target_w = comm.world_rank(target)
        t_pre = proc.clock
        recorded = engine.pml.record(origin_w, target_w, buf.nbytes, "osc")
        if recorded:
            engine.charge_monitoring_overhead(proc)
        sender_done, _arrival = engine.network.transfer(
            origin_w, target_w, buf.nbytes, proc.clock
        )
        proc.clock = sender_done
        rr = engine._rr
        if rr is not None:
            rr.on_put(proc, target_w, buf.nbytes, recorded, t_pre)
        self._memory[target] = buf.copy_payload()
        self._nbytes[target] = buf.nbytes

    def get(self, target: int, nbytes: Optional[int] = None) -> Any:
        """Read the target's window memory into the origin.

        The wire transfer flows target→origin, so the monitoring
        component books the bytes as *sent by the target* — matching
        how RDMA reads show up on NIC counters.
        """
        comm = self.comm
        comm._check_rank(target)
        proc = comm._current()
        n = self._nbytes.get(target, 0) if nbytes is None else int(nbytes)
        comm.engine.maybe_yield(proc)
        return self._get_body(proc, n, target)

    def co_get(self, target: int, nbytes: Optional[int] = None):
        """Resumable :meth:`get`."""
        comm = self.comm
        comm._check_rank(target)
        proc = comm._current()
        n = self._nbytes.get(target, 0) if nbytes is None else int(nbytes)
        yield from comm.engine.co_give_way(proc)
        return self._get_body(proc, n, target)

    def _get_body(self, proc, n: int, target: int) -> Any:
        comm = self.comm
        engine = comm.engine
        origin_w = proc.rank
        target_w = comm.world_rank(target)
        t_pre = proc.clock
        recorded = engine.pml.record(target_w, origin_w, n, "osc")
        if recorded:
            engine.charge_monitoring_overhead(proc)
        # Request flight to the target, then the data transfer back.
        cls = engine.network.sharing_class(origin_w, target_w)
        lp = engine.network.params.link_for(cls, engine.network.topology)
        t_request_arrives = proc.clock + lp.latency
        _done, arrival = engine.network.transfer(
            target_w, origin_w, n, t_request_arrives
        )
        proc.clock = max(proc.clock, arrival) + engine.network.recv_overhead
        rr = engine._rr
        if rr is not None:
            rr.on_get(proc, target_w, n, recorded, t_pre)
        data = self._memory.get(target)
        if isinstance(data, np.ndarray):
            return data.copy()
        return data

    def accumulate(self, value: Any, target: int, op, nbytes: Optional[int] = None) -> None:
        """Atomic read-modify-write on the target memory (SUM etc.)."""
        comm = self.comm
        comm._check_rank(target)
        buf = Buffer.wrap(value, nbytes)
        existing = self._memory.get(target)
        self.put(value, target, nbytes=buf.nbytes)
        if existing is not None and buf.payload is not None:
            self._memory[target] = op(existing, buf.payload)

    def co_accumulate(self, value: Any, target: int, op,
                      nbytes: Optional[int] = None):
        """Resumable :meth:`accumulate`."""
        comm = self.comm
        comm._check_rank(target)
        buf = Buffer.wrap(value, nbytes)
        existing = self._memory.get(target)
        yield from self.co_put(value, target, nbytes=buf.nbytes)
        if existing is not None and buf.payload is not None:
            self._memory[target] = op(existing, buf.payload)

    # -- local access -----------------------------------------------------

    def local(self) -> Any:
        """This rank's exposed memory (valid between epochs)."""
        return self._memory.get(self.comm.rank)

    def free(self) -> None:
        self.fence()

    def co_free(self):
        """Resumable :meth:`free`."""
        yield from self.co_fence()
