"""Hierarchical Hockney-style network cost model.

Every point-to-point message pays a latency ``alpha`` and a bandwidth
term ``nbytes / bandwidth`` chosen by the *deepest topology level the
two endpoint PUs share* — the mechanism that makes rank reordering pay
off: after TreeMatch moves heavy-traffic pairs onto the same node or
socket, their messages ride the cheap links.

Model per message (sender at virtual time ``t``):

* ``start = max(t + o_send, nic_free[src_node])`` — messages leaving a
  node serialize on the node's single NIC (all 24 ranks of a PlaFRIM
  node share one OmniPath port);
* sender resumes at ``start + nbytes/bw`` (injection is synchronous);
* the message arrives at ``start + alpha + nbytes/bw``;
* the receiver completes at ``max(t_post, arrival) + o_recv`` (applied
  by the engine).

All terms are optionally perturbed by seeded multiplicative log-normal
jitter so that repeated runs show the run-to-run variance the paper's
§6.2 statistics (180 repetitions, Welch t-test) rely on.

Hot-path design: :meth:`Network.transfer` runs once per simulated
message — millions of times per experiment — so the per-pair route is
resolved *once*, at construction.  ``Network.__init__`` walks every
(src_rank, dst_rank) pair and precomputes the sharing-class index,
``alpha``, ``1/bandwidth``, the endpoint node indices and the
cross-node mask into flat tables; ``transfer`` is then pure arithmetic
plus the shared-resource bookkeeping and never calls
``Topology.common_level_name`` or ``NetworkParams.link_for``.  Jitter
factors are drawn from the seeded RNG in blocks and handed out in
stream order, so a jittered run consumes the *same* draw sequence as
one scalar draw per term (bitwise identical results for a given seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.simmpi.nic import NicCounters
from repro.simmpi.topology import Topology

__all__ = ["LinkParams", "NetworkParams", "Network", "plafrim_params", "ib_pair_params"]

#: How many jitter factors to draw from the RNG per refill.  Each
#: message consumes two (latency, then bandwidth), so a block covers
#: ``_JITTER_BLOCK / 2`` messages.
_JITTER_BLOCK = 1024

#: Worlds at or above this rank count build lazy per-pair route views
#: instead of the dense n² tables (override with ``lazy_routes=``).
#: 4096 ranks would otherwise materialize ~2 GB of mirrors before the
#: first message moves.
_LAZY_THRESHOLD = 1024


class _LazyPairView(dict):
    """Flat ``src * n + dst``-indexed mapping, computed on first touch.

    Drop-in for the dense list mirrors: every consumer (engine send
    materialization, replay scoring, obs link accounting) only ever
    does ``view[pair]``, and dict indexing with ``__missing__`` makes
    that resolve-and-memoize.  A 4096-rank world touches the pairs its
    communication pattern actually uses — thousands, not 16.7 million.
    """

    __slots__ = ("_resolve",)

    def __init__(self, resolve):
        super().__init__()
        self._resolve = resolve

    def __missing__(self, key: int):
        value = self._resolve(key)
        self[key] = value
        return value

    # Bound-method resolvers survive pickling (the instance travels by
    # reference), but the memo does not need to: thaw empty and let
    # entries recompute.
    def __reduce__(self):
        return (_LazyPairView, (self._resolve,))


@dataclass(frozen=True)
class LinkParams:
    """One latency/bandwidth class: ``latency`` in s, ``bandwidth`` in B/s."""

    latency: float
    bandwidth: float

    def __post_init__(self):
        if self.latency < 0:
            raise ValueError("negative latency")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")


@dataclass(frozen=True)
class NetworkParams:
    """Cost-model parameters.

    ``links`` maps a *sharing class* to :class:`LinkParams`.  The class of
    a message is the name of the deepest topology level its endpoints
    share: ``"cluster"`` (different nodes), a level name such as
    ``"node"`` or ``"socket"``, or ``"self"`` (a rank messaging itself).
    Missing classes fall back to the next-cheaper defined one.
    """

    links: Dict[str, LinkParams] = field(default_factory=dict)
    send_overhead: float = 2.0e-7
    recv_overhead: float = 2.0e-7
    nic_serialize: bool = True
    #: Per-node effective copy bandwidth (B/s) shared by every message
    #: touching the node's DRAM; None disables memory contention.
    mem_bandwidth: Optional[float] = None
    jitter: float = 0.0
    lanes: int = 4
    #: Resolution cache for :meth:`link_for` — the fallback walk
    #: rebuilds the level order on every miss, and route-table
    #: construction asks for the same handful of classes n² times.
    _link_cache: Dict[Tuple[str, Tuple[str, ...]], LinkParams] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def link_for(self, class_name: str, topology: Topology) -> LinkParams:
        if class_name in self.links:
            return self.links[class_name]
        key = (class_name, tuple(topology.level_names))
        cached = self._link_cache.get(key)
        if cached is not None:
            return cached
        # Fall back towards deeper (cheaper) levels: cluster -> node ->
        # socket -> ... -> self, taking the first defined entry at or
        # below the requested class.
        order = ["cluster"] + topology.level_names[:-1] + ["self"]
        if class_name not in order:
            raise ValueError(f"unknown sharing class {class_name!r}")
        for name in order[order.index(class_name) :]:
            if name in self.links:
                self._link_cache[key] = self.links[name]
                return self.links[name]
        raise ValueError(f"no link parameters cover class {class_name!r}")


def plafrim_params(jitter: float = 0.0) -> NetworkParams:
    """The paper's main testbed: PlaFRIM, OmniPath 100 Gb/s.

    Dual-socket 12-core Haswell nodes.  Bandwidths are *effective MPI
    throughputs* (what a rank actually sustains through the full
    software stack at large message sizes), not hardware peaks:

    * inter-node messages serialize on the node's single OmniPath port
      (NIC serialization) — with 24 ranks per node that contention is
      where the paper's reordering gains come from;
    * every message also occupies the node's shared DRAM copy
      bandwidth (``mem_bandwidth``), which bounds how fast *intra*-node
      traffic can get after reordering.

    Calibrated against the paper's Fig. 5 absolute runtimes (see
    EXPERIMENTS.md).
    """
    return NetworkParams(
        links={
            "cluster": LinkParams(latency=1.5e-6, bandwidth=3.0e9),
            "node": LinkParams(latency=7.0e-7, bandwidth=3.0e9),
            "socket": LinkParams(latency=3.0e-7, bandwidth=3.5e9),
            "self": LinkParams(latency=1.0e-7, bandwidth=2.0e10),
        },
        mem_bandwidth=9.0e9,
        jitter=jitter,
    )


def ib_pair_params(jitter: float = 0.0) -> NetworkParams:
    """The §6.1 testbed: two nodes with Infiniband EDR (100 Gb/s)."""
    return NetworkParams(
        links={
            "cluster": LinkParams(latency=1.0e-6, bandwidth=12.5e9),
            "node": LinkParams(latency=6.0e-7, bandwidth=8.0e9),
            "self": LinkParams(latency=1.0e-7, bandwidth=2.0e10),
        },
        jitter=jitter,
    )


class Network:
    """Timed message transport over a :class:`Topology` and a binding.

    Public route tables (all precomputed at construction, read-only):

    * ``route_classes`` — tuple of sharing-class names;
    * ``route_class`` — (n, n) uint16 index into ``route_classes``;
    * ``route_alpha`` / ``route_inv_bw`` — (n, n) float64 latency and
      inverse bandwidth of the link class serving each pair;
    * ``route_src_node`` / ``route_dst_node`` — (n, n) endpoint node
      indices;
    * ``route_cross`` — (n, n) bool, True where the pair crosses nodes.

    ``n_messages`` counts every completed :meth:`transfer`.
    """

    def __init__(
        self,
        topology: Topology,
        binding: Sequence[int],
        params: NetworkParams,
        seed: int = 0,
        record_nic: bool = True,
        lazy_routes: Optional[bool] = None,
    ):
        self.topology = topology
        self.binding = list(binding)
        self.params = params
        # record_nic=False skips the per-message hardware-counter
        # appends (the trace replayer scores thousands of what-if
        # configurations and never reads them); timing is unaffected.
        self._record_nic = bool(record_nic)
        n_nodes = topology.n_components(topology.level_names[0])
        self.nic = NicCounters(n_nodes, lanes=params.lanes)
        # Busy-until horizons per node, as plain Python floats: both
        # gates are read and written once per message, where list
        # indexing beats numpy scalar extraction by ~5x (the values are
        # IEEE doubles either way, so results are bit-identical).
        self._nic_free = [0.0] * n_nodes
        self._mem_free = [0.0] * n_nodes
        self._rng = np.random.default_rng(seed)
        self._sigma = float(params.jitter)
        self._jit_blk: List[float] = []
        self._jit_pos = 0
        self.n_messages = 0
        if lazy_routes is None:
            lazy_routes = len(self.binding) >= _LAZY_THRESHOLD
        self.lazy_routes = bool(lazy_routes)
        if self.lazy_routes:
            self._build_routes_lazy()
        else:
            self._build_routes()

    # -- route tables ------------------------------------------------------

    def _build_routes(self) -> None:
        topo = self.topology
        params = self.params
        binding = self.binding
        n = len(binding)
        self._n_ranks = n

        pu = np.asarray(binding, dtype=np.int64)
        strides = topo._strides
        depth = len(strides)
        rank_node = pu // strides[0]

        # Vectorized common-ancestor depth: components are nested, so
        # the depth of the deepest common ancestor of two PUs is simply
        # the number of levels at which they fall in the same component
        # (equality at a deep level implies equality at every shallower
        # one).  This replaces an O(n^2) Python loop of per-pair
        # topology queries.
        cd = np.zeros((n, n), dtype=np.int64)
        for stride in strides:
            comp = pu // stride
            cd += comp[:, None] == comp[None, :]

        # Sharing classes in first-appearance (row-major) order — the
        # order the scalar per-pair loop produced, which route_classes
        # consumers observe.  Depth <-> class name is a bijection:
        # 0 = "cluster", depth = "self", else the level name.
        flat = cd.ravel()
        first_seen = {
            int(d): int(np.argmax(flat == d)) for d in np.unique(flat)
        }
        class_names: List[str] = []
        class_index: Dict[str, int] = {}
        lut_idx = np.zeros(depth + 1, dtype=np.uint16)
        lut_alpha = np.zeros(depth + 1, dtype=np.float64)
        lut_bw = np.ones(depth + 1, dtype=np.float64)
        for d in sorted(first_seen, key=first_seen.get):
            if d == 0:
                cls = "cluster"
            elif d == depth:
                cls = "self"
            else:
                cls = topo._names[d - 1]
            class_index[cls] = len(class_names)
            class_names.append(cls)
            lp = params.link_for(cls, topo)
            lut_idx[d] = class_index[cls]
            lut_alpha[d] = lp.latency
            lut_bw[d] = lp.bandwidth
        cls_idx = lut_idx[cd]
        alpha = lut_alpha[cd]
        bw = lut_bw[cd]
        cross = cd == 0
        has_mem = bool(params.mem_bandwidth)
        mem_gate = (cd != depth) if has_mem else np.zeros((n, n), dtype=bool)

        self.route_classes: Tuple[str, ...] = tuple(class_names)
        self.route_class = cls_idx
        self.route_alpha = alpha
        self.route_inv_bw = 1.0 / bw
        self.route_src_node = np.broadcast_to(rank_node[:, None], (n, n))
        self.route_dst_node = np.broadcast_to(rank_node[None, :], (n, n))
        self.route_cross = cross

        # Flat per-pair mirrors (index src*n + dst) as plain Python
        # scalars: transfer() runs per message, and plain-float
        # arithmetic beats numpy scalar extraction there.  Bandwidth is
        # kept (not its inverse) because ``nbytes / bw`` must stay the
        # exact division the un-tabled model performed.
        self._alpha_l = alpha.ravel().tolist()
        self._bw_l = bw.ravel().tolist()
        self._src_l = self.route_src_node.ravel().tolist()
        self._dst_l = self.route_dst_node.ravel().tolist()
        self._cross_l = cross.ravel().tolist()
        nic_gate = cross if params.nic_serialize else np.zeros_like(cross)
        self._nic_l = nic_gate.ravel().tolist()
        self._mem_l = mem_gate.ravel().tolist()
        self._cls_l = [class_names[i] for i in cls_idx.ravel().tolist()]
        # Class-index mirror of _cls_l for observability consumers that
        # accumulate per-class totals in flat lists (repro.obs.hooks).
        self._clsidx_l = cls_idx.ravel().tolist()
        # Fused per-pair records: transfer() reads all seven parameters
        # of a pair with one list index + tuple unpack instead of seven
        # separate list probes.  The values are the same float/int
        # objects as in the flat mirrors above, so costs stay bit-exact.
        counted = (self._cross_l if self._record_nic
                   else [False] * len(self._cross_l))
        self._pair_l = list(zip(self._alpha_l, self._bw_l, self._src_l,
                                self._dst_l, counted, self._nic_l,
                                self._mem_l))
        self._o_send = float(params.send_overhead)
        self._mem_bw = params.mem_bandwidth
        # Plain attribute (not a property): read once per receive
        # completion on the hot path.
        self.recv_overhead = params.recv_overhead

    # -- lazy route views (big worlds) -------------------------------------

    def _build_routes_lazy(self) -> None:
        """O(n) route construction: per-pair views resolve on demand.

        The dense builder materializes six (n, n) arrays plus eight
        n²-element list mirrors — ~2 GB and tens of seconds at 4096
        ranks, before the first message moves.  Here only the O(n)
        ingredients are kept (PU per rank, node per rank, per-depth
        link LUTs) and every mirror becomes a :class:`_LazyPairView`
        memoizing ``src * n + dst -> value``.  Resolved entries carry
        the same Python floats the dense tables would, so ``transfer``
        arithmetic — and therefore every virtual clock — is
        bit-identical across the two modes.

        The dense 2D ``route_*`` arrays are not built (set to None):
        their only consumers are diagnostics that are meaningless at a
        scale where they would not fit in memory anyway.
        ``route_classes`` is still computed exactly, in dense
        first-appearance order, by scanning rows until every achievable
        sharing class has been seen (almost always just row 0).
        """
        topo = self.topology
        params = self.params
        pu = np.asarray(self.binding, dtype=np.int64)
        n = len(self.binding)
        self._n_ranks = n
        strides = [int(s) for s in topo._strides]
        depth = len(strides)
        self._pu_l = pu.tolist()
        self._strides_l = strides
        self._depth = depth
        self._rank_node_l = (pu // strides[0]).tolist()
        self._has_mem = bool(params.mem_bandwidth)

        # Which common-ancestor depths exist at all, without touching
        # any pair: depth d (0 < d < depth) is achievable iff some
        # level-(d-1) component contains PUs from >= 2 distinct
        # level-d subcomponents; 0 iff there are >= 2 nodes; `depth`
        # always (the diagonal).
        achievable = {depth}
        if n > 1:
            if np.unique(pu // strides[0]).size > 1:
                achievable.add(0)
            for d in range(1, depth):
                outer = pu // strides[d - 1]
                inner = pu // strides[d]
                pairs = np.unique(np.stack([outer, inner]), axis=1)
                if pairs.shape[1] > np.unique(pairs[0]).size:
                    achievable.add(d)

        # First-appearance (row-major) order, matching the dense
        # builder observable for route_classes: scan whole rows
        # vectorized, stop once every achievable depth has appeared.
        order: List[int] = []
        seen: set = set()
        for src in range(n):
            row = np.zeros(n, dtype=np.int64)
            pu_src = int(pu[src])
            for stride in strides:
                row += (pu // stride) == (pu_src // stride)
            vals, first = np.unique(row, return_index=True)
            for i in np.argsort(first, kind="stable"):
                d = int(vals[i])
                if d not in seen:
                    seen.add(d)
                    order.append(d)
            if len(seen) == len(achievable):
                break

        class_names: List[str] = []
        lut_idx = [-1] * (depth + 1)
        lut_alpha = [0.0] * (depth + 1)
        lut_bw = [1.0] * (depth + 1)
        for d in order:
            if d == 0:
                cls = "cluster"
            elif d == depth:
                cls = "self"
            else:
                cls = topo._names[d - 1]
            lut_idx[d] = len(class_names)
            class_names.append(cls)
            lp = params.link_for(cls, topo)
            lut_alpha[d] = lp.latency
            lut_bw[d] = lp.bandwidth
        self.route_classes = tuple(class_names)
        self._lut_idx = lut_idx
        self._lut_alpha = lut_alpha
        self._lut_bw = lut_bw

        self.route_class = None
        self.route_alpha = None
        self.route_inv_bw = None
        self.route_src_node = None
        self.route_dst_node = None
        self.route_cross = None

        self._pair_l = _LazyPairView(self._resolve_pair)
        self._alpha_l = _LazyPairView(self._resolve_alpha)
        self._bw_l = _LazyPairView(self._resolve_bw)
        self._src_l = _LazyPairView(self._resolve_src)
        self._dst_l = _LazyPairView(self._resolve_dst)
        self._cross_l = _LazyPairView(self._resolve_cross)
        self._nic_l = _LazyPairView(self._resolve_nic)
        self._mem_l = _LazyPairView(self._resolve_mem)
        self._cls_l = _LazyPairView(self._resolve_cls)
        self._clsidx_l = _LazyPairView(self._resolve_clsidx)
        self._o_send = float(params.send_overhead)
        self._mem_bw = params.mem_bandwidth
        self.recv_overhead = params.recv_overhead

    def _common_depth(self, src: int, dst: int) -> int:
        """Number of topology levels the two ranks' PUs share.

        Components are nested, so equality at a deep level implies
        equality at every shallower one — the first mismatch ends the
        count."""
        pu_s = self._pu_l[src]
        pu_d = self._pu_l[dst]
        d = 0
        for stride in self._strides_l:
            if pu_s // stride != pu_d // stride:
                break
            d += 1
        return d

    def _resolve_pair(self, key: int) -> Tuple:
        src, dst = divmod(key, self._n_ranks)
        d = self._common_depth(src, dst)
        cross = d == 0
        return (
            self._lut_alpha[d],
            self._lut_bw[d],
            self._rank_node_l[src],
            self._rank_node_l[dst],
            cross and self._record_nic,
            cross and self.params.nic_serialize,
            self._has_mem and d != self._depth,
        )

    def _resolve_alpha(self, key: int) -> float:
        return self._pair_l[key][0]

    def _resolve_bw(self, key: int) -> float:
        return self._pair_l[key][1]

    def _resolve_src(self, key: int) -> int:
        return self._pair_l[key][2]

    def _resolve_dst(self, key: int) -> int:
        return self._pair_l[key][3]

    def _resolve_cross(self, key: int) -> bool:
        # The raw cross-node predicate (dense ``_cross_l``), not the
        # record_nic-gated ``counted`` field of the pair tuple.
        return self._common_depth(*divmod(key, self._n_ranks)) == 0

    def _resolve_nic(self, key: int) -> bool:
        return self._pair_l[key][5]

    def _resolve_mem(self, key: int) -> bool:
        return self._pair_l[key][6]

    def _resolve_clsidx(self, key: int) -> int:
        return self._lut_idx[self._common_depth(*divmod(key, self._n_ranks))]

    def _resolve_cls(self, key: int) -> str:
        return self.route_classes[self._clsidx_l[key]]

    # -- jitter ----------------------------------------------------------

    def reseed(self, seed: int) -> None:
        """Reset the jitter stream (one seed per repetition in §6.2)."""
        self._rng = np.random.default_rng(seed)
        self._jit_blk = []
        self._jit_pos = 0

    def _refill_jitter(self) -> List[float]:
        # Keep any unconsumed factors: the block is a cache over the
        # scalar draw stream, never a resampling of it.
        tail = self._jit_blk[self._jit_pos :]
        fresh = np.exp(self._rng.normal(0.0, self._sigma, _JITTER_BLOCK)).tolist()
        self._jit_blk = tail + fresh if tail else fresh
        self._jit_pos = 0
        return self._jit_blk

    def _jit(self) -> float:
        if self._sigma <= 0.0:
            return 1.0
        if self._jit_pos >= len(self._jit_blk):
            self._refill_jitter()
        v = self._jit_blk[self._jit_pos]
        self._jit_pos += 1
        return v

    # -- the cost model ----------------------------------------------------

    def sharing_class(self, src_rank: int, dst_rank: int) -> str:
        return self._cls_l[src_rank * self._n_ranks + dst_rank]

    def transfer(
        self, src_rank: int, dst_rank: int, nbytes: int, t_send: float
    ) -> Tuple[float, float]:
        """Cost one message.

        Returns ``(sender_done, arrival)``: the virtual time at which the
        sender may proceed and the time the message is available at the
        destination.  Cross-node messages serialize on the source node's
        NIC and are charged to its hardware counters.
        """
        if nbytes < 0:
            raise ValueError("negative message size")
        alpha, bw, src_node, dst_node, cross, nic_gate, mem_gate = \
            self._pair_l[src_rank * self._n_ranks + dst_rank]
        if self._sigma > 0.0:
            blk = self._jit_blk
            pos = self._jit_pos
            if pos + 2 > len(blk):
                blk = self._refill_jitter()
                pos = 0
            lat = alpha * blk[pos]
            bwt = (nbytes / bw) * blk[pos + 1]
            self._jit_pos = pos + 2
        else:
            lat = alpha
            bwt = nbytes / bw

        start = t_send + self._o_send
        if nic_gate:
            f = self._nic_free[src_node]
            if f > start:
                start = f
        mem_gate = mem_gate and nbytes > 0
        if mem_gate:
            start = max(start, self._mem_free[src_node],
                        self._mem_free[dst_node])

        if nic_gate:
            self._nic_free[src_node] = start + bwt
        if mem_gate:
            # Every message occupies DRAM copy bandwidth on each node it
            # touches (once per node: single-copy shared-memory model).
            mem_t = nbytes / self._mem_bw
            self._mem_free[src_node] = start + mem_t
            if dst_node != src_node:
                self._mem_free[dst_node] = start + mem_t

        sender_done = start + bwt
        arrival = start + lat + bwt
        self.n_messages += 1

        if cross:
            # NicCounters.record_xmit/record_rcv, inlined (two calls per
            # cross-node message): append to the per-node monotone
            # (times, cumulative-bytes) series, clamping the timestamp.
            nic = self.nic
            times, totals = nic._xmit[src_node]
            tv = sender_done
            if times and tv < times[-1]:
                tv = times[-1]
            times.append(tv)
            totals.append((totals[-1] if totals else 0) + int(nbytes))
            times, totals = nic._rcv[dst_node]
            tv = arrival
            if times and tv < times[-1]:
                tv = times[-1]
            times.append(tv)
            totals.append((totals[-1] if totals else 0) + int(nbytes))
        return sender_done, arrival
