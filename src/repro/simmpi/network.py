"""Hierarchical Hockney-style network cost model.

Every point-to-point message pays a latency ``alpha`` and a bandwidth
term ``nbytes / bandwidth`` chosen by the *deepest topology level the
two endpoint PUs share* — the mechanism that makes rank reordering pay
off: after TreeMatch moves heavy-traffic pairs onto the same node or
socket, their messages ride the cheap links.

Model per message (sender at virtual time ``t``):

* ``start = max(t + o_send, nic_free[src_node])`` — messages leaving a
  node serialize on the node's single NIC (all 24 ranks of a PlaFRIM
  node share one OmniPath port);
* sender resumes at ``start + nbytes/bw`` (injection is synchronous);
* the message arrives at ``start + alpha + nbytes/bw``;
* the receiver completes at ``max(t_post, arrival) + o_recv`` (applied
  by the engine).

All terms are optionally perturbed by seeded multiplicative log-normal
jitter so that repeated runs show the run-to-run variance the paper's
§6.2 statistics (180 repetitions, Welch t-test) rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.simmpi.nic import NicCounters
from repro.simmpi.topology import Topology

__all__ = ["LinkParams", "NetworkParams", "Network", "plafrim_params", "ib_pair_params"]


@dataclass(frozen=True)
class LinkParams:
    """One latency/bandwidth class: ``latency`` in s, ``bandwidth`` in B/s."""

    latency: float
    bandwidth: float

    def __post_init__(self):
        if self.latency < 0:
            raise ValueError("negative latency")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")


@dataclass(frozen=True)
class NetworkParams:
    """Cost-model parameters.

    ``links`` maps a *sharing class* to :class:`LinkParams`.  The class of
    a message is the name of the deepest topology level its endpoints
    share: ``"cluster"`` (different nodes), a level name such as
    ``"node"`` or ``"socket"``, or ``"self"`` (a rank messaging itself).
    Missing classes fall back to the next-cheaper defined one.
    """

    links: Dict[str, LinkParams] = field(default_factory=dict)
    send_overhead: float = 2.0e-7
    recv_overhead: float = 2.0e-7
    nic_serialize: bool = True
    #: Per-node effective copy bandwidth (B/s) shared by every message
    #: touching the node's DRAM; None disables memory contention.
    mem_bandwidth: Optional[float] = None
    jitter: float = 0.0
    lanes: int = 4

    def link_for(self, class_name: str, topology: Topology) -> LinkParams:
        if class_name in self.links:
            return self.links[class_name]
        # Fall back towards deeper (cheaper) levels: cluster -> node ->
        # socket -> ... -> self, taking the first defined entry at or
        # below the requested class.
        order = ["cluster"] + topology.level_names[:-1] + ["self"]
        if class_name not in order:
            raise ValueError(f"unknown sharing class {class_name!r}")
        for name in order[order.index(class_name) :]:
            if name in self.links:
                return self.links[name]
        raise ValueError(f"no link parameters cover class {class_name!r}")


def plafrim_params(jitter: float = 0.0) -> NetworkParams:
    """The paper's main testbed: PlaFRIM, OmniPath 100 Gb/s.

    Dual-socket 12-core Haswell nodes.  Bandwidths are *effective MPI
    throughputs* (what a rank actually sustains through the full
    software stack at large message sizes), not hardware peaks:

    * inter-node messages serialize on the node's single OmniPath port
      (NIC serialization) — with 24 ranks per node that contention is
      where the paper's reordering gains come from;
    * every message also occupies the node's shared DRAM copy
      bandwidth (``mem_bandwidth``), which bounds how fast *intra*-node
      traffic can get after reordering.

    Calibrated against the paper's Fig. 5 absolute runtimes (see
    EXPERIMENTS.md).
    """
    return NetworkParams(
        links={
            "cluster": LinkParams(latency=1.5e-6, bandwidth=3.0e9),
            "node": LinkParams(latency=7.0e-7, bandwidth=3.0e9),
            "socket": LinkParams(latency=3.0e-7, bandwidth=3.5e9),
            "self": LinkParams(latency=1.0e-7, bandwidth=2.0e10),
        },
        mem_bandwidth=9.0e9,
        jitter=jitter,
    )


def ib_pair_params(jitter: float = 0.0) -> NetworkParams:
    """The §6.1 testbed: two nodes with Infiniband EDR (100 Gb/s)."""
    return NetworkParams(
        links={
            "cluster": LinkParams(latency=1.0e-6, bandwidth=12.5e9),
            "node": LinkParams(latency=6.0e-7, bandwidth=8.0e9),
            "self": LinkParams(latency=1.0e-7, bandwidth=2.0e10),
        },
        jitter=jitter,
    )


class Network:
    """Timed message transport over a :class:`Topology` and a binding."""

    def __init__(
        self,
        topology: Topology,
        binding: Sequence[int],
        params: NetworkParams,
        seed: int = 0,
    ):
        self.topology = topology
        self.binding = list(binding)
        self.params = params
        n_nodes = topology.n_components(topology.level_names[0])
        self.nic = NicCounters(n_nodes, lanes=params.lanes)
        self._nic_free = np.zeros(n_nodes, dtype=np.float64)
        self._mem_free = np.zeros(n_nodes, dtype=np.float64)
        self._rng = np.random.default_rng(seed)
        self._sigma = float(params.jitter)

    # -- jitter ----------------------------------------------------------

    def reseed(self, seed: int) -> None:
        """Reset the jitter stream (one seed per repetition in §6.2)."""
        self._rng = np.random.default_rng(seed)

    def _jit(self) -> float:
        if self._sigma <= 0.0:
            return 1.0
        return float(np.exp(self._rng.normal(0.0, self._sigma)))

    # -- the cost model ----------------------------------------------------

    def sharing_class(self, src_rank: int, dst_rank: int) -> str:
        pu_s = self.binding[src_rank]
        pu_d = self.binding[dst_rank]
        return self.topology.common_level_name(pu_s, pu_d)

    def transfer(
        self, src_rank: int, dst_rank: int, nbytes: int, t_send: float
    ) -> Tuple[float, float]:
        """Cost one message.

        Returns ``(sender_done, arrival)``: the virtual time at which the
        sender may proceed and the time the message is available at the
        destination.  Cross-node messages serialize on the source node's
        NIC and are charged to its hardware counters.
        """
        if nbytes < 0:
            raise ValueError("negative message size")
        cls = self.sharing_class(src_rank, dst_rank)
        lp = self.params.link_for(cls, self.topology)
        lat = lp.latency * self._jit()
        bwt = (nbytes / lp.bandwidth) * self._jit()
        ready = t_send + self.params.send_overhead

        cross_node = cls == "cluster"
        src_node = self.topology.node_of(self.binding[src_rank])
        dst_node = self.topology.node_of(self.binding[dst_rank])

        start = ready
        if cross_node and self.params.nic_serialize:
            start = max(start, float(self._nic_free[src_node]))
        if self.params.mem_bandwidth and cls != "self" and nbytes > 0:
            start = max(start, float(self._mem_free[src_node]),
                        float(self._mem_free[dst_node]))

        if cross_node and self.params.nic_serialize:
            self._nic_free[src_node] = start + bwt
        if self.params.mem_bandwidth and cls != "self" and nbytes > 0:
            # Every message occupies DRAM copy bandwidth on each node it
            # touches (once per node: single-copy shared-memory model).
            mem_t = nbytes / self.params.mem_bandwidth
            self._mem_free[src_node] = start + mem_t
            if dst_node != src_node:
                self._mem_free[dst_node] = start + mem_t

        sender_done = start + bwt
        arrival = start + lat + bwt

        if cross_node:
            self.nic.record_xmit(src_node, sender_done, nbytes)
            self.nic.record_rcv(dst_node, arrival, nbytes)
        return sender_done, arrival

    @property
    def recv_overhead(self) -> float:
        return self.params.recv_overhead
