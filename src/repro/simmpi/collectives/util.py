"""Shared helpers for the collective algorithms."""

from __future__ import annotations

from typing import Any, Optional

from repro.simmpi.datatypes import Buffer

__all__ = ["as_buffer", "unwrap", "vrank", "unvrank", "is_pow2", "ceil_log2"]


def as_buffer(value: Any, nbytes: Optional[int] = None) -> Buffer:
    return Buffer.wrap(value, nbytes)


def unwrap(buf: Buffer) -> Any:
    """Return a buffer's payload, or the abstract buffer itself.

    Concrete payloads come back as plain values (mpi4py-style); abstract
    buffers are returned as :class:`Buffer` so their size survives.
    """
    if buf.is_abstract:
        return buf
    return buf.payload


def vrank(rank: int, root: int, size: int) -> int:
    """Virtual rank with the root shifted to 0 (for rooted trees)."""
    return (rank - root) % size


def unvrank(vr: int, root: int, size: int) -> int:
    return (vr + root) % size


def is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def ceil_log2(n: int) -> int:
    if n < 1:
        raise ValueError("n must be >= 1")
    return (n - 1).bit_length()
