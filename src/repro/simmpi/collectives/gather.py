"""Gather algorithms: binomial tree (default) and linear.

The decompositions are written once as resumable ``co_`` generators;
the blocking entry point drives them to completion (see barrier.py for
the pattern).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.simmpi.collectives.util import as_buffer, unvrank, unwrap, vrank
from repro.simmpi.datatypes import Buffer
from repro.simmpi.engine import _drive
from repro.simmpi.errorsim import CommError

__all__ = ["gather", "co_gather", "ALGORITHMS"]

ALGORITHMS = ("binomial", "linear")


def gather(
    comm,
    value: Any,
    root: int = 0,
    nbytes: Optional[int] = None,
    algorithm: Optional[str] = None,
) -> Optional[List[Any]]:
    """Gather every rank's ``value`` at ``root`` (returns ``None``
    elsewhere)."""
    return _drive(co_gather(comm, value, root, nbytes, algorithm))


def co_gather(
    comm,
    value: Any,
    root: int = 0,
    nbytes: Optional[int] = None,
    algorithm: Optional[str] = None,
):
    """Resumable :func:`gather`."""
    comm._check_rank(root)
    algorithm = algorithm or "binomial"
    if algorithm not in ALGORITHMS:
        raise CommError(f"unknown gather algorithm {algorithm!r}; have {ALGORITHMS}")
    ctx = comm._next_collective_context("gather")
    me, size = comm.rank, comm.size
    buf = as_buffer(value, nbytes)
    if size == 1:
        return [unwrap(buf)]

    if algorithm == "binomial":
        table = yield from _binomial(comm, buf, root, ctx)
    else:
        table = yield from _linear(comm, buf, root, ctx)
    if me != root:
        return None
    return [unwrap(table[r]) for r in range(size)]


def _pack(table: Dict[int, Buffer]) -> Buffer:
    total = sum(b.nbytes for b in table.values())
    return Buffer(dict(table), nbytes=total)


def _binomial(comm, buf: Buffer, root: int, ctx):
    me, size = comm.rank, comm.size
    vr = vrank(me, root, size)
    table: Dict[int, Buffer] = {me: buf}
    mask = 1
    while mask < size:
        if vr & mask == 0:
            src_v = vr | mask
            if src_v < size:
                msg = yield from comm._irecv(
                    unvrank(src_v, root, size), mask, ctx).co_wait()
                table.update(msg.payload)
        else:
            dst = unvrank(vr & ~mask, root, size)
            yield from comm._co_isend(_pack(table), dst, mask, ctx, "coll")
            return None
        mask <<= 1
    return table


def _linear(comm, buf: Buffer, root: int, ctx):
    me, size = comm.rank, comm.size
    if me != root:
        yield from comm._co_isend(buf, root, 0, ctx, "coll")
        return None
    table: Dict[int, Buffer] = {me: buf}
    for src in range(size):
        if src == root:
            continue
        msg = yield from comm._irecv(src, 0, ctx).co_wait()
        table[src] = msg.buf
    return table
