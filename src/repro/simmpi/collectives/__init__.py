"""Collective operations, all decomposed into point-to-point messages.

Every algorithm here is implemented strictly on top of
``Communicator._isend`` / ``_irecv`` with the ``"coll"`` category, so
the monitoring component records the *decomposition* of each collective
— the paper's headline capability (§1, §4.5): a reduce is seen as its
tree of sends, not as one opaque API call.

Each module offers several algorithms (mirroring Open MPI's tuned
collective component); the paper's experiments use the binomial-tree
broadcast and the in-order binary-tree reduce (Fig. 5 captions).

Every collective exists in two spellings sharing one implementation:
the resumable ``co_*`` generator (canonical — the event-driven
engine's yield protocol) and the blocking name, which drives the
generator to completion on the calling thread.
"""

from repro.simmpi.collectives.barrier import barrier, co_barrier  # noqa: F401
from repro.simmpi.collectives.bcast import bcast, co_bcast  # noqa: F401
from repro.simmpi.collectives.reduce import reduce, co_reduce  # noqa: F401
from repro.simmpi.collectives.allreduce import allreduce, co_allreduce  # noqa: F401
from repro.simmpi.collectives.gather import gather, co_gather  # noqa: F401
from repro.simmpi.collectives.scatter import scatter, co_scatter  # noqa: F401
from repro.simmpi.collectives.allgather import allgather, co_allgather  # noqa: F401
from repro.simmpi.collectives.alltoall import alltoall, co_alltoall  # noqa: F401
