"""Scan (prefix reduction) and reduce-scatter collectives.

Not used by the paper's experiments, but part of the MPI collective
surface an adopter expects — and more decompositions for the monitor
to see.

The decompositions are written once as resumable ``co_`` generators;
the blocking entry point drives them to completion (see barrier.py for
the pattern).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.simmpi.collectives.util import as_buffer, unwrap
from repro.simmpi.datatypes import Buffer
from repro.simmpi.engine import _drive
from repro.simmpi.op import Op, combine

__all__ = ["scan", "exscan", "reduce_scatter",
           "co_scan", "co_exscan", "co_reduce_scatter"]


def scan(comm, value: Any, op: Op, nbytes: Optional[int] = None) -> Any:
    """Inclusive prefix reduction: rank i returns op(v_0, ..., v_i).

    Hillis-Steele doubling: log₂ p rounds of one send/recv pair.
    """
    return _drive(co_scan(comm, value, op, nbytes))


def co_scan(comm, value: Any, op: Op, nbytes: Optional[int] = None):
    """Resumable :func:`scan`."""
    ctx = comm._next_collective_context("scan")
    me, size = comm.rank, comm.size
    acc = as_buffer(value, nbytes)
    dist = 1
    while dist < size:
        # Send the running prefix downstream, receive from upstream.
        req = None
        if me - dist >= 0:
            req = comm._irecv(me - dist, dist, ctx)
        if me + dist < size:
            yield from comm._co_isend(acc, me + dist, dist, ctx, "coll")
        if req is not None:
            msg = yield from req.co_wait()
            acc = combine(op, msg.buf, acc)
        dist <<= 1
    return unwrap(acc)


def exscan(comm, value: Any, op: Op, nbytes: Optional[int] = None) -> Any:
    """Exclusive prefix reduction: rank i returns op(v_0, ..., v_{i-1});
    rank 0 returns ``None`` (like MPI_Exscan's undefined result)."""
    return _drive(co_exscan(comm, value, op, nbytes))


def co_exscan(comm, value: Any, op: Op, nbytes: Optional[int] = None):
    """Resumable :func:`exscan`."""
    ctx = comm._next_collective_context("exscan")
    me, size = comm.rank, comm.size
    mine = as_buffer(value, nbytes)
    acc: Optional[Buffer] = None  # prefix of *earlier* ranks only
    dist = 1
    while dist < size:
        send_buf = mine if acc is None else combine(op, acc, mine)
        req = None
        if me - dist >= 0:
            req = comm._irecv(me - dist, dist, ctx)
        if me + dist < size:
            yield from comm._co_isend(send_buf, me + dist, dist, ctx, "coll")
        if req is not None:
            msg = yield from req.co_wait()
            acc = msg.buf if acc is None else combine(op, msg.buf, acc)
        dist <<= 1
    return None if acc is None else unwrap(acc)


def reduce_scatter(comm, values: List[Any], op: Op,
                   nbytes: Optional[int] = None) -> Any:
    """Reduce ``values[j]`` across ranks, scatter result j to rank j.

    ``values`` has one item per rank.  Implemented as pairwise
    recursive halving for power-of-two sizes, reduce+scatter otherwise.
    """
    return _drive(co_reduce_scatter(comm, values, op, nbytes))


def co_reduce_scatter(comm, values: List[Any], op: Op,
                      nbytes: Optional[int] = None):
    """Resumable :func:`reduce_scatter`."""
    me, size = comm.rank, comm.size
    if len(values) != size:
        from repro.simmpi.errorsim import CommError

        raise CommError(f"reduce_scatter needs {size} values, got {len(values)}")
    ctx = comm._next_collective_context("reduce_scatter")
    bufs = {j: as_buffer(v, nbytes) for j, v in enumerate(values)}
    if size == 1:
        return unwrap(bufs[0])

    if size & (size - 1) == 0:
        # Recursive halving: each step exchanges the half of the result
        # indices owned by the partner's side, combining into our half.
        lo, hi = 0, size
        while hi - lo > 1:
            mid = (lo + hi) // 2
            partner = me ^ ((hi - lo) // 2)
            if me < mid:
                send_idx = range(mid, hi)
                keep = (lo, mid)
            else:
                send_idx = range(lo, mid)
                keep = (mid, hi)
            payload = {j: bufs[j] for j in send_idx}
            total = sum(b.nbytes for b in payload.values())
            req = comm._irecv(partner, hi - lo, ctx)
            yield from comm._co_isend(
                Buffer(payload, nbytes=total), partner, hi - lo, ctx, "coll")
            msg = yield from req.co_wait()
            for j, b in msg.payload.items():
                bufs[j] = combine(op, bufs[j], b)
            lo, hi = keep
        return unwrap(bufs[me])

    # General size: binomial reduce of the whole table, then scatter.
    from repro.simmpi.collectives.reduce import co_reduce
    from repro.simmpi.collectives.scatter import co_scatter

    table = [bufs[j] for j in range(size)]
    reduced: List[Optional[Buffer]] = []
    for j in range(size):
        r = yield from co_reduce(comm, table[j], op, root=0, segments=1)
        reduced.append(r)
    if me == 0:
        items = [r if isinstance(r, Buffer) else Buffer.wrap(r) for r in reduced]
    else:
        items = None
    return (yield from co_scatter(comm, items, root=0))
