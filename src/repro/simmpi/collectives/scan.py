"""Scan (prefix reduction) and reduce-scatter collectives.

Not used by the paper's experiments, but part of the MPI collective
surface an adopter expects — and more decompositions for the monitor
to see.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.simmpi.collectives.util import as_buffer, unwrap
from repro.simmpi.datatypes import Buffer
from repro.simmpi.op import Op, combine

__all__ = ["scan", "exscan", "reduce_scatter"]


def scan(comm, value: Any, op: Op, nbytes: Optional[int] = None) -> Any:
    """Inclusive prefix reduction: rank i returns op(v_0, ..., v_i).

    Hillis-Steele doubling: log₂ p rounds of one send/recv pair.
    """
    ctx = comm._next_collective_context("scan")
    me, size = comm.rank, comm.size
    acc = as_buffer(value, nbytes)
    dist = 1
    while dist < size:
        # Send the running prefix downstream, receive from upstream.
        req = None
        if me - dist >= 0:
            req = comm._irecv(me - dist, dist, ctx)
        if me + dist < size:
            comm._isend(acc, me + dist, dist, ctx, "coll")
        if req is not None:
            msg = req.wait()
            acc = combine(op, msg.buf, acc)
        dist <<= 1
    return unwrap(acc)


def exscan(comm, value: Any, op: Op, nbytes: Optional[int] = None) -> Any:
    """Exclusive prefix reduction: rank i returns op(v_0, ..., v_{i-1});
    rank 0 returns ``None`` (like MPI_Exscan's undefined result)."""
    ctx = comm._next_collective_context("exscan")
    me, size = comm.rank, comm.size
    mine = as_buffer(value, nbytes)
    acc: Optional[Buffer] = None  # prefix of *earlier* ranks only
    dist = 1
    while dist < size:
        send_buf = mine if acc is None else combine(op, acc, mine)
        req = None
        if me - dist >= 0:
            req = comm._irecv(me - dist, dist, ctx)
        if me + dist < size:
            comm._isend(send_buf, me + dist, dist, ctx, "coll")
        if req is not None:
            msg = req.wait()
            acc = msg.buf if acc is None else combine(op, msg.buf, acc)
        dist <<= 1
    return None if acc is None else unwrap(acc)


def reduce_scatter(comm, values: List[Any], op: Op,
                   nbytes: Optional[int] = None) -> Any:
    """Reduce ``values[j]`` across ranks, scatter result j to rank j.

    ``values`` has one item per rank.  Implemented as pairwise
    recursive halving for power-of-two sizes, reduce+scatter otherwise.
    """
    me, size = comm.rank, comm.size
    if len(values) != size:
        from repro.simmpi.errorsim import CommError

        raise CommError(f"reduce_scatter needs {size} values, got {len(values)}")
    ctx = comm._next_collective_context("reduce_scatter")
    bufs = {j: as_buffer(v, nbytes) for j, v in enumerate(values)}
    if size == 1:
        return unwrap(bufs[0])

    if size & (size - 1) == 0:
        # Recursive halving: each step exchanges the half of the result
        # indices owned by the partner's side, combining into our half.
        lo, hi = 0, size
        while hi - lo > 1:
            mid = (lo + hi) // 2
            partner = me ^ ((hi - lo) // 2)
            if me < mid:
                send_idx = range(mid, hi)
                keep = (lo, mid)
            else:
                send_idx = range(lo, mid)
                keep = (mid, hi)
            payload = {j: bufs[j] for j in send_idx}
            total = sum(b.nbytes for b in payload.values())
            req = comm._irecv(partner, hi - lo, ctx)
            comm._isend(Buffer(payload, nbytes=total), partner, hi - lo, ctx,
                        "coll")
            msg = req.wait()
            for j, b in msg.payload.items():
                bufs[j] = combine(op, bufs[j], b)
            lo, hi = keep
        return unwrap(bufs[me])

    # General size: binomial reduce of the whole table, then scatter.
    from repro.simmpi.collectives.reduce import reduce as _reduce
    from repro.simmpi.collectives.scatter import scatter as _scatter

    table = [bufs[j] for j in range(size)]
    reduced: List[Optional[Buffer]] = []
    for j in range(size):
        r = _reduce(comm, table[j], op, root=0, segments=1)
        reduced.append(r)
    if me == 0:
        items = [r if isinstance(r, Buffer) else Buffer.wrap(r) for r in reduced]
    else:
        items = None
    return _scatter(comm, items, root=0)
