"""Broadcast algorithms: pipelined binomial tree (default), flat, chain.

The paper's Fig. 5b optimizes the *binomial-tree* broadcast: the rank
reordering moves the heavy tree edges (which all carry the full buffer)
inside nodes.  Large buffers are segmented and pipelined through the
tree (like Open MPI's tuned component), so the monitoring component
records one point-to-point message per segment per edge.

The decompositions are written once as resumable ``co_`` generators;
the blocking entry point drives them to completion (see barrier.py for
the pattern).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.simmpi.collectives.segment import n_segments, join_payloads, split_buffer
from repro.simmpi.collectives.util import as_buffer, unvrank, unwrap, vrank
from repro.simmpi.datatypes import Buffer
from repro.simmpi.engine import _drive
from repro.simmpi.errorsim import CommError

__all__ = ["bcast", "co_bcast", "ALGORITHMS"]

ALGORITHMS = ("binomial", "flat", "chain")


def bcast(
    comm,
    value: Any = None,
    root: int = 0,
    nbytes: Optional[int] = None,
    algorithm: Optional[str] = None,
    segments: Optional[int] = None,
) -> Any:
    """Broadcast ``value`` from ``root``; every rank returns the value.

    ``segments`` overrides the pipelining factor (1 disables it); by
    default large buffers are cut into up to 16 segments.  Segmented
    array payloads arrive flat at non-root ranks (shape travels with
    the data only in the unsegmented path).
    """
    return _drive(co_bcast(comm, value, root, nbytes, algorithm, segments))


def co_bcast(
    comm,
    value: Any = None,
    root: int = 0,
    nbytes: Optional[int] = None,
    algorithm: Optional[str] = None,
    segments: Optional[int] = None,
):
    """Resumable :func:`bcast`."""
    comm._check_rank(root)
    algorithm = algorithm or "binomial"
    if algorithm not in ALGORITHMS:
        raise CommError(f"unknown bcast algorithm {algorithm!r}; have {ALGORITHMS}")
    ctx = comm._next_collective_context("bcast")
    me = comm.rank
    size = comm.size
    if size == 1:
        return unwrap(as_buffer(value, nbytes)) if me == root else None

    buf = as_buffer(value, nbytes) if me == root else None
    if algorithm == "binomial":
        buf = yield from _binomial(comm, buf, root, ctx, segments)
    elif algorithm == "flat":
        buf = yield from _flat(comm, buf, root, ctx)
    else:
        buf = yield from _chain(comm, buf, root, ctx)
    return unwrap(buf)


def _segment_count(comm, buf: Optional[Buffer], root: int,
                   segments: Optional[int], ctx) -> int:
    """All ranks must agree on the segment count, which depends on the
    root's buffer size — so the root ships it in a tiny control
    message along the tree (folded into segment 0's tag in real
    implementations; one extra byte here)."""
    if segments is not None:
        return max(1, int(segments))
    if comm.rank == root:
        n = n_segments(buf.nbytes)
        if buf.payload is not None and not hasattr(buf.payload, "reshape"):
            n = 1  # non-array payloads cannot be sliced
        return n
    return 0  # receivers learn it from the header segment


def _binomial(comm, buf: Optional[Buffer], root: int, ctx, segments):
    me, size = comm.rank, comm.size
    vr = vrank(me, root, size)

    # Where do I receive from / send to?
    recv_mask = 0
    mask = 1
    while mask < size:
        if vr & mask:
            recv_mask = mask
            break
        mask <<= 1
    children: List[int] = []
    mask = (recv_mask or mask) >> 1
    while mask > 0:
        if vr + mask < size:
            children.append(unvrank(vr + mask, root, size))
        mask >>= 1

    nseg = _segment_count(comm, buf, root, segments, ctx)
    parent = unvrank(vr - recv_mask, root, size) if recv_mask else None

    # Per-edge accounting is regular (nseg segments, whole buffer):
    # every segment send to a child tallies into one per-child batch.
    batches = {c: comm._open_peer_batch(c, "coll") for c in children}

    if parent is None:
        pieces = split_buffer(buf, nseg)
        hdr = Buffer(("BCAST_HDR", nseg, pieces[0].payload),
                     nbytes=pieces[0].nbytes)
        for s, piece in enumerate(pieces):
            wire = hdr if s == 0 else piece
            for child in children:
                yield from comm._co_isend(wire, child, s, ctx, "coll",
                                          batches[child])
        for child in children:
            yield from comm._co_close_peer_batch(batches[child])
        return buf

    # Receivers: segment 0 carries the segment count in its header.
    msg0 = yield from comm._irecv(parent, 0, ctx).co_wait()
    payload0 = msg0.payload
    if isinstance(payload0, tuple) and len(payload0) == 3 and \
            payload0[0] == "BCAST_HDR":
        nseg = payload0[1]
        pieces = [Buffer(payload0[2], nbytes=msg0.nbytes)]
    else:
        nseg = 1
        pieces = [msg0.buf]
    for child in children:
        yield from comm._co_isend(msg0.buf, child, 0, ctx, "coll",
                                  batches[child])
    for s in range(1, nseg):
        msg = yield from comm._irecv(parent, s, ctx).co_wait()
        pieces.append(msg.buf)
        for child in children:
            yield from comm._co_isend(msg.buf, child, s, ctx, "coll",
                                      batches[child])
    for child in children:
        yield from comm._co_close_peer_batch(batches[child])
    if nseg == 1:
        return pieces[0]
    return join_payloads(pieces, pieces[0])


def _flat(comm, buf: Optional[Buffer], root: int, ctx):
    me, size = comm.rank, comm.size
    if me == root:
        for dst in range(size):
            if dst != root:
                yield from comm._co_isend(buf, dst, 0, ctx, "coll")
        return buf
    msg = yield from comm._irecv(root, 0, ctx).co_wait()
    return msg.buf


def _chain(comm, buf: Optional[Buffer], root: int, ctx):
    me, size = comm.rank, comm.size
    vr = vrank(me, root, size)
    if vr > 0:
        src = unvrank(vr - 1, root, size)
        msg = yield from comm._irecv(src, 0, ctx).co_wait()
        buf = msg.buf
    if vr + 1 < size:
        dst = unvrank(vr + 1, root, size)
        yield from comm._co_isend(buf, dst, 0, ctx, "coll")
    return buf
