"""Allreduce algorithms: recursive doubling and reduce+bcast.

The default is recursive doubling for power-of-two communicators
(log₂ p full-buffer exchanges) and reduce+bcast otherwise.

The decompositions are written once as resumable ``co_`` generators;
the blocking entry point drives them to completion (see barrier.py for
the pattern).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.simmpi.collectives.util import as_buffer, is_pow2, unwrap
from repro.simmpi.engine import _drive
from repro.simmpi.errorsim import CommError
from repro.simmpi.op import Op, combine

__all__ = ["allreduce", "co_allreduce", "ALGORITHMS"]

ALGORITHMS = ("recursive_doubling", "reduce_bcast", "rabenseifner")


def allreduce(
    comm,
    value: Any,
    op: Op,
    nbytes: Optional[int] = None,
    algorithm: Optional[str] = None,
) -> Any:
    """Reduce ``value`` across ranks; every rank returns the result."""
    return _drive(co_allreduce(comm, value, op, nbytes, algorithm))


def co_allreduce(
    comm,
    value: Any,
    op: Op,
    nbytes: Optional[int] = None,
    algorithm: Optional[str] = None,
):
    """Resumable :func:`allreduce`."""
    if algorithm is None:
        algorithm = "recursive_doubling" if is_pow2(comm.size) else "reduce_bcast"
    if algorithm not in ALGORITHMS:
        raise CommError(f"unknown allreduce algorithm {algorithm!r}; have {ALGORITHMS}")
    if algorithm == "recursive_doubling" and not is_pow2(comm.size):
        raise CommError("recursive_doubling requires a power-of-two size")

    if algorithm == "rabenseifner" and not is_pow2(comm.size):
        raise CommError("rabenseifner requires a power-of-two size")

    if algorithm == "reduce_bcast":
        from repro.simmpi.collectives.bcast import co_bcast
        from repro.simmpi.collectives.reduce import co_reduce

        partial = yield from co_reduce(comm, value, op, root=0, nbytes=nbytes)
        return (yield from co_bcast(
            comm, partial, root=0,
            nbytes=nbytes if comm.rank == 0 else None))

    if algorithm == "rabenseifner":
        from repro.simmpi.collectives.scan import co_reduce_scatter

        # Reduce-scatter + allgather: bandwidth-optimal (2·(p-1)/p · n
        # bytes per rank instead of log₂p · n).  Items are the vector
        # halves... modeled here at whole-buffer granularity: split the
        # buffer into p equal abstract/array chunks.
        me, size = comm.rank, comm.size
        buf = as_buffer(value, nbytes)
        chunk = -(-buf.nbytes // size)
        if buf.payload is None:
            parts = [None] * size
            mine = yield from co_reduce_scatter(comm, parts, op, nbytes=chunk)
            got = yield from comm.co_allgather(
                mine if hasattr(mine, "nbytes") else None, nbytes=chunk)
            total = sum(g.nbytes if hasattr(g, "nbytes") else chunk
                        for g in got)
            from repro.simmpi.datatypes import Buffer

            return Buffer.abstract(min(total, buf.nbytes) or buf.nbytes)
        import numpy as np

        flat = np.asarray(buf.payload).reshape(-1)
        per = -(-flat.size // size)
        parts = [flat[i * per : (i + 1) * per].copy() for i in range(size)]
        mine = yield from co_reduce_scatter(comm, parts, op)
        got = yield from comm.co_allgather(mine)
        out = np.concatenate([np.asarray(g).reshape(-1) for g in got])
        out = out[: flat.size]
        ref = np.asarray(buf.payload)
        return out.reshape(ref.shape) if out.size == ref.size else out

    ctx = comm._next_collective_context("allreduce")
    me, size = comm.rank, comm.size
    buf = as_buffer(value, nbytes)
    if size == 1:
        return unwrap(buf)
    mask = 1
    while mask < size:
        peer = me ^ mask
        req = comm._irecv(peer, mask, ctx)
        yield from comm._co_isend(buf, peer, mask, ctx, "coll")
        msg = yield from req.co_wait()
        buf = combine(op, buf, msg.buf)
        mask <<= 1
    return unwrap(buf)
