"""Barrier algorithms: dissemination (default) and tree.

Barriers generate *zero-length* point-to-point messages — the message
counts still increment, which is exactly the caveat the paper gives in
§4.1 ("some collective MPI routines might generate point-to-point
zero-length messages"), and what the quickstart example shows for
``MPI_Barrier``.

Like every collective, the decomposition is written once as a
resumable ``co_`` generator (the event-driven engine's native
spelling); the blocking entry point drives it to completion on the
spot — under the threaded engine the co primitives never yield, so the
generator runs in a single resume and the engine call sequence is
identical to the classic blocking implementation.
"""

from __future__ import annotations

from typing import Optional

from repro.simmpi.collectives.util import ceil_log2
from repro.simmpi.datatypes import Buffer
from repro.simmpi.engine import _drive
from repro.simmpi.errorsim import CommError

__all__ = ["barrier", "co_barrier", "ALGORITHMS"]

ALGORITHMS = ("dissemination", "tree")

_TOKEN = Buffer(None, nbytes=0)


def barrier(comm, algorithm: Optional[str] = None) -> None:
    """Block until every rank has entered the barrier."""
    return _drive(co_barrier(comm, algorithm=algorithm))


def co_barrier(comm, algorithm: Optional[str] = None):
    """Resumable :func:`barrier`."""
    algorithm = algorithm or "dissemination"
    if algorithm not in ALGORITHMS:
        raise CommError(f"unknown barrier algorithm {algorithm!r}; have {ALGORITHMS}")
    ctx = comm._next_collective_context("barrier")
    if comm.size == 1:
        return
    if algorithm == "dissemination":
        yield from _dissemination(comm, ctx)
    else:
        yield from _tree(comm, ctx)


def _dissemination(comm, ctx):
    me, size = comm.rank, comm.size
    for k in range(ceil_log2(size)):
        dist = 1 << k
        dst = (me + dist) % size
        src = (me - dist) % size
        req = comm._irecv(src, k, ctx)
        yield from comm._co_isend(_TOKEN, dst, k, ctx, "coll")
        yield from req.co_wait()


def _tree(comm, ctx):
    """Binomial fan-in to rank 0 then binomial fan-out."""
    me, size = comm.rank, comm.size
    # Fan-in.
    mask = 1
    while mask < size:
        if me & mask == 0:
            src = me | mask
            if src < size:
                yield from comm._irecv(src, mask, ctx).co_wait()
        else:
            yield from comm._co_isend(_TOKEN, me & ~mask, mask, ctx, "coll")
            break
        mask <<= 1
    # Fan-out (release), reusing the binomial broadcast structure.
    mask = 1
    while mask < size:
        if me & mask:
            yield from comm._irecv(me - mask, size + mask, ctx).co_wait()
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if me + mask < size:
            yield from comm._co_isend(_TOKEN, me + mask, size + mask, ctx, "coll")
        mask >>= 1
