"""Allgather algorithms: ring (default), recursive doubling, gather+bcast.

Used by the paper's §6.4 micro-benchmark, where groups of ranks
allgather every iteration and reordering restores data locality.

The decompositions are written once as resumable ``co_`` generators;
the blocking entry point drives them to completion (see barrier.py for
the pattern).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.simmpi.collectives.util import as_buffer, is_pow2, unwrap
from repro.simmpi.datatypes import Buffer
from repro.simmpi.engine import _drive
from repro.simmpi.errorsim import CommError

__all__ = ["allgather", "co_allgather", "ALGORITHMS"]

ALGORITHMS = ("ring", "recursive_doubling", "bruck", "gather_bcast")


def allgather(
    comm,
    value: Any,
    nbytes: Optional[int] = None,
    algorithm: Optional[str] = None,
) -> List[Any]:
    """Gather every rank's ``value``; all ranks return the full list,
    indexed by rank."""
    return _drive(co_allgather(comm, value, nbytes, algorithm))


def co_allgather(
    comm,
    value: Any,
    nbytes: Optional[int] = None,
    algorithm: Optional[str] = None,
):
    """Resumable :func:`allgather`."""
    if algorithm is None:
        algorithm = "recursive_doubling" if is_pow2(comm.size) else "ring"
    if algorithm not in ALGORITHMS:
        raise CommError(f"unknown allgather algorithm {algorithm!r}; have {ALGORITHMS}")
    if algorithm == "recursive_doubling" and not is_pow2(comm.size):
        raise CommError("recursive_doubling requires a power-of-two size")
    ctx = comm._next_collective_context("allgather")
    buf = as_buffer(value, nbytes)
    if comm.size == 1:
        return [unwrap(buf)]

    if algorithm == "ring":
        pieces = yield from _ring(comm, buf, ctx)
    elif algorithm == "recursive_doubling":
        pieces = yield from _recursive_doubling(comm, buf, ctx)
    elif algorithm == "bruck":
        pieces = yield from _bruck(comm, buf, ctx)
    else:
        pieces = yield from _gather_bcast(comm, buf, ctx)
    return [unwrap(pieces[r]) for r in range(comm.size)]


def _piece_message(pieces: Dict[int, Buffer]) -> Buffer:
    """Pack a set of per-rank pieces into one wire message.

    The payload is the dict itself (copy semantics apply at send time);
    the wire size is the sum of the piece sizes, so the timing model and
    the monitoring component both see the true transferred volume.
    """
    total = sum(b.nbytes for b in pieces.values())
    return Buffer(dict(pieces), nbytes=total)


def _ring(comm, buf: Buffer, ctx):
    me, size = comm.rank, comm.size
    right = (me + 1) % size
    left = (me - 1) % size
    pieces: Dict[int, Buffer] = {me: buf}
    # The ring's per-peer decomposition is regular — size-1 pieces, all
    # to the right neighbour: the whole rotation tallies into one batch.
    batch = comm._open_peer_batch(right, "coll")
    # Step k: forward the piece received at step k-1 (own piece first).
    forward = me
    for step in range(size - 1):
        req = comm._irecv(left, step, ctx)
        yield from comm._co_isend(pieces[forward], right, step, ctx, "coll", batch)
        msg = yield from req.co_wait()
        incoming = (left - step) % size  # origin of the piece at this step
        pieces[incoming] = msg.buf
        forward = incoming
    yield from comm._co_close_peer_batch(batch)
    return pieces


def _recursive_doubling(comm, buf: Buffer, ctx):
    me, size = comm.rank, comm.size
    pieces: Dict[int, Buffer] = {me: buf}
    mask = 1
    while mask < size:
        peer = me ^ mask
        req = comm._irecv(peer, mask, ctx)
        yield from comm._co_isend(_piece_message(pieces), peer, mask, ctx, "coll")
        msg = yield from req.co_wait()
        pieces.update(msg.payload)
        mask <<= 1
    return pieces


def _bruck(comm, buf: Buffer, ctx):
    """Bruck's algorithm: ⌈log₂ p⌉ rounds for *any* communicator size.

    Round k: send the pieces accumulated so far to ``rank - 2^k`` and
    receive from ``rank + 2^k`` (mod p); after the last round every
    rank holds all p pieces.  Works for non-powers of two with a
    partial final round, unlike recursive doubling.
    """
    me, size = comm.rank, comm.size
    pieces: Dict[int, Buffer] = {me: buf}
    k = 0
    while (1 << k) < size:
        dist = 1 << k
        dst = (me - dist) % size
        src = (me + dist) % size
        # Send the block of pieces accumulated so far: the window of up
        # to `dist` pieces starting at my own rank.
        window = [(me + j) % size for j in range(min(dist, size))]
        tosend = {r: pieces[r] for r in window if r in pieces}
        req = comm._irecv(src, k, ctx)
        yield from comm._co_isend(_piece_message(tosend), dst, k, ctx, "coll")
        msg = yield from req.co_wait()
        pieces.update(msg.payload)
        k += 1
    assert len(pieces) == size
    return pieces


def _gather_bcast(comm, buf: Buffer, ctx):
    from repro.simmpi.collectives.bcast import co_bcast
    from repro.simmpi.collectives.gather import co_gather

    me = comm.rank
    gathered = yield from co_gather(comm, buf, root=0)
    if me == 0:
        table = {r: as_buffer(v) for r, v in enumerate(gathered)}
        packed = _piece_message(table)
    else:
        packed = None
    result = yield from co_bcast(comm, packed, root=0)
    payload = result.payload if isinstance(result, Buffer) else result
    return dict(payload)
