"""Reduce algorithms: binomial tree, binary tree, flat — pipelined.

The paper's Fig. 5a optimizes the *binary-tree* reduce ("Binary Tree
algorithm" in the caption): every internal tree node receives the full
buffer from each child.  Like Open MPI's tuned component, large
buffers are segmented and pipelined through the tree; the monitoring
component records one point-to-point message per segment per edge.

The decompositions are written once as resumable ``co_`` generators;
the blocking entry point drives them to completion (see barrier.py for
the pattern).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.simmpi.collectives.segment import join_payloads, n_segments, split_buffer
from repro.simmpi.collectives.util import as_buffer, unvrank, unwrap, vrank
from repro.simmpi.datatypes import Buffer
from repro.simmpi.engine import _drive
from repro.simmpi.errorsim import CommError
from repro.simmpi.op import Op, combine

__all__ = ["reduce", "co_reduce", "ALGORITHMS"]

ALGORITHMS = ("binomial", "binary", "flat")


def reduce(
    comm,
    value: Any,
    op: Op,
    root: int = 0,
    nbytes: Optional[int] = None,
    algorithm: Optional[str] = None,
    segments: Optional[int] = None,
) -> Any:
    """Reduce ``value`` across ranks with ``op``; the result lands at
    ``root`` (other ranks return ``None``).

    The segment count is derived from the (uniform) buffer size; pass
    ``segments=1`` to disable pipelining (required for concrete
    payloads that are not NumPy arrays).
    """
    return _drive(co_reduce(comm, value, op, root, nbytes, algorithm, segments))


def co_reduce(
    comm,
    value: Any,
    op: Op,
    root: int = 0,
    nbytes: Optional[int] = None,
    algorithm: Optional[str] = None,
    segments: Optional[int] = None,
):
    """Resumable :func:`reduce`."""
    comm._check_rank(root)
    algorithm = algorithm or "binomial"
    if algorithm not in ALGORITHMS:
        raise CommError(f"unknown reduce algorithm {algorithm!r}; have {ALGORITHMS}")
    ctx = comm._next_collective_context("reduce")
    me, size = comm.rank, comm.size
    buf = as_buffer(value, nbytes)
    if size == 1:
        return unwrap(buf)

    nseg = max(1, int(segments)) if segments is not None else n_segments(buf.nbytes)
    if nseg > 1 and buf.payload is not None and not hasattr(buf.payload, "reshape"):
        raise CommError(
            "cannot segment a non-array payload; pass segments=1"
        )

    if algorithm == "binomial":
        out = yield from _tree_reduce(comm, buf, op, root, ctx, nseg,
                                      _binomial_links)
    elif algorithm == "binary":
        out = yield from _tree_reduce(comm, buf, op, root, ctx, nseg,
                                      _binary_links)
    else:
        out = yield from _flat(comm, buf, op, root, ctx)
    return unwrap(out) if me == root else None


# ---------------------------------------------------------------------------
# tree shapes: (children, parent) in *virtual* rank space


def _binary_links(vr: int, size: int):
    children = [c for c in (2 * vr + 1, 2 * vr + 2) if c < size]
    parent = None if vr == 0 else (vr - 1) // 2
    return children, parent


def _binomial_links(vr: int, size: int):
    children = []
    parent = None
    mask = 1
    while mask < size:
        if vr & mask:
            parent = vr & ~mask
            break
        if vr | mask < size and vr | mask != vr:
            children.append(vr | mask)
        mask <<= 1
    # Children must be reduced before forwarding: deepest (smallest
    # offset) subtrees complete first, so receive in ascending order.
    return children, parent


def _tree_reduce(comm, buf: Buffer, op: Op, root: int, ctx, nseg: int,
                 links):
    me, size = comm.rank, comm.size
    vr = vrank(me, root, size)
    children_v, parent_v = links(vr, size)
    children = [unvrank(c, root, size) for c in children_v]
    parent = None if parent_v is None else unvrank(parent_v, root, size)

    pieces = split_buffer(buf, nseg)
    out: List[Buffer] = []
    # Regular per-edge decomposition: the nseg segment sends to the
    # parent tally into one batch.
    batch = None if parent is None else comm._open_peer_batch(parent, "coll")
    for s, piece in enumerate(pieces):
        acc = piece
        for child in children:
            msg = yield from comm._irecv(child, s, ctx).co_wait()
            acc = combine(op, acc, msg.buf)
        if parent is not None:
            yield from comm._co_isend(acc, parent, s, ctx, "coll", batch)
        else:
            out.append(acc)
    if parent is not None:
        yield from comm._co_close_peer_batch(batch)
        return None
    if nseg == 1:
        return out[0]
    return join_payloads(out, buf)


def _flat(comm, buf: Buffer, op: Op, root: int, ctx):
    me, size = comm.rank, comm.size
    if me != root:
        yield from comm._co_isend(buf, root, 0, ctx, "coll")
        return None
    for src in range(size):
        if src == root:
            continue
        msg = yield from comm._irecv(src, 0, ctx).co_wait()
        buf = combine(op, buf, msg.buf)
    return buf
