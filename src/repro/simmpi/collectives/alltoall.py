"""All-to-all personalized exchange: pairwise (default) and linear."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.simmpi.collectives.util import as_buffer, is_pow2, unwrap
from repro.simmpi.errorsim import CommError

__all__ = ["alltoall", "ALGORITHMS"]

ALGORITHMS = ("pairwise", "linear")


def alltoall(
    comm,
    values: Sequence[Any],
    nbytes: Optional[int] = None,
    algorithm: Optional[str] = None,
) -> List[Any]:
    """Send ``values[j]`` to rank j; returns the items received, by
    source rank.  ``nbytes`` is the per-item size for abstract items."""
    algorithm = algorithm or "pairwise"
    if algorithm not in ALGORITHMS:
        raise CommError(f"unknown alltoall algorithm {algorithm!r}; have {ALGORITHMS}")
    me, size = comm.rank, comm.size
    if len(values) != size:
        raise CommError(f"alltoall needs {size} values, got {len(values)}")
    ctx = comm._next_collective_context("alltoall")
    bufs = [as_buffer(v, nbytes) for v in values]
    out: List[Any] = [None] * size
    out[me] = unwrap(bufs[me])
    if size == 1:
        return out

    if algorithm == "pairwise":
        xor_mode = is_pow2(size)
        for step in range(1, size):
            if xor_mode:
                peer = me ^ step
            else:
                peer = (me + step) % size
                # shift pattern: receive from the mirrored peer
            recv_from = peer if xor_mode else (me - step) % size
            req = comm._irecv(recv_from, step, ctx)
            comm._isend(bufs[peer], peer, step, ctx, "coll")
            msg = req.wait()
            out[recv_from] = unwrap(msg.buf)
    else:
        reqs = [
            comm._irecv(src, 0, ctx)
            for src in range(size)
            if src != me
        ]
        for dst in range(size):
            if dst != me:
                comm._isend(bufs[dst], dst, 0, ctx, "coll")
        for req in reqs:
            msg = req.wait()
            out[msg.src] = unwrap(msg.buf)
    return out
