"""All-to-all personalized exchange: pairwise (default) and linear.

The decompositions are written once as resumable ``co_`` generators;
the blocking entry point drives them to completion (see barrier.py for
the pattern).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.simmpi.collectives.util import as_buffer, is_pow2, unwrap
from repro.simmpi.engine import _drive
from repro.simmpi.errorsim import CommError

__all__ = ["alltoall", "co_alltoall", "ALGORITHMS"]

ALGORITHMS = ("pairwise", "linear")


def alltoall(
    comm,
    values: Sequence[Any],
    nbytes: Optional[int] = None,
    algorithm: Optional[str] = None,
) -> List[Any]:
    """Send ``values[j]`` to rank j; returns the items received, by
    source rank.  ``nbytes`` is the per-item size for abstract items."""
    return _drive(co_alltoall(comm, values, nbytes, algorithm))


def co_alltoall(
    comm,
    values: Sequence[Any],
    nbytes: Optional[int] = None,
    algorithm: Optional[str] = None,
):
    """Resumable :func:`alltoall`."""
    algorithm = algorithm or "pairwise"
    if algorithm not in ALGORITHMS:
        raise CommError(f"unknown alltoall algorithm {algorithm!r}; have {ALGORITHMS}")
    me, size = comm.rank, comm.size
    if len(values) != size:
        raise CommError(f"alltoall needs {size} values, got {len(values)}")
    ctx = comm._next_collective_context("alltoall")
    bufs = [as_buffer(v, nbytes) for v in values]
    out: List[Any] = [None] * size
    out[me] = unwrap(bufs[me])
    if size == 1:
        return out

    if algorithm == "pairwise":
        xor_mode = is_pow2(size)
        for step in range(1, size):
            if xor_mode:
                peer = me ^ step
            else:
                peer = (me + step) % size
                # shift pattern: receive from the mirrored peer
            recv_from = peer if xor_mode else (me - step) % size
            req = comm._irecv(recv_from, step, ctx)
            yield from comm._co_isend(bufs[peer], peer, step, ctx, "coll")
            msg = yield from req.co_wait()
            out[recv_from] = unwrap(msg.buf)
    else:
        reqs = [
            comm._irecv(src, 0, ctx)
            for src in range(size)
            if src != me
        ]
        for dst in range(size):
            if dst != me:
                yield from comm._co_isend(bufs[dst], dst, 0, ctx, "coll")
        for req in reqs:
            msg = yield from req.co_wait()
            out[msg.src] = unwrap(msg.buf)
    return out
