"""Scatter algorithms: binomial tree (default) and linear.

The decompositions are written once as resumable ``co_`` generators;
the blocking entry point drives them to completion (see barrier.py for
the pattern).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.simmpi.collectives.util import as_buffer, unvrank, unwrap, vrank
from repro.simmpi.datatypes import Buffer
from repro.simmpi.engine import _drive
from repro.simmpi.errorsim import CommError

__all__ = ["scatter", "co_scatter", "ALGORITHMS"]

ALGORITHMS = ("binomial", "linear")


def scatter(
    comm,
    values: Optional[Sequence[Any]] = None,
    root: int = 0,
    nbytes: Optional[int] = None,
    algorithm: Optional[str] = None,
) -> Any:
    """Scatter ``values`` (one item per rank, significant at ``root``);
    every rank returns its item.

    ``nbytes``, if given, is the per-item size (for abstract items).
    """
    return _drive(co_scatter(comm, values, root, nbytes, algorithm))


def co_scatter(
    comm,
    values: Optional[Sequence[Any]] = None,
    root: int = 0,
    nbytes: Optional[int] = None,
    algorithm: Optional[str] = None,
):
    """Resumable :func:`scatter`."""
    comm._check_rank(root)
    algorithm = algorithm or "binomial"
    if algorithm not in ALGORITHMS:
        raise CommError(f"unknown scatter algorithm {algorithm!r}; have {ALGORITHMS}")
    ctx = comm._next_collective_context("scatter")
    me, size = comm.rank, comm.size

    table: Optional[Dict[int, Buffer]] = None
    if me == root:
        if values is None or len(values) != size:
            raise CommError(f"root must supply {size} values")
        table = {r: as_buffer(v, nbytes) for r, v in enumerate(values)}
    if size == 1:
        return unwrap(table[0])

    if algorithm == "binomial":
        mine = yield from _binomial(comm, table, root, ctx)
    else:
        mine = yield from _linear(comm, table, root, ctx)
    return unwrap(mine)


def _pack(table: Dict[int, Buffer]) -> Buffer:
    total = sum(b.nbytes for b in table.values())
    return Buffer(dict(table), nbytes=total)


def _binomial(comm, table: Optional[Dict[int, Buffer]], root: int, ctx):
    me, size = comm.rank, comm.size
    vr = vrank(me, root, size)

    # Receive the block of items for my subtree.
    mask = 1
    while mask < size:
        if vr & mask:
            src = unvrank(vr - mask, root, size)
            msg = yield from comm._irecv(src, mask, ctx).co_wait()
            table = dict(msg.payload)
            break
        mask <<= 1

    # Forward sub-blocks to my children (largest subtree first).
    mask >>= 1
    while mask > 0:
        if vr + mask < size:
            dst_v = vr + mask
            sub = {
                r: b
                for r, b in table.items()
                if dst_v <= vrank(r, root, size) < dst_v + mask
            }
            yield from comm._co_isend(
                _pack(sub), unvrank(dst_v, root, size), mask, ctx, "coll")
            for r in sub:
                del table[r]
        mask >>= 1
    return table[me]


def _linear(comm, table: Optional[Dict[int, Buffer]], root: int, ctx):
    me, size = comm.rank, comm.size
    if me == root:
        for dst in range(size):
            if dst != root:
                yield from comm._co_isend(table[dst], dst, 0, ctx, "coll")
        return table[me]
    msg = yield from comm._irecv(root, 0, ctx).co_wait()
    return msg.buf
