"""Segmentation helpers for pipelined tree collectives.

Open MPI's tuned collectives *segment* large buffers and pipeline the
segments through the tree, which turns the collective from
latency-bound (depth × full-buffer transfers) into throughput-bound —
the regime in which the paper's Fig. 5 reordering gains arise.  The
monitoring component consequently sees one point-to-point message per
segment per tree edge, exactly as on the real stack.

Because the per-peer decomposition is *regular* (a fixed segment count
covering the whole buffer), the pipelined collectives account their
segment sends through one :class:`~repro.simmpi.pml_monitoring.PeerBatch`
per tree edge instead of one accumulator update per segment.
"""

from __future__ import annotations

from typing import Any, List, Tuple

import numpy as np

from repro.simmpi.datatypes import Buffer

__all__ = ["n_segments", "split_buffer", "join_payloads", "total_nbytes",
           "DEFAULT_SEGMENT_BYTES", "MAX_SEGMENTS"]

#: Segment size used by the pipelined algorithms (Open MPI's tuned
#: defaults are smaller, but each simulated message has a fixed cost;
#: 16 segments already yield throughput-bound behaviour).
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024
MAX_SEGMENTS = 16


def n_segments(nbytes: int, segment_bytes: int = DEFAULT_SEGMENT_BYTES,
               max_segments: int = MAX_SEGMENTS) -> int:
    if nbytes <= segment_bytes:
        return 1
    return min(max_segments, -(-nbytes // segment_bytes))


def split_buffer(buf: Buffer, segments: int) -> List[Buffer]:
    """Cut a buffer into ``segments`` pieces (sizes differ by <= 1 byte
    for abstract buffers; array payloads are sliced flat).

    Non-array concrete payloads cannot be sliced; the caller should
    have chosen ``segments == 1`` for them.
    """
    if segments <= 1:
        return [buf]
    n = buf.nbytes
    base, extra = divmod(n, segments)
    if buf.payload is None:
        # Only two distinct sizes occur; abstract buffers are immutable
        # descriptors, so the same object can stand in for every
        # equally-sized segment.
        small = Buffer(None, nbytes=base)
        if not extra:
            return [small] * segments
        big = Buffer(None, nbytes=base + 1)
        return [big] * extra + [small] * (segments - extra)
    if isinstance(buf.payload, np.ndarray):
        flat = buf.payload.reshape(-1)
        per = -(-flat.size // segments)
        out = []
        for i in range(segments):
            piece = flat[i * per : (i + 1) * per]
            out.append(Buffer(piece, nbytes=int(piece.nbytes)))
        # Pad the list if the array was shorter than the segment count.
        while len(out) < segments:
            out.append(Buffer(flat[:0], nbytes=0))
        return out
    raise TypeError(
        f"cannot segment a {type(buf.payload).__name__} payload; "
        "use segments=1"
    )


def total_nbytes(pieces: List[Buffer]) -> int:
    """Wire volume of a regular segmented decomposition.

    Pipelined collectives send each piece once per tree edge; the edge
    total is what a :class:`PeerBatch` accumulates across the segment
    sends of that edge."""
    return sum(p.nbytes for p in pieces)


def join_payloads(pieces: List[Buffer], like: Buffer) -> Buffer:
    """Reassemble segmented pieces into one buffer.

    Array pieces concatenate flat and reshape to the reference shape
    when sizes agree; abstract pieces merge into one abstract buffer.
    """
    total = sum(p.nbytes for p in pieces)
    if all(p.payload is None for p in pieces):
        return Buffer.abstract(total)
    arrays = [np.asarray(p.payload).reshape(-1) for p in pieces]
    flat = np.concatenate(arrays) if arrays else np.empty(0)
    ref = like.payload
    if isinstance(ref, np.ndarray) and flat.size == ref.size:
        return Buffer(flat.reshape(ref.shape), nbytes=total)
    return Buffer(flat, nbytes=total)
