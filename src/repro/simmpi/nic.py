"""Simulated network-interface hardware counters.

The paper's §6.1 experiment compares the introspection library against
the Infiniband ``port_xmit_data`` hardware counter, which counts *in
units of four bytes* (one per lane) — readers must multiply by the
number of lanes (see the Mellanox note cited as [1] in the paper).

:class:`NicCounters` reproduces that interface for the simulated
cluster: every time a message crosses a node boundary the network model
calls :meth:`record_xmit`, and any process (or a monitoring thread) can
read the counter *as of a given virtual time*, exactly like polling the
``/sys/class/infiniband/.../port_xmit_data`` file.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Tuple

__all__ = ["NicCounters"]


class NicCounters:
    """Per-node transmit/receive byte counters with timestamped history."""

    def __init__(self, n_nodes: int, lanes: int = 4):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        self.n_nodes = n_nodes
        self.lanes = lanes
        # Per node: sorted event times and cumulative byte totals.
        self._xmit: Dict[int, Tuple[List[float], List[int]]] = {
            n: ([], []) for n in range(n_nodes)
        }
        self._rcv: Dict[int, Tuple[List[float], List[int]]] = {
            n: ([], []) for n in range(n_nodes)
        }

    # -- recording (called by the network model) ------------------------

    # record_xmit/record_rcv are flattened copies of the same append
    # (they run once each per cross-node message): events arrive in
    # simulation order, which can differ slightly from virtual-time
    # order, so the timestamp is clamped to keep the cumulative series
    # monotone (a real counter is too).

    def record_xmit(self, node: int, time: float, nbytes: int) -> None:
        times, totals = self._xmit[node]
        if times and time < times[-1]:
            time = times[-1]
        times.append(time)
        totals.append((totals[-1] if totals else 0) + int(nbytes))

    def record_rcv(self, node: int, time: float, nbytes: int) -> None:
        times, totals = self._rcv[node]
        if times and time < times[-1]:
            time = times[-1]
        times.append(time)
        totals.append((totals[-1] if totals else 0) + int(nbytes))

    # -- reading (what the experiment's sampler thread does) ------------

    def port_xmit_data(self, node: int, time: float) -> int:
        """The raw counter value at virtual ``time``, in 4-byte lane units.

        Like the hardware counter, the value must be multiplied by
        :attr:`lanes` to obtain bytes.
        """
        return self.xmit_bytes(node, time) // self.lanes

    def xmit_bytes(self, node: int, time: float) -> int:
        """Cumulative bytes transmitted by ``node``'s NIC up to ``time``."""
        return self._read(self._xmit, node, time)

    def rcv_bytes(self, node: int, time: float) -> int:
        return self._read(self._rcv, node, time)

    def _read(self, table, node: int, time: float) -> int:
        if node not in table:
            raise ValueError(f"no node {node}")
        times, totals = table[node]
        i = bisect.bisect_right(times, time)
        return totals[i - 1] if i else 0

    # -- introspection helpers ------------------------------------------

    def xmit_events(self, node: int) -> List[Tuple[float, int]]:
        """The full (time, cumulative bytes) transmit history of a node."""
        times, totals = self._xmit[node]
        return list(zip(times, totals))

    def rcv_events(self, node: int) -> List[Tuple[float, int]]:
        """The full (time, cumulative bytes) receive history of a node."""
        times, totals = self._rcv[node]
        return list(zip(times, totals))

    def total_xmit_bytes(self, node: int) -> int:
        _, totals = self._xmit[node]
        return totals[-1] if totals else 0
