"""Post-mortem message tracing (the EZtrace-style comparator, §2).

The paper contrasts its *introspection* library with trace-based tools
(EZtrace, DUMPI, mpiP): those capture every message into per-process
files for **post-mortem, static analysis** — the program cannot query
its own behaviour at runtime.  This module implements that class of
tool on the simulator so the repository can demonstrate both
approaches: a :class:`MessageTracer` hooks the same PML choke point the
monitoring component uses, records one event per message, and offers
the classic offline reductions (per-pair matrices, timelines, per-rank
summaries).

Enable before ``Engine.run``::

    engine = Engine(cluster)
    tracer = MessageTracer.install(engine)
    engine.run(program)
    matrix = tracer.size_matrix()          # post-mortem only!
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

__all__ = ["TraceEvent", "MessageTracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One trace record: ``count`` messages to one peer.

    ``count`` is almost always 1; batched records from segmented
    collectives (``PmlMonitoring.record_batch``) appear as a single
    event carrying the multiplicity and the *total* byte volume.
    """

    time: float  # sender's virtual clock at the send
    src: int  # world ranks
    dst: int
    nbytes: int
    category: str  # p2p | coll | osc
    count: int = 1


class MessageTracer:
    """Record every message that crosses the PML layer.

    Unlike monitoring sessions, the tracer has no notion of scope or
    introspection: it sees everything from install to the end of the
    run and is meant to be queried *after* ``Engine.run`` returns.
    """

    def __init__(self, world_size: int):
        self.world_size = world_size
        self.events: List[TraceEvent] = []

    # -- installation -----------------------------------------------------

    @classmethod
    def install(cls, engine) -> "MessageTracer":
        """Attach to the pml's trace hook; tracing is independent of
        the monitoring mode (it sees messages even when
        ``pml_monitoring_enable`` is 0)."""
        tracer = cls(engine.n_ranks)

        def hook(t, src: int, dst: int, nbytes: int, category: str,
                 count: int) -> None:
            if t is None:
                # Direct records (OSC, tests) run on the sender's own
                # thread; deferred sends pass the send-time explicitly.
                from repro.simmpi.engine import current_process

                t = current_process().clock
            tracer.events.append(TraceEvent(
                time=t,
                src=src,
                dst=dst,
                nbytes=int(nbytes),
                category=category,
                count=int(count),
            ))

        engine.pml.trace_hook = hook
        return tracer

    # -- offline reductions ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def count_matrix(self, category: Optional[str] = None) -> np.ndarray:
        m = np.zeros((self.world_size, self.world_size), dtype=np.int64)
        for e in self.events:
            if category is None or e.category == category:
                m[e.src, e.dst] += e.count
        return m

    def size_matrix(self, category: Optional[str] = None) -> np.ndarray:
        m = np.zeros((self.world_size, self.world_size), dtype=np.int64)
        for e in self.events:
            if category is None or e.category == category:
                m[e.src, e.dst] += e.nbytes
        return m

    def timeline(self, bin_seconds: float) -> Tuple[np.ndarray, np.ndarray]:
        """(bin end times, bytes per bin) over the whole run."""
        if not self.events:
            return np.array([]), np.array([], dtype=np.int64)
        t_end = max(e.time for e in self.events)
        n_bins = int(t_end / bin_seconds) + 1
        vols = np.zeros(n_bins, dtype=np.int64)
        for e in self.events:
            vols[int(e.time / bin_seconds)] += e.nbytes
        times = (np.arange(n_bins) + 1) * bin_seconds
        return times, vols

    def per_rank_sent(self) -> np.ndarray:
        out = np.zeros(self.world_size, dtype=np.int64)
        for e in self.events:
            out[e.src] += e.nbytes
        return out

    def filtered(self, predicate: Callable[[TraceEvent], bool]) -> List[TraceEvent]:
        return [e for e in self.events if predicate(e)]

    # -- persistence (per-process trace files, like EZtrace) ----------------

    def dump(self, path: str) -> None:
        """One line per event: ``time src dst nbytes category count``."""
        with open(path, "w", encoding="ascii") as fh:
            fh.write("# simmpi message trace\n")
            fh.write(f"# world_size={self.world_size} events={len(self.events)}\n")
            for e in self.events:
                fh.write(
                    f"{e.time:.9f} {e.src} {e.dst} {e.nbytes} "
                    f"{e.category} {e.count}\n"
                )

    @classmethod
    def load(cls, path: str) -> "MessageTracer":
        events = []
        world_size = 0
        with open(path, "r", encoding="ascii") as fh:
            for line in fh:
                line = line.strip()
                if line.startswith("#"):
                    if "world_size=" in line:
                        world_size = int(line.split("world_size=")[1].split()[0])
                    continue
                fields = line.split()
                # Older traces have no count column; default to 1.
                t, src, dst, nbytes, cat = fields[:5]
                count = int(fields[5]) if len(fields) > 5 else 1
                events.append(TraceEvent(float(t), int(src), int(dst),
                                         int(nbytes), cat, count))
        tracer = cls(world_size or (max(max(e.src, e.dst) for e in events) + 1
                                    if events else 1))
        tracer.events = events
        return tracer
