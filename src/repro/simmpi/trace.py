"""Post-mortem message tracing (the EZtrace-style comparator, §2).

The paper contrasts its *introspection* library with trace-based tools
(EZtrace, DUMPI, mpiP): those capture every message into per-process
files for **post-mortem, static analysis** — the program cannot query
its own behaviour at runtime.  This module implements that class of
tool on the simulator so the repository can demonstrate both
approaches: a :class:`MessageTracer` hooks the same PML choke point the
monitoring component uses, records one event per message, and offers
the classic offline reductions (per-pair matrices, timelines, per-rank
summaries).

Enable before ``Engine.run``::

    engine = Engine(cluster)
    tracer = MessageTracer.install(engine)
    engine.run(program)
    matrix = tracer.size_matrix()          # post-mortem only!

The reductions are vectorized: events are transposed once into flat
column arrays (cached until new events arrive) and every matrix /
timeline is an ``np.add.at`` scatter over them, so querying a
million-event trace costs milliseconds instead of seconds.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["TraceEvent", "MessageTracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One trace record: ``count`` messages to one peer.

    ``count`` is almost always 1; batched records from segmented
    collectives (``PmlMonitoring.record_batch``) appear as a single
    event carrying the multiplicity and the *total* byte volume.
    """

    time: float  # sender's virtual clock at the send
    src: int  # world ranks
    dst: int
    nbytes: int
    category: str  # p2p | coll | osc
    count: int = 1


class MessageTracer:
    """Record every message that crosses the PML layer.

    Unlike monitoring sessions, the tracer has no notion of scope or
    introspection: it sees everything from install to the end of the
    run and is meant to be queried *after* ``Engine.run`` returns.
    """

    def __init__(self, world_size: int):
        self.world_size = world_size
        self.events: List[TraceEvent] = []
        # Column-array cache for the vectorized reductions, keyed on
        # the event count at build time (appends invalidate it).
        self._cols: Optional[Tuple[int, tuple]] = None

    # -- installation -----------------------------------------------------

    @classmethod
    def install(cls, engine) -> "MessageTracer":
        """Attach to the pml's trace hook; tracing is independent of
        the monitoring mode (it sees messages even when
        ``pml_monitoring_enable`` is 0).  An already-installed hook
        (e.g. the observability layer's per-link accounting) is
        chained, not clobbered."""
        tracer = cls(engine.n_ranks)
        prev = engine.pml.trace_hook

        def hook(t, src: int, dst: int, nbytes: int, category: str,
                 count: int) -> None:
            if t is None:
                # Direct records (OSC, tests) run on the sender's own
                # thread; deferred sends pass the send-time explicitly.
                from repro.simmpi.engine import current_process

                t = current_process().clock
            tracer.events.append(TraceEvent(
                time=t,
                src=src,
                dst=dst,
                nbytes=int(nbytes),
                category=category,
                count=int(count),
            ))
            if prev is not None:
                prev(t, src, dst, nbytes, category, count)

        engine.pml.trace_hook = hook
        return tracer

    # -- offline reductions ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def _columns(self) -> tuple:
        """Events transposed into flat arrays (time, src, dst, nbytes,
        count, category-code, code-of-category map)."""
        n = len(self.events)
        if self._cols is not None and self._cols[0] == n:
            return self._cols[1]
        ev = self.events
        time = np.fromiter((e.time for e in ev), dtype=np.float64, count=n)
        src = np.fromiter((e.src for e in ev), dtype=np.intp, count=n)
        dst = np.fromiter((e.dst for e in ev), dtype=np.intp, count=n)
        nbytes = np.fromiter((e.nbytes for e in ev), dtype=np.int64, count=n)
        count = np.fromiter((e.count for e in ev), dtype=np.int64, count=n)
        code_of: Dict[str, int] = {
            c: i for i, c in enumerate(sorted({e.category for e in ev}))
        }
        cat = np.fromiter((code_of[e.category] for e in ev), dtype=np.int8,
                          count=n)
        cols = (time, src, dst, nbytes, count, cat, code_of)
        self._cols = (n, cols)
        return cols

    def _scatter_matrix(self, weights: np.ndarray,
                        category: Optional[str]) -> np.ndarray:
        time, src, dst, nbytes, count, cat, code_of = self._columns()
        m = np.zeros((self.world_size, self.world_size), dtype=np.int64)
        if category is not None:
            code = code_of.get(category)
            if code is None:
                return m
            mask = cat == code
            src, dst, weights = src[mask], dst[mask], weights[mask]
        np.add.at(m, (src, dst), weights)
        return m

    def count_matrix(self, category: Optional[str] = None) -> np.ndarray:
        if not self.events:
            return np.zeros((self.world_size, self.world_size),
                            dtype=np.int64)
        return self._scatter_matrix(self._columns()[4], category)

    def size_matrix(self, category: Optional[str] = None) -> np.ndarray:
        if not self.events:
            return np.zeros((self.world_size, self.world_size),
                            dtype=np.int64)
        return self._scatter_matrix(self._columns()[3], category)

    def timeline(self, bin_seconds: float,
                 weight: str = "bytes") -> Tuple[np.ndarray, np.ndarray]:
        """(bin end times, volume per bin) over the whole run.

        ``weight`` selects the per-bin total: ``"bytes"`` (default) or
        ``"count"`` — the latter counts messages, honouring the
        multiplicity of batched events.
        """
        if bin_seconds <= 0:
            raise ValueError(
                f"bin_seconds must be > 0, got {bin_seconds!r}")
        if weight not in ("bytes", "count"):
            raise ValueError(
                f"weight must be 'bytes' or 'count', got {weight!r}")
        if not self.events:
            return np.array([]), np.array([], dtype=np.int64)
        time, src, dst, nbytes, count, cat, code_of = self._columns()
        # Truncating division matches the scalar int(t / bin) binning
        # for the non-negative times the simulator produces.
        bins = (time / bin_seconds).astype(np.int64)
        n_bins = int(bins.max()) + 1
        vols = np.zeros(n_bins, dtype=np.int64)
        np.add.at(vols, bins, nbytes if weight == "bytes" else count)
        times = (np.arange(n_bins) + 1) * bin_seconds
        return times, vols

    def per_rank_sent(self) -> np.ndarray:
        out = np.zeros(self.world_size, dtype=np.int64)
        if not self.events:
            return out
        _, src, _, nbytes, _, _, _ = self._columns()
        np.add.at(out, src, nbytes)
        return out

    def filtered(self, predicate: Callable[[TraceEvent], bool]) -> List[TraceEvent]:
        return [e for e in self.events if predicate(e)]

    # -- persistence (per-process trace files, like EZtrace) ----------------

    #: On-disk format version.  Bump when a line's meaning changes;
    #: readers refuse files from the future instead of misparsing them.
    SCHEMA = 1

    def dump(self, path: str) -> None:
        """One line per event: ``time src dst nbytes category count``."""
        with open(path, "w", encoding="ascii") as fh:
            fh.write(f"# simmpi message trace schema={self.SCHEMA}\n")
            fh.write(f"# world_size={self.world_size} events={len(self.events)}\n")
            for e in self.events:
                fh.write(
                    f"{e.time:.9f} {e.src} {e.dst} {e.nbytes} "
                    f"{e.category} {e.count}\n"
                )

    @classmethod
    def load(cls, path: str) -> "MessageTracer":
        events = []
        world_size = 0
        with open(path, "r", encoding="ascii") as fh:
            for line in fh:
                line = line.strip()
                if line.startswith("#"):
                    if "schema=" in line:
                        schema = int(line.split("schema=")[1].split()[0])
                        if schema != cls.SCHEMA:
                            from repro.core.errors import TraceSchemaError

                            raise TraceSchemaError(
                                f"{path}: trace schema={schema}, this "
                                f"reader understands schema={cls.SCHEMA}")
                    if "world_size=" in line:
                        world_size = int(line.split("world_size=")[1].split()[0])
                    continue
                fields = line.split()
                # Older traces have no count column; default to 1.
                t, src, dst, nbytes, cat = fields[:5]
                count = int(fields[5]) if len(fields) > 5 else 1
                events.append(TraceEvent(float(t), int(src), int(dst),
                                         int(nbytes), cat, count))
        if not world_size:
            inferred = (max(max(e.src, e.dst) for e in events) + 1
                        if events else 1)
            warnings.warn(
                f"{path}: missing world_size header; inferring "
                f"world_size={inferred} from the largest rank seen",
                UserWarning, stacklevel=2)
            world_size = inferred
        tracer = cls(world_size)
        tracer.events = events
        return tracer
