"""Nonblocking communication requests (isend/irecv + wait/test).

Sends are *buffered-eager*: the sender pays its injection time at post
and the request is immediately complete — the simulator provides
unbounded buffering, so blocking sends never deadlock on a missing
receive (matching the behaviour MPI applications rely on for small and
medium messages).

Receives complete when a matching message has *arrived* in virtual
time: ``wait()`` advances the receiver's clock to
``max(post clock, message arrival) + recv_overhead``.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional

from repro.simmpi.errorsim import SimError
from repro.simmpi.match import Message

__all__ = ["Request", "SendRequest", "RecvRequest", "waitall"]


class Request:
    """Base request; subclasses define completion semantics."""

    def wait(self):  # pragma: no cover - interface
        raise NotImplementedError

    def test(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


class SendRequest(Request):
    """An already-complete eager send."""

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int):
        self.nbytes = nbytes

    def wait(self) -> None:
        return None

    def test(self) -> bool:
        return True


class RecvRequest(Request):
    """A posted receive; completes when a message is bound to it."""

    __slots__ = ("comm", "proc", "source", "tag", "context", "_msg")

    def __init__(self, comm, proc, source: int, tag: int, context: Hashable):
        self.comm = comm
        self.proc = proc
        self.source = source
        self.tag = tag
        self.context = context
        self._msg: Optional[Message] = None

    # -- called by the match queue -------------------------------------

    def bind(self, msg: Message) -> None:
        if self._msg is not None:
            raise SimError("receive request bound twice")
        self._msg = msg
        # If the poster is parked waiting for this request, make it
        # runnable again (we hold the baton, so this is race-free).
        self.proc.engine.wake(self.proc)

    # -- caller side -------------------------------------------------------

    @property
    def matched(self) -> bool:
        return self._msg is not None

    def wait(self) -> Message:
        """Block until matched, then synchronize the clock and return."""
        proc = self.proc
        engine = proc.engine
        if proc is not engine_current(engine):
            raise SimError("a request must be waited by the rank that posted it")
        while self._msg is None:
            engine.block(
                proc,
                f"recv(source={self.source}, tag={self.tag}, "
                f"context={self.context!r})",
            )
        msg = self._msg
        proc.clock = max(proc.clock, msg.arrival) + engine.network.recv_overhead
        return msg

    def test(self) -> bool:
        """Non-advancing completion check (no clock movement)."""
        return self._msg is not None


def engine_current(engine):
    from repro.simmpi.engine import current_process

    return current_process()


def waitall(requests: Iterable[Request]) -> List[Optional[Message]]:
    """Wait on every request, in order; returns received messages
    (``None`` for send requests)."""
    out: List[Optional[Message]] = []
    for req in requests:
        out.append(req.wait())
    return out
