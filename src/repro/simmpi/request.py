"""Nonblocking communication requests (isend/irecv + wait/test).

Sends are *buffered-eager*: the sender pays its injection time at post
and the request is immediately complete — the simulator provides
unbounded buffering, so blocking sends never deadlock on a missing
receive (matching the behaviour MPI applications rely on for small and
medium messages).

Receives complete when a matching message has *arrived* in virtual
time: ``wait()`` advances the receiver's clock to
``max(post clock, message arrival) + recv_overhead``.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional

from repro.simmpi.engine import _tls, current_process
from repro.simmpi.engine import Aborted as _Aborted
from repro.simmpi.engine import _State as _St
from repro.simmpi.errorsim import SimError
from repro.simmpi.match import Message

__all__ = ["Request", "SendRequest", "RecvRequest", "waitall", "co_waitall"]


class Request:
    """Base request; subclasses define completion semantics.

    Every request offers two completion idioms: the blocking
    :meth:`wait` (thread-per-rank engine) and the resumable
    :meth:`co_wait` generator (``yield from req.co_wait()`` from co
    rank programs).  Under the threaded engine ``co_wait`` degenerates
    to the blocking path without ever yielding, so co-style library
    code runs unmodified on both cores.
    """

    def wait(self):  # pragma: no cover - interface
        raise NotImplementedError

    def co_wait(self):  # pragma: no cover - interface
        raise NotImplementedError

    def test(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


class SendRequest(Request):
    """An already-complete eager send."""

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int):
        self.nbytes = nbytes

    def wait(self) -> None:
        return None

    def co_wait(self):
        return None
        yield  # pragma: no cover - unreachable; makes this a generator

    def test(self) -> bool:
        return True


class RecvRequest(Request):
    """A posted receive; completes when a message is bound to it."""

    __slots__ = ("comm", "proc", "source", "tag", "context", "_msg")

    def __init__(self, comm, proc, source: int, tag: int, context: Hashable):
        self.comm = comm
        self.proc = proc
        self.source = source
        self.tag = tag
        self.context = context
        self._msg: Optional[Message] = None

    # -- called by the match queue -------------------------------------

    def bind(self, msg: Message) -> None:
        """Attach the matched message.  Waking the poster (if it is
        parked) is the *caller's* job: the engine's delivery sites
        run the wake inline right after :meth:`MatchQueue.deliver`
        returns the bound request, and binds at post time never need
        one — the poster is the currently running process."""
        if self._msg is not None:
            raise SimError("receive request bound twice")
        self._msg = msg

    # -- caller side -------------------------------------------------------

    def __repr__(self) -> str:
        return (f"recv(source={self.source}, tag={self.tag}, "
                f"context={self.context!r})")

    def _settle_sender(self) -> None:
        # Program order: the poster's own deferred send (and everything
        # due before it) must have happened before completion of later
        # operations can be observed.
        proc = self.proc
        if proc.pending is not None:
            proc.engine.settle(proc)

    @property
    def matched(self) -> bool:
        self._settle_sender()
        return self._msg is not None

    def wait(self) -> Message:
        """Block until matched, then synchronize the clock and return."""
        proc = self.proc
        engine = proc.engine
        if proc is not getattr(_tls, "proc", None):
            raise SimError("a request must be waited by the rank that posted it")
        if self._msg is None or proc.pending is not None:
            # wait_obj is set before settling so the engine knows what
            # this rank is waiting on while its deferred send is being
            # materialized (and can elide wakes that would be spurious).
            proc.wait_obj = self
            try:
                if proc.pending is not None:
                    engine.settle(proc)
                while self._msg is None:
                    # The request itself is the block reason: its repr
                    # is only rendered if a deadlock dump needs it, so
                    # the hot path never formats a string.
                    engine.block(proc, self)
            finally:
                proc.wait_obj = None
        msg = self._msg
        t_pre = proc.clock
        proc.clock = max(t_pre, msg.arrival) + engine.network.recv_overhead
        rr = engine._rr
        if rr is not None:
            rr.on_recv(proc, t_pre, msg)
        return msg

    def co_wait(self):
        """Resumable twin of :meth:`wait` for co rank programs.

        Byte-for-byte the same engine call sequence as :meth:`wait`
        with the parking primitives swapped for their ``co_``
        counterparts; under the threaded engine those delegate to the
        blocking ones without yielding, so both spellings are
        equivalent there by construction.
        """
        proc = self.proc
        engine = proc.engine
        if proc is not getattr(_tls, "proc", None):
            raise SimError("a request must be waited by the rank that posted it")
        if self._msg is None or proc.pending is not None:
            # wait_obj before settling, exactly like wait(): the engine
            # must know the wait target while the deferred send is
            # materialized so spurious wakes become phantom entries.
            proc.wait_obj = self
            try:
                if not engine._ev:
                    if proc.pending is not None:
                        engine.settle(proc)
                    while self._msg is None:
                        engine.block(proc, self)
                else:
                    # Engine.co_settle and Engine.co_block, inlined:
                    # this is the per-wait hot path, and a sub-generator
                    # allocation per park is measurable.  Keep in sync
                    # with engine.py.
                    if proc.pending is not None:
                        nxt = engine._settle_scan(proc)
                        if nxt is not None:
                            yield from engine._co_settle_park(proc, nxt)
                    while self._msg is None:
                        proc.state = _St.BLOCKED
                        proc.blocked_on = self
                        o = engine._obs
                        if o is not None:
                            o.note_block(len(engine._ready_heap))
                        nxt = engine._pop_ready()
                        if nxt is not proc:
                            if nxt is not None:
                                engine._switches += 1
                                nxt.state = _St.RUNNING
                                yield nxt
                            else:
                                yield None
                        else:
                            engine._self_handoffs += 1
                        if engine._aborting:
                            raise _Aborted()
                        proc.state = _St.RUNNING
                        proc.blocked_on = ""
            finally:
                proc.wait_obj = None
        msg = self._msg
        t_pre = proc.clock
        proc.clock = max(t_pre, msg.arrival) + engine.network.recv_overhead
        rr = engine._rr
        if rr is not None:
            rr.on_recv(proc, t_pre, msg)
        return msg

    def test(self) -> bool:
        """Non-advancing completion check (no clock movement)."""
        self._settle_sender()
        return self._msg is not None


def waitall(requests: Iterable[Request]) -> List[Optional[Message]]:
    """Wait on every request, in order; returns received messages
    (``None`` for send requests)."""
    out: List[Optional[Message]] = []
    for req in requests:
        out.append(req.wait())
    return out


def co_waitall(requests: Iterable[Request]):
    """Resumable :func:`waitall` (same order, same semantics)."""
    out: List[Optional[Message]] = []
    for req in requests:
        out.append((yield from req.co_wait()))
    return out
