"""Cluster description: topology + process binding + network parameters.

A :class:`Cluster` bundles everything the engine needs to time messages:
the hardware tree, where each rank is pinned, and the link parameters.
Presets reproduce the paper's two testbeds (PlaFRIM and the Infiniband
EDR pair of §6.1).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.simmpi.binding import make_binding, validate_binding
from repro.simmpi.network import NetworkParams, ib_pair_params, plafrim_params
from repro.simmpi.topology import Topology

__all__ = ["Cluster"]


class Cluster:
    """A simulated machine plus a rank→core binding.

    Parameters
    ----------
    topology:
        The hardware tree.
    n_ranks:
        Number of MPI ranks (``<=`` number of PUs).
    binding:
        Either a strategy name (``"packed"``/``"standard"``,
        ``"round_robin"``/``"rr"``, ``"random"``) or an explicit PU list.
    params:
        Network cost parameters; defaults to the PlaFRIM preset.
    seed:
        Seed for the ``random`` binding strategy.
    """

    def __init__(
        self,
        topology: Topology,
        n_ranks: int,
        binding: Union[str, Sequence[int]] = "packed",
        params: Optional[NetworkParams] = None,
        seed: int = 0,
    ):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        if n_ranks > topology.n_pus:
            raise ValueError(f"{n_ranks} ranks exceed {topology.n_pus} PUs")
        self.topology = topology
        self.n_ranks = int(n_ranks)
        if isinstance(binding, str):
            self.binding: List[int] = make_binding(topology, n_ranks, binding, seed)
            self.binding_strategy = binding
        else:
            self.binding = validate_binding(topology, binding, n_ranks)
            self.binding_strategy = "explicit"
        self.params = params if params is not None else plafrim_params()

    # -- presets ------------------------------------------------------------

    @classmethod
    def plafrim(
        cls,
        n_nodes: int,
        n_ranks: Optional[int] = None,
        binding: Union[str, Sequence[int]] = "packed",
        jitter: float = 0.0,
        seed: int = 0,
    ) -> "Cluster":
        """The paper's main testbed: dual-socket 12-core nodes, OmniPath.

        Default rank count is one rank per core (24 per node), matching
        the paper's "one MPI process per core" setup.
        """
        topo = Topology([("node", n_nodes), ("socket", 2), ("core", 12)])
        n = topo.n_pus if n_ranks is None else n_ranks
        return cls(topo, n, binding=binding, params=plafrim_params(jitter), seed=seed)

    @classmethod
    def ib_pair(cls, jitter: float = 0.0, seed: int = 0) -> "Cluster":
        """The §6.1 testbed: two Infiniband EDR nodes, one rank each.

        Ranks 0 and 1 are pinned on *different* nodes so every message
        crosses the NIC, as in the hardware-counter comparison.
        """
        topo = Topology([("node", 2), ("socket", 2), ("core", 18)])
        binding = [0, topo.n_pus // 2]  # core 0 of node 0 and of node 1
        return cls(topo, 2, binding=binding, params=ib_pair_params(jitter), seed=seed)

    # -- conveniences ---------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self.topology.n_components(self.topology.level_names[0])

    def node_of_rank(self, rank: int) -> int:
        return self.topology.node_of(self.binding[rank])

    def rebind(self, binding: Union[str, Sequence[int]], seed: int = 0) -> "Cluster":
        """A copy of this cluster with a different rank→PU binding."""
        return Cluster(
            self.topology, self.n_ranks, binding=binding, params=self.params, seed=seed
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cluster({self.topology!r}, n_ranks={self.n_ranks}, "
            f"binding={self.binding_strategy})"
        )
