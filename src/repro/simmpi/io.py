"""MPI-IO substrate: simulated parallel file access with monitoring.

The low-level monitoring component the paper builds on covers "all
types of communications supported by the MPI-3 standard (including
one-sided communications and I/O)" (§2).  This module provides the I/O
part for the simulator: a shared parallel file system with a global
bandwidth resource, ``File`` handles with independent and collective
read/write operations, and per-rank I/O byte counters exposed through
MPI_T pvars (``io_monitoring_bytes_written`` / ``_read``).

Collective variants (`write_at_all` / `read_at_all`) synchronize the
communicator (their tokens go through the monitored PML, category
``coll``) and then stream through the shared file-system resource.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.simmpi.datatypes import Buffer
from repro.simmpi.errorsim import CommError

__all__ = ["FileSystem", "File"]


@dataclass
class FileSystemParams:
    bandwidth: float = 5.0e9  # aggregate B/s of the parallel FS
    latency: float = 50.0e-6  # per-operation seconds


class FileSystem:
    """Cluster-wide shared storage: a single bandwidth resource.

    Attached lazily to an engine (``FileSystem.of(engine)``); registers
    its per-rank byte counters as MPI_T pvars on first attach.
    """

    def __init__(self, engine, params: Optional[FileSystemParams] = None):
        self.engine = engine
        self.params = params or FileSystemParams()
        self._busy_until = 0.0
        n = engine.n_ranks
        self.bytes_written = np.zeros(n, dtype=np.uint64)
        self.bytes_read = np.zeros(n, dtype=np.uint64)
        self.files: Dict[str, "File"] = {}
        self._register_pvars(engine.mpit)

    def _register_pvars(self, mpit) -> None:
        """Expose the byte counters; re-run against the fresh MPI_T
        registry when a pickled engine is thawed."""
        mpit.register_pvar(
            "io_monitoring_bytes_written",
            reader=lambda rank: self.bytes_written[rank : rank + 1],
            doc="bytes this process wrote through MPI-IO",
        )
        mpit.register_pvar(
            "io_monitoring_bytes_read",
            reader=lambda rank: self.bytes_read[rank : rank + 1],
            doc="bytes this process read through MPI-IO",
        )

    @classmethod
    def of(cls, engine) -> "FileSystem":
        fs = getattr(engine, "_filesystem", None)
        if fs is None:
            fs = cls(engine)
            engine._filesystem = fs
        return fs

    # -- timing ------------------------------------------------------------

    def transfer(self, proc, nbytes: int) -> None:
        """Stream ``nbytes`` through the shared FS, advancing the
        calling rank's clock (ops serialize on the storage resource)."""
        self.engine.maybe_yield(proc)
        self._stream(proc, nbytes)

    def co_transfer(self, proc, nbytes: int):
        """Resumable :meth:`transfer`."""
        yield from self.engine.co_give_way(proc)
        self._stream(proc, nbytes)

    def _stream(self, proc, nbytes: int) -> None:
        start = max(proc.clock + self.params.latency, self._busy_until)
        dur = nbytes / self.params.bandwidth
        self._busy_until = start + dur
        proc.clock = start + dur


class File:
    """An open simulated file shared by a communicator."""

    def __init__(self, fs: FileSystem, comm, name: str):
        self.fs = fs
        self.comm = comm
        self.name = name
        self._data: Dict[int, bytes] = {}  # offset -> chunk (exact writes)
        self._size = 0
        self._closed = False

    # -- lifecycle (collective, like MPI_File_open/close) ----------------------

    @classmethod
    def open(cls, comm, name: str) -> "File":
        f = cls._lookup(comm, name)
        comm.barrier()
        return f

    @classmethod
    def co_open(cls, comm, name: str):
        """Resumable :meth:`open`."""
        f = cls._lookup(comm, name)
        yield from comm.co_barrier()
        return f

    @classmethod
    def _lookup(cls, comm, name: str) -> "File":
        fs = FileSystem.of(comm.engine)
        seq = comm._split_seq()
        key = ("file", comm.id, seq, name)
        f = comm.engine.comm_registry.get(key)
        if f is None:
            f = fs.files.get(name) or cls(fs, comm, name)
            fs.files[name] = f
            comm.engine.comm_registry[key] = f
        return f

    def close(self) -> None:
        self.comm.barrier()
        self._closed = True

    def co_close(self):
        """Resumable :meth:`close`."""
        yield from self.comm.co_barrier()
        self._closed = True

    # -- independent operations ---------------------------------------------

    def write_at(self, offset: int, data=None, nbytes: Optional[int] = None) -> int:
        """Write at an explicit offset; returns the bytes written."""
        self._check()
        buf = Buffer.wrap(data, nbytes)
        proc = self.comm._current()
        self.fs.transfer(proc, buf.nbytes)
        return self._note_write(proc, offset, buf)

    def co_write_at(self, offset: int, data=None, nbytes: Optional[int] = None):
        """Resumable :meth:`write_at`."""
        self._check()
        buf = Buffer.wrap(data, nbytes)
        proc = self.comm._current()
        yield from self.fs.co_transfer(proc, buf.nbytes)
        return self._note_write(proc, offset, buf)

    def _note_write(self, proc, offset: int, buf: Buffer) -> int:
        self.fs.bytes_written[proc.rank] += np.uint64(buf.nbytes)
        if buf.payload is not None:
            raw = self._encode(buf.payload)
            self._data[offset] = raw
        self._size = max(self._size, offset + buf.nbytes)
        return buf.nbytes

    def read_at(self, offset: int, nbytes: int):
        """Read ``nbytes`` at an offset; returns stored bytes or None
        for abstract regions."""
        self._check()
        proc = self.comm._current()
        self.fs.transfer(proc, nbytes)
        self.fs.bytes_read[proc.rank] += np.uint64(nbytes)
        return self._data.get(offset)

    def co_read_at(self, offset: int, nbytes: int):
        """Resumable :meth:`read_at`."""
        self._check()
        proc = self.comm._current()
        yield from self.fs.co_transfer(proc, nbytes)
        self.fs.bytes_read[proc.rank] += np.uint64(nbytes)
        return self._data.get(offset)

    # -- collective operations ------------------------------------------------

    def write_at_all(self, offset: int, data=None,
                     nbytes: Optional[int] = None) -> int:
        """Collective write: every rank writes its block at
        ``offset + rank * block``; synchronizes like MPI_File_write_at_all."""
        self._check()
        self.comm.barrier()
        buf = Buffer.wrap(data, nbytes)
        my_offset = offset + self.comm.rank * buf.nbytes
        return self.write_at(my_offset, data=buf)

    def co_write_at_all(self, offset: int, data=None,
                        nbytes: Optional[int] = None):
        """Resumable :meth:`write_at_all`."""
        self._check()
        yield from self.comm.co_barrier()
        buf = Buffer.wrap(data, nbytes)
        my_offset = offset + self.comm.rank * buf.nbytes
        return (yield from self.co_write_at(my_offset, data=buf))

    def read_at_all(self, offset: int, nbytes: int):
        self._check()
        self.comm.barrier()
        my_offset = offset + self.comm.rank * nbytes
        return self.read_at(my_offset, nbytes)

    def co_read_at_all(self, offset: int, nbytes: int):
        """Resumable :meth:`read_at_all`."""
        self._check()
        yield from self.comm.co_barrier()
        my_offset = offset + self.comm.rank * nbytes
        return (yield from self.co_read_at(my_offset, nbytes))

    # -- metadata ---------------------------------------------------------------

    @property
    def size(self) -> int:
        return self._size

    def _check(self) -> None:
        if self._closed:
            raise CommError(f"file {self.name!r} is closed")

    @staticmethod
    def _encode(payload) -> bytes:
        if isinstance(payload, np.ndarray):
            return payload.tobytes()
        if isinstance(payload, (bytes, bytearray)):
            return bytes(payload)
        return repr(payload).encode()
