"""The low-level monitoring component (the paper's [3], Euro-Par 2017).

This is the simulated counterpart of Open MPI's ``pml_monitoring``
component: it sits at the single choke point every point-to-point
message passes through — *after* collectives have been decomposed —
and maintains, for every process, per-peer message counts and byte
totals, split into three categories:

* ``p2p`` — user-issued (external) point-to-point messages,
* ``coll`` — library-issued (internal) messages produced by the
  decomposition of collective operations,
* ``osc`` — one-sided communication.

The activation knob mirrors ``--mca pml_monitoring_enable value``:

* ``0`` — monitoring (and the component) disabled;
* ``1`` — enabled, *without* distinction between user-issued and
  library-issued messages (everything lands in the p2p matrices);
* ``>= 2`` — enabled with the internal/external distinction.

Hot-path design: :meth:`record` is called once per simulated message —
millions of times per experiment — so it must not touch numpy.  Records
accumulate as plain Python ints in per-category dicts and are flushed
into the numpy matrices only when somebody *reads* them (a pvar read, a
session snapshot, ``totals``).  Each category also carries a
monotonically increasing *epoch* so snapshot/diff layers can skip
categories that have not changed since they last looked
(:meth:`epoch`).  :meth:`record_batch` folds ``count`` same-peer
messages into one accumulator update; segmented collectives use it for
their regular per-peer decompositions.

The matrices are exposed through MPI_T performance variables
(:mod:`repro.simmpi.mpit`); the high-level library never touches this
class directly.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.simmpi.mpit import MpiToolInterface

__all__ = ["PmlMonitoring", "PeerBatch", "CATEGORIES", "PVAR_NAMES"]

CATEGORIES: Tuple[str, ...] = ("p2p", "coll", "osc")


class PeerBatch:
    """Accumulator for one collective's sends to one peer.

    Segmented/pipelined collectives with a regular per-peer
    decomposition open a batch, tag every segment send with it, and
    close it when the decomposition is done.  Each send is still
    *gated individually* when it materializes — against the monitoring
    mode at that moment in the global order, exactly like an
    individually recorded send (a session can open or close between
    two segments of the same batch) — but the gated tallies fold into
    the pending accumulators in one update at close instead of one per
    segment.

    ``tallies`` is ``[count, bytes]`` recorded under the batch's own
    category followed by ``[count, bytes]`` recorded while mode 1
    remapped collective-internal traffic to ``p2p``.
    """

    __slots__ = ("src", "dst", "category", "tallies")

    def __init__(self, src: int, dst: int, category: str):
        if category not in CATEGORIES:
            raise ValueError(f"unknown category {category!r}")
        self.src = src
        self.dst = dst
        self.category = category
        self.tallies = [0, 0, 0, 0]

#: MPI_T pvar names per category, mirroring the Open MPI component.
PVAR_NAMES: Dict[str, Tuple[str, str]] = {
    "p2p": ("pml_monitoring_messages_count", "pml_monitoring_messages_size"),
    "coll": ("coll_monitoring_messages_count", "coll_monitoring_messages_size"),
    "osc": ("osc_monitoring_messages_count", "osc_monitoring_messages_size"),
}


class _LazyMatrices(dict):
    """Per-category (n, n) matrices, allocated on first touch.

    A 10k-rank world would pay ~800 MB up front for six eagerly zeroed
    uint64 matrices even when monitoring never records a byte; most
    runs touch one or two categories.  A zeros matrix materialized on
    first read is observationally identical to one allocated at
    construction, so nothing downstream can tell the difference.
    """

    __slots__ = ("_n",)

    def __init__(self, world_size: int):
        super().__init__()
        self._n = world_size

    def __missing__(self, category: str) -> np.ndarray:
        if category not in CATEGORIES:
            raise KeyError(category)
        matrix = np.zeros((self._n, self._n), dtype=np.uint64)
        self[category] = matrix
        return matrix


class _FlushingMatrices:
    """Mapping view over the per-category matrices that flushes the
    pending accumulators for a category before handing out its array.

    Iteration covers every category, touched or not — the view hides
    the laziness of the backing store."""

    __slots__ = ("_pml", "_arrays")

    def __init__(self, pml: "PmlMonitoring", arrays: Dict[str, np.ndarray]):
        self._pml = pml
        self._arrays = arrays

    def __getitem__(self, category: str) -> np.ndarray:
        self._pml._flush(category)
        return self._arrays[category]

    def __iter__(self):
        return iter(CATEGORIES)

    def __len__(self) -> int:
        return len(CATEGORIES)

    def keys(self):
        return CATEGORIES

    def items(self):
        for cat in CATEGORIES:
            yield cat, self[cat]


class PmlMonitoring:
    """Per-process, per-peer communication counters."""

    def __init__(self, world_size: int, mpit: Optional[MpiToolInterface] = None):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self._mode = 0
        # counts[cat][i, j] = messages process i sent to process j;
        # sizes[cat][i, j] = bytes.  Row i is process i's local state —
        # the simulator simply co-locates all rows in one array.  The
        # matrices are allocated per category on first touch.
        self._counts: Dict[str, np.ndarray] = _LazyMatrices(world_size)
        self._sizes: Dict[str, np.ndarray] = _LazyMatrices(world_size)
        # Pending accumulators: (src, dst) -> [count, bytes] as plain
        # ints; flushed into the numpy matrices on read.
        self._pend: Dict[str, Dict[Tuple[int, int], list]] = {
            c: {} for c in CATEGORIES
        }
        # Per-category write epoch (bumped on every record, flushed or
        # not); snapshot layers compare epochs to skip unchanged data.
        self._epochs: Dict[str, int] = {c: 0 for c in CATEGORIES}
        # Optional tap for trace-based tools (repro.simmpi.trace): a
        # callable ``(t, src, dst, nbytes, category, count)`` invoked
        # for every record, *before* the mode gate — tracers see
        # messages even while monitoring is disabled.
        self.trace_hook: Optional[Callable] = None
        # Installed by the engine: brings the calling rank's deferred
        # send up to date before the monitoring state is read or the
        # mode changed, so both happen at the same point in the global
        # order as with non-deferred sends.
        self.sync: Optional[Callable[[], None]] = None
        # Set by repro.obs.hooks.EngineObserver: a histogram observing
        # the segment count of every closed PeerBatch.  Stays None on
        # uninstrumented engines (close_batch checks once per batch,
        # not per message).
        self._obs_batch_hist = None
        if mpit is not None:
            self.register(mpit)

    # -- pickling ----------------------------------------------------------

    # The runtime taps are rebound by whoever thaws the object (the
    # engine's ``__setstate__`` re-installs ``sync``; tracers and the
    # obs histogram re-attach themselves): only the counter state
    # itself travels.
    _EPHEMERAL = ("trace_hook", "sync", "_obs_batch_hist")

    def __getstate__(self):
        state = self.__dict__.copy()
        for key in self._EPHEMERAL:
            state.pop(key, None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.trace_hook = None
        self.sync = None
        self._obs_batch_hist = None

    # -- MPI_T surface ----------------------------------------------------

    def register(self, mpit: MpiToolInterface) -> None:
        """Expose the enable cvar and the count/size pvars."""
        mpit.register_cvar(
            "pml_monitoring_enable",
            getter=lambda: self._mode,
            setter=self.set_mode,
            doc="0: disabled; 1: no internal/external distinction; >=2: distinguish",
        )
        for cat in CATEGORIES:
            cname, sname = PVAR_NAMES[cat]
            version = self._make_version(cat)
            mpit.register_pvar(
                cname,
                reader=self._make_reader(cat, self._counts),
                doc=f"per-peer sent message counts ({cat})",
                version=version,
            )
            mpit.register_pvar(
                sname,
                reader=self._make_reader(cat, self._sizes),
                doc=f"per-peer sent bytes ({cat})",
                version=version,
            )

    def _make_reader(self, category: str, arrays: Dict[str, np.ndarray]):
        # Fetch the matrix inside the reader, not at registration:
        # registering the pvars must not materialize six (n, n)
        # matrices on a world that may never monitor anything.
        def reader(rank: int) -> np.ndarray:
            self._flush(category)
            return arrays[category][rank]

        return reader

    def _make_version(self, category: str):
        def version() -> int:
            if self.sync is not None:
                self.sync()
            return self._epochs[category]

        return version

    # -- mode --------------------------------------------------------------

    @property
    def mode(self) -> int:
        return self._mode

    def set_mode(self, value: int) -> None:
        value = int(value)
        if value < 0:
            raise ValueError("pml_monitoring_enable must be >= 0")
        if value != self._mode and self.sync is not None:
            self.sync()
        self._mode = value

    @property
    def enabled(self) -> bool:
        return self._mode >= 1

    @property
    def distinguishes_internal(self) -> bool:
        return self._mode >= 2

    # -- the hook -------------------------------------------------------------

    def record(self, src: int, dst: int, nbytes: int, category: str,
               t: Optional[float] = None) -> bool:
        """Record one sent message; returns True iff it was recorded.

        Called by the engine's send materialization for *every*
        message, including the zero-length ones some collectives
        generate (the count still increments — the paper warns users
        about exactly those).  ``t`` is the sender's virtual clock at
        the send, forwarded to the trace hook (deferred sends are
        materialized by whichever rank holds the baton, so the hook
        cannot derive it from the calling thread).

        Semantically ``record_batch(src, dst, 1, nbytes, category)``,
        but flattened: this is the per-message hot path and saves the
        two extra call frames.  The category check stays unconditional
        (it must fire even while monitoring is disabled).
        """
        if category not in CATEGORIES:
            raise ValueError(f"unknown category {category!r}")
        if nbytes < 0:
            raise ValueError("count and total_bytes must be >= 0")
        hook = self.trace_hook
        if hook is not None:
            hook(t, src, dst, nbytes, category, 1)
        mode = self._mode
        if mode == 0:
            return False
        if mode == 1 and category == "coll":
            category = "p2p"
        pend = self._pend[category]
        entry = pend.get((src, dst))
        if entry is None:
            pend[(src, dst)] = [1, nbytes]
        else:
            entry[0] += 1
            entry[1] += nbytes
        self._epochs[category] += 1
        return True

    def record_batch(self, src: int, dst: int, count: int, total_bytes: int,
                     category: str, t: Optional[float] = None) -> bool:
        """Record ``count`` messages totalling ``total_bytes`` to one peer.

        Equivalent to ``count`` individual :meth:`record` calls for the
        matrices and totals; the trace hook sees one event carrying the
        multiplicity.  Returns True iff the messages were recorded.
        """
        if category not in CATEGORIES:
            raise ValueError(f"unknown category {category!r}")
        if count < 0 or total_bytes < 0:
            raise ValueError("count and total_bytes must be >= 0")
        if self.trace_hook is not None:
            self.trace_hook(t, src, dst, total_bytes, category, count)
        if self._mode == 0 or count == 0:
            return False
        if self._mode == 1 and category == "coll":
            # No internal/external distinction: collective-internal
            # traffic is indistinguishable from user point-to-point.
            category = "p2p"
        self._accumulate(src, dst, count, total_bytes, category)
        return True

    def note_batched(self, batch: PeerBatch, nbytes: int,
                     t: Optional[float] = None) -> bool:
        """Gate one batched send at its materialization point.

        Same observable behaviour as :meth:`record` — trace hook, mode
        gate, and mode-1 remapping all evaluated *now* — except that
        the tallies land in the batch instead of the accumulator dicts.
        Returns True iff the message was recorded (the engine charges
        the monitoring overhead on that)."""
        hook = self.trace_hook
        if hook is not None:
            hook(t, batch.src, batch.dst, nbytes, batch.category, 1)
        mode = self._mode
        if mode == 0:
            return False
        tl = batch.tallies
        if mode == 1 and batch.category == "coll":
            tl[2] += 1
            tl[3] += nbytes
        else:
            tl[0] += 1
            tl[1] += nbytes
        return True

    def close_batch(self, batch: PeerBatch) -> None:
        """Fold a finished batch into the pending accumulators.

        Settles the caller's own deferred send first so the batch's
        last segment has materialized (and been gated) before its
        tallies are read."""
        if self.sync is not None:
            self.sync()
        n_cat, b_cat, n_p2p, b_p2p = batch.tallies
        h = self._obs_batch_hist
        if h is not None:
            h.observe(n_cat + n_p2p)
        if n_cat:
            self._accumulate(batch.src, batch.dst, n_cat, b_cat, batch.category)
        if n_p2p:
            self._accumulate(batch.src, batch.dst, n_p2p, b_p2p, "p2p")
        batch.tallies = [0, 0, 0, 0]

    def _accumulate(self, src: int, dst: int, count: int, total_bytes: int,
                    category: str) -> None:
        """Fold already-gated records into the pending accumulators.

        The category must already be resolved (mode-1 remapping done);
        no trace hook, no validation — this is the tail of
        :meth:`record_batch` and the flush target of
        :class:`PeerBatch`."""
        pend = self._pend[category]
        entry = pend.get((src, dst))
        if entry is None:
            pend[(src, dst)] = [count, total_bytes]
        else:
            entry[0] += count
            entry[1] += total_bytes
        self._epochs[category] += 1

    # -- reading (flushes the accumulators) ---------------------------------

    def _flush(self, category: str) -> None:
        if self.sync is not None:
            self.sync()
        pend = self._pend[category]
        if not pend:
            return
        counts = self._counts[category]
        sizes = self._sizes[category]
        for (src, dst), (n, nbytes) in pend.items():
            counts[src, dst] += np.uint64(n)
            sizes[src, dst] += np.uint64(nbytes)
        pend.clear()

    @property
    def counts(self) -> _FlushingMatrices:
        """Per-category count matrices (reads flush pending records)."""
        return _FlushingMatrices(self, self._counts)

    @property
    def sizes(self) -> _FlushingMatrices:
        """Per-category byte matrices (reads flush pending records)."""
        return _FlushingMatrices(self, self._sizes)

    def epoch(self, category: str) -> int:
        """Monotonic write counter for one category.

        Snapshot layers (``core/session.py``) remember the epoch at
        snapshot time and skip diffing categories whose epoch has not
        moved — the common case for ``osc`` (and ``coll`` under
        ``COLL_ONLY``-style filters) in point-to-point phases.
        """
        return self._epochs[category]

    # -- maintenance -----------------------------------------------------------

    def reset(self) -> None:
        """Zero all matrices (used by tests; sessions never need this)."""
        for cat in CATEGORIES:
            self._pend[cat].clear()
            counts = self._counts.get(cat)
            if counts is not None:
                counts[:] = 0
            sizes = self._sizes.get(cat)
            if sizes is not None:
                sizes[:] = 0
            self._epochs[cat] += 1

    def totals(self, category: str) -> Tuple[int, int]:
        """(messages, bytes) recorded in one category, all processes."""
        if category not in CATEGORIES:
            raise KeyError(category)
        self._flush(category)
        counts = self._counts.get(category)
        if counts is None:
            # Never touched: summing would only materialize zeros.
            return (0, 0)
        return (
            int(counts.sum()),
            int(self._sizes[category].sum()),
        )

    def snapshot_state(self) -> Dict[str, Dict[str, int]]:
        """Per-category ``{"epoch", "messages", "bytes"}`` — the shape
        cross-layer consumers (:mod:`repro.obs.timeline`) ingest.

        Flushes pending batches (via :meth:`totals`), so it is only
        safe once the run has drained — the same contract as reading
        the matrices.
        """
        out: Dict[str, Dict[str, int]] = {}
        for cat in CATEGORIES:
            n_msg, n_bytes = self.totals(cat)
            out[cat] = {
                "epoch": self._epochs[cat],
                "messages": n_msg,
                "bytes": n_bytes,
            }
        return out
