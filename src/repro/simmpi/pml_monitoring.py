"""The low-level monitoring component (the paper's [3], Euro-Par 2017).

This is the simulated counterpart of Open MPI's ``pml_monitoring``
component: it sits at the single choke point every point-to-point
message passes through — *after* collectives have been decomposed —
and maintains, for every process, per-peer message counts and byte
totals, split into three categories:

* ``p2p`` — user-issued (external) point-to-point messages,
* ``coll`` — library-issued (internal) messages produced by the
  decomposition of collective operations,
* ``osc`` — one-sided communication.

The activation knob mirrors ``--mca pml_monitoring_enable value``:

* ``0`` — monitoring (and the component) disabled;
* ``1`` — enabled, *without* distinction between user-issued and
  library-issued messages (everything lands in the p2p matrices);
* ``>= 2`` — enabled with the internal/external distinction.

The matrices are exposed through MPI_T performance variables
(:mod:`repro.simmpi.mpit`); the high-level library never touches this
class directly.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.simmpi.mpit import MpiToolInterface

__all__ = ["PmlMonitoring", "CATEGORIES", "PVAR_NAMES"]

CATEGORIES: Tuple[str, ...] = ("p2p", "coll", "osc")

#: MPI_T pvar names per category, mirroring the Open MPI component.
PVAR_NAMES: Dict[str, Tuple[str, str]] = {
    "p2p": ("pml_monitoring_messages_count", "pml_monitoring_messages_size"),
    "coll": ("coll_monitoring_messages_count", "coll_monitoring_messages_size"),
    "osc": ("osc_monitoring_messages_count", "osc_monitoring_messages_size"),
}


class PmlMonitoring:
    """Per-process, per-peer communication counters."""

    def __init__(self, world_size: int, mpit: Optional[MpiToolInterface] = None):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self._mode = 0
        # counts[cat][i, j] = messages process i sent to process j;
        # sizes[cat][i, j] = bytes.  Row i is process i's local state —
        # the simulator simply co-locates all rows in one array.
        self.counts: Dict[str, np.ndarray] = {
            c: np.zeros((world_size, world_size), dtype=np.uint64) for c in CATEGORIES
        }
        self.sizes: Dict[str, np.ndarray] = {
            c: np.zeros((world_size, world_size), dtype=np.uint64) for c in CATEGORIES
        }
        if mpit is not None:
            self.register(mpit)

    # -- MPI_T surface ----------------------------------------------------

    def register(self, mpit: MpiToolInterface) -> None:
        """Expose the enable cvar and the count/size pvars."""
        mpit.register_cvar(
            "pml_monitoring_enable",
            getter=lambda: self._mode,
            setter=self.set_mode,
            doc="0: disabled; 1: no internal/external distinction; >=2: distinguish",
        )
        for cat in CATEGORIES:
            cname, sname = PVAR_NAMES[cat]
            mpit.register_pvar(
                cname,
                reader=self._make_reader(self.counts[cat]),
                doc=f"per-peer sent message counts ({cat})",
            )
            mpit.register_pvar(
                sname,
                reader=self._make_reader(self.sizes[cat]),
                doc=f"per-peer sent bytes ({cat})",
            )

    @staticmethod
    def _make_reader(matrix: np.ndarray):
        def reader(rank: int) -> np.ndarray:
            return matrix[rank]

        return reader

    # -- mode --------------------------------------------------------------

    @property
    def mode(self) -> int:
        return self._mode

    def set_mode(self, value: int) -> None:
        value = int(value)
        if value < 0:
            raise ValueError("pml_monitoring_enable must be >= 0")
        self._mode = value

    @property
    def enabled(self) -> bool:
        return self._mode >= 1

    @property
    def distinguishes_internal(self) -> bool:
        return self._mode >= 2

    # -- the hook -------------------------------------------------------------

    def record(self, src: int, dst: int, nbytes: int, category: str) -> bool:
        """Record one sent message; returns True iff it was recorded.

        Called by the communicator's PML send path for *every* message,
        including the zero-length ones some collectives generate (the
        count still increments — the paper warns users about exactly
        those).
        """
        if self._mode == 0:
            return False
        if category not in CATEGORIES:
            raise ValueError(f"unknown category {category!r}")
        if self._mode == 1 and category == "coll":
            # No internal/external distinction: collective-internal
            # traffic is indistinguishable from user point-to-point.
            category = "p2p"
        self.counts[category][src, dst] += 1
        self.sizes[category][src, dst] += np.uint64(nbytes)
        return True

    # -- maintenance -----------------------------------------------------------

    def reset(self) -> None:
        """Zero all matrices (used by tests; sessions never need this)."""
        for cat in CATEGORIES:
            self.counts[cat][:] = 0
            self.sizes[cat][:] = 0

    def totals(self, category: str) -> Tuple[int, int]:
        """(messages, bytes) recorded in one category, all processes."""
        return (
            int(self.counts[category].sum()),
            int(self.sizes[category].sum()),
        )
