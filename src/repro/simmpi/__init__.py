"""``repro.simmpi`` — a deterministic, simulated MPI runtime.

The simulator replaces the Open MPI + PlaFRIM-cluster substrate of the
paper (see DESIGN.md §2): rank programs are ordinary blocking Python
functions run under a cooperative scheduler with per-rank virtual
clocks; collectives are decomposed into point-to-point messages at a
single monitored choke point; message timing follows a hierarchical
Hockney model over an hwloc-like topology with per-node NIC
serialization and simulated hardware counters.
"""

from repro.simmpi.cluster import Cluster  # noqa: F401
from repro.simmpi.comm import ANY_SOURCE, ANY_TAG, Communicator  # noqa: F401
from repro.simmpi.datatypes import (  # noqa: F401
    BYTE,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    UNSIGNED,
    UNSIGNED_LONG,
    Buffer,
    Datatype,
)
from repro.simmpi.engine import Engine, SimProcess, current_process  # noqa: F401
from repro.simmpi.errorsim import (  # noqa: F401
    CommError,
    DeadlockError,
    RankFailure,
    SimError,
)
from repro.simmpi.network import (  # noqa: F401
    LinkParams,
    Network,
    NetworkParams,
    ib_pair_params,
    plafrim_params,
)
from repro.simmpi.op import BAND, BOR, LAND, LOR, MAX, MIN, PROD, SUM, Op  # noqa: F401
from repro.simmpi.osc import Window  # noqa: F401
from repro.simmpi.topology import Topology  # noqa: F401

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BAND",
    "BOR",
    "BYTE",
    "Buffer",
    "CHAR",
    "Cluster",
    "CommError",
    "Communicator",
    "DOUBLE",
    "Datatype",
    "DeadlockError",
    "Engine",
    "FLOAT",
    "INT",
    "LAND",
    "LONG",
    "LOR",
    "LinkParams",
    "MAX",
    "MIN",
    "Network",
    "NetworkParams",
    "Op",
    "PROD",
    "RankFailure",
    "SUM",
    "SimError",
    "SimProcess",
    "Topology",
    "UNSIGNED",
    "UNSIGNED_LONG",
    "Window",
    "current_process",
    "ib_pair_params",
    "plafrim_params",
]
