"""Process binding: how world ranks are pinned to processing units.

The paper's experiments compare three initial mappings (§6.5):

* ``packed`` — ranks fill node 0's cores first, then node 1, … .  This
  models the paper's "standard" mapping (``mpirun`` by-slot default).
* ``round_robin`` — rank *i* goes to node ``i % n_nodes`` (``mpirun
  --map-by node``); consecutive ranks land on different nodes, which is
  the worst case for neighbor-heavy patterns and the baseline of the
  collective experiments (§6.3).
* ``random`` — a seeded random permutation of the packed binding.

A binding is just a list ``pu[rank]`` with distinct entries.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.simmpi.topology import Topology

__all__ = [
    "packed_binding",
    "round_robin_binding",
    "random_binding",
    "explicit_binding",
    "make_binding",
    "validate_binding",
]


def validate_binding(topology: Topology, pus: Sequence[int], n_ranks: int) -> List[int]:
    """Check a binding: right length, in-range, injective."""
    pus = [int(p) for p in pus]
    if len(pus) != n_ranks:
        raise ValueError(f"binding has {len(pus)} entries for {n_ranks} ranks")
    for p in pus:
        if not 0 <= p < topology.n_pus:
            raise ValueError(f"PU {p} out of range [0, {topology.n_pus})")
    if len(set(pus)) != len(pus):
        raise ValueError("binding maps two ranks to the same PU")
    return pus


def packed_binding(topology: Topology, n_ranks: int) -> List[int]:
    """Fill cores in order: rank i -> PU i."""
    if n_ranks > topology.n_pus:
        raise ValueError(f"{n_ranks} ranks > {topology.n_pus} PUs")
    return list(range(n_ranks))


def round_robin_binding(topology: Topology, n_ranks: int) -> List[int]:
    """Deal ranks across top-level components (nodes) like cards.

    Rank i lands on node ``i % n_nodes``, taking that node's next free
    core.  With 2 nodes of 24 cores, ranks 0,2,4,… are on node 0 and
    ranks 1,3,5,… on node 1.
    """
    if n_ranks > topology.n_pus:
        raise ValueError(f"{n_ranks} ranks > {topology.n_pus} PUs")
    node_level = topology.level_names[0]
    n_nodes = topology.n_components(node_level)
    next_core = [0] * n_nodes
    per_node = topology.n_pus // n_nodes
    pus = []
    for rank in range(n_ranks):
        node = rank % n_nodes
        if next_core[node] >= per_node:
            raise ValueError("round-robin binding overflows a node")
        pus.append(node * per_node + next_core[node])
        next_core[node] += 1
    return pus


def random_binding(topology: Topology, n_ranks: int, seed: int = 0) -> List[int]:
    """A seeded random injective rank -> PU assignment."""
    if n_ranks > topology.n_pus:
        raise ValueError(f"{n_ranks} ranks > {topology.n_pus} PUs")
    rng = np.random.default_rng(seed)
    return [int(p) for p in rng.permutation(topology.n_pus)[:n_ranks]]


def explicit_binding(topology: Topology, pus: Sequence[int]) -> List[int]:
    """Use a caller-provided binding, after validation."""
    return validate_binding(topology, pus, len(pus))


_STRATEGIES = {
    "packed": packed_binding,
    "standard": packed_binding,  # the paper's "no binding" default
    "round_robin": round_robin_binding,
    "rr": round_robin_binding,
    "random": random_binding,
}


def make_binding(
    topology: Topology, n_ranks: int, strategy: str = "packed", seed: int = 0
) -> List[int]:
    """Build a binding by strategy name.

    ``strategy`` is one of ``packed``/``standard``, ``round_robin``/``rr``
    or ``random`` (which honours ``seed``).
    """
    try:
        fn = _STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown binding strategy {strategy!r}; have {sorted(_STRATEGIES)}"
        ) from None
    if fn is random_binding:
        return fn(topology, n_ranks, seed=seed)
    return fn(topology, n_ranks)
