"""Communicators: point-to-point messaging, split/dup, and the PML hook.

``Communicator._pml_send`` is the single choke point every message goes
through — user point-to-point, the decomposition of every collective,
and one-sided traffic alike.  That is where the monitoring component
(:mod:`repro.simmpi.pml_monitoring`) records the message and where the
per-message monitoring overhead is charged, reproducing the vantage
point of Open MPI's ``pml_monitoring``.

Collectives live in :mod:`repro.simmpi.collectives` and are attached
here as thin delegating methods; all of them are implemented strictly
on top of :meth:`_isend`/:meth:`_irecv`.
"""

from __future__ import annotations

from typing import Any, Hashable, List, Optional, Sequence, Tuple

from repro.simmpi.datatypes import Buffer
from repro.simmpi.errorsim import CommError
from repro.simmpi.match import ANY_SOURCE, ANY_TAG, MatchQueue, Message
from repro.simmpi.op import Op
from repro.simmpi.request import RecvRequest, Request, SendRequest

__all__ = ["Communicator", "ANY_SOURCE", "ANY_TAG"]

_PT2PT_CONTEXT = "pt2pt"


class Communicator:
    """A group of world ranks with its own matching context.

    The same object is shared by all member processes; rank-dependent
    views (``comm.rank``) resolve the calling process via the engine's
    thread-local.  This mirrors how an MPI communicator is one logical
    object referenced by many processes.
    """

    def __init__(self, engine, group: Sequence[int]):
        if len(group) == 0:
            raise CommError("empty communicator group")
        if len(set(group)) != len(group):
            raise CommError("duplicate world ranks in group")
        self.engine = engine
        self.group: List[int] = [int(r) for r in group]
        self.id = engine.alloc_comm_id()
        self._local_of_world = {w: i for i, w in enumerate(self.group)}

    # -- identity -----------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.group)

    @property
    def rank(self) -> int:
        """Rank of the *calling process* in this communicator."""
        proc = self._current()
        try:
            return self._local_of_world[proc.rank]
        except KeyError:
            raise CommError(
                f"world rank {proc.rank} is not a member of this communicator"
            ) from None

    def world_rank(self, local_rank: int) -> int:
        self._check_rank(local_rank)
        return self.group[local_rank]

    def contains_current(self) -> bool:
        return self._current().rank in self._local_of_world

    # -- time -----------------------------------------------------------------

    @property
    def time(self) -> float:
        """The calling rank's virtual clock, in seconds."""
        return self._current().clock

    def compute(self, seconds: float) -> None:
        """Model local computation: advance the caller's clock."""
        self._current().advance(seconds)

    def sleep(self, seconds: float) -> None:
        """Model idle time (identical to :meth:`compute` in the model)."""
        self._current().advance(seconds)

    # -- user point-to-point ----------------------------------------------

    def send(
        self,
        value: Any = None,
        dest: int = 0,
        tag: int = 0,
        nbytes: Optional[int] = None,
    ) -> None:
        """Blocking (buffered-eager) send of ``value`` to ``dest``."""
        self.isend(value, dest=dest, tag=tag, nbytes=nbytes)

    def isend(
        self,
        value: Any = None,
        dest: int = 0,
        tag: int = 0,
        nbytes: Optional[int] = None,
    ) -> Request:
        if tag < 0:
            raise CommError(f"user tags must be >= 0, got {tag}")
        buf = Buffer.wrap(value, nbytes)
        return self._isend(buf, dest, tag, _PT2PT_CONTEXT, "p2p")

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Message:
        """Blocking receive; returns the matched :class:`Message`."""
        return self.irecv(source=source, tag=tag).wait()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        return self._irecv(source, tag, _PT2PT_CONTEXT)

    def sendrecv(
        self,
        value: Any,
        dest: int,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        nbytes: Optional[int] = None,
    ) -> Message:
        """Combined send+receive (deadlock-free exchange)."""
        req = self.irecv(source=source, tag=recvtag)
        self.isend(value, dest=dest, tag=sendtag, nbytes=nbytes)
        return req.wait()

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Message]:
        """Non-blocking probe of the unexpected queue (no clock cost)."""
        proc = self._current()
        mq = self._queue(self._local_of_world[proc.rank])
        return mq.probe(source, tag, _PT2PT_CONTEXT)

    # -- internal point-to-point (collectives, OSC) -------------------------

    def _isend(
        self, buf: Buffer, dest: int, tag: int, context: Hashable, category: str
    ) -> Request:
        self._check_rank(dest)
        proc = self._current()
        engine = self.engine
        src_local = self._local_of_world[proc.rank]
        dst_world = self.group[dest]

        # Keep shared timed resources (NIC windows) roughly in
        # virtual-time order across ranks.
        engine.maybe_yield(proc)

        # PML monitoring hook: record + charge the bookkeeping cost.
        if engine.pml.record(proc.rank, dst_world, buf.nbytes, category):
            engine.charge_monitoring_overhead(proc)

        sender_done, arrival = engine.network.transfer(
            proc.rank, dst_world, buf.nbytes, proc.clock
        )
        proc.clock = sender_done

        msg = Message(
            src=src_local,
            dst=dest,
            tag=tag,
            context=context,
            buf=Buffer(buf.copy_payload(), nbytes=buf.nbytes),
            arrival=arrival,
            category=category,
        )
        self._queue(dest).deliver(msg)
        return SendRequest(buf.nbytes)

    def _irecv(self, source: int, tag: int, context: Hashable) -> RecvRequest:
        if source != ANY_SOURCE:
            self._check_rank(source)
        proc = self._current()
        my_local = self._local_of_world[proc.rank]
        req = RecvRequest(self, proc, source, tag, context)
        self._queue(my_local).post(req)
        return req

    def _queue(self, dst_local: int) -> MatchQueue:
        key = (self.id, dst_local)
        mq = self.engine.match_queues.get(key)
        if mq is None:
            mq = MatchQueue()
            self.engine.match_queues[key] = mq
        return mq

    # -- collective context management ------------------------------------

    def _next_collective_context(self, opname: str) -> Tuple[str, int, int]:
        """A fresh context shared by all ranks for one collective call.

        Relies on the MPI rule that all members call collectives in the
        same order; each rank keeps its own counter and they stay in
        lockstep.  Mismatched collective sequences surface as deadlocks.
        """
        proc = self._current()
        key = ("coll_seq", self.id)
        seq = proc.userdata.get(key, 0)
        proc.userdata[key] = seq + 1
        return ("coll", self.id, seq)

    # -- communicator management --------------------------------------------

    def split(self, color: int, key: int) -> Optional["Communicator"]:
        """MPI_Comm_split: group by ``color``, order by ``(key, rank)``.

        Color ``< 0`` (MPI_UNDEFINED) yields ``None``.  The exchange of
        (color, key) pairs is itself a monitored collective (allgather),
        as in a real MPI implementation.
        """
        from repro.simmpi.collectives.allgather import allgather

        me = self.rank
        pairs = allgather(self, (int(color), int(key)))
        seq = self._split_seq()
        my_color = int(color)
        if my_color < 0:
            return None
        members = [
            (k, r) for r, (c, k) in enumerate(pairs) if c == my_color
        ]
        members.sort()
        group_world = [self.group[r] for _, r in members]
        reg_key = ("split", self.id, seq, my_color)
        comm = self.engine.comm_registry.get(reg_key)
        if comm is None:
            comm = Communicator(self.engine, group_world)
            self.engine.comm_registry[reg_key] = comm
        return comm

    def dup(self) -> "Communicator":
        """MPI_Comm_dup: same group, fresh context."""
        seq = self._split_seq()
        from repro.simmpi.collectives.barrier import barrier

        barrier(self)  # a dup synchronizes, like the real thing
        reg_key = ("dup", self.id, seq)
        comm = self.engine.comm_registry.get(reg_key)
        if comm is None:
            comm = Communicator(self.engine, list(self.group))
            self.engine.comm_registry[reg_key] = comm
        return comm

    def _split_seq(self) -> int:
        proc = self._current()
        key = ("split_seq", self.id)
        seq = proc.userdata.get(key, 0)
        proc.userdata[key] = seq + 1
        return seq

    # -- collectives (implemented over _isend/_irecv) -------------------------

    def barrier(self, algorithm: Optional[str] = None) -> None:
        from repro.simmpi.collectives.barrier import barrier

        barrier(self, algorithm=algorithm)

    def bcast(self, value: Any = None, root: int = 0, nbytes: Optional[int] = None,
              algorithm: Optional[str] = None,
              segments: Optional[int] = None) -> Any:
        from repro.simmpi.collectives.bcast import bcast

        return bcast(self, value, root=root, nbytes=nbytes,
                     algorithm=algorithm, segments=segments)

    def reduce(self, value: Any, op: Op, root: int = 0,
               nbytes: Optional[int] = None, algorithm: Optional[str] = None,
               segments: Optional[int] = None) -> Any:
        from repro.simmpi.collectives.reduce import reduce as _reduce

        return _reduce(self, value, op, root=root, nbytes=nbytes,
                       algorithm=algorithm, segments=segments)

    def allreduce(self, value: Any, op: Op, nbytes: Optional[int] = None,
                  algorithm: Optional[str] = None) -> Any:
        from repro.simmpi.collectives.allreduce import allreduce

        return allreduce(self, value, op, nbytes=nbytes, algorithm=algorithm)

    def gather(self, value: Any, root: int = 0, nbytes: Optional[int] = None,
               algorithm: Optional[str] = None) -> Optional[List[Any]]:
        from repro.simmpi.collectives.gather import gather

        return gather(self, value, root=root, nbytes=nbytes, algorithm=algorithm)

    def scatter(self, values: Optional[Sequence[Any]] = None, root: int = 0,
                nbytes: Optional[int] = None,
                algorithm: Optional[str] = None) -> Any:
        from repro.simmpi.collectives.scatter import scatter

        return scatter(self, values, root=root, nbytes=nbytes, algorithm=algorithm)

    def allgather(self, value: Any, nbytes: Optional[int] = None,
                  algorithm: Optional[str] = None) -> List[Any]:
        from repro.simmpi.collectives.allgather import allgather

        return allgather(self, value, nbytes=nbytes, algorithm=algorithm)

    def alltoall(self, values: Sequence[Any], nbytes: Optional[int] = None,
                 algorithm: Optional[str] = None) -> List[Any]:
        from repro.simmpi.collectives.alltoall import alltoall

        return alltoall(self, values, nbytes=nbytes, algorithm=algorithm)

    def scan(self, value: Any, op: Op, nbytes: Optional[int] = None) -> Any:
        from repro.simmpi.collectives.scan import scan

        return scan(self, value, op, nbytes=nbytes)

    def exscan(self, value: Any, op: Op, nbytes: Optional[int] = None) -> Any:
        from repro.simmpi.collectives.scan import exscan

        return exscan(self, value, op, nbytes=nbytes)

    def reduce_scatter(self, values: Sequence[Any], op: Op,
                       nbytes: Optional[int] = None) -> Any:
        from repro.simmpi.collectives.scan import reduce_scatter

        return reduce_scatter(self, list(values), op, nbytes=nbytes)

    # -- one-sided --------------------------------------------------------

    def win_create(self, local_data: Any = None, nbytes: Optional[int] = None):
        from repro.simmpi.osc import Window

        return Window.create(self, local_data, nbytes=nbytes)

    # -- helpers ---------------------------------------------------------

    def _current(self):
        from repro.simmpi.engine import current_process

        return current_process()

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise CommError(f"rank {rank} out of range [0, {self.size})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Communicator(id={self.id}, size={self.size})"
