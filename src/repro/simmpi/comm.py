"""Communicators: point-to-point messaging, split/dup, and the PML hook.

``Communicator._pml_send`` is the single choke point every message goes
through — user point-to-point, the decomposition of every collective,
and one-sided traffic alike.  That is where the monitoring component
(:mod:`repro.simmpi.pml_monitoring`) records the message and where the
per-message monitoring overhead is charged, reproducing the vantage
point of Open MPI's ``pml_monitoring``.

Collectives live in :mod:`repro.simmpi.collectives` and are attached
here as thin delegating methods; all of them are implemented strictly
on top of :meth:`_isend`/:meth:`_irecv`.
"""

from __future__ import annotations

import heapq
from typing import Any, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.simmpi.datatypes import Buffer
from repro.simmpi.engine import _State, _tls, current_process
from repro.simmpi.errorsim import CommError, SimError
from repro.simmpi.match import ANY_SOURCE, ANY_TAG, MatchQueue, Message
from repro.simmpi.op import Op
from repro.simmpi.pml_monitoring import PeerBatch
from repro.simmpi.request import RecvRequest, Request, SendRequest

__all__ = ["Communicator", "ANY_SOURCE", "ANY_TAG"]

_PT2PT_CONTEXT = "pt2pt"

# Scheduler states compared identity-wise on the inlined send path.
_READY = _State.READY
_BLOCKED = _State.BLOCKED

# Eager sends complete at post time, so internal sends (collectives,
# sendrecv) return this shared completed request instead of allocating
# one per message.  The public ``isend`` allocates a real SendRequest
# because its ``nbytes`` attribute is part of the user-facing API.
_SEND_DONE = SendRequest(0)


class Communicator:
    """A group of world ranks with its own matching context.

    The same object is shared by all member processes; rank-dependent
    views (``comm.rank``) resolve the calling process via the engine's
    thread-local.  This mirrors how an MPI communicator is one logical
    object referenced by many processes.
    """

    def __init__(self, engine, group: Sequence[int]):
        if len(group) == 0:
            raise CommError("empty communicator group")
        if len(set(group)) != len(group):
            raise CommError("duplicate world ranks in group")
        self.engine = engine
        self.group: List[int] = [int(r) for r in group]
        self.id = engine.alloc_comm_id()
        self._local_of_world = {w: i for i, w in enumerate(self.group)}
        # Per-destination match queues, indexed by local rank (the
        # engine-wide registry keyed by (comm id, local) stays the
        # source of truth for inspectors; this list is the hot-path
        # view, avoiding a tuple allocation + dict probe per message).
        self._queues: List[Optional[MatchQueue]] = [None] * len(self.group)

    # -- identity -----------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.group)

    @property
    def rank(self) -> int:
        """Rank of the *calling process* in this communicator."""
        proc = self._current()
        try:
            return self._local_of_world[proc.rank]
        except KeyError:
            raise CommError(
                f"world rank {proc.rank} is not a member of this communicator"
            ) from None

    def world_rank(self, local_rank: int) -> int:
        self._check_rank(local_rank)
        return self.group[local_rank]

    def contains_current(self) -> bool:
        return self._current().rank in self._local_of_world

    # -- time -----------------------------------------------------------------

    @property
    def time(self) -> float:
        """The calling rank's virtual clock, in seconds."""
        proc = self._current()
        if proc.pending is not None:
            self.engine.settle(proc)
        return proc.clock

    def compute(self, seconds: float) -> None:
        """Model local computation: advance the caller's clock."""
        self._current().advance(seconds)

    def sleep(self, seconds: float) -> None:
        """Model idle time (identical to :meth:`compute` in the model)."""
        self._current().advance(seconds)

    # -- resumable (co) twins of the timed services -------------------------
    #
    # The ``co_`` API is the canonical spelling for generator rank
    # programs (the event-driven engine).  Each co method performs the
    # *identical* engine call sequence as its blocking twin, with the
    # parking primitives routed through Engine.co_settle/co_block —
    # which, under the threaded engine, delegate to the blocking ones
    # without yielding.  Library code written against co_* therefore
    # runs bit-exactly on both cores.
    #
    # The workhorse pattern: settle the caller's deferred send *first*
    # (the only point where these services can park), after which the
    # blocking implementation is guaranteed park-free and is invoked
    # directly — one implementation, two drivers.

    def co_sync(self):
        """Settle the caller's deferred send (resumable).

        Use before calling blocking library code that settles
        internally (pvar reads, session snapshots, ``pml.set_mode``):
        with the send already settled those inner settles no-op, so
        the blocking call can run unmodified inside a co program.
        """
        proc = self._current()
        if proc.pending is not None:
            yield from self.engine.co_settle(proc)
        return proc

    def co_time(self):
        """Resumable :attr:`time` (``t = yield from comm.co_time()``)."""
        proc = self._current()
        if proc.pending is not None:
            yield from self.engine.co_settle(proc)
        return proc.clock

    def co_compute(self, seconds: float):
        """Resumable :meth:`compute`."""
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        proc = self._current()
        if proc.pending is not None:
            yield from self.engine.co_settle(proc)
        proc.clock += seconds

    def co_sleep(self, seconds: float):
        """Resumable :meth:`sleep`."""
        yield from self.co_compute(seconds)

    # -- user point-to-point ----------------------------------------------

    def send(
        self,
        value: Any = None,
        dest: int = 0,
        tag: int = 0,
        nbytes: Optional[int] = None,
    ) -> None:
        """Blocking (buffered-eager) send of ``value`` to ``dest``."""
        self.isend(value, dest=dest, tag=tag, nbytes=nbytes)

    def isend(
        self,
        value: Any = None,
        dest: int = 0,
        tag: int = 0,
        nbytes: Optional[int] = None,
    ) -> Request:
        if tag < 0:
            raise CommError(f"user tags must be >= 0, got {tag}")
        self._check_rank(dest)
        buf = Buffer.wrap(value, nbytes)
        self._isend(buf, dest, tag, _PT2PT_CONTEXT, "p2p")
        return SendRequest(buf.nbytes)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Message:
        """Blocking receive; returns the matched :class:`Message`."""
        return self.irecv(source=source, tag=tag).wait()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        if source != ANY_SOURCE:
            self._check_rank(source)
        return self._irecv(source, tag, _PT2PT_CONTEXT)

    def sendrecv(
        self,
        value: Any,
        dest: int,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        nbytes: Optional[int] = None,
    ) -> Message:
        """Combined send+receive (deadlock-free exchange)."""
        req = self.irecv(source=source, tag=recvtag)
        self.isend(value, dest=dest, tag=sendtag, nbytes=nbytes)
        return req.wait()

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Message]:
        """Non-blocking probe of the unexpected queue (no clock cost)."""
        proc = self._current()
        if proc.pending is not None:
            self.engine.settle(proc)
        mq = self._queue(self._local_of_world[proc.rank])
        return mq.probe(source, tag, _PT2PT_CONTEXT)

    # -- resumable (co) point-to-point --------------------------------------

    def co_send(self, value: Any = None, dest: int = 0, tag: int = 0,
                nbytes: Optional[int] = None):
        """Resumable :meth:`send`."""
        yield from self.co_isend(value, dest=dest, tag=tag, nbytes=nbytes)

    def co_isend(self, value: Any = None, dest: int = 0, tag: int = 0,
                 nbytes: Optional[int] = None):
        """Resumable :meth:`isend` (the returned request is complete)."""
        if tag < 0:
            raise CommError(f"user tags must be >= 0, got {tag}")
        self._check_rank(dest)
        buf = Buffer.wrap(value, nbytes)
        yield from self._co_isend(buf, dest, tag, _PT2PT_CONTEXT, "p2p")
        return SendRequest(buf.nbytes)

    def co_recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Resumable :meth:`recv`."""
        req = self.irecv(source=source, tag=tag)
        return (yield from req.co_wait())

    def co_sendrecv(self, value: Any, dest: int, source: int = ANY_SOURCE,
                    sendtag: int = 0, recvtag: int = ANY_TAG,
                    nbytes: Optional[int] = None):
        """Resumable :meth:`sendrecv`."""
        req = self.irecv(source=source, tag=recvtag)
        yield from self.co_isend(value, dest=dest, tag=sendtag, nbytes=nbytes)
        return (yield from req.co_wait())

    def co_probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Resumable :meth:`probe`."""
        proc = self._current()
        if proc.pending is not None:
            yield from self.engine.co_settle(proc)
        mq = self._queue(self._local_of_world[proc.rank])
        return mq.probe(source, tag, _PT2PT_CONTEXT)

    # -- internal point-to-point (collectives, OSC) -------------------------

    def _isend(
        self, buf: Buffer, dest: int, tag: int, context: Hashable, category: str,
        batch=None,
    ) -> Request:
        # The payload is snapshotted here (the caller may reuse its
        # buffer after the eager return); recording, the overhead
        # charge, and the actual network transfer happen inside the
        # engine — immediately when this rank is frontmost in virtual
        # time, deferred otherwise (see Engine.post_send).
        # Sends carrying a ``batch`` (PeerBatch) tally into it instead
        # of the per-message accumulator update; see _open_peer_batch.
        # ``dest`` is trusted (user entry points validate); the caller
        # is resolved via the raw thread-local — this runs once per
        # simulated message.
        try:
            proc = _tls.proc
        except AttributeError:
            raise SimError("not inside a simulated MPI process") from None
        nbytes = buf.nbytes
        payload = buf.payload
        if payload is None:
            # Abstract buffers carry no state a sender could mutate
            # after the eager return — ship the descriptor itself
            # instead of allocating a copy per message.
            wire = buf
        else:
            # Buffer.copy_payload, inlined: arrays are value-copied,
            # anything else is shipped as-is.
            wire = Buffer(
                payload.copy() if isinstance(payload, np.ndarray) else payload,
                nbytes=nbytes,
            )
        mq = self._queues[dest]
        if mq is None:
            mq = self._queue(dest)
        # Engine.post_send's deferral fast path, inlined (the branch
        # nearly every exact-mode message takes — keep in sync with the
        # engine): settle our previous send, then defer this one when
        # any rank or queued send is due before us.
        eng = self.engine
        if proc.pending is not None:
            eng.settle(proc)
        if not eng._fast:
            clock = proc.clock
            heap = eng._ready_heap
            pop = heapq.heappop
            entry = None
            while heap:
                e = heap[0]
                p = e[3]
                if p.ready_seq == e[2]:
                    if e[4] is None:
                        if p.state is _READY:
                            entry = e
                            break
                    elif p.state is _BLOCKED:
                        entry = e
                        break
                pop(heap)
            ph = eng._pending_heap
            if (entry is not None and entry[0] < clock) or \
                    (ph and ph[0][0] < clock):
                msg = Message.__new__(Message)
                msg.src = self._local_of_world[proc.rank]
                msg.dst = dest
                msg.tag = tag
                msg.context = context
                msg.buf = wire
                msg.arrival = 0.0
                msg.category = category
                ps = [proc, mq, msg, self.group[dest], nbytes, batch, False]
                proc.pending = ps
                eng._qseq += 1
                heapq.heappush(ph, (clock, proc.rank, eng._qseq, ps))
                return _SEND_DONE
        # Frontmost, or fast mode: the engine runs the transfer now.
        eng.post_send(
            proc,
            mq,
            self._local_of_world[proc.rank],
            dest,
            self.group[dest],
            wire,
            tag,
            context,
            category,
            batch,
        )
        return _SEND_DONE

    def _co_isend(
        self, buf: Buffer, dest: int, tag: int, context: Hashable, category: str,
        batch=None,
    ):
        """Resumable :meth:`_isend`.

        The blocking ``_isend`` parks in exactly one place: settling
        the caller's previous deferred send.  Settle it here through
        the co protocol, then run the blocking implementation — which
        is then park-free (posting a *new* deferred send only pushes a
        heap entry) — so the two spellings share one hot path.
        """
        try:
            proc = _tls.proc
        except AttributeError:
            raise SimError("not inside a simulated MPI process") from None
        if proc.pending is not None:
            # Engine.co_settle, unrolled: settle without allocating a
            # sub-generator unless a park is actually needed (rare).
            eng = self.engine
            if not eng._ev:
                eng.settle(proc)
            else:
                nxt = eng._settle_scan(proc)
                if nxt is not None:
                    yield from eng._co_settle_park(proc, nxt)
        return self._isend(buf, dest, tag, context, category, batch)

    def _open_peer_batch(self, dest: int, category: str) -> PeerBatch:
        """Open batched matrix bookkeeping for sends to one peer.

        Segmented/pipelined collectives whose per-peer decomposition is
        regular tag their segment sends with the returned batch; each
        send is still mode-gated individually when it materializes, but
        the tallies fold into the monitoring accumulators in one update
        at :meth:`_close_peer_batch`."""
        proc = self._current()
        return PeerBatch(proc.rank, self.group[dest], category)

    def _close_peer_batch(self, batch: PeerBatch) -> None:
        self.engine.pml.close_batch(batch)

    def _co_close_peer_batch(self, batch: PeerBatch):
        """Resumable :meth:`_close_peer_batch`: settle the caller's
        deferred send through the co protocol so ``close_batch``'s own
        sync (a blocking settle) no-ops."""
        proc = self._current()
        if proc.pending is not None:
            yield from self.engine.co_settle(proc)
        self.engine.pml.close_batch(batch)

    def _irecv(self, source: int, tag: int, context: Hashable) -> RecvRequest:
        # ``source`` is trusted (user entry points validate) and the
        # queue probe is inlined, mirroring _isend.
        try:
            proc = _tls.proc
        except AttributeError:
            raise SimError("not inside a simulated MPI process") from None
        my_local = self._local_of_world[proc.rank]
        # RecvRequest.__init__, unrolled (skips one interpreter frame
        # per receive; keep the field set in sync with request.py).
        req = RecvRequest.__new__(RecvRequest)
        req.comm = self
        req.proc = proc
        req.source = source
        req.tag = tag
        req.context = context
        req._msg = None
        mq = self._queues[my_local]
        if mq is None:
            mq = self._queue(my_local)
        # MatchQueue.post, inlined (once per receive): bind the oldest
        # matching unexpected message, else enqueue the receive.
        unexpected = mq._unexpected
        if unexpected:
            for i, msg in enumerate(unexpected):
                if (msg.context == context
                        and source in (ANY_SOURCE, msg.src)
                        and tag in (ANY_TAG, msg.tag)):
                    del unexpected[i]
                    req._msg = msg  # req is fresh: never double-bound
                    return req
        mq._posted.append(req)
        return req

    def _queue(self, dst_local: int) -> MatchQueue:
        mq = self._queues[dst_local]
        if mq is None:
            mq = MatchQueue()
            self._queues[dst_local] = mq
            self.engine.match_queues[(self.id, dst_local)] = mq
        return mq

    # -- collective context management ------------------------------------

    def _next_collective_context(self, opname: str) -> Tuple[str, int, int]:
        """A fresh context shared by all ranks for one collective call.

        Relies on the MPI rule that all members call collectives in the
        same order; each rank keeps its own counter and they stay in
        lockstep.  Mismatched collective sequences surface as deadlocks.
        """
        proc = self._current()
        key = ("coll_seq", self.id)
        seq = proc.userdata.get(key, 0)
        proc.userdata[key] = seq + 1
        return ("coll", self.id, seq)

    # -- communicator management --------------------------------------------

    def split(self, color: int, key: int) -> Optional["Communicator"]:
        """MPI_Comm_split: group by ``color``, order by ``(key, rank)``.

        Color ``< 0`` (MPI_UNDEFINED) yields ``None``.  The exchange of
        (color, key) pairs is itself a monitored collective (allgather),
        as in a real MPI implementation.
        """
        from repro.simmpi.collectives.allgather import allgather

        me = self.rank
        pairs = allgather(self, (int(color), int(key)))
        seq = self._split_seq()
        my_color = int(color)
        if my_color < 0:
            return None
        members = [
            (k, r) for r, (c, k) in enumerate(pairs) if c == my_color
        ]
        members.sort()
        group_world = [self.group[r] for _, r in members]
        reg_key = ("split", self.id, seq, my_color)
        comm = self.engine.comm_registry.get(reg_key)
        if comm is None:
            comm = Communicator(self.engine, group_world)
            self.engine.comm_registry[reg_key] = comm
        return comm

    def dup(self) -> "Communicator":
        """MPI_Comm_dup: same group, fresh context."""
        seq = self._split_seq()
        from repro.simmpi.collectives.barrier import barrier

        barrier(self)  # a dup synchronizes, like the real thing
        reg_key = ("dup", self.id, seq)
        comm = self.engine.comm_registry.get(reg_key)
        if comm is None:
            comm = Communicator(self.engine, list(self.group))
            self.engine.comm_registry[reg_key] = comm
        return comm

    def _split_seq(self) -> int:
        proc = self._current()
        key = ("split_seq", self.id)
        seq = proc.userdata.get(key, 0)
        proc.userdata[key] = seq + 1
        return seq

    def co_split(self, color: int, key: int):
        """Resumable :meth:`split` (same exchange, same registry)."""
        from repro.simmpi.collectives.allgather import co_allgather

        me = self.rank  # noqa: F841 - membership check, like split()
        pairs = yield from co_allgather(self, (int(color), int(key)))
        seq = self._split_seq()
        my_color = int(color)
        if my_color < 0:
            return None
        members = [
            (k, r) for r, (c, k) in enumerate(pairs) if c == my_color
        ]
        members.sort()
        group_world = [self.group[r] for _, r in members]
        reg_key = ("split", self.id, seq, my_color)
        comm = self.engine.comm_registry.get(reg_key)
        if comm is None:
            comm = Communicator(self.engine, group_world)
            self.engine.comm_registry[reg_key] = comm
        return comm

    def co_dup(self):
        """Resumable :meth:`dup`."""
        seq = self._split_seq()
        from repro.simmpi.collectives.barrier import co_barrier

        yield from co_barrier(self)
        reg_key = ("dup", self.id, seq)
        comm = self.engine.comm_registry.get(reg_key)
        if comm is None:
            comm = Communicator(self.engine, list(self.group))
            self.engine.comm_registry[reg_key] = comm
        return comm

    # -- collectives (implemented over _isend/_irecv) -------------------------

    def _spanned(self, opname, _alg, fn, *args, **kwargs):
        """Run one collective, tracing it as a virtual-time span.

        Observation-only: the span recorder reads the caller's raw
        clock before and after — it never settles deferred sends or
        touches the scheduler, so the engine's call sequence is
        identical with tracing off (``engine._obs_spans is None``, the
        common case, costs one attribute read per collective call).
        """
        eng = self.engine
        rec = eng._obs_spans
        rr = eng._rr
        if rec is None and rr is None:
            return fn(*args, **kwargs)
        try:
            proc = _tls.proc
        except AttributeError:
            raise SimError("not inside a simulated MPI process") from None
        if rr is not None:
            rr.on_coll_begin(proc, self, opname, _alg, kwargs)
        if rec is not None:
            name = opname if _alg is None else f"{opname}[{_alg}]"
            rec.begin(proc.rank, name, proc.clock)
        try:
            return fn(*args, **kwargs)
        finally:
            if rec is not None:
                rec.end(proc.rank, proc.clock)
            if rr is not None:
                rr.on_coll_end(proc)

    def barrier(self, algorithm: Optional[str] = None) -> None:
        from repro.simmpi.collectives.barrier import barrier

        self._spanned("barrier", algorithm, barrier, self,
                      algorithm=algorithm)

    def bcast(self, value: Any = None, root: int = 0, nbytes: Optional[int] = None,
              algorithm: Optional[str] = None,
              segments: Optional[int] = None) -> Any:
        from repro.simmpi.collectives.bcast import bcast

        return self._spanned("bcast", algorithm, bcast, self, value,
                             root=root, nbytes=nbytes,
                             algorithm=algorithm, segments=segments)

    def reduce(self, value: Any, op: Op, root: int = 0,
               nbytes: Optional[int] = None, algorithm: Optional[str] = None,
               segments: Optional[int] = None) -> Any:
        from repro.simmpi.collectives.reduce import reduce as _reduce

        return self._spanned("reduce", algorithm, _reduce, self, value, op,
                             root=root, nbytes=nbytes,
                             algorithm=algorithm, segments=segments)

    def allreduce(self, value: Any, op: Op, nbytes: Optional[int] = None,
                  algorithm: Optional[str] = None) -> Any:
        from repro.simmpi.collectives.allreduce import allreduce

        return self._spanned("allreduce", algorithm, allreduce, self,
                             value, op, nbytes=nbytes, algorithm=algorithm)

    def gather(self, value: Any, root: int = 0, nbytes: Optional[int] = None,
               algorithm: Optional[str] = None) -> Optional[List[Any]]:
        from repro.simmpi.collectives.gather import gather

        return self._spanned("gather", algorithm, gather, self, value,
                             root=root, nbytes=nbytes, algorithm=algorithm)

    def scatter(self, values: Optional[Sequence[Any]] = None, root: int = 0,
                nbytes: Optional[int] = None,
                algorithm: Optional[str] = None) -> Any:
        from repro.simmpi.collectives.scatter import scatter

        return self._spanned("scatter", algorithm, scatter, self, values,
                             root=root, nbytes=nbytes, algorithm=algorithm)

    def allgather(self, value: Any, nbytes: Optional[int] = None,
                  algorithm: Optional[str] = None) -> List[Any]:
        from repro.simmpi.collectives.allgather import allgather

        return self._spanned("allgather", algorithm, allgather, self,
                             value, nbytes=nbytes, algorithm=algorithm)

    def alltoall(self, values: Sequence[Any], nbytes: Optional[int] = None,
                 algorithm: Optional[str] = None) -> List[Any]:
        from repro.simmpi.collectives.alltoall import alltoall

        return self._spanned("alltoall", algorithm, alltoall, self,
                             values, nbytes=nbytes, algorithm=algorithm)

    def scan(self, value: Any, op: Op, nbytes: Optional[int] = None) -> Any:
        from repro.simmpi.collectives.scan import scan

        return self._spanned("scan", None, scan, self, value, op,
                             nbytes=nbytes)

    def exscan(self, value: Any, op: Op, nbytes: Optional[int] = None) -> Any:
        from repro.simmpi.collectives.scan import exscan

        return self._spanned("exscan", None, exscan, self, value, op,
                             nbytes=nbytes)

    def reduce_scatter(self, values: Sequence[Any], op: Op,
                       nbytes: Optional[int] = None) -> Any:
        from repro.simmpi.collectives.scan import reduce_scatter

        return self._spanned("reduce_scatter", None, reduce_scatter, self,
                             list(values), op, nbytes=nbytes)

    # -- resumable (co) collectives ----------------------------------------

    def _co_spanned(self, opname, _alg, gen, *args, **kwargs):
        """Resumable :meth:`_spanned`.

        Identical observation protocol — same ``kwargs`` dict handed to
        the trace recorder, same span names — so traces recorded from
        the event-driven engine are byte-identical to threaded ones.
        """
        eng = self.engine
        rec = eng._obs_spans
        rr = eng._rr
        if rec is None and rr is None:
            return (yield from gen(*args, **kwargs))
        try:
            proc = _tls.proc
        except AttributeError:
            raise SimError("not inside a simulated MPI process") from None
        if rr is not None:
            rr.on_coll_begin(proc, self, opname, _alg, kwargs)
        if rec is not None:
            name = opname if _alg is None else f"{opname}[{_alg}]"
            rec.begin(proc.rank, name, proc.clock)
        try:
            return (yield from gen(*args, **kwargs))
        finally:
            if rec is not None:
                rec.end(proc.rank, proc.clock)
            if rr is not None:
                rr.on_coll_end(proc)

    def co_barrier(self, algorithm: Optional[str] = None):
        from repro.simmpi.collectives.barrier import co_barrier

        yield from self._co_spanned("barrier", algorithm, co_barrier, self,
                                    algorithm=algorithm)

    def co_bcast(self, value: Any = None, root: int = 0,
                 nbytes: Optional[int] = None,
                 algorithm: Optional[str] = None,
                 segments: Optional[int] = None):
        from repro.simmpi.collectives.bcast import co_bcast

        return (yield from self._co_spanned(
            "bcast", algorithm, co_bcast, self, value, root=root,
            nbytes=nbytes, algorithm=algorithm, segments=segments))

    def co_reduce(self, value: Any, op: Op, root: int = 0,
                  nbytes: Optional[int] = None,
                  algorithm: Optional[str] = None,
                  segments: Optional[int] = None):
        from repro.simmpi.collectives.reduce import co_reduce

        return (yield from self._co_spanned(
            "reduce", algorithm, co_reduce, self, value, op, root=root,
            nbytes=nbytes, algorithm=algorithm, segments=segments))

    def co_allreduce(self, value: Any, op: Op, nbytes: Optional[int] = None,
                     algorithm: Optional[str] = None):
        from repro.simmpi.collectives.allreduce import co_allreduce

        return (yield from self._co_spanned(
            "allreduce", algorithm, co_allreduce, self, value, op,
            nbytes=nbytes, algorithm=algorithm))

    def co_gather(self, value: Any, root: int = 0,
                  nbytes: Optional[int] = None,
                  algorithm: Optional[str] = None):
        from repro.simmpi.collectives.gather import co_gather

        return (yield from self._co_spanned(
            "gather", algorithm, co_gather, self, value, root=root,
            nbytes=nbytes, algorithm=algorithm))

    def co_scatter(self, values: Optional[Sequence[Any]] = None, root: int = 0,
                   nbytes: Optional[int] = None,
                   algorithm: Optional[str] = None):
        from repro.simmpi.collectives.scatter import co_scatter

        return (yield from self._co_spanned(
            "scatter", algorithm, co_scatter, self, values, root=root,
            nbytes=nbytes, algorithm=algorithm))

    def co_allgather(self, value: Any, nbytes: Optional[int] = None,
                     algorithm: Optional[str] = None):
        from repro.simmpi.collectives.allgather import co_allgather

        return (yield from self._co_spanned(
            "allgather", algorithm, co_allgather, self, value,
            nbytes=nbytes, algorithm=algorithm))

    def co_alltoall(self, values: Sequence[Any], nbytes: Optional[int] = None,
                    algorithm: Optional[str] = None):
        from repro.simmpi.collectives.alltoall import co_alltoall

        return (yield from self._co_spanned(
            "alltoall", algorithm, co_alltoall, self, values,
            nbytes=nbytes, algorithm=algorithm))

    def co_scan(self, value: Any, op: Op, nbytes: Optional[int] = None):
        from repro.simmpi.collectives.scan import co_scan

        return (yield from self._co_spanned(
            "scan", None, co_scan, self, value, op, nbytes=nbytes))

    def co_exscan(self, value: Any, op: Op, nbytes: Optional[int] = None):
        from repro.simmpi.collectives.scan import co_exscan

        return (yield from self._co_spanned(
            "exscan", None, co_exscan, self, value, op, nbytes=nbytes))

    def co_reduce_scatter(self, values: Sequence[Any], op: Op,
                          nbytes: Optional[int] = None):
        from repro.simmpi.collectives.scan import co_reduce_scatter

        return (yield from self._co_spanned(
            "reduce_scatter", None, co_reduce_scatter, self,
            list(values), op, nbytes=nbytes))

    # -- one-sided --------------------------------------------------------

    def win_create(self, local_data: Any = None, nbytes: Optional[int] = None):
        from repro.simmpi.osc import Window

        return Window.create(self, local_data, nbytes=nbytes)

    def co_win_create(self, local_data: Any = None,
                      nbytes: Optional[int] = None):
        from repro.simmpi.osc import Window

        return (yield from Window.co_create(self, local_data, nbytes=nbytes))

    # -- helpers ---------------------------------------------------------

    # One call frame over the engine's thread-local lookup; bound as a
    # staticmethod so the per-message hot path skips the repeated
    # ``from ... import`` a function-local import would pay.
    _current = staticmethod(current_process)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise CommError(f"rank {rank} out of range [0, {self.size})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Communicator(id={self.id}, size={self.size})"
