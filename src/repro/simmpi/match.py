"""Message matching: posted-receive and unexpected-message queues.

Each (communicator, destination rank) pair owns one :class:`MatchQueue`.
A message matches a posted receive when their *contexts* are equal (user
point-to-point traffic and each collective invocation live in disjoint
contexts, like MPI context ids) and the receive's source/tag either
equal the message's or are wildcards.  Matching is FIFO on both sides,
per the MPI non-overtaking rule.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Hashable, Optional, Tuple

from repro.simmpi.datatypes import Buffer
from repro.simmpi.errorsim import SimError

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "MatchQueue"]

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass(slots=True)
class Message:
    """An in-flight (or delivered) message.

    ``src``/``dst`` are ranks local to the communicator; ``arrival`` is
    the virtual time the payload is available at the destination.
    (``slots=True``: one Message is allocated per simulated message —
    skipping the per-instance ``__dict__`` is measurable.)
    """

    src: int
    dst: int
    tag: int
    context: Hashable
    buf: Buffer
    arrival: float
    category: str = "p2p"

    @property
    def payload(self) -> Any:
        return self.buf.payload

    @property
    def nbytes(self) -> int:
        return self.buf.nbytes


class MatchQueue:
    """Posted receives and unexpected messages for one (comm, dst)."""

    def __init__(self) -> None:
        self._posted: Deque[Any] = deque()  # RecvRequest objects
        self._unexpected: Deque[Message] = deque()

    @staticmethod
    def _matches(req: Any, msg: Message) -> bool:
        if req.context != msg.context:
            return False
        if req.source != ANY_SOURCE and req.source != msg.src:
            return False
        if req.tag != ANY_TAG and req.tag != msg.tag:
            return False
        return True

    def deliver(self, msg: Message) -> Optional[Any]:
        """A message arrived: bind it to the oldest matching receive.

        Returns the matched receive request (already bound), or ``None``
        if the message was queued as unexpected.  The match test is
        inlined (cf. :meth:`_matches`): this runs once per simulated
        message, usually against a one-entry queue.
        """
        posted = self._posted
        if posted:
            ctx, src, tag = msg.context, msg.src, msg.tag
            for i, req in enumerate(posted):
                if (req.context == ctx
                        and req.source in (ANY_SOURCE, src)
                        and req.tag in (ANY_TAG, tag)):
                    del posted[i]
                    # RecvRequest.bind, inlined (once per message).
                    if req._msg is not None:
                        raise SimError("receive request bound twice")
                    req._msg = msg
                    return req
        self._unexpected.append(msg)
        return None

    def post(self, req: Any) -> bool:
        """A receive was posted: bind the oldest matching unexpected
        message, else enqueue the receive.  Returns True iff bound."""
        unexpected = self._unexpected
        if unexpected:
            ctx, src, tag = req.context, req.source, req.tag
            for i, msg in enumerate(unexpected):
                if (msg.context == ctx
                        and src in (ANY_SOURCE, msg.src)
                        and tag in (ANY_TAG, msg.tag)):
                    del unexpected[i]
                    # RecvRequest.bind, inlined (once per message).
                    if req._msg is not None:
                        raise SimError("receive request bound twice")
                    req._msg = msg
                    return True
        self._posted.append(req)
        return False

    def probe(self, source: int, tag: int, context: Hashable) -> Optional[Message]:
        """First queued unexpected message matching (source, tag, context)."""

        class _Probe:
            pass

        probe = _Probe()
        probe.source = source
        probe.tag = tag
        probe.context = context
        for msg in self._unexpected:
            if self._matches(probe, msg):
                return msg
        return None

    @property
    def n_posted(self) -> int:
        return len(self._posted)

    @property
    def n_unexpected(self) -> int:
        return len(self._unexpected)
