"""Reduction operations for the simulated MPI collectives.

Operations combine two concrete payloads (NumPy arrays or scalars).
When either operand is abstract (payload-free), the result is abstract
with the same byte count — modeled workloads can thus run reductions
without materializing data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.simmpi.datatypes import Buffer

__all__ = ["Op", "SUM", "PROD", "MAX", "MIN", "LAND", "LOR", "BAND", "BOR", "combine"]


@dataclass(frozen=True)
class Op:
    """A named, associative and commutative reduction operator."""

    name: str
    fn: Callable[[Any, Any], Any]

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Op({self.name})"


SUM = Op("MPI_SUM", lambda a, b: np.add(a, b))
PROD = Op("MPI_PROD", lambda a, b: np.multiply(a, b))
MAX = Op("MPI_MAX", lambda a, b: np.maximum(a, b))
MIN = Op("MPI_MIN", lambda a, b: np.minimum(a, b))
LAND = Op("MPI_LAND", lambda a, b: np.logical_and(a, b))
LOR = Op("MPI_LOR", lambda a, b: np.logical_or(a, b))
BAND = Op("MPI_BAND", lambda a, b: np.bitwise_and(a, b))
BOR = Op("MPI_BOR", lambda a, b: np.bitwise_or(a, b))


def combine(op: Op, a: Buffer, b: Buffer) -> Buffer:
    """Reduce two message buffers into one.

    Abstract operands stay abstract: the reduction of two n-byte
    messages is an n-byte message regardless of content.  Mixing an
    abstract and a concrete operand degrades to abstract (the content
    can no longer be computed) but preserves the size.
    """
    an, bn = a.nbytes, b.nbytes
    if a.payload is None or b.payload is None:
        # Buffers are immutable descriptors: the larger operand already
        # *is* the abstract result, no allocation needed.
        if a.payload is None and an >= bn:
            return a
        if b.payload is None and bn >= an:
            return b
        return Buffer.abstract(max(an, bn))
    if an != bn:
        raise ValueError(
            f"reduction operands differ in size: {an} vs {bn} bytes"
        )
    return Buffer(op(a.payload, b.payload), nbytes=an)
