"""MPI datatypes and message buffer descriptors for the simulated runtime.

Two payload styles are supported, mirroring mpi4py's split between
pickled objects and buffer objects:

* **Concrete payloads** — any Python object, or a NumPy array.  The byte
  size is taken from ``arr.nbytes`` for arrays and estimated for plain
  objects.  Collective reductions require concrete NumPy/scalar payloads.
* **Abstract payloads** — ``Buffer.abstract(nbytes)`` carries only a byte
  count.  These are used by the modeled workloads (e.g. NAS CG classes
  C/D) where only the communication *volume* matters, so multi-hundred-MB
  buffers never have to be allocated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

__all__ = [
    "Datatype",
    "BYTE",
    "CHAR",
    "INT",
    "UNSIGNED",
    "LONG",
    "UNSIGNED_LONG",
    "FLOAT",
    "DOUBLE",
    "Buffer",
    "payload_nbytes",
]


@dataclass(frozen=True)
class Datatype:
    """A basic MPI datatype: a name, a byte extent and a NumPy dtype."""

    name: str
    extent: int
    np_dtype: Optional[np.dtype]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Datatype({self.name}, extent={self.extent})"


BYTE = Datatype("MPI_BYTE", 1, np.dtype(np.uint8))
CHAR = Datatype("MPI_CHAR", 1, np.dtype(np.int8))
INT = Datatype("MPI_INT", 4, np.dtype(np.int32))
UNSIGNED = Datatype("MPI_UNSIGNED", 4, np.dtype(np.uint32))
LONG = Datatype("MPI_LONG", 8, np.dtype(np.int64))
UNSIGNED_LONG = Datatype("MPI_UNSIGNED_LONG", 8, np.dtype(np.uint64))
FLOAT = Datatype("MPI_FLOAT", 4, np.dtype(np.float32))
DOUBLE = Datatype("MPI_DOUBLE", 8, np.dtype(np.float64))


def payload_nbytes(payload: Any) -> int:
    """Best-effort byte size of a concrete payload.

    NumPy arrays report ``nbytes`` exactly; NumPy scalars their itemsize;
    Python ints/floats are counted as 8 bytes (one C double/long);
    ``None`` is a zero-byte message (e.g. barrier tokens); ``bytes``-like
    objects their length.  Anything else falls back to 8 bytes — the
    simulator is a timing model, not a serializer.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, np.generic):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (int, float, bool)):
        return 8
    if isinstance(payload, (list, tuple)):
        return sum(payload_nbytes(x) for x in payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(v) for v in payload.values())
    return 8


class Buffer:
    """A message buffer: a concrete payload and/or an explicit byte count.

    ``Buffer.wrap(x)`` accepts an existing :class:`Buffer`, a NumPy
    array, a scalar or ``None`` and normalizes it.  ``Buffer.abstract(n)``
    makes a payload-free buffer of ``n`` bytes.
    """

    __slots__ = ("payload", "nbytes")

    def __init__(self, payload: Any, nbytes: Optional[int] = None):
        self.payload = payload
        self.nbytes = payload_nbytes(payload) if nbytes is None else int(nbytes)
        if self.nbytes < 0:
            raise ValueError(f"negative message size: {self.nbytes}")

    @classmethod
    def abstract(cls, nbytes: int) -> "Buffer":
        """A buffer carrying only a size — used by modeled workloads."""
        return cls(None, nbytes=nbytes)

    @classmethod
    def wrap(cls, value: Any, nbytes: Optional[int] = None) -> "Buffer":
        if isinstance(value, Buffer):
            if nbytes is not None and nbytes != value.nbytes:
                raise ValueError("conflicting explicit size for Buffer")
            return value
        return cls(value, nbytes=nbytes)

    @property
    def is_abstract(self) -> bool:
        return self.payload is None and self.nbytes > 0

    def copy_payload(self) -> Any:
        """Value-copy of the payload (messages have copy semantics)."""
        if isinstance(self.payload, np.ndarray):
            return self.payload.copy()
        return self.payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "abstract" if self.is_abstract else type(self.payload).__name__
        return f"Buffer({kind}, nbytes={self.nbytes})"
